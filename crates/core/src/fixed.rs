//! Baseline policies: fixed keep-alive and no-unloading.
//!
//! "Most FaaS providers use a fixed keep-alive policy for all
//! applications, where application instances are kept loaded in memory
//! for a fixed amount of time after a function execution" (§2) — 10
//! minutes on AWS and OpenWhisk, 20 minutes on Azure at the time of the
//! paper. The no-unloading policy is the zero-cold-start upper bound
//! used in Figures 14 and 16–18.

use crate::policy::{AppPolicy, DecisionKind, DurationMs, PolicyFactory, Windows, MINUTE_MS};

/// The fixed keep-alive policy: every application stays loaded for the
/// same duration after each execution; never pre-warms.
///
/// # Examples
///
/// ```
/// use sitw_core::{AppPolicy, FixedKeepAlive, PolicyFactory};
///
/// let mut policy = FixedKeepAlive::minutes(10).new_policy();
/// let w = policy.on_invocation(None);
/// assert_eq!(w.pre_warm_ms, 0);
/// assert_eq!(w.keep_alive_ms, 600_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedKeepAlive {
    /// The keep-alive duration applied to every application.
    pub keep_alive_ms: DurationMs,
}

impl FixedKeepAlive {
    /// Creates a fixed keep-alive of the given number of minutes.
    pub fn minutes(minutes: u64) -> Self {
        Self {
            keep_alive_ms: minutes * MINUTE_MS,
        }
    }
}

impl AppPolicy for FixedKeepAlive {
    fn on_invocation(&mut self, _idle_time_ms: Option<DurationMs>) -> Windows {
        Windows::keep_loaded(self.keep_alive_ms)
    }

    fn last_decision(&self) -> DecisionKind {
        DecisionKind::Static
    }

    fn name(&self) -> String {
        format!("fixed-{}min", self.keep_alive_ms / MINUTE_MS)
    }
}

impl PolicyFactory for FixedKeepAlive {
    type Policy = FixedKeepAlive;

    fn new_policy(&self) -> Self::Policy {
        *self
    }

    fn label(&self) -> String {
        AppPolicy::name(self)
    }
}

/// The no-unloading policy: applications are never evicted, so only the
/// very first invocation of each app is cold.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoUnloading;

impl AppPolicy for NoUnloading {
    fn on_invocation(&mut self, _idle_time_ms: Option<DurationMs>) -> Windows {
        Windows::NEVER_UNLOAD
    }

    fn last_decision(&self) -> DecisionKind {
        DecisionKind::Static
    }

    fn name(&self) -> String {
        "no-unloading".to_owned()
    }
}

impl PolicyFactory for NoUnloading {
    type Policy = NoUnloading;

    fn new_policy(&self) -> Self::Policy {
        *self
    }

    fn label(&self) -> String {
        AppPolicy::name(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_constant_windows() {
        let mut p = FixedKeepAlive::minutes(20);
        let w1 = p.on_invocation(None);
        let w2 = p.on_invocation(Some(5 * MINUTE_MS));
        let w3 = p.on_invocation(Some(3_000 * MINUTE_MS));
        assert_eq!(w1, w2);
        assert_eq!(w2, w3);
        assert_eq!(w1, Windows::keep_loaded(20 * MINUTE_MS));
        assert_eq!(AppPolicy::name(&p), "fixed-20min");
        assert_eq!(p.last_decision(), DecisionKind::Static);
    }

    #[test]
    fn no_unloading_never_cold_after_first() {
        let mut p = NoUnloading;
        let w = p.on_invocation(None);
        assert!(w.is_warm_at(DurationMs::MAX));
        assert_eq!(AppPolicy::name(&p), "no-unloading");
    }

    #[test]
    fn factories_produce_equivalent_policies() {
        let f = FixedKeepAlive::minutes(10);
        let mut a = f.new_policy();
        let mut b = f.new_policy();
        assert_eq!(a.on_invocation(None), b.on_invocation(None));
        assert_eq!(f.label(), "fixed-10min");
        assert_eq!(NoUnloading.label(), "no-unloading");
    }
}
