//! Offline static analysis and model checking for the sitw workspace.
//!
//! Two pillars, both std-only so they build in the same air-gapped
//! environment as the rest of the workspace:
//!
//! - [`lexer`] + [`rules`]: the `sitw-lint` engine. A hand-rolled
//!   Rust lexer (strings, nested comments, raw strings, lifetimes)
//!   feeds token-level rules that enforce the repo's written
//!   invariants — unsafe confinement, hot-path allocation and panic
//!   freedom, clock discipline, and metrics-registry hygiene — with
//!   `file:line` diagnostics and `// sitw-lint: allow(...)` opt-outs.
//! - [`sched`]: a mini-loom interleaving checker that exhaustively
//!   enumerates schedules of the reactor's waker and slab protocols,
//!   proving no lost wakeup and no stale-token delivery at model
//!   scale, and demonstrating it would catch the bugs by refuting
//!   deliberately broken variants.
//!
//! The `sitw-lint` binary wires both into CI: lint the workspace, run
//! the tier-1 model sweep, exit nonzero on any finding.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;
pub mod sched;
