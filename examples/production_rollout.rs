//! Production-style histogram management (§6): daily histograms with
//! two-week retention, recency-weighted aggregation, hourly backups, and
//! pre-warm events scheduled 90 seconds early.
//!
//! Run with: `cargo run --release --example production_rollout`

#![forbid(unsafe_code)]

use serverless_in_the_wild::prelude::*;

const DAY: u64 = 24 * 60 * MINUTE_MS;

fn main() {
    let mut manager = ProductionManager::new(ProductionConfig::default());

    // An application whose pattern shifts after ten days: 30-minute idle
    // times become 90-minute idle times. Recency weighting lets the
    // aggregate follow the change faster than a flat histogram would.
    let app = 1u64;
    println!("day | recommended pre-warm / keep-alive (from weighted aggregate)");
    for day in 0..16u64 {
        let idle_min = if day < 10 { 30 } else { 90 };
        for k in 0..20u64 {
            let now = day * DAY + k * 60 * MINUTE_MS;
            manager.record_idle_time(app, now, idle_min * MINUTE_MS);
            manager.tick_backup(now);
        }
        let now = day * DAY + 23 * 60 * MINUTE_MS;
        if let Some(w) = manager.windows(app, now) {
            println!(
                "{day:>3} | pre-warm {:>5.1} min, keep-alive {:>5.1} min (true IT: {idle_min} min)",
                w.pre_warm_ms as f64 / MINUTE_MS as f64,
                w.keep_alive_ms as f64 / MINUTE_MS as f64,
            );
        }
    }

    // Pre-warm scheduling: the event fires 90 s before the window.
    let idle_from = 16 * DAY;
    if let Some(ev) = manager.schedule_prewarm(app, idle_from) {
        let w = manager.windows(app, idle_from).unwrap();
        println!(
            "\nidle at t={idle_from}ms → pre-warm window {:.1} min → event at t={} \
             (90 s early)",
            w.pre_warm_ms as f64 / MINUTE_MS as f64,
            ev.at_ms
        );
    }

    println!(
        "\nbookkeeping: {} hourly backups taken; {} bytes persisted for this app \
         ({} retained daily histograms × 960 B, as in §6)",
        manager.backups_taken(),
        manager.persisted_bytes(app),
        manager.persisted_bytes(app) / 960,
    );
}
