//! The keep-alive policy abstraction.
//!
//! A *policy* governs two per-application parameters (§4):
//!
//! * the **pre-warming window** — how long after an execution the
//!   platform waits before loading the application image in anticipation
//!   of the next invocation (0 ⇒ the app is not unloaded at all);
//! * the **keep-alive window** — how long the image stays loaded after
//!   (a) being pre-warmed, or (b) the execution end when the pre-warming
//!   window is 0.
//!
//! Policies are *per-application* state machines: the platform keeps one
//! instance per app and consults it after every function execution.

/// Milliseconds; matches `sitw_trace::TimeMs` without creating a
/// dependency from policies to the workload substrate.
pub type DurationMs = u64;

/// One minute in milliseconds (the paper's histogram bin width).
pub const MINUTE_MS: DurationMs = 60_000;

/// The two windows a policy emits after each execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Windows {
    /// Time to wait after the execution before re-loading the image;
    /// 0 means the image stays loaded.
    pub pre_warm_ms: DurationMs,
    /// Time the image stays loaded once loaded (from the execution end
    /// when `pre_warm_ms == 0`, from the pre-warm otherwise).
    pub keep_alive_ms: DurationMs,
}

impl Windows {
    /// A policy decision that keeps the image loaded for `keep_alive_ms`
    /// after the execution (no unload/pre-warm cycle).
    pub fn keep_loaded(keep_alive_ms: DurationMs) -> Self {
        Self {
            pre_warm_ms: 0,
            keep_alive_ms,
        }
    }

    /// Unload now, re-load after `pre_warm_ms`, keep for `keep_alive_ms`.
    pub fn pre_warmed(pre_warm_ms: DurationMs, keep_alive_ms: DurationMs) -> Self {
        Self {
            pre_warm_ms,
            keep_alive_ms,
        }
    }

    /// Keep the image loaded forever (the no-unloading upper bound).
    pub const NEVER_UNLOAD: Windows = Windows {
        pre_warm_ms: 0,
        keep_alive_ms: DurationMs::MAX,
    };

    /// End of the loaded interval relative to the execution end,
    /// saturating (handles [`Windows::NEVER_UNLOAD`]).
    pub fn loaded_until(&self, exec_end: DurationMs) -> DurationMs {
        exec_end
            .saturating_add(self.pre_warm_ms)
            .saturating_add(self.keep_alive_ms)
    }

    /// Whether an invocation arriving `idle_ms` after the execution end
    /// hits a loaded image (a warm start).
    pub fn is_warm_at(&self, idle_ms: DurationMs) -> bool {
        if self.pre_warm_ms == 0 {
            idle_ms <= self.keep_alive_ms
        } else {
            idle_ms >= self.pre_warm_ms
                && idle_ms <= self.pre_warm_ms.saturating_add(self.keep_alive_ms)
        }
    }
}

/// Which branch of the hybrid policy produced a decision (Figure 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionKind {
    /// Head/tail of the idle-time histogram.
    Histogram,
    /// Conservative standard keep-alive (histogram unrepresentative or
    /// still learning).
    StandardKeepAlive,
    /// Time-series forecast (too many out-of-bounds idle times).
    Arima,
    /// Policies without internal branching (fixed, no-unloading).
    Static,
}

/// A per-application keep-alive policy.
pub trait AppPolicy {
    /// Observes one invocation and returns the windows governing the gap
    /// until the next one.
    ///
    /// `idle_time_ms` is the idle time (IT) that just *ended*: the gap
    /// between the previous execution's end and this invocation. It is
    /// `None` for the app's first observed invocation.
    fn on_invocation(&mut self, idle_time_ms: Option<DurationMs>) -> Windows;

    /// Which branch produced the most recent decision.
    fn last_decision(&self) -> DecisionKind;

    /// Stable short name for reports.
    fn name(&self) -> String;
}

/// A factory creating one policy instance per application; configs
/// implement this so simulation sweeps can be written generically.
pub trait PolicyFactory: Sync {
    /// The policy type produced.
    type Policy: AppPolicy;

    /// Creates a fresh per-application policy instance.
    fn new_policy(&self) -> Self::Policy;

    /// Label for tables and plots (e.g. `"fixed-10min"`,
    /// `"hybrid-4h[5,99]"`).
    fn label(&self) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keep_loaded_warm_iff_within_keep_alive() {
        let w = Windows::keep_loaded(10 * MINUTE_MS);
        assert!(w.is_warm_at(0));
        assert!(w.is_warm_at(10 * MINUTE_MS));
        assert!(!w.is_warm_at(10 * MINUTE_MS + 1));
    }

    #[test]
    fn pre_warmed_window_cold_before_and_after() {
        let w = Windows::pre_warmed(5 * MINUTE_MS, 2 * MINUTE_MS);
        assert!(!w.is_warm_at(0));
        assert!(!w.is_warm_at(5 * MINUTE_MS - 1));
        assert!(w.is_warm_at(5 * MINUTE_MS));
        assert!(w.is_warm_at(7 * MINUTE_MS));
        assert!(!w.is_warm_at(7 * MINUTE_MS + 1));
    }

    #[test]
    fn never_unload_is_always_warm() {
        let w = Windows::NEVER_UNLOAD;
        assert!(w.is_warm_at(DurationMs::MAX));
        assert_eq!(w.loaded_until(123), DurationMs::MAX);
    }

    #[test]
    fn loaded_until_saturates() {
        let w = Windows::pre_warmed(DurationMs::MAX, 10);
        assert_eq!(w.loaded_until(5), DurationMs::MAX);
    }
}
