//! The tenant registry: per-tenant policies, budgets, and shard routing.
//!
//! Tenants are the fleet's unit of isolation. Each has a stable numeric
//! id (`u16`, carried on the SITW-BIN v2 wire), a name (carried in JSON
//! and metrics labels), its own [`PolicySpec`], and a keep-alive memory
//! budget in MB (0 = unlimited). Tenant 0 is the implicit **default
//! tenant**: requests without a tenant land there, its apps spread over
//! all shards exactly as before the fleet existed, and it is always
//! unbudgeted — a budget needs a single-writer ledger, which is what
//! routing a named tenant whole to one shard provides.

use sitw_core::PolicySpec;

use crate::fnv1a;

/// Tenant identifier; `0` is the default tenant.
pub type TenantId = u16;

/// The implicit default tenant's id.
pub const DEFAULT_TENANT: TenantId = 0;
/// The implicit default tenant's name.
pub const DEFAULT_TENANT_NAME: &str = "default";

/// One tenant's configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Registry-assigned id (position in registration order).
    pub id: TenantId,
    /// Tenant name (validated: `[A-Za-z0-9._-]{1,64}`).
    pub name: String,
    /// The policy every app of this tenant is served under.
    pub policy: PolicySpec,
    /// Keep-alive memory budget in MB; 0 = unlimited.
    pub budget_mb: u64,
}

/// The fleet's tenant table. Ids are assigned in registration order and
/// never reused; the default tenant is always id 0.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantRegistry {
    tenants: Vec<TenantSpec>,
}

/// Validates a tenant name: 1–64 chars of `[A-Za-z0-9._-]`. The
/// restriction keeps names safe in metrics labels, snapshot lines, CLI
/// arguments, and JSON without any escaping.
pub fn validate_tenant_name(name: &str) -> Result<(), String> {
    if name.is_empty() || name.len() > 64 {
        return Err(format!("tenant name must be 1-64 chars: '{name}'"));
    }
    if !name
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
    {
        return Err(format!(
            "tenant name may contain only [A-Za-z0-9._-]: '{name}'"
        ));
    }
    Ok(())
}

impl TenantRegistry {
    /// Creates a registry holding only the default tenant under
    /// `default_policy` (unbudgeted).
    pub fn new(default_policy: PolicySpec) -> Self {
        Self {
            tenants: vec![TenantSpec {
                id: DEFAULT_TENANT,
                name: DEFAULT_TENANT_NAME.to_owned(),
                policy: default_policy,
                budget_mb: 0,
            }],
        }
    }

    /// Registers a tenant; returns its id.
    ///
    /// # Errors
    ///
    /// Fails on an invalid or duplicate name, or when the `u16` id space
    /// is exhausted.
    pub fn register(
        &mut self,
        name: &str,
        policy: PolicySpec,
        budget_mb: u64,
    ) -> Result<TenantId, String> {
        validate_tenant_name(name)?;
        if name == DEFAULT_TENANT_NAME || self.resolve(name).is_some() {
            return Err(format!("tenant '{name}' already exists"));
        }
        if self.tenants.len() > TenantId::MAX as usize {
            return Err("tenant id space exhausted".into());
        }
        let id = self.tenants.len() as TenantId;
        self.tenants.push(TenantSpec {
            id,
            name: name.to_owned(),
            policy,
            budget_mb,
        });
        Ok(id)
    }

    /// Looks a tenant up by id.
    pub fn get(&self, id: TenantId) -> Option<&TenantSpec> {
        self.tenants.get(id as usize)
    }

    /// Replaces a tenant's budget (0 = unlimited); returns whether the
    /// id exists. The registry copy is display/config truth — the live
    /// ledger's budget is updated by its owning shard (see the serving
    /// daemon's `SetBudget` message), keeping one writer per ledger.
    pub fn set_budget(&mut self, id: TenantId, budget_mb: u64) -> bool {
        match self.tenants.get_mut(id as usize) {
            Some(t) => {
                t.budget_mb = budget_mb;
                true
            }
            None => false,
        }
    }

    /// Looks a tenant id up by name.
    pub fn resolve(&self, name: &str) -> Option<TenantId> {
        self.tenants.iter().find(|t| t.name == name).map(|t| t.id)
    }

    /// All tenants, in id order (the default tenant first).
    pub fn tenants(&self) -> &[TenantSpec] {
        &self.tenants
    }

    /// Number of registered tenants, including the default.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Always false (the default tenant exists from construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Maps an invocation to its shard.
    ///
    /// * Default tenant: hash of the app id — exactly the pre-fleet
    ///   routing, so old snapshots and untenanted clients see identical
    ///   placement and per-shard metrics.
    /// * Named tenants: hash of the tenant name — the whole tenant lands
    ///   on one shard, making its budget ledger single-writer (lock-free)
    ///   and its eviction stream independent of the shard count, which is
    ///   what lets a restore change `--shards` without changing a single
    ///   verdict.
    pub fn shard_of(&self, tenant: TenantId, app: &str, shards: usize) -> usize {
        debug_assert!(shards > 0);
        if tenant == DEFAULT_TENANT {
            (fnv1a(app.as_bytes()) % shards as u64) as usize
        } else {
            let name = self
                .get(tenant)
                .map(|t| t.name.as_str())
                .unwrap_or(DEFAULT_TENANT_NAME);
            (fnv1a(name.as_bytes()) % shards as u64) as usize
        }
    }
}

/// Parses one `--tenant` CLI argument: `NAME=POLICY[,budget=MB]`, e.g.
/// `acme=hybrid,budget=4096` or `batch=fixed:10`.
pub fn parse_tenant_arg(arg: &str) -> Result<(String, PolicySpec, u64), String> {
    let (name, rest) = arg
        .split_once('=')
        .ok_or_else(|| format!("expected NAME=POLICY[,budget=MB], got '{arg}'"))?;
    validate_tenant_name(name)?;
    let (policy_str, budget_mb) = match rest.split_once(",budget=") {
        Some((p, b)) => (
            p,
            b.parse::<u64>().map_err(|_| format!("bad budget '{b}'"))?,
        ),
        None => (rest, 0),
    };
    let policy = PolicySpec::parse(policy_str)?;
    Ok((name.to_owned(), policy, budget_mb))
}

/// Parses a tenants config file: one `tenant <name> <policy> [budget
/// <MB>]` per line; blank lines and `#` comments ignored.
pub fn parse_tenants_file(text: &str) -> Result<Vec<(String, PolicySpec, u64)>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tok = line.split_ascii_whitespace();
        let err = |msg: &str| format!("line {}: {msg}: '{line}'", lineno + 1);
        if tok.next() != Some("tenant") {
            return Err(err("expected 'tenant <name> <policy> [budget <MB>]'"));
        }
        let name = tok.next().ok_or_else(|| err("missing tenant name"))?;
        validate_tenant_name(name).map_err(|e| err(&e))?;
        let policy_str = tok.next().ok_or_else(|| err("missing policy"))?;
        let policy = PolicySpec::parse(policy_str).map_err(|e| err(&e))?;
        let budget_mb = match tok.next() {
            None => 0,
            Some("budget") => {
                let mb = tok.next().ok_or_else(|| err("missing budget value"))?;
                mb.parse::<u64>().map_err(|_| err("bad budget"))?
            }
            Some(other) => return Err(err(&format!("unexpected token '{other}'"))),
        };
        if tok.next().is_some() {
            return Err(err("trailing tokens"));
        }
        out.push((name.to_owned(), policy, budget_mb));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> TenantRegistry {
        let mut r = TenantRegistry::new(PolicySpec::fixed_minutes(10));
        r.register("acme", PolicySpec::parse("hybrid").unwrap(), 4096)
            .unwrap();
        r.register("batch", PolicySpec::parse("fixed:20").unwrap(), 0)
            .unwrap();
        r
    }

    #[test]
    fn ids_are_registration_order_and_default_is_zero() {
        let r = registry();
        assert_eq!(r.len(), 3);
        assert_eq!(r.resolve("default"), Some(0));
        assert_eq!(r.resolve("acme"), Some(1));
        assert_eq!(r.resolve("batch"), Some(2));
        assert_eq!(r.get(1).unwrap().budget_mb, 4096);
        assert_eq!(r.resolve("nope"), None);
        assert!(!r.is_empty());
    }

    #[test]
    fn names_validate_and_deduplicate() {
        let mut r = registry();
        assert!(r.register("acme", PolicySpec::NoUnloading, 0).is_err());
        assert!(r.register("default", PolicySpec::NoUnloading, 0).is_err());
        assert!(r.register("", PolicySpec::NoUnloading, 0).is_err());
        assert!(r.register("has space", PolicySpec::NoUnloading, 0).is_err());
        assert!(r.register("a/b", PolicySpec::NoUnloading, 0).is_err());
        assert!(r
            .register("ok-name_2.x", PolicySpec::NoUnloading, 0)
            .is_ok());
    }

    #[test]
    fn default_routes_by_app_tenants_route_whole() {
        let r = registry();
        for shards in [1usize, 2, 5] {
            // Default tenant: identical to the pre-fleet app hash.
            for app in ["app-000001", "x", "café"] {
                let s = r.shard_of(DEFAULT_TENANT, app, shards);
                assert_eq!(s, (fnv1a(app.as_bytes()) % shards as u64) as usize);
            }
            // A named tenant's apps all land on the same shard.
            let home = r.shard_of(1, "a", shards);
            for app in ["b", "c", "zzz"] {
                assert_eq!(r.shard_of(1, app, shards), home);
            }
        }
    }

    #[test]
    fn parse_tenant_arg_forms() {
        let (name, policy, mb) = parse_tenant_arg("acme=hybrid,budget=4096").unwrap();
        assert_eq!(name, "acme");
        assert_eq!(policy, PolicySpec::parse("hybrid").unwrap());
        assert_eq!(mb, 4096);
        let (_, policy, mb) = parse_tenant_arg("b=fixed:10").unwrap();
        assert_eq!(policy, PolicySpec::fixed_minutes(10));
        assert_eq!(mb, 0);
        // `production:0.5` contains no comma, so the split is unambiguous.
        let (_, policy, _) = parse_tenant_arg("p=production:0.5,budget=1").unwrap();
        assert_eq!(policy.label(), "production-240m-14d[5,99]exp0.5");
        assert!(parse_tenant_arg("noequals").is_err());
        assert!(parse_tenant_arg("n=bogus").is_err());
        assert!(parse_tenant_arg("n=hybrid,budget=x").is_err());
    }

    #[test]
    fn parse_tenants_file_lines() {
        let text = "\
# fleet config
tenant acme hybrid budget 4096

tenant batch fixed:10
";
        let parsed = parse_tenants_file(text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "acme");
        assert_eq!(parsed[0].2, 4096);
        assert_eq!(parsed[1].2, 0);
        assert!(parse_tenants_file("tenant x hybrid budget").is_err());
        assert!(parse_tenants_file("nottenant x hybrid").is_err());
        assert!(parse_tenants_file("tenant x hybrid budget 1 extra").is_err());
    }
}
