//! Fleet federation: parsing node debug scrapes and merging them
//! exactly.
//!
//! The router's fleet plane is pull-based: `GET /metrics/fleet` scrapes
//! every live node's `/debug/hist` (raw log2 bucket vectors — the
//! lossless federation wire format) and merges them with
//! [`Log2Histogram::merge`], so every federated bucket count equals the
//! sum of the node counts *exactly* — no estimator drift, no rank
//! error. `GET /debug/trace` on the router likewise pulls each node's
//! `/debug/trace?format=json`, keeps the propagated-trace spans, and
//! rebases them onto the router's clock so one causally ordered
//! timeline spans the whole fleet.
//!
//! Nodes and router are separate processes with separate monotonic
//! epochs, so node span timestamps are *not* comparable to router ones.
//! [`rebase`] anchors each (node, trace) group at the router's
//! forward-completion instant for that trace: the node cannot have
//! started before the router finished writing the request, and its
//! rebased spans land strictly inside the router's `await` window.

use std::collections::BTreeMap;

use sitw_telemetry::{Log2Histogram, BUCKETS};

/// One node's `/debug/hist` scrape, reconstructed losslessly.
#[derive(Debug)]
pub struct NodeHists {
    /// `(stage, proto)` → histogram, in scrape order.
    pub stages: Vec<(String, String, Log2Histogram)>,
    /// Tenant name → decision-latency histogram.
    pub tenants: Vec<(String, Log2Histogram)>,
}

/// Parses one `/debug/hist` body: lines of
/// `stage <name> <proto> <sum_ns> <b0>..<b63>` and
/// `tenant <name> <sum_ns> <b0>..<b63>`. Returns `None` on any
/// malformed line (a partial merge would silently undercount).
pub fn parse_hist_body(body: &str) -> Option<NodeHists> {
    let mut stages = Vec::new();
    let mut tenants = Vec::new();
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut toks = line.split_ascii_whitespace();
        match toks.next()? {
            "stage" => {
                let stage = toks.next()?.to_owned();
                let proto = toks.next()?.to_owned();
                stages.push((stage, proto, parse_hist_tokens(&mut toks)?));
            }
            "tenant" => {
                let name = toks.next()?.to_owned();
                tenants.push((name, parse_hist_tokens(&mut toks)?));
            }
            _ => return None,
        }
    }
    Some(NodeHists { stages, tenants })
}

/// Parses `<sum_ns> <b0>..<b63>` — exactly [`BUCKETS`] + 1 tokens.
fn parse_hist_tokens<'a>(toks: &mut impl Iterator<Item = &'a str>) -> Option<Log2Histogram> {
    let sum: u64 = toks.next()?.parse().ok()?;
    let mut buckets = [0u64; BUCKETS];
    for b in buckets.iter_mut() {
        *b = toks.next()?.parse().ok()?;
    }
    if toks.next().is_some() {
        return None;
    }
    Some(Log2Histogram::from_raw(buckets, sum))
}

/// The fleet-wide merge of every live node's histograms.
#[derive(Debug, Default)]
pub struct FleetHists {
    /// `(stage, proto)` → merged histogram (BTreeMap for stable render
    /// order).
    pub stages: BTreeMap<(String, String), Log2Histogram>,
    /// Tenant name → merged decision-latency histogram.
    pub tenants: BTreeMap<String, Log2Histogram>,
    /// Nodes merged in.
    pub nodes: usize,
}

impl FleetHists {
    /// Folds one node's scrape into the fleet totals. Bucket-exact:
    /// every merged count is the sum of the node counts.
    pub fn absorb(&mut self, node: NodeHists) {
        for (stage, proto, h) in node.stages {
            self.stages.entry((stage, proto)).or_default().merge(&h);
        }
        for (name, h) in node.tenants {
            self.tenants.entry(name).or_default().merge(&h);
        }
        self.nodes += 1;
    }
}

/// One span parsed from a node's `/debug/trace?format=json` (or built
/// from the router's own recorder for the merged timeline).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSpan {
    /// Span id (a propagated trace id carries the top bit).
    pub span: u64,
    /// Stage name (`read` ... `write`, or a router hop stage).
    pub stage: String,
    /// Stage start, ns — node-local until [`rebase`]d.
    pub start_ns: u64,
    /// Stage end, ns — node-local until [`rebase`]d.
    pub end_ns: u64,
    /// Recording thread (`reactor-0`, `shard-1`, `router`, ...).
    pub source: String,
}

/// Parses a node's `/debug/trace?format=json` body. Tolerant of
/// unknown fields; entries missing a required field are skipped.
pub fn parse_trace_spans(body: &str) -> Vec<NodeSpan> {
    let mut out = Vec::new();
    let mut rest = body;
    while let Some(pos) = rest.find("{\"span\":") {
        rest = &rest[pos..];
        let Some(end) = rest.find('}') else { break };
        if let Some(span) = parse_span_obj(&rest[..end]) {
            out.push(span);
        }
        rest = &rest[end + 1..];
    }
    out
}

fn parse_span_obj(obj: &str) -> Option<NodeSpan> {
    let num = |key: &str| -> Option<u64> {
        let pos = obj.find(key)? + key.len();
        let digits: String = obj[pos..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect();
        digits.parse().ok()
    };
    let text = |key: &str| -> Option<String> {
        let pos = obj.find(key)? + key.len();
        let end = obj[pos..].find('"')?;
        Some(obj[pos..pos + end].to_owned())
    };
    Some(NodeSpan {
        span: num("\"span\":")?,
        stage: text("\"stage\":\"")?,
        start_ns: num("\"start_ns\":")?,
        end_ns: num("\"end_ns\":")?,
        source: text("\"source\":\"")?,
    })
}

/// Rebases one (node, trace) span group onto the router's clock: the
/// group's earliest stage start is anchored at `anchor_ns` (the
/// router's forward-completion instant for that trace), preserving all
/// intra-node stage offsets.
pub fn rebase(spans: &mut [NodeSpan], anchor_ns: u64) {
    let Some(min) = spans.iter().map(|s| s.start_ns).min() else {
        return;
    };
    for s in spans {
        s.start_ns = anchor_ns + (s.start_ns - min);
        s.end_ns = anchor_ns + (s.end_ns - min);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist_line(prefix: &str, sum: u64, spikes: &[(usize, u64)]) -> String {
        let mut buckets = [0u64; BUCKETS];
        for &(i, c) in spikes {
            buckets[i] = c;
        }
        let mut line = format!("{prefix} {sum}");
        for b in buckets {
            line.push_str(&format!(" {b}"));
        }
        line
    }

    #[test]
    fn hist_body_roundtrips_and_merges_exactly() {
        let a = format!(
            "{}\n{}\n",
            hist_line("stage decide json", 1000, &[(10, 3), (12, 1)]),
            hist_line("tenant t0", 500, &[(9, 2)]),
        );
        let b = format!(
            "{}\n{}\n",
            hist_line("stage decide json", 2000, &[(10, 5)]),
            hist_line("tenant t0", 700, &[(9, 4), (11, 1)]),
        );
        let mut fleet = FleetHists::default();
        fleet.absorb(parse_hist_body(&a).unwrap());
        fleet.absorb(parse_hist_body(&b).unwrap());
        assert_eq!(fleet.nodes, 2);
        let decide = &fleet.stages[&("decide".to_owned(), "json".to_owned())];
        // Bucket-exact: counts are the sums of the node counts.
        assert_eq!(decide.count(), 9);
        assert_eq!(decide.sum(), 3000);
        assert_eq!(decide.buckets()[10], 8);
        assert_eq!(decide.buckets()[12], 1);
        let t0 = &fleet.tenants["t0"];
        assert_eq!(t0.count(), 7);
        assert_eq!(t0.buckets()[9], 6);
    }

    #[test]
    fn malformed_hist_lines_reject_the_whole_body() {
        assert!(parse_hist_body("bogus 1 2 3\n").is_none());
        // Too few bucket tokens.
        assert!(parse_hist_body("stage decide json 100 1 2 3\n").is_none());
        // Trailing junk after the last bucket.
        let long = hist_line("stage decide json", 1, &[]) + " 99";
        assert!(parse_hist_body(&long).is_none());
        // Empty body parses to an empty (but valid) scrape.
        let empty = parse_hist_body("").unwrap();
        assert!(empty.stages.is_empty() && empty.tenants.is_empty());
    }

    #[test]
    fn trace_span_parser_reads_node_json() {
        let body = r#"[{"span":9223372036854775809,"stage":"decide","start_ns":100,"end_ns":150,"source":"shard-0"},{"span":12,"stage":"read","start_ns":1,"end_ns":2,"source":"reactor-1"},{"bogus":true}]"#;
        let spans = parse_trace_spans(body);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].span, (1u64 << 63) | 1);
        assert_eq!(spans[0].stage, "decide");
        assert_eq!(spans[0].start_ns, 100);
        assert_eq!(spans[0].end_ns, 150);
        assert_eq!(spans[0].source, "shard-0");
        assert_eq!(spans[1].source, "reactor-1");
    }

    #[test]
    fn rebase_anchors_group_min_and_preserves_offsets() {
        let mut spans = vec![
            NodeSpan {
                span: 1,
                stage: "read".into(),
                start_ns: 5_000,
                end_ns: 5_100,
                source: "reactor-0".into(),
            },
            NodeSpan {
                span: 1,
                stage: "decide".into(),
                start_ns: 5_200,
                end_ns: 5_400,
                source: "shard-0".into(),
            },
        ];
        rebase(&mut spans, 90_000);
        assert_eq!(spans[0].start_ns, 90_000);
        assert_eq!(spans[0].end_ns, 90_100);
        assert_eq!(spans[1].start_ns, 90_200);
        assert_eq!(spans[1].end_ns, 90_400);
    }
}
