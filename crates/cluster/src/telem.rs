//! Router-side telemetry: the hop flight recorder, the lifecycle event
//! ring, and fleet trace sampling.
//!
//! The router records the six hop stages (`ingress` → `route` →
//! `forward` → `await` → `reassemble` → `egress`) for *traced* requests
//! only: either the client propagated an `X-Sitw-Trace` id (or the
//! SITW-BIN v2 trace field), or `--trace-sample N` tagged every Nth
//! arriving request with a router-originated id. The id is stamped onto
//! the forwarded work, the node adopts it as the span id for its own
//! six pipeline stages, and `GET /debug/trace` on the router merges
//! both sides into one end-to-end timeline.
//!
//! Recording follows the node's hot-path discipline: `try_lock` only
//! (a contended scrape drops the sample, never blocks the data path),
//! and with sampling off (`trace_sample == 0`) span recording is a
//! constant branch. Lifecycle events are control-plane (migrations,
//! ring epochs, throttles) and always recorded — they are rare by
//! construction.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use sitw_telemetry::{
    Clock, EventKind, EventRing, FlightRecorder, LifecycleEvent, SpanEvent, Stage, WallClock,
    TRACE_MARK,
};

/// Bit 62 distinguishes router-originated trace ids from client
/// (loadgen) ones; both carry [`TRACE_MARK`] in bit 63.
pub const ROUTER_TRACE_ORIGIN: u64 = 1 << 62;

/// Hop span ring capacity: 6 stages × ~680 traced requests.
pub(crate) const ROUTER_RECORDER_CAP: usize = 4096;

/// Lifecycle event ring capacity (mirrors the node's).
pub(crate) const ROUTER_EVENT_RING: usize = 256;

/// Telemetry context of one router process.
#[derive(Debug)]
pub struct RouterTelem {
    /// Hop span recording on (`--trace-sample` was given).
    pub enabled: bool,
    /// Tag every Nth request with a router-originated id.
    sample: u64,
    /// Requests seen by the sampler (also the id counter).
    seq: AtomicU64,
    /// Wall nanoseconds since router start — the hop span timebase.
    clock: WallClock,
    /// The hop span ring; recording sites only ever `try_lock`.
    pub recorder: Mutex<FlightRecorder>,
    /// Lifecycle events: migrations, ring epochs, throttles.
    pub events: Mutex<EventRing>,
}

impl RouterTelem {
    /// Creates the context; `trace_sample == 0` disables hop recording
    /// and self-sampling (lifecycle events stay on).
    pub fn new(trace_sample: usize) -> Self {
        Self {
            enabled: trace_sample > 0,
            sample: trace_sample as u64,
            seq: AtomicU64::new(0),
            clock: WallClock::default(),
            recorder: Mutex::new(FlightRecorder::new(ROUTER_RECORDER_CAP)),
            events: Mutex::new(EventRing::new(ROUTER_EVENT_RING)),
        }
    }

    /// Wall nanoseconds since router start; 0 when recording is off, so
    /// disabled hot paths never pay the clock read.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        if self.enabled {
            self.clock.now_ns()
        } else {
            0
        }
    }

    /// The trace id of one arriving request: a client-propagated id is
    /// always adopted (and forwarded); otherwise, when sampling is on,
    /// every Nth request gets a fresh router-originated id.
    #[inline]
    pub fn sample(&self, client: Option<u64>) -> Option<u64> {
        if client.is_some() {
            return client;
        }
        if !self.enabled {
            return None;
        }
        let n = self.seq.fetch_add(1, Ordering::Relaxed);
        n.is_multiple_of(self.sample)
            .then_some(TRACE_MARK | ROUTER_TRACE_ORIGIN | (n & (ROUTER_TRACE_ORIGIN - 1)))
    }

    /// Records one hop span. `try_lock`: a concurrent scrape drops the
    /// sample rather than stalling the connection thread.
    #[inline]
    pub fn record(&self, span: u64, stage: Stage, start_ns: u64, end_ns: u64) {
        if !self.enabled {
            return;
        }
        if let Ok(mut rec) = self.recorder.try_lock() {
            rec.push(SpanEvent {
                span,
                stage,
                start_ns,
                end_ns,
            });
        }
    }

    /// Pushes one lifecycle event stamped with wall milliseconds since
    /// router start (router events are control-plane, not
    /// workload-driven, so there is no domain timestamp to reuse).
    pub fn event(&self, kind: EventKind, tenant: &str, app: &str, detail: String) {
        if let Ok(mut ring) = self.events.try_lock() {
            ring.push(LifecycleEvent {
                ts_ms: self.clock.now_ns() / 1_000_000,
                kind,
                tenant: tenant.to_owned(),
                app: app.to_owned(),
                detail,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitw_telemetry::is_trace_span;

    #[test]
    fn sampling_tags_every_nth_and_adopts_client_ids() {
        let t = RouterTelem::new(3);
        assert!(t.enabled);
        // Client ids pass through untouched and don't consume the
        // sampling sequence.
        assert_eq!(t.sample(Some(0xAB)), Some(0xAB));
        // Requests 0, 3, 6, ... get router-originated ids.
        let ids: Vec<Option<u64>> = (0..6).map(|_| t.sample(None)).collect();
        assert!(ids[0].is_some() && ids[3].is_some());
        assert!(ids[1].is_none() && ids[2].is_none() && ids[4].is_none() && ids[5].is_none());
        let id = ids[0].unwrap();
        assert!(is_trace_span(id));
        assert_ne!(id & ROUTER_TRACE_ORIGIN, 0);
        assert_ne!(ids[0], ids[3], "sampled ids must be distinct");
    }

    #[test]
    fn disabled_sampler_still_propagates_but_never_originates() {
        let t = RouterTelem::new(0);
        assert!(!t.enabled);
        assert_eq!(t.sample(Some(7)), Some(7));
        for _ in 0..10 {
            assert_eq!(t.sample(None), None);
        }
        assert_eq!(t.now_ns(), 0);
        // record() is a no-op when disabled.
        t.record(TRACE_MARK, Stage::Ingress, 1, 2);
        assert!(t.recorder.lock().unwrap().is_empty());
    }

    #[test]
    fn events_record_regardless_of_sampling() {
        let t = RouterTelem::new(0);
        t.event(EventKind::Migration, "t0", "", "from=0 to=1".into());
        let ring = t.events.lock().unwrap();
        let evs: Vec<_> = ring.events().collect();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, EventKind::Migration);
        assert_eq!(evs[0].tenant, "t0");
    }

    #[test]
    fn record_captures_hop_spans_when_enabled() {
        let t = RouterTelem::new(1);
        let id = t.sample(None).unwrap();
        t.record(id, Stage::Ingress, 10, 20);
        t.record(id, Stage::Forward, 20, 30);
        let rec = t.recorder.lock().unwrap();
        let spans: Vec<_> = rec.events().collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].stage, Stage::Ingress);
        assert_eq!(spans[1].stage, Stage::Forward);
        assert!(spans.iter().all(|s| s.span == id));
    }
}
