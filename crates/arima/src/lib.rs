//! From-scratch ARIMA time-series modelling.
//!
//! The hybrid histogram policy of *Serverless in the Wild* (§4.2) falls
//! back to time-series forecasting for applications whose idle times are
//! mostly out of the histogram's bounds. The paper used pmdarima's
//! `auto_arima`; this crate provides the equivalent pipeline natively:
//!
//! * [`matrix`] — small dense linear algebra (Gaussian elimination,
//!   normal-equation least squares);
//! * [`diff`] — differencing and integration;
//! * [`acf`] — ACF/PACF and Yule–Walker estimation (Durbin–Levinson);
//! * [`model`] — ARIMA(p,d,q) fitting via Hannan–Rissanen and iterative
//!   forecasting with ψ-weight standard errors;
//! * [`auto`] — AIC-driven automatic order selection ([`auto_arima`]);
//! * [`diagnostics`] — Ljung–Box / Box–Pierce portmanteau tests on
//!   residuals (the paper's reference \[11\]).
//!
//! # Examples
//!
//! ```
//! use sitw_arima::{auto_arima, AutoArimaConfig};
//!
//! // Idle times (minutes) of an app invoked roughly every 5 hours.
//! let idle_times = vec![300.0, 295.0, 310.0, 305.0, 298.0, 303.0, 299.0];
//! let fit = auto_arima(&idle_times, AutoArimaConfig::default()).unwrap();
//! let next = fit.forecast_one();
//! assert!((next - 300.0).abs() < 30.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acf;
pub mod auto;
pub mod diagnostics;
pub mod diff;
pub mod matrix;
pub mod model;

pub use acf::{pacf, yule_walker};
pub use auto::{auto_arima, select_d, AutoArimaConfig};
pub use diagnostics::{box_pierce, ljung_box, PortmanteauTest};
pub use model::{fit, ArimaError, ArimaFit, ArimaSpec};
