//! Residual diagnostics for fitted models.
//!
//! The paper's reference \[11\] is Box & Pierce, *Distribution of Residual
//! Autocorrelations in Autoregressive-Integrated Moving Average Time
//! Series Models* — the portmanteau test (and its small-sample Ljung–Box
//! refinement) that checks whether a fitted ARIMA left structure in its
//! residuals. The automatic order search can use it as a sanity check:
//! a model whose residuals still autocorrelate underfits.

use sitw_stats::fit::acf;

/// A portmanteau test result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PortmanteauTest {
    /// The Q statistic.
    pub statistic: f64,
    /// Degrees of freedom (lags − fitted parameters).
    pub df: usize,
    /// Approximate p-value from the χ² distribution.
    pub p_value: f64,
}

impl PortmanteauTest {
    /// True when the null hypothesis "residuals are white noise" is NOT
    /// rejected at the given significance level.
    pub fn residuals_look_white(&self, alpha: f64) -> bool {
        self.p_value > alpha
    }
}

/// Ljung–Box Q statistic over `residuals` using autocorrelations at lags
/// `1..=lags`, with `fitted_params` subtracted from the degrees of
/// freedom.
///
/// Returns `None` when the series is too short (`n ≤ lags`) or the
/// degrees of freedom would be zero.
pub fn ljung_box(residuals: &[f64], lags: usize, fitted_params: usize) -> Option<PortmanteauTest> {
    let n = residuals.len();
    if n <= lags + 1 || lags == 0 || lags <= fitted_params {
        return None;
    }
    let rho = acf(residuals, lags);
    let nf = n as f64;
    let q = nf
        * (nf + 2.0)
        * rho
            .iter()
            .enumerate()
            .skip(1)
            .map(|(k, &r)| r * r / (nf - k as f64))
            .sum::<f64>();
    let df = lags - fitted_params;
    Some(PortmanteauTest {
        statistic: q,
        df,
        p_value: chi_square_sf(q, df as f64),
    })
}

/// Box–Pierce Q statistic (the original \[11\] form, without the
/// small-sample correction).
pub fn box_pierce(residuals: &[f64], lags: usize, fitted_params: usize) -> Option<PortmanteauTest> {
    let n = residuals.len();
    if n <= lags + 1 || lags == 0 || lags <= fitted_params {
        return None;
    }
    let rho = acf(residuals, lags);
    let q = n as f64 * rho.iter().skip(1).map(|&r| r * r).sum::<f64>();
    let df = lags - fitted_params;
    Some(PortmanteauTest {
        statistic: q,
        df,
        p_value: chi_square_sf(q, df as f64),
    })
}

/// Survival function of the χ² distribution with `k` degrees of freedom:
/// `P(X > x)` via the regularized upper incomplete gamma function.
pub fn chi_square_sf(x: f64, k: f64) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    1.0 - lower_regularized_gamma(k / 2.0, x / 2.0)
}

/// Regularized lower incomplete gamma `P(a, x)`, by series expansion for
/// `x < a + 1` and continued fraction otherwise (Numerical Recipes
/// `gammp`).
fn lower_regularized_gamma(a: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut term = 1.0 / a;
        let mut sum = term;
        let mut ap = a;
        for _ in 0..500 {
            ap += 1.0;
            term *= x / ap;
            sum += term;
            if term.abs() < sum.abs() * 1e-14 {
                break;
            }
        }
        (sum * (-x + a * x.ln() - ln_gamma(a)).exp()).clamp(0.0, 1.0)
    } else {
        // Continued fraction for the upper tail.
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / 1e-300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let delta = d * c;
            h *= delta;
            if (delta - 1.0).abs() < 1e-14 {
                break;
            }
        }
        let upper = (-x + a * x.ln() - ln_gamma(a)).exp() * h;
        (1.0 - upper).clamp(0.0, 1.0)
    }
}

/// Lanczos approximation of `ln Γ(x)` (g = 7, n = 9 coefficients).
fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn white_noise(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
                let u2: f64 = rng.random();
                (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
            })
            .collect()
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = sqrt(pi).
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn chi_square_sf_known_values() {
        // χ²(k=1): P(X > 3.841) ≈ 0.05; χ²(k=10): P(X > 18.307) ≈ 0.05.
        assert!((chi_square_sf(3.841, 1.0) - 0.05).abs() < 2e-3);
        assert!((chi_square_sf(18.307, 10.0) - 0.05).abs() < 2e-3);
        assert_eq!(chi_square_sf(0.0, 4.0), 1.0);
        assert!(chi_square_sf(1000.0, 4.0) < 1e-12);
    }

    #[test]
    fn white_noise_passes_ljung_box() {
        let xs = white_noise(500, 3);
        let t = ljung_box(&xs, 10, 0).unwrap();
        assert!(
            t.residuals_look_white(0.01),
            "white noise rejected: Q={} p={}",
            t.statistic,
            t.p_value
        );
    }

    #[test]
    fn autocorrelated_series_fails_ljung_box() {
        // AR(1) with phi=0.8 — strong residual structure.
        let noise = white_noise(500, 4);
        let mut xs = vec![0.0f64];
        for &e in &noise {
            let prev = *xs.last().unwrap();
            xs.push(0.8 * prev + e);
        }
        let t = ljung_box(&xs, 10, 0).unwrap();
        assert!(
            !t.residuals_look_white(0.05),
            "AR(1) passed: p={}",
            t.p_value
        );
        assert!(t.statistic > 100.0);
    }

    #[test]
    fn box_pierce_close_to_ljung_box_for_large_n() {
        let xs = white_noise(2_000, 5);
        let lb = ljung_box(&xs, 8, 0).unwrap();
        let bp = box_pierce(&xs, 8, 0).unwrap();
        assert!((lb.statistic - bp.statistic).abs() / lb.statistic.max(1e-9) < 0.05);
        assert_eq!(lb.df, bp.df);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(ljung_box(&[1.0, 2.0], 10, 0).is_none());
        assert!(ljung_box(&white_noise(100, 6), 0, 0).is_none());
        assert!(ljung_box(&white_noise(100, 7), 3, 3).is_none());
    }

    #[test]
    fn fitted_model_residuals_whiten() {
        // Residuals of a correctly specified AR(1) fit are white; the
        // raw series is not.
        let noise = white_noise(800, 8);
        let mut series = vec![0.0f64];
        for &e in &noise {
            let prev = *series.last().unwrap();
            series.push(0.7 * prev + 1.0 + e);
        }
        let fit = crate::fit(&series, crate::ArimaSpec::new(1, 0, 0)).unwrap();
        // Recompute residuals: e_t = y_t − c − φ y_{t−1}.
        let resid: Vec<f64> = series
            .windows(2)
            .map(|w| w[1] - fit.intercept() - fit.phi()[0] * w[0])
            .collect();
        let t = ljung_box(&resid, 10, 1).unwrap();
        assert!(
            t.residuals_look_white(0.01),
            "fitted residuals rejected: p={}",
            t.p_value
        );
        let raw = ljung_box(&series, 10, 0).unwrap();
        assert!(!raw.residuals_look_white(0.05));
    }
}
