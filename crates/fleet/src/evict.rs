//! The budgeted-eviction engine.
//!
//! Extracted from `sitw_platform`'s `Invoker::make_room` so the invoker
//! pool (LRU-idle order) and the tenant memory ledger (earliest
//! keep-alive expiry order) share one loop — and one set of semantics:
//! evict victims in the caller's order until the budget fits, and report
//! honestly when it cannot.

/// Evicts victims from `state` until `fits(state)` holds.
///
/// * `fits` — whether the budget is currently satisfied;
/// * `next_victim` — the next victim in the caller's eviction order
///   (`None` when nothing evictable remains);
/// * `evict` — performs the eviction (releases the victim's charge).
///
/// All three see the same `state`, which is what lets the ledger pass
/// its warm set/heap and the invoker its container pool without any
/// shared-borrow gymnastics.
///
/// Returns `true` when the budget fits (possibly without evicting
/// anything), `false` when victims ran out first. Victims produced by
/// `next_victim` are always passed to `evict` — the engine never drops
/// one on the floor, so `next_victim` may mutate state (e.g. pop from a
/// heap).
pub fn evict_until<S, V>(
    state: &mut S,
    fits: impl Fn(&S) -> bool,
    mut next_victim: impl FnMut(&mut S) -> Option<V>,
    mut evict: impl FnMut(&mut S, V),
) -> bool {
    while !fits(state) {
        match next_victim(state) {
            Some(victim) => evict(state, victim),
            None => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Pool {
        victims: Vec<u64>,
        used: u64,
        evicted: Vec<u64>,
    }

    #[test]
    fn evicts_in_order_until_budget_fits() {
        let mut pool = Pool {
            victims: vec![3, 5, 7],
            used: 15,
            evicted: Vec::new(),
        };
        let ok = evict_until(
            &mut pool,
            |p| p.used <= 8,
            |p| (!p.victims.is_empty()).then(|| p.victims.remove(0)),
            |p, v| {
                p.used -= v;
                p.evicted.push(v);
            },
        );
        assert!(ok);
        assert_eq!(pool.evicted, vec![3, 5]);
        assert_eq!(pool.used, 7);
        assert_eq!(pool.victims, vec![7], "stops as soon as it fits");
    }

    #[test]
    fn reports_failure_when_victims_run_out() {
        let mut pool = Pool {
            victims: vec![1],
            used: 10,
            evicted: Vec::new(),
        };
        let ok = evict_until(
            &mut pool,
            |p| p.used <= 2,
            |p| (!p.victims.is_empty()).then(|| p.victims.remove(0)),
            |p, v| p.used -= v,
        );
        assert!(!ok);
        assert_eq!(pool.used, 9, "the popped victim was still evicted");
    }

    #[test]
    fn already_fitting_budget_evicts_nothing() {
        let mut calls = 0u32;
        assert!(evict_until(
            &mut calls,
            |_| true,
            |_| -> Option<()> { None },
            |c, _| *c += 1
        ));
        assert_eq!(calls, 0);
    }
}
