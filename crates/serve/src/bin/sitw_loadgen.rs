//! The `sitw-loadgen` trace replayer.
//!
//! ```text
//! sitw-loadgen --addr 127.0.0.1:7071 [--apps 500] [--seed 42]
//!              [--horizon-hours 24] [--cap-per-day 2000]
//!              [--speedup N | --max-speed] [--connections 2]
//!              [--window 64] [--max-events 0]
//!              [--proto json|bin|bin:batch=N]
//! ```
//!
//! Generates the synthetic Azure-Functions-like workload of
//! `sitw_trace` and replays it open-loop against a running daemon,
//! then prints sustained throughput and exact latency percentiles.
//! `--proto bin` speaks SITW-BIN v1 frames (default batch 16) instead
//! of JSON-over-HTTP.

use std::net::ToSocketAddrs;
use std::process::exit;

use sitw_serve::{run_loadgen, LoadGenConfig, Proto};
use sitw_trace::HOUR_MS;

fn usage() -> ! {
    eprintln!(
        "usage: sitw-loadgen --addr HOST:PORT [--apps N] [--seed N] \
         [--horizon-hours H] [--cap-per-day N] [--speedup N | --max-speed] \
         [--connections N] [--window N] [--max-events N] \
         [--proto json|bin|bin:batch=N]"
    );
    exit(2)
}

fn main() {
    let mut cfg = LoadGenConfig::default();
    let mut addr_arg: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => addr_arg = Some(value("--addr")),
            "--apps" => cfg.apps = value("--apps").parse().unwrap_or_else(|_| usage()),
            "--seed" => cfg.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--horizon-hours" => {
                let hours: u64 = value("--horizon-hours").parse().unwrap_or_else(|_| usage());
                cfg.horizon_ms = hours * HOUR_MS;
            }
            "--cap-per-day" => {
                cfg.cap_per_day = value("--cap-per-day").parse().unwrap_or_else(|_| usage());
            }
            "--speedup" => cfg.speedup = value("--speedup").parse().unwrap_or_else(|_| usage()),
            "--max-speed" => cfg.speedup = f64::INFINITY,
            "--connections" => {
                cfg.connections = value("--connections").parse().unwrap_or_else(|_| usage());
            }
            "--window" => cfg.window = value("--window").parse().unwrap_or_else(|_| usage()),
            "--max-events" => {
                cfg.max_events = value("--max-events").parse().unwrap_or_else(|_| usage());
            }
            "--proto" => match Proto::parse(&value("--proto")) {
                Ok(p) => cfg.proto = p,
                Err(e) => {
                    eprintln!("{e}");
                    usage();
                }
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument '{other}'");
                usage();
            }
        }
    }
    let Some(addr_str) = addr_arg else { usage() };
    let addr = match addr_str.to_socket_addrs().map(|mut a| a.next()) {
        Ok(Some(addr)) => addr,
        _ => {
            eprintln!("cannot resolve '{addr_str}'");
            exit(1);
        }
    };

    println!(
        "replaying {} apps over {}h (cap {}/day) at {} via {} connection(s), window {}, proto {}",
        cfg.apps,
        cfg.horizon_ms / HOUR_MS,
        cfg.cap_per_day,
        if cfg.speedup.is_finite() {
            format!("{}x", cfg.speedup)
        } else {
            "max speed".into()
        },
        cfg.connections,
        cfg.window,
        cfg.proto.label()
    );
    match run_loadgen(addr, &cfg) {
        Ok(report) => println!("{}", report.summary()),
        Err(e) => {
            eprintln!("loadgen failed: {e}");
            exit(1);
        }
    }
}
