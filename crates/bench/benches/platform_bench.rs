//! Platform-model throughput: events per second through the OpenWhisk-
//! style discrete-event loop, fixed versus hybrid policy management.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sitw_core::{AppPolicy, FixedKeepAlive, HybridConfig, PolicyFactory};
use sitw_platform::{run_platform, PlatformConfig};
use sitw_trace::subset::mid_popularity_subset;
use sitw_trace::{build_population, generate_trace, Trace, TraceConfig, HOUR_MS};

fn replay_trace() -> Trace {
    let population = build_population(&sitw_trace::PopulationConfig {
        num_apps: 600,
        seed: 3,
    });
    let subset = mid_popularity_subset(&population, 30, 24.0, 1440.0, 1);
    generate_trace(
        &subset,
        &TraceConfig {
            horizon_ms: 2 * HOUR_MS,
            cap_per_day: 2_000.0,
            seed: 2,
        },
    )
}

fn bench_platform(c: &mut Criterion) {
    let trace = replay_trace();
    let cfg = PlatformConfig::default();
    let mut group = c.benchmark_group("platform_replay_2h_30apps");
    group.sample_size(10);
    group.bench_function("fixed_10min", |b| {
        b.iter(|| {
            black_box(run_platform(&trace, &cfg, || {
                Box::new(FixedKeepAlive::minutes(10).new_policy()) as Box<dyn AppPolicy>
            }))
        })
    });
    group.bench_function("hybrid_4h", |b| {
        b.iter(|| {
            black_box(run_platform(&trace, &cfg, || {
                Box::new(HybridConfig::default().new_policy()) as Box<dyn AppPolicy>
            }))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_platform);
criterion_main!(benches);
