//! AzurePublicDataset CSV schema I/O.
//!
//! The paper releases sanitized traces at
//! <https://github.com/Azure/AzurePublicDataset> in three per-day CSV
//! layouts; this module reads and writes the same column layouts so the
//! real trace can replace the synthetic generator end to end:
//!
//! * **Invocations**: `HashOwner,HashApp,HashFunction,Trigger,1,...,1440`
//!   — per-function invocation counts in 1-minute bins;
//! * **Durations**: `HashOwner,HashApp,HashFunction,Average,Count,
//!   Minimum,Maximum,percentile_Average_{0,1,25,50,75,99,100}`;
//! * **Memory**: `HashOwner,HashApp,SampleCount,AverageAllocatedMb,
//!   AverageAllocatedMb_pct{1,5,25,50,75,95,99,100}`.
//!
//! Reading reconstructs minute-binned invocation streams (events placed
//! evenly inside their minute, matching the paper's observation that
//! 1-minute resolution is sufficient for keep-alive policies).

use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, Read, Write};

use crate::generator::{AppTrace, Trace};
use crate::model::{AppId, AppProfile, FunctionProfile, Population, TriggerType};
use crate::time::{TimeMs, DAY_MS, MINUTE_MS};

/// Minutes per day — the number of count columns in the invocations CSV.
pub const MINUTES_PER_DAY: usize = 1440;

/// Errors arising while parsing dataset CSVs.
#[derive(Debug)]
pub enum SchemaError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed row (wrong column count, bad number, unknown trigger).
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemaError::Io(e) => write!(f, "I/O error: {e}"),
            SchemaError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for SchemaError {}

impl From<io::Error> for SchemaError {
    fn from(e: io::Error) -> Self {
        SchemaError::Io(e)
    }
}

/// Dataset trigger labels (lowercase in the released trace).
pub fn trigger_label(t: TriggerType) -> &'static str {
    match t {
        TriggerType::Http => "http",
        TriggerType::Event => "event",
        TriggerType::Queue => "queue",
        TriggerType::Timer => "timer",
        TriggerType::Orchestration => "orchestration",
        TriggerType::Storage => "storage",
        TriggerType::Others => "others",
    }
}

/// Parses a dataset trigger label.
pub fn parse_trigger(s: &str) -> Option<TriggerType> {
    Some(match s {
        "http" => TriggerType::Http,
        "event" => TriggerType::Event,
        "queue" => TriggerType::Queue,
        "timer" => TriggerType::Timer,
        "orchestration" => TriggerType::Orchestration,
        "storage" => TriggerType::Storage,
        "others" => TriggerType::Others,
        _ => return None,
    })
}

/// Deterministic 64-hex-character pseudo-hash for ids, mimicking the
/// dataset's SHA-256 strings without a crypto dependency.
pub fn pseudo_hash(kind: &str, id: u64) -> String {
    let mut out = String::with_capacity(64);
    let mut x = id
        ^ kind.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
        });
    for _ in 0..4 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let _ = write!(out, "{z:016x}");
    }
    out
}

/// One row of the invocations-per-function CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvocationRow {
    /// Owner hash.
    pub owner: String,
    /// Application hash.
    pub app: String,
    /// Function hash.
    pub func: String,
    /// Trigger class.
    pub trigger: TriggerType,
    /// Invocation count per minute of the day (1440 entries).
    pub counts: Vec<u32>,
}

/// Writes one day of a trace in the invocations CSV layout.
///
/// App-level events are attributed to functions by deterministic
/// round-robin over cumulative invocation shares, which preserves both
/// per-minute totals and long-run per-function shares.
pub fn write_invocations_csv<W: Write>(trace: &Trace, day: usize, mut w: W) -> io::Result<()> {
    write!(w, "HashOwner,HashApp,HashFunction,Trigger")?;
    for m in 1..=MINUTES_PER_DAY {
        write!(w, ",{m}")?;
    }
    writeln!(w)?;

    let day_start = day as TimeMs * DAY_MS;
    let day_end = day_start + DAY_MS;
    for app in &trace.apps {
        let rows = bin_app_day(app, day_start, day_end);
        let owner = pseudo_hash("owner", app.profile.id.0 as u64 / 16);
        let app_hash = pseudo_hash("app", app.profile.id.0 as u64);
        for (fi, counts) in rows.iter().enumerate() {
            if counts.iter().all(|&c| c == 0) {
                continue; // The dataset omits all-zero rows.
            }
            let func = &app.profile.functions[fi];
            write!(
                w,
                "{owner},{app_hash},{},{}",
                pseudo_hash("func", ((app.profile.id.0 as u64) << 16) | fi as u64),
                trigger_label(func.trigger)
            )?;
            for c in counts {
                write!(w, ",{c}")?;
            }
            writeln!(w)?;
        }
    }
    Ok(())
}

/// Bins one app's events of `[day_start, day_end)` into per-function
/// minute counts.
fn bin_app_day(app: &AppTrace, day_start: TimeMs, day_end: TimeMs) -> Vec<Vec<u32>> {
    let nf = app.profile.functions.len();
    let mut rows = vec![vec![0u32; MINUTES_PER_DAY]; nf];
    // Deterministic attribution: walk the cumulative shares with a
    // low-discrepancy counter so realized shares converge to profile
    // shares without an RNG.
    let shares: Vec<f64> = app
        .profile
        .functions
        .iter()
        .map(|f| f.invocation_share)
        .collect();
    let mut acc = vec![0.0f64; nf];
    let start = app.invocations.partition_point(|&t| t < day_start);
    for &t in &app.invocations[start..] {
        if t >= day_end {
            break;
        }
        // Pick the function with the largest share deficit.
        let mut best = 0;
        let mut best_deficit = f64::MIN;
        for i in 0..nf {
            let deficit = shares[i] - acc[i];
            if deficit > best_deficit {
                best_deficit = deficit;
                best = i;
            }
        }
        acc[best] += 1.0;
        let total: f64 = acc.iter().sum();
        if total > 0.0 {
            for a in acc.iter_mut() {
                *a /= total; // Renormalize to keep deficits comparable.
            }
        }
        let minute = ((t - day_start) / MINUTE_MS) as usize;
        rows[best][minute.min(MINUTES_PER_DAY - 1)] += 1;
    }
    rows
}

/// Reads an invocations CSV.
pub fn read_invocations_csv<R: Read>(r: R) -> Result<Vec<InvocationRow>, SchemaError> {
    let reader = BufReader::new(r);
    let mut rows = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if i == 0 || line.trim().is_empty() {
            continue; // Header.
        }
        let mut parts = line.split(',');
        let owner = parts.next().unwrap_or("").to_owned();
        let app = parts
            .next()
            .ok_or_else(|| parse_err(i + 1, "missing app column"))?
            .to_owned();
        let func = parts
            .next()
            .ok_or_else(|| parse_err(i + 1, "missing function column"))?
            .to_owned();
        let trig_str = parts
            .next()
            .ok_or_else(|| parse_err(i + 1, "missing trigger column"))?;
        let trigger = parse_trigger(trig_str)
            .ok_or_else(|| parse_err(i + 1, &format!("unknown trigger {trig_str:?}")))?;
        let counts: Result<Vec<u32>, _> = parts.map(str::parse::<u32>).collect();
        let counts = counts.map_err(|e| parse_err(i + 1, &format!("bad count: {e}")))?;
        if counts.len() != MINUTES_PER_DAY {
            return Err(parse_err(
                i + 1,
                &format!("expected {MINUTES_PER_DAY} counts, got {}", counts.len()),
            ));
        }
        rows.push(InvocationRow {
            owner,
            app,
            func,
            trigger,
            counts,
        });
    }
    Ok(rows)
}

fn parse_err(line: usize, message: &str) -> SchemaError {
    SchemaError::Parse {
        line,
        message: message.to_owned(),
    }
}

/// Reconstructs a [`Trace`] from invocation rows (one or more days of the
/// same apps). Events are placed evenly inside their minute.
///
/// `rows_by_day[d]` holds day `d`'s rows. Functions of the same `app`
/// hash are grouped into one application; profile fields that the
/// invocations CSV does not carry (execution times, memory) receive
/// neutral defaults and can be overlaid from the durations/memory CSVs.
pub fn trace_from_rows(rows_by_day: &[Vec<InvocationRow>]) -> Trace {
    trace_from_rows_with_index(rows_by_day).0
}

/// Hash indices alongside the rebuilt trace: app hash → app index, and
/// function hash → `(app index, function index)`, for overlaying the
/// durations/memory CSVs ([`overlay_profiles`]).
pub type TraceIndex = (
    std::collections::BTreeMap<String, usize>,
    std::collections::BTreeMap<String, (usize, usize)>,
);

/// Like [`trace_from_rows`], additionally returning the hash indices.
pub fn trace_from_rows_with_index(rows_by_day: &[Vec<InvocationRow>]) -> (Trace, TraceIndex) {
    use std::collections::BTreeMap;

    // App hash -> function hash -> (trigger, per-day counts).
    type FuncsByHash = BTreeMap<String, (TriggerType, Vec<Vec<u32>>)>;
    let mut apps: BTreeMap<String, FuncsByHash> = BTreeMap::new();
    let days = rows_by_day.len();
    for (d, rows) in rows_by_day.iter().enumerate() {
        for row in rows {
            let funcs = apps.entry(row.app.clone()).or_default();
            let entry = funcs
                .entry(row.func.clone())
                .or_insert_with(|| (row.trigger, vec![vec![0; MINUTES_PER_DAY]; days]));
            entry.1[d] = row.counts.clone();
        }
    }

    let horizon_ms = days as TimeMs * DAY_MS;
    let mut app_index: BTreeMap<String, usize> = BTreeMap::new();
    let mut func_index: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    let mut out = Vec::with_capacity(apps.len());
    for (i, (app_hash, funcs)) in apps.into_iter().enumerate() {
        app_index.insert(app_hash, i);
        let mut invocations: Vec<TimeMs> = Vec::new();
        let mut profiles = Vec::with_capacity(funcs.len());
        let mut per_func_counts = Vec::with_capacity(funcs.len());
        for (fi, (func_hash, (trigger, day_counts))) in funcs.into_iter().enumerate() {
            func_index.insert(func_hash, (i, fi));
            let mut func_total = 0u64;
            for (d, counts) in day_counts.iter().enumerate() {
                for (m, &c) in counts.iter().enumerate() {
                    if c == 0 {
                        continue;
                    }
                    func_total += c as u64;
                    let minute_start = d as TimeMs * DAY_MS + m as TimeMs * MINUTE_MS;
                    // Spread c events evenly across the minute.
                    for k in 0..c {
                        invocations.push(minute_start + (k as TimeMs * MINUTE_MS) / c as TimeMs);
                    }
                }
            }
            per_func_counts.push(func_total);
            profiles.push(FunctionProfile {
                trigger,
                invocation_share: 0.0, // Filled below.
                avg_exec_secs: 1.0,
                min_exec_secs: 0.1,
                max_exec_secs: 10.0,
            });
        }

        invocations.sort_unstable();
        let total: u64 = per_func_counts.iter().sum();
        for (p, &c) in profiles.iter_mut().zip(&per_func_counts) {
            p.invocation_share = if total == 0 {
                1.0 / per_func_counts.len() as f64
            } else {
                c as f64 / total as f64
            };
        }
        let daily_rate = total as f64 / days.max(1) as f64;
        out.push(AppTrace {
            profile: AppProfile {
                id: AppId(i as u32),
                functions: profiles,
                daily_rate,
                archetype: crate::archetype::Archetype::Poisson,
                memory_mb: 170.0,
                memory_mb_pct1: 120.0,
                memory_mb_max: 300.0,
            },
            invocations,
        });
    }
    (
        Trace {
            horizon_ms,
            apps: out,
        },
        (app_index, func_index),
    )
}

/// Writes the durations-percentiles CSV for a population.
pub fn write_durations_csv<W: Write>(pop: &Population, mut w: W) -> io::Result<()> {
    writeln!(
        w,
        "HashOwner,HashApp,HashFunction,Average,Count,Minimum,Maximum,\
         percentile_Average_0,percentile_Average_1,percentile_Average_25,\
         percentile_Average_50,percentile_Average_75,percentile_Average_99,\
         percentile_Average_100"
    )?;
    for app in &pop.apps {
        let owner = pseudo_hash("owner", app.id.0 as u64 / 16);
        let app_hash = pseudo_hash("app", app.id.0 as u64);
        for (fi, f) in app.functions.iter().enumerate() {
            // Percentiles of per-invocation averages: approximate the
            // spread between min and max around the average, sorted so
            // the columns are monotone whatever the min/avg/max ratios.
            let ms = |s: f64| s * 1000.0;
            let mut p = [
                ms(f.min_exec_secs),
                ms(f.min_exec_secs * 1.2),
                ms(f.avg_exec_secs * 0.7),
                ms(f.avg_exec_secs),
                ms(f.avg_exec_secs * 1.4),
                ms(f.max_exec_secs * 0.9),
                ms(f.max_exec_secs),
            ];
            p.sort_by(f64::total_cmp);
            writeln!(
                w,
                "{owner},{app_hash},{},{:.3},{},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3}",
                pseudo_hash("func", ((app.id.0 as u64) << 16) | fi as u64),
                ms(f.avg_exec_secs),
                (app.daily_rate * f.invocation_share).max(1.0).round() as u64,
                ms(f.min_exec_secs),
                ms(f.max_exec_secs),
                p[0], p[1], p[2], p[3], p[4], p[5], p[6],
            )?;
        }
    }
    Ok(())
}

/// Writes the application-memory-percentiles CSV for a population.
pub fn write_memory_csv<W: Write>(pop: &Population, mut w: W) -> io::Result<()> {
    writeln!(
        w,
        "HashOwner,HashApp,SampleCount,AverageAllocatedMb,\
         AverageAllocatedMb_pct1,AverageAllocatedMb_pct5,\
         AverageAllocatedMb_pct25,AverageAllocatedMb_pct50,\
         AverageAllocatedMb_pct75,AverageAllocatedMb_pct95,\
         AverageAllocatedMb_pct99,AverageAllocatedMb_pct100"
    )?;
    for app in &pop.apps {
        let owner = pseudo_hash("owner", app.id.0 as u64 / 16);
        let app_hash = pseudo_hash("app", app.id.0 as u64);
        let lo = app.memory_mb_pct1;
        let hi = app.memory_mb_max;
        let mid = app.memory_mb;
        let lerp = |t: f64| {
            if t <= 0.5 {
                lo + (mid - lo) * (t / 0.5)
            } else {
                mid + (hi - mid) * ((t - 0.5) / 0.5)
            }
        };
        writeln!(
            w,
            "{owner},{app_hash},{},{mid:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2}",
            1440u32,
            lerp(0.01),
            lerp(0.05),
            lerp(0.25),
            lerp(0.50),
            lerp(0.75),
            lerp(0.95),
            lerp(0.99),
            lerp(1.0),
        )?;
    }
    Ok(())
}

/// One row of the durations-percentiles CSV (times in milliseconds, as
/// in the released dataset).
#[derive(Debug, Clone, PartialEq)]
pub struct DurationRow {
    /// Owner hash.
    pub owner: String,
    /// Application hash.
    pub app: String,
    /// Function hash.
    pub func: String,
    /// Average execution time, ms.
    pub average_ms: f64,
    /// Number of samples behind the averages.
    pub count: u64,
    /// Minimum execution time, ms.
    pub minimum_ms: f64,
    /// Maximum execution time, ms.
    pub maximum_ms: f64,
    /// The `percentile_Average_{0,1,25,50,75,99,100}` columns.
    pub percentiles_ms: [f64; 7],
}

/// Reads a durations-percentiles CSV.
pub fn read_durations_csv<R: Read>(r: R) -> Result<Vec<DurationRow>, SchemaError> {
    let reader = BufReader::new(r);
    let mut rows = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if i == 0 || line.trim().is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split(',').collect();
        if parts.len() != 14 {
            return Err(parse_err(
                i + 1,
                &format!("expected 14 columns, got {}", parts.len()),
            ));
        }
        let num = |s: &str, line_no: usize| -> Result<f64, SchemaError> {
            s.parse::<f64>()
                .map_err(|e| parse_err(line_no, &format!("bad number {s:?}: {e}")))
        };
        let mut percentiles_ms = [0.0; 7];
        for (k, p) in parts[7..14].iter().enumerate() {
            percentiles_ms[k] = num(p, i + 1)?;
        }
        rows.push(DurationRow {
            owner: parts[0].to_owned(),
            app: parts[1].to_owned(),
            func: parts[2].to_owned(),
            average_ms: num(parts[3], i + 1)?,
            count: num(parts[4], i + 1)? as u64,
            minimum_ms: num(parts[5], i + 1)?,
            maximum_ms: num(parts[6], i + 1)?,
            percentiles_ms,
        });
    }
    Ok(rows)
}

/// One row of the application-memory-percentiles CSV (MB).
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryRow {
    /// Owner hash.
    pub owner: String,
    /// Application hash.
    pub app: String,
    /// Samples behind the averages.
    pub sample_count: u64,
    /// Average allocated memory, MB.
    pub average_mb: f64,
    /// The `AverageAllocatedMb_pct{1,5,25,50,75,95,99,100}` columns.
    pub percentiles_mb: [f64; 8],
}

/// Reads an application-memory-percentiles CSV.
pub fn read_memory_csv<R: Read>(r: R) -> Result<Vec<MemoryRow>, SchemaError> {
    let reader = BufReader::new(r);
    let mut rows = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if i == 0 || line.trim().is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split(',').collect();
        if parts.len() != 12 {
            return Err(parse_err(
                i + 1,
                &format!("expected 12 columns, got {}", parts.len()),
            ));
        }
        let num = |s: &str, line_no: usize| -> Result<f64, SchemaError> {
            s.parse::<f64>()
                .map_err(|e| parse_err(line_no, &format!("bad number {s:?}: {e}")))
        };
        let mut percentiles_mb = [0.0; 8];
        for (k, p) in parts[4..12].iter().enumerate() {
            percentiles_mb[k] = num(p, i + 1)?;
        }
        rows.push(MemoryRow {
            owner: parts[0].to_owned(),
            app: parts[1].to_owned(),
            sample_count: num(parts[2], i + 1)? as u64,
            average_mb: num(parts[3], i + 1)?,
            percentiles_mb,
        });
    }
    Ok(rows)
}

/// Overlays execution-time and memory profiles parsed from the
/// durations/memory CSVs onto a trace reconstructed by
/// [`trace_from_rows`], matching by the hashes carried in the
/// invocations CSV.
///
/// Only apps/functions present in the overlay data are updated; the rest
/// keep their neutral defaults. Returns how many `(functions, apps)`
/// were updated.
pub fn overlay_profiles(
    trace: &mut Trace,
    func_hashes: &std::collections::BTreeMap<String, (usize, usize)>,
    app_hashes: &std::collections::BTreeMap<String, usize>,
    durations: &[DurationRow],
    memory: &[MemoryRow],
) -> (usize, usize) {
    let mut funcs_updated = 0;
    for d in durations {
        if let Some(&(app_idx, func_idx)) = func_hashes.get(&d.func) {
            if let Some(app) = trace.apps.get_mut(app_idx) {
                if let Some(f) = app.profile.functions.get_mut(func_idx) {
                    f.avg_exec_secs = d.average_ms / 1000.0;
                    f.min_exec_secs = d.minimum_ms / 1000.0;
                    f.max_exec_secs = d.maximum_ms / 1000.0;
                    funcs_updated += 1;
                }
            }
        }
    }
    let mut apps_updated = 0;
    for m in memory {
        if let Some(&app_idx) = app_hashes.get(&m.app) {
            if let Some(app) = trace.apps.get_mut(app_idx) {
                app.profile.memory_mb = m.average_mb;
                app.profile.memory_mb_pct1 = m.percentiles_mb[0];
                app.profile.memory_mb_max = m.percentiles_mb[7];
                apps_updated += 1;
            }
        }
    }
    (funcs_updated, apps_updated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_trace, TraceConfig};
    use crate::population::{build_population, PopulationConfig};

    fn small_trace() -> Trace {
        let pop = build_population(&PopulationConfig {
            num_apps: 30,
            seed: 3,
        });
        generate_trace(
            &pop,
            &TraceConfig {
                horizon_ms: DAY_MS,
                cap_per_day: 2000.0,
                seed: 5,
            },
        )
    }

    #[test]
    fn invocations_roundtrip_preserves_minute_counts() {
        let trace = small_trace();
        let mut buf = Vec::new();
        write_invocations_csv(&trace, 0, &mut buf).unwrap();
        let rows = read_invocations_csv(buf.as_slice()).unwrap();
        assert!(!rows.is_empty());

        // Total invocations must match the day's events.
        let csv_total: u64 = rows
            .iter()
            .map(|r| r.counts.iter().map(|&c| c as u64).sum::<u64>())
            .sum();
        let trace_total: u64 = trace
            .apps
            .iter()
            .map(|a| a.invocations.iter().filter(|&&t| t < DAY_MS).count() as u64)
            .sum();
        assert_eq!(csv_total, trace_total);
    }

    #[test]
    fn rows_have_1440_columns_and_known_triggers() {
        let trace = small_trace();
        let mut buf = Vec::new();
        write_invocations_csv(&trace, 0, &mut buf).unwrap();
        let rows = read_invocations_csv(buf.as_slice()).unwrap();
        for r in &rows {
            assert_eq!(r.counts.len(), MINUTES_PER_DAY);
            assert_eq!(r.owner.len(), 64);
            assert_eq!(r.app.len(), 64);
        }
    }

    #[test]
    fn trace_from_rows_reconstructs_counts() {
        let trace = small_trace();
        let mut buf = Vec::new();
        write_invocations_csv(&trace, 0, &mut buf).unwrap();
        let rows = read_invocations_csv(buf.as_slice()).unwrap();
        let rebuilt = trace_from_rows(&[rows]);
        assert_eq!(rebuilt.horizon_ms, DAY_MS);
        let total_rebuilt: u64 = rebuilt
            .apps
            .iter()
            .map(|a| a.invocations.len() as u64)
            .sum();
        let total_orig: u64 = trace
            .apps
            .iter()
            .map(|a| a.invocations.iter().filter(|&&t| t < DAY_MS).count() as u64)
            .sum();
        assert_eq!(total_rebuilt, total_orig);
        // Events must live inside their minutes: re-binning reproduces
        // identical minute histograms.
        for app in &rebuilt.apps {
            assert!(app.invocations.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn read_rejects_malformed() {
        let bad = "HashOwner,HashApp,HashFunction,Trigger,1\nx,y,z,nosuch,1\n";
        assert!(read_invocations_csv(bad.as_bytes()).is_err());

        let short = "h\no,a,f,http,1,2,3\n";
        let err = read_invocations_csv(short.as_bytes()).unwrap_err();
        assert!(matches!(err, SchemaError::Parse { line: 2, .. }));
    }

    #[test]
    fn durations_and_memory_write_parse_as_csv() {
        let pop = build_population(&PopulationConfig {
            num_apps: 10,
            seed: 8,
        });
        let mut buf = Vec::new();
        write_durations_csv(&pop, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + pop.num_functions());
        assert_eq!(lines[0].split(',').count(), 14);
        for l in &lines[1..] {
            assert_eq!(l.split(',').count(), 14);
        }

        let mut buf = Vec::new();
        write_memory_csv(&pop, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + pop.len());
        assert_eq!(lines[0].split(',').count(), 12);
    }

    #[test]
    fn pseudo_hash_is_stable_and_distinct() {
        let a = pseudo_hash("app", 1);
        let b = pseudo_hash("app", 2);
        let c = pseudo_hash("func", 1);
        assert_eq!(a.len(), 64);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, pseudo_hash("app", 1));
    }

    #[test]
    fn durations_csv_roundtrip() {
        let pop = build_population(&PopulationConfig {
            num_apps: 12,
            seed: 21,
        });
        let mut buf = Vec::new();
        write_durations_csv(&pop, &mut buf).unwrap();
        let rows = read_durations_csv(buf.as_slice()).unwrap();
        assert_eq!(rows.len(), pop.num_functions());
        for r in &rows {
            assert!(r.minimum_ms <= r.average_ms);
            assert!(r.average_ms <= r.maximum_ms);
            assert!(r.percentiles_ms.windows(2).all(|w| w[0] <= w[1] + 1e-9));
        }
    }

    #[test]
    fn memory_csv_roundtrip() {
        let pop = build_population(&PopulationConfig {
            num_apps: 12,
            seed: 22,
        });
        let mut buf = Vec::new();
        write_memory_csv(&pop, &mut buf).unwrap();
        let rows = read_memory_csv(buf.as_slice()).unwrap();
        assert_eq!(rows.len(), pop.len());
        for (r, app) in rows.iter().zip(&pop.apps) {
            assert!((r.average_mb - app.memory_mb).abs() < 0.01);
            assert!(r.percentiles_mb.windows(2).all(|w| w[0] <= w[1] + 1e-9));
        }
    }

    #[test]
    fn overlay_updates_profiles_from_csvs() {
        let trace = small_trace();
        let pop = Population {
            apps: trace.apps.iter().map(|a| a.profile.clone()).collect(),
        };

        let mut inv_csv = Vec::new();
        write_invocations_csv(&trace, 0, &mut inv_csv).unwrap();
        let mut dur_csv = Vec::new();
        write_durations_csv(&pop, &mut dur_csv).unwrap();
        let mut mem_csv = Vec::new();
        write_memory_csv(&pop, &mut mem_csv).unwrap();

        let inv_rows = read_invocations_csv(inv_csv.as_slice()).unwrap();
        let (mut rebuilt, (app_idx, func_idx)) = trace_from_rows_with_index(&[inv_rows]);
        let durations = read_durations_csv(dur_csv.as_slice()).unwrap();
        let memory = read_memory_csv(mem_csv.as_slice()).unwrap();
        let (nf, na) = overlay_profiles(&mut rebuilt, &func_idx, &app_idx, &durations, &memory);
        assert!(nf > 0, "no functions overlaid");
        assert!(na > 0, "no apps overlaid");

        // Memory values must now match the originals (hash join works).
        for app in &rebuilt.apps {
            assert_ne!(app.profile.memory_mb, 170.0, "default memory left behind");
        }
        // Exec times no longer all at the neutral default.
        let non_default = rebuilt
            .apps
            .iter()
            .flat_map(|a| &a.profile.functions)
            .filter(|f| (f.avg_exec_secs - 1.0).abs() > 1e-9)
            .count();
        assert!(non_default > 0);
    }

    #[test]
    fn read_durations_rejects_malformed() {
        let bad = "h\na,b,c,notanumber,1,2,3,4,5,6,7,8,9,10\n";
        assert!(read_durations_csv(bad.as_bytes()).is_err());
        let short = "h\na,b,c,1,2\n";
        assert!(read_durations_csv(short.as_bytes()).is_err());
        assert!(read_memory_csv("h\na,b\n".as_bytes()).is_err());
    }

    #[test]
    fn trigger_labels_roundtrip() {
        for t in TriggerType::ALL {
            assert_eq!(parse_trigger(trigger_label(t)), Some(t));
        }
        assert_eq!(parse_trigger("bogus"), None);
    }
}
