//! `sitw-fleet`: the multi-tenant fleet subsystem.
//!
//! The paper's hybrid policy exists to cut cold starts *under a
//! cluster-wide memory budget* — §3.4/Figure 8 characterize per-app
//! memory with a Burr distribution precisely because keep-alive is a
//! memory-for-latency trade. This crate turns that trade into an
//! explicit, enforceable dimension of the serving stack:
//!
//! * [`registry`] — tenants: each gets its own [`sitw_core::PolicySpec`],
//!   a keep-alive memory budget in MB, and an isolated `tenant/app`
//!   namespace; parsed from CLI args and config files with one grammar.
//! * [`footprint`] — deterministic per-`(tenant, app)` memory footprints
//!   sampled by inverse transform from the paper's Burr XII fit
//!   (Figure 8), so online serving, offline replay, and restores all
//!   charge identical memory without storing anything.
//! * [`ledger`] — the cluster memory ledger: a warm-container set with
//!   keep-alive expiries, an exact loaded-memory integral (the §5.3
//!   idle-memory metric), and budgeted eviction by earliest keep-alive
//!   expiry. Ledgers are integer-valued (MB and MB·ms), so accounting is
//!   bit-exact across snapshot/restore.
//! * [`evict`] — the small budgeted-eviction engine shared with
//!   `sitw_platform`'s invoker `make_room` (evict in a caller-chosen
//!   order until the budget fits).
//! * [`qos`] — per-tenant QoS classes and deterministic admission rate
//!   limits: token buckets that run on *trace time* (the invocation
//!   timestamps), never the wall clock, so a router admitting online
//!   and `ClusterSim` replaying offline throttle the identical set.
//! * [`sim`] — [`sim::FleetSim`], the offline ground truth: replays a
//!   merged multi-tenant event stream and produces the exact verdicts a
//!   fleet-mode daemon serves (re-exported as
//!   `sitw_sim::fleet_verdict_trace`).
//!
//! Determinism is the design center: eviction order (earliest expiry,
//! ties by app id), footprints, and ledger arithmetic are all pure
//! functions of the tenant's *arrival-ordered* event stream, so a
//! daemon restored from a snapshot — even with a different shard count
//! — continues bit-for-bit, and the offline simulator predicts every
//! eviction the daemon makes whenever a tenant's stream reaches it in
//! timestamp order (any single connection; clients spreading one
//! tenant's apps over concurrent connections choose their own
//! interleaving). That is why budgeted tenants are routed whole to one
//! shard (by tenant name hash): their ledger is then single-writer and
//! lock-free, the same isolation argument the sweep driver makes for
//! apps. (Routing hashes the tenant *name*, so placement survives
//! restarts and registry rebuilds.)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod evict;
pub mod footprint;
pub mod ledger;
pub mod qos;
pub mod registry;
pub mod sim;

pub use evict::evict_until;
pub use footprint::footprint_mb;
pub use ledger::{LedgerExport, LedgerStats, TenantLedger, WarmEntry};
pub use qos::{Admission, QosClass, QosPolicy, RateLimit, TokenBucket};
pub use registry::{TenantId, TenantRegistry, TenantSpec, DEFAULT_TENANT, DEFAULT_TENANT_NAME};
pub use sim::{fleet_verdict_trace, FleetError, FleetEvent, FleetSim, FleetVerdict};

/// FNV-1a over a byte string — the workspace's stable, dependency-free
/// hash. The serving daemon's app→shard routing and the fleet's
/// tenant→shard routing and footprint sampling all build on it, so the
/// mapping survives restarts and crate boundaries alike.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// SplitMix64 finalizer: full-avalanche mix of a 64-bit value. FNV-1a's
/// high bits avalanche poorly on short strings (the multiply only
/// carries upward), which is fine for `% shards` routing but biases any
/// use of the hash as a uniform variate — footprint sampling and Zipf
/// tenant assignment mix through this first.
pub fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_known_vector() {
        // FNV-1a 64-bit of "a" is 0xaf63dc4c8601ec8c.
        assert_eq!(fnv1a(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
    }
}
