//! The `sitw-loadgen` trace replayer.
//!
//! ```text
//! sitw-loadgen --addr 127.0.0.1:7071 | --cluster HOST:PORT[,HOST:PORT...]
//!              [--apps 500] [--seed 42]
//!              [--horizon-hours 24] [--cap-per-day 2000]
//!              [--speedup N | --max-speed] [--connections 2]
//!              [--window 64] [--max-events 0]
//!              [--proto json|bin|bin:batch=N] [--tenants N[:zipf=S]]
//!              [--trace-sample N] [--out FILE]
//! ```
//!
//! Generates the synthetic Azure-Functions-like workload of
//! `sitw_trace` and replays it open-loop against a running daemon,
//! then prints sustained throughput and exact latency percentiles.
//! `--proto bin` speaks SITW-BIN frames (default batch 16) instead of
//! JSON-over-HTTP. `--tenants N[:zipf=S]` spreads the replayed apps
//! across N tenants `t0..tN-1` (optionally Zipf-skewed by rank) — the
//! server must have registered them (`sitw-serve --tenants N` or
//! explicit `--tenant` flags) — and the summary adds one per-tenant
//! throughput/verdict-mix line. `--out FILE` additionally writes a
//! machine-readable JSON run summary (throughput, cold rate, exact
//! percentiles, and the full log2 RTT histogram — the same bucket
//! boundaries the server's `/metrics` histograms use).
//! `--trace-sample N` tags every Nth request (JSON) or frame
//! (SITW-BIN) with an `X-Sitw-Trace` id; the sampled ids and their
//! per-trace RTTs land in the `--out` report's `traces` array so a
//! run can be cross-referenced against server and router
//! `/debug/trace` timelines.

#![forbid(unsafe_code)]

use std::net::ToSocketAddrs;
use std::process::exit;

use sitw_serve::{run_loadgen_cluster, LoadGenConfig, Proto};
use sitw_trace::HOUR_MS;

fn usage() -> ! {
    eprintln!(
        "usage: sitw-loadgen --addr HOST:PORT | --cluster HOST:PORT[,HOST:PORT...] \
         [--apps N] [--seed N] \
         [--horizon-hours H] [--cap-per-day N] [--speedup N | --max-speed] \
         [--connections N] [--window N] [--max-events N] \
         [--proto json|bin|bin:batch=N] [--tenants N[:zipf=S]] \
         [--trace-sample N] [--out FILE]"
    );
    exit(2)
}

fn main() {
    let mut cfg = LoadGenConfig::default();
    let mut addr_arg: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => addr_arg = Some(value("--addr")),
            "--cluster" => addr_arg = Some(value("--cluster")),
            "--apps" => cfg.apps = value("--apps").parse().unwrap_or_else(|_| usage()),
            "--seed" => cfg.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--horizon-hours" => {
                let hours: u64 = value("--horizon-hours").parse().unwrap_or_else(|_| usage());
                cfg.horizon_ms = hours * HOUR_MS;
            }
            "--cap-per-day" => {
                cfg.cap_per_day = value("--cap-per-day").parse().unwrap_or_else(|_| usage());
            }
            "--speedup" => cfg.speedup = value("--speedup").parse().unwrap_or_else(|_| usage()),
            "--max-speed" => cfg.speedup = f64::INFINITY,
            "--connections" => {
                cfg.connections = value("--connections").parse().unwrap_or_else(|_| usage());
            }
            "--window" => cfg.window = value("--window").parse().unwrap_or_else(|_| usage()),
            "--max-events" => {
                cfg.max_events = value("--max-events").parse().unwrap_or_else(|_| usage());
            }
            "--tenants" => {
                let spec = value("--tenants");
                let (n, zipf) = match spec.split_once(":zipf=") {
                    Some((n, s)) => (
                        n.parse().unwrap_or_else(|_| usage()),
                        s.parse().unwrap_or_else(|_| usage()),
                    ),
                    None => (spec.parse().unwrap_or_else(|_| usage()), 0.0),
                };
                if n == 0 || n > u16::MAX as usize || zipf < 0.0 {
                    eprintln!("--tenants needs 1..=65535 tenants and zipf >= 0");
                    usage();
                }
                cfg.tenants = n;
                cfg.zipf = zipf;
            }
            "--proto" => match Proto::parse(&value("--proto")) {
                Ok(p) => cfg.proto = p,
                Err(e) => {
                    eprintln!("{e}");
                    usage();
                }
            },
            "--trace-sample" => {
                cfg.trace_sample = value("--trace-sample").parse().unwrap_or_else(|_| usage());
            }
            "--out" => out_path = Some(value("--out")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument '{other}'");
                usage();
            }
        }
    }
    let Some(addr_str) = addr_arg else { usage() };
    // `--cluster A,B,C` spreads connections round-robin over several
    // targets; `--addr` is the single-target special case.
    let mut addrs = Vec::new();
    for part in addr_str.split(',') {
        match part.to_socket_addrs().map(|mut a| a.next()) {
            Ok(Some(addr)) => addrs.push(addr),
            _ => {
                eprintln!("cannot resolve '{part}'");
                exit(1);
            }
        }
    }

    println!(
        "replaying {} apps over {}h (cap {}/day) at {} via {} connection(s), window {}, proto {}{}",
        cfg.apps,
        cfg.horizon_ms / HOUR_MS,
        cfg.cap_per_day,
        if cfg.speedup.is_finite() {
            format!("{}x", cfg.speedup)
        } else {
            "max speed".into()
        },
        cfg.connections,
        cfg.window,
        cfg.proto.label(),
        if cfg.tenants > 0 {
            format!(", {} tenant(s) zipf={}", cfg.tenants, cfg.zipf)
        } else {
            String::new()
        }
    );
    match run_loadgen_cluster(&addrs, &cfg) {
        Ok(report) => {
            println!("{}", report.summary());
            if let Some(path) = out_path {
                let json = report.to_json(&cfg.proto.label());
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("cannot write '{path}': {e}");
                    exit(1);
                }
                println!("run summary written to {path}");
            }
        }
        Err(e) => {
            eprintln!("loadgen failed: {e}");
            exit(1);
        }
    }
}
