//! Minimal dense linear algebra for time-series regression.
//!
//! ARIMA estimation only needs small systems (tens of unknowns), so a
//! straightforward row-major matrix with partial-pivot Gaussian elimination
//! and normal-equation least squares is plenty — and keeps the crate
//! dependency-free.

/// A dense row-major `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self { rows, cols, data }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c] = v;
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    let v = out.get(r, c) + a * other.get(k, c);
                    out.set(r, c, v);
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "vector length mismatch");
        (0..self.rows)
            .map(|r| (0..self.cols).map(|c| self.get(r, c) * v[c]).sum())
            .collect()
    }
}

/// Solves the square system `a · x = b` by Gaussian elimination with
/// partial pivoting. Returns `None` when the matrix is (numerically)
/// singular.
///
/// # Panics
///
/// Panics if `a` is not square or `b` has the wrong length.
// The index-based loops mirror the textbook elimination; iterator forms
// obscure the row/column structure.
#[expect(clippy::needless_range_loop)]
pub fn solve(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "solve needs a square matrix");
    assert_eq!(b.len(), n, "rhs length mismatch");
    // Work on an augmented copy.
    let mut m = a.clone();
    let mut x = b.to_vec();

    for col in 0..n {
        // Partial pivot: largest |value| in this column at or below row.
        let mut pivot_row = col;
        let mut pivot_val = m.get(col, col).abs();
        for r in col + 1..n {
            let v = m.get(r, col).abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_val < 1e-12 {
            return None;
        }
        if pivot_row != col {
            for c in 0..n {
                let tmp = m.get(col, c);
                m.set(col, c, m.get(pivot_row, c));
                m.set(pivot_row, c, tmp);
            }
            x.swap(col, pivot_row);
        }
        let pivot = m.get(col, col);
        for r in col + 1..n {
            let factor = m.get(r, col) / pivot;
            if factor == 0.0 {
                continue;
            }
            for c in col..n {
                let v = m.get(r, c) - factor * m.get(col, c);
                m.set(r, c, v);
            }
            x[r] -= factor * x[col];
        }
    }
    // Back substitution.
    for col in (0..n).rev() {
        let mut acc = x[col];
        for c in col + 1..n {
            acc -= m.get(col, c) * x[c];
        }
        x[col] = acc / m.get(col, col);
    }
    Some(x)
}

/// Least-squares solution of the overdetermined system `x · beta ≈ y` via
/// the normal equations, with a small ridge retried on singularity.
///
/// Returns `None` only when even the ridge-stabilized system is singular
/// (e.g. an all-zero design matrix).
///
/// # Panics
///
/// Panics if `y.len() != x.rows()`.
pub fn least_squares(x: &Matrix, y: &[f64]) -> Option<Vec<f64>> {
    assert_eq!(y.len(), x.rows(), "rhs length mismatch");
    let xt = x.transpose();
    let xtx = xt.matmul(x);
    let xty = xt.matvec(y);
    if let Some(beta) = solve(&xtx, &xty) {
        return Some(beta);
    }
    // Ridge fallback: X'X + εI with ε scaled to the matrix magnitude.
    let n = xtx.rows();
    let trace: f64 = (0..n).map(|i| xtx.get(i, i)).sum();
    let eps = (trace / n as f64).max(1.0) * 1e-8;
    let mut ridged = xtx;
    for i in 0..n {
        let v = ridged.get(i, i) + eps;
        ridged.set(i, i, v);
    }
    solve(&ridged, &xty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve() {
        let a = Matrix::identity(3);
        let x = solve(&a, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5; x + 3y = 10  =>  x = 1, y = 3.
        let a = Matrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = solve(&a, &[2.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_detects_singular() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(solve(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn matmul_and_transpose() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = a.transpose();
        assert_eq!(b.rows(), 3);
        let p = a.matmul(&b);
        // First row of A dot itself = 1+4+9 = 14.
        assert_eq!(p.get(0, 0), 14.0);
        assert_eq!(p.get(0, 1), 32.0);
        assert_eq!(p.get(1, 1), 77.0);
    }

    #[test]
    fn matvec_works() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn least_squares_exact_line() {
        // y = 2 + 3t, design [1, t].
        let t: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let mut x = Matrix::zeros(10, 2);
        let mut y = vec![0.0; 10];
        for i in 0..10 {
            x.set(i, 0, 1.0);
            x.set(i, 1, t[i]);
            y[i] = 2.0 + 3.0 * t[i];
        }
        let beta = least_squares(&x, &y).unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-9);
        assert!((beta[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn least_squares_collinear_falls_back_to_ridge() {
        // Two identical columns: normal equations singular, ridge resolves.
        let mut x = Matrix::zeros(4, 2);
        for i in 0..4 {
            x.set(i, 0, 1.0);
            x.set(i, 1, 1.0);
        }
        let beta = least_squares(&x, &[2.0, 2.0, 2.0, 2.0]).unwrap();
        // The ridge splits the coefficient evenly; the fit must reproduce y.
        assert!((beta[0] + beta[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn solve_rejects_rectangular() {
        let a = Matrix::zeros(2, 3);
        let _ = solve(&a, &[0.0, 0.0]);
    }
}
