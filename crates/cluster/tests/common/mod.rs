//! Shared harness for the cluster integration tests: node spawning,
//! blocking JSON / SITW-BIN clients, and a one-shot HTTP helper.

// Each integration-test crate compiles its own copy; not every crate
// uses every helper.
#![allow(dead_code)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use sitw_core::PolicySpec;
use sitw_serve::wire::{self, BinReply, ServerFrameDecode};
use sitw_serve::{ServeConfig, Server, TenantConfig};

/// Starts one bare node: no tenants (the router provisions them), the
/// fixed 10-minute default policy, an ephemeral port.
pub fn start_node() -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards: 2,
        policy: PolicySpec::fixed_minutes(10),
        tenants: Vec::<TenantConfig>::new(),
        ..ServeConfig::default()
    })
    .expect("node starts")
}

/// One-shot HTTP request (`connection: close`); returns `(status, body)`.
pub fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let msg = format!(
        "{method} {path} HTTP/1.1\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(msg.as_bytes()).expect("write");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let status: u16 = response
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

/// Blocking keep-alive JSON client.
pub struct JsonClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl JsonClient {
    pub fn connect(addr: SocketAddr) -> JsonClient {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        JsonClient {
            stream,
            buf: Vec::new(),
        }
    }

    pub fn invoke(&mut self, tenant: Option<&str>, app: &str, ts: u64) -> (u16, String) {
        let body = match tenant {
            Some(t) => format!("{{\"tenant\":\"{t}\",\"app\":\"{app}\",\"ts\":{ts}}}"),
            None => format!("{{\"app\":\"{app}\",\"ts\":{ts}}}"),
        };
        let req = format!(
            "POST /invoke HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        self.stream.write_all(req.as_bytes()).expect("write");
        self.read_response()
    }

    /// `POST /invoke` carrying a propagated `x-sitw-trace` id.
    pub fn invoke_traced(
        &mut self,
        tenant: Option<&str>,
        app: &str,
        ts: u64,
        trace: u64,
    ) -> (u16, String) {
        let body = match tenant {
            Some(t) => format!("{{\"tenant\":\"{t}\",\"app\":\"{app}\",\"ts\":{ts}}}"),
            None => format!("{{\"app\":\"{app}\",\"ts\":{ts}}}"),
        };
        let req = format!(
            "POST /invoke HTTP/1.1\r\nx-sitw-trace: {trace:#018x}\r\n\
             content-length: {}\r\n\r\n{body}",
            body.len()
        );
        self.stream.write_all(req.as_bytes()).expect("write");
        self.read_response()
    }

    fn read_response(&mut self) -> (u16, String) {
        loop {
            if let Some(header_end) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                let header = String::from_utf8_lossy(&self.buf[..header_end]).into_owned();
                let status: u16 = header
                    .split_ascii_whitespace()
                    .nth(1)
                    .and_then(|s| s.parse().ok())
                    .expect("status");
                let content_length: usize = header
                    .lines()
                    .find_map(|l| {
                        let (name, value) = l.split_once(':')?;
                        name.eq_ignore_ascii_case("content-length")
                            .then(|| value.trim().parse().ok())?
                    })
                    .unwrap_or(0);
                let total = header_end + 4 + content_length;
                while self.buf.len() < total {
                    self.fill();
                }
                let body = String::from_utf8_lossy(&self.buf[header_end + 4..total]).into_owned();
                self.buf.drain(..total);
                return (status, body);
            }
            self.fill();
        }
    }

    fn fill(&mut self) {
        let mut chunk = [0u8; 16 * 1024];
        let n = self.stream.read(&mut chunk).expect("read");
        assert!(n > 0, "peer closed connection unexpectedly");
        self.buf.extend_from_slice(&chunk[..n]);
    }
}

/// Blocking SITW-BIN client (v1 and v2 framing).
pub struct BinClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

/// One decoded server frame, for tests that expect typed errors.
#[derive(Debug)]
pub enum BinResponse {
    Reply(Vec<BinReply>),
    Error {
        code: wire::BinErrorCode,
        detail: String,
    },
}

impl BinClient {
    pub fn connect(addr: SocketAddr) -> BinClient {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        BinClient {
            stream,
            buf: Vec::new(),
        }
    }

    /// Sends one v2 frame and expects a reply frame.
    pub fn batch(&mut self, records: &[(u16, &str, u64)]) -> Vec<BinReply> {
        match self.batch_raw(records) {
            BinResponse::Reply(records) => records,
            BinResponse::Error { code, detail } => {
                panic!("unexpected error frame {code:?}: {detail}")
            }
        }
    }

    /// Sends one v2 frame; the response may be a typed error frame.
    pub fn batch_raw(&mut self, records: &[(u16, &str, u64)]) -> BinResponse {
        let mut frame = Vec::new();
        wire::encode_request_frame_v2(&mut frame, records);
        self.stream.write_all(&frame).expect("write frame");
        self.read_frame()
    }

    /// Sends one v2 frame carrying a trace id and expects a reply frame.
    pub fn batch_traced(&mut self, records: &[(u16, &str, u64)], trace: u64) -> Vec<BinReply> {
        let mut frame = Vec::new();
        wire::encode_request_frame_v2_traced(&mut frame, records, trace);
        self.stream.write_all(&frame).expect("write frame");
        match self.read_frame() {
            BinResponse::Reply(records) => records,
            BinResponse::Error { code, detail } => {
                panic!("unexpected error frame {code:?}: {detail}")
            }
        }
    }

    /// Sends one v1 frame (default tenant only) and expects a reply.
    pub fn batch_v1(&mut self, records: &[(&str, u64)]) -> Vec<BinReply> {
        let mut frame = Vec::new();
        wire::encode_request_frame(&mut frame, records);
        self.stream.write_all(&frame).expect("write frame");
        match self.read_frame() {
            BinResponse::Reply(records) => records,
            BinResponse::Error { code, detail } => {
                panic!("unexpected error frame {code:?}: {detail}")
            }
        }
    }

    fn read_frame(&mut self) -> BinResponse {
        loop {
            match wire::decode_server_frame(&self.buf) {
                ServerFrameDecode::Reply { records, consumed } => {
                    self.buf.drain(..consumed);
                    return BinResponse::Reply(records);
                }
                ServerFrameDecode::Error {
                    code,
                    detail,
                    consumed,
                } => {
                    self.buf.drain(..consumed);
                    return BinResponse::Error { code, detail };
                }
                ServerFrameDecode::Incomplete => {
                    let mut chunk = [0u8; 16 * 1024];
                    let n = self.stream.read(&mut chunk).expect("read");
                    assert!(n > 0, "peer closed mid-frame");
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                other => panic!("unexpected server frame: {other:?}"),
            }
        }
    }
}
