//! Deterministic per-application memory footprints.
//!
//! §3.4/Figure 8 fit per-application allocated memory with a Burr XII
//! distribution (c = 11.652, k = 0.221, λ = 107.083, MB). The fleet
//! charges each warm container a footprint drawn from that fit by
//! inverse transform — but instead of a random stream, the uniform
//! variate is a hash of `(tenant, app)`. The sample is therefore a pure
//! function of the identity: the daemon, the offline simulator, every
//! shard layout, and every restore charge the same app the same memory
//! without persisting a single byte of it.

use sitw_stats::distributions::{Burr, ContinuousDist};

use crate::{fnv1a, mix64};

/// Footprints are clamped to this range (MB). The floor keeps every
/// container chargeable; the ceiling caps the Burr tail at 4 GiB — the
/// heaviest app class of Figure 8 — so one pathological hash cannot make
/// a tenant's budget meaningless.
pub const MIN_FOOTPRINT_MB: u64 = 1;
/// Upper clamp of [`footprint_mb`] (see [`MIN_FOOTPRINT_MB`]).
pub const MAX_FOOTPRINT_MB: u64 = 4096;

/// The deterministic warm-container footprint of `app` under `tenant`,
/// in whole MB.
///
/// Integer MB keeps all ledger arithmetic exact (no float accumulation
/// to drift across snapshot/restore or shard layouts).
pub fn footprint_mb(tenant: &str, app: &str) -> u64 {
    // Hash the pair with an unambiguous separator (0x1F, which tenant
    // names cannot contain) so ("ab","c") and ("a","bc") differ.
    let mut bytes = Vec::with_capacity(tenant.len() + 1 + app.len());
    bytes.extend_from_slice(tenant.as_bytes());
    bytes.push(0x1F);
    bytes.extend_from_slice(app.as_bytes());
    let h = mix64(fnv1a(&bytes));
    // 53 bits of hash → uniform in (0, 1): the +0.5 keeps the variate
    // strictly inside the open interval where the quantile is finite.
    let u = ((h >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64);
    let mb = Burr::memory_fit().quantile(u).ceil() as u64;
    mb.clamp(MIN_FOOTPRINT_MB, MAX_FOOTPRINT_MB)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_tenant_scoped() {
        assert_eq!(footprint_mb("acme", "app-1"), footprint_mb("acme", "app-1"));
        // The same app under a different tenant is a different container.
        let a = footprint_mb("acme", "app-1");
        let b = footprint_mb("globex", "app-1");
        // (Hash collisions are possible in principle; these two differ.)
        assert_ne!(a, b);
        // The separator disambiguates the pair.
        assert_ne!(footprint_mb("ab", "c"), footprint_mb("a", "bc"));
    }

    #[test]
    fn footprints_are_clamped_and_burr_shaped() {
        let mut sum = 0u64;
        let n = 2_000u64;
        for i in 0..n {
            let mb = footprint_mb("t", &format!("app-{i:06}"));
            assert!((MIN_FOOTPRINT_MB..=MAX_FOOTPRINT_MB).contains(&mb));
            sum += mb;
        }
        // Figure 8: median ~170 MB, 90th percentile below ~400 MB. The
        // hash-driven sample mean should land in the same ballpark.
        let mean = sum as f64 / n as f64;
        assert!((100.0..400.0).contains(&mean), "mean footprint {mean} MB");
    }
}
