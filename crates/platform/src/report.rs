//! Metrics collected by the platform model — the quantities §5.3 reports.

use sitw_stats::{percentile_sorted, Ecdf};
use sitw_trace::TimeMs;

use crate::cluster::InvokerStats;

/// One completed (or dropped) invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvocationRecord {
    /// Application index.
    pub app: u32,
    /// Client-side arrival time.
    pub arrival: TimeMs,
    /// Whether the activation needed a cold container.
    pub cold: bool,
    /// Delay from arrival to execution start (queueing, scheduling,
    /// container init), ms.
    pub start_delay_ms: u64,
    /// Measured execution time (runtime bootstrap included for cold
    /// containers, as FaaSProfiler would observe), ms.
    pub exec_ms: u64,
    /// True when the activation could not be placed and was dropped.
    pub dropped: bool,
}

/// Full output of a platform run.
#[derive(Debug, Clone)]
pub struct PlatformReport {
    /// Per-invocation records in completion order.
    pub records: Vec<InvocationRecord>,
    /// Per-invoker accounting.
    pub invoker_stats: Vec<InvokerStats>,
    /// Containers started by pre-warming.
    pub prewarm_starts: u64,
    /// Activations dropped after placement retries.
    pub dropped: u64,
    /// Replay horizon.
    pub horizon_ms: TimeMs,
}

impl PlatformReport {
    /// Per-application cold-start percentages (served invocations only).
    pub fn per_app_cold_pct(&self) -> Vec<f64> {
        use std::collections::BTreeMap;
        let mut per_app: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
        for r in &self.records {
            if r.dropped {
                continue;
            }
            let e = per_app.entry(r.app).or_default();
            e.0 += 1;
            if r.cold {
                e.1 += 1;
            }
        }
        per_app
            .values()
            .map(|&(n, c)| 100.0 * c as f64 / n as f64)
            .collect()
    }

    /// CDF of per-app cold-start percentages (Figure 20).
    ///
    /// # Panics
    ///
    /// Panics when no invocations were served.
    pub fn cold_cdf(&self) -> Ecdf {
        Ecdf::new(self.per_app_cold_pct())
    }

    /// Number of cold starts across all served invocations.
    pub fn cold_count(&self) -> u64 {
        self.records.iter().filter(|r| !r.dropped && r.cold).count() as u64
    }

    /// Served invocation count.
    pub fn served(&self) -> u64 {
        self.records.iter().filter(|r| !r.dropped).count() as u64
    }

    /// Mean measured execution time, ms.
    pub fn avg_exec_ms(&self) -> f64 {
        let xs: Vec<f64> = self
            .records
            .iter()
            .filter(|r| !r.dropped)
            .map(|r| r.exec_ms as f64)
            .collect();
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    }

    /// Execution-time percentile, ms (the paper reports the 99th).
    pub fn exec_percentile_ms(&self, p: f64) -> f64 {
        let mut xs: Vec<f64> = self
            .records
            .iter()
            .filter(|r| !r.dropped)
            .map(|r| r.exec_ms as f64)
            .collect();
        if xs.is_empty() {
            return 0.0;
        }
        xs.sort_by(f64::total_cmp);
        percentile_sorted(&xs, p)
    }

    /// Start-delay percentile, ms.
    pub fn start_delay_percentile_ms(&self, p: f64) -> f64 {
        let mut xs: Vec<f64> = self
            .records
            .iter()
            .filter(|r| !r.dropped)
            .map(|r| r.start_delay_ms as f64)
            .collect();
        if xs.is_empty() {
            return 0.0;
        }
        xs.sort_by(f64::total_cmp);
        percentile_sorted(&xs, p)
    }

    /// Total loaded-but-idle memory integral across invokers (MB·ms) —
    /// the §5.3 "memory consumption of worker containers".
    pub fn total_idle_mb_ms(&self) -> f64 {
        self.invoker_stats.iter().map(|s| s.idle_mb_ms).sum()
    }

    /// Total loaded memory integral across invokers (MB·ms).
    pub fn total_loaded_mb_ms(&self) -> f64 {
        self.invoker_stats.iter().map(|s| s.loaded_mb_ms).sum()
    }

    /// Total container starts, evictions, expirations.
    pub fn lifecycle_totals(&self) -> (u64, u64, u64) {
        let starts = self
            .invoker_stats
            .iter()
            .map(|s| s.containers_started)
            .sum();
        let evictions = self.invoker_stats.iter().map(|s| s.evictions).sum();
        let expirations = self.invoker_stats.iter().map(|s| s.expirations).sum();
        (starts, evictions, expirations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(app: u32, cold: bool, exec: u64) -> InvocationRecord {
        InvocationRecord {
            app,
            arrival: 0,
            cold,
            start_delay_ms: if cold { 150 } else { 3 },
            exec_ms: exec,
            dropped: false,
        }
    }

    fn report(records: Vec<InvocationRecord>) -> PlatformReport {
        PlatformReport {
            records,
            invoker_stats: vec![InvokerStats::default(); 2],
            prewarm_starts: 0,
            dropped: 0,
            horizon_ms: 1000,
        }
    }

    #[test]
    fn per_app_cold_pct_groups() {
        let r = report(vec![
            record(1, true, 100),
            record(1, false, 100),
            record(2, true, 100),
        ]);
        let mut pcts = r.per_app_cold_pct();
        pcts.sort_by(f64::total_cmp);
        assert_eq!(pcts, vec![50.0, 100.0]);
        assert_eq!(r.cold_count(), 2);
        assert_eq!(r.served(), 3);
    }

    #[test]
    fn dropped_excluded() {
        let mut rec = record(1, true, 100);
        rec.dropped = true;
        let r = report(vec![rec, record(1, false, 60)]);
        assert_eq!(r.served(), 1);
        assert_eq!(r.cold_count(), 0);
        assert_eq!(r.per_app_cold_pct(), vec![0.0]);
    }

    #[test]
    fn exec_stats() {
        let r = report(vec![record(1, false, 100), record(1, false, 300)]);
        assert_eq!(r.avg_exec_ms(), 200.0);
        assert_eq!(r.exec_percentile_ms(100.0), 300.0);
        assert_eq!(r.exec_percentile_ms(0.0), 100.0);
        assert!(r.start_delay_percentile_ms(50.0) >= 3.0);
    }

    #[test]
    fn empty_report_is_zeroes() {
        let r = report(vec![]);
        assert_eq!(r.avg_exec_ms(), 0.0);
        assert_eq!(r.exec_percentile_ms(99.0), 0.0);
        assert!(r.per_app_cold_pct().is_empty());
    }
}
