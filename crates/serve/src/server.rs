//! The daemon: listener, acceptor, pipelined connection handlers, and
//! lifecycle (restore → serve → snapshot → shutdown).
//!
//! Threading model: one acceptor thread, one thread per connection, N
//! shard worker threads. A connection thread parses requests, hashes the
//! app id to a shard, and sends an `Invoke` message carrying a clone of
//! its private reply channel; shards reply out of band and the
//! connection reorders by sequence number before writing, preserving
//! HTTP/1.1 response ordering under pipelining. Up to
//! [`ServeConfig::pipeline_window`] decisions per connection are in
//! flight at once, which is what amortizes syscalls and context
//! switches enough to sustain >50k decisions/sec on loopback.
//!
//! SITW-BIN frames ride the same connections (sniffed per message, see
//! [`crate::http::ConnBuf::read_event`]): a whole frame moves to each
//! involved shard in one `InvokeBatch` mailbox message and is answered
//! by one reply frame, so per-decision transport cost drops from one
//! mpsc round trip + HTTP parse/format to `1/batch` of a frame's.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sitw_core::HybridConfig;
use sitw_sim::PolicySpec;

use crate::http::{write_response, ConnBuf, EventOutcome, Request};
use crate::metrics::{MetricsReport, ProtoStats, ShardStats};
use crate::shard::{
    shard_of, BatchItem, BatchReply, InvokeError, InvokeReply, ShardMsg, ShardWorker,
};
use crate::snapshot::{AppRecord, ShardExport, Snapshot};
use crate::wire::{self, push_u64, InvokeRequest};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 to let the OS choose.
    pub addr: String,
    /// Number of shard worker threads (≥ 1).
    pub shards: usize,
    /// The policy every application is served under.
    pub policy: PolicySpec,
    /// When set, a snapshot is written here on graceful shutdown and on
    /// `POST /admin/snapshot`.
    pub snapshot_path: Option<PathBuf>,
    /// When set and the file exists, state is restored from it at start.
    pub restore_path: Option<PathBuf>,
    /// Socket read timeout; bounds how quickly idle connections notice a
    /// shutdown.
    pub read_timeout: Duration,
    /// Maximum in-flight decisions per connection.
    pub pipeline_window: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7071".into(),
            shards: 4,
            policy: PolicySpec::Hybrid(HybridConfig::default()),
            snapshot_path: None,
            restore_path: None,
            read_timeout: Duration::from_millis(50),
            pipeline_window: 128,
        }
    }
}

/// Shared state every connection thread sees.
struct ServerCtx {
    cfg: ServeConfig,
    addr: SocketAddr,
    shard_txs: Vec<Sender<ShardMsg>>,
    shutdown: AtomicBool,
    started: Instant,
    /// SITW-BIN frames served (server-wide; connections are unsharded).
    frames: AtomicU64,
    /// Decisions delivered through batched binary frames.
    batched_decisions: AtomicU64,
    /// Typed SITW-BIN protocol errors answered.
    proto_errors: AtomicU64,
}

impl ServerCtx {
    fn scrape(&self) -> MetricsReport {
        let mut shards: Vec<ShardStats> = Vec::with_capacity(self.shard_txs.len());
        for tx in &self.shard_txs {
            let (reply_tx, reply_rx) = mpsc::channel();
            if tx.send(ShardMsg::Scrape(reply_tx)).is_ok() {
                if let Ok(stats) = reply_rx.recv() {
                    shards.push(stats);
                }
            }
        }
        shards.sort_by_key(|s| s.shard);
        MetricsReport {
            shards,
            proto: ProtoStats {
                frames: self.frames.load(Ordering::Relaxed),
                batched_decisions: self.batched_decisions.load(Ordering::Relaxed),
                proto_errors: self.proto_errors.load(Ordering::Relaxed),
            },
            uptime_ms: self.started.elapsed().as_millis() as u64,
        }
    }

    fn snapshot(&self) -> Snapshot {
        let mut exports: Vec<ShardExport> = Vec::new();
        for tx in &self.shard_txs {
            let (reply_tx, reply_rx) = mpsc::channel();
            if tx.send(ShardMsg::Snapshot(reply_tx)).is_ok() {
                if let Ok(export) = reply_rx.recv() {
                    exports.push(export);
                }
            }
        }
        merge_exports(self.cfg.policy.label(), exports)
    }

    /// Unblocks the acceptor's `accept()` after the shutdown flag flips.
    fn wake_acceptor(&self) {
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running decision service.
pub struct Server {
    ctx: Arc<ServerCtx>,
    acceptor: Option<JoinHandle<()>>,
    shard_handles: Vec<JoinHandle<ShardExport>>,
}

/// Merges per-shard exports into one snapshot (apps sorted by id, the
/// production backup clock as the max over shards).
fn merge_exports(policy_label: String, exports: Vec<ShardExport>) -> Snapshot {
    let mut apps: Vec<AppRecord> = Vec::new();
    let mut prod_clock = None;
    for mut export in exports {
        apps.append(&mut export.apps);
        prod_clock = prod_clock.max(export.prod_clock);
    }
    apps.sort_by(|a, b| a.app.cmp(&b.app));
    Snapshot {
        policy_label,
        prod_clock,
        apps,
    }
}

impl Server {
    /// Binds, restores state if configured, and starts serving.
    pub fn start(cfg: ServeConfig) -> io::Result<Server> {
        if cfg.shards == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "shards == 0"));
        }

        // Restore before any thread exists: partition records by shard.
        let mut per_shard: Vec<Vec<AppRecord>> = (0..cfg.shards).map(|_| Vec::new()).collect();
        let mut prod_clock = None;
        if let Some(path) = &cfg.restore_path {
            if path.exists() {
                let snap = Snapshot::read_from(path)?;
                let expected = cfg.policy.label();
                if snap.policy_label != expected {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "snapshot policy '{}' does not match configured '{expected}'",
                            snap.policy_label
                        ),
                    ));
                }
                prod_clock = snap.prod_clock;
                for rec in snap.apps {
                    per_shard[shard_of(&rec.app, cfg.shards)].push(rec);
                }
            }
        }

        let mut shard_txs = Vec::with_capacity(cfg.shards);
        let mut shard_handles = Vec::with_capacity(cfg.shards);
        for (id, restore) in per_shard.into_iter().enumerate() {
            let worker = ShardWorker::new(id, cfg.policy.clone(), restore, prod_clock)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            let (tx, rx) = mpsc::channel();
            shard_txs.push(tx);
            shard_handles.push(
                std::thread::Builder::new()
                    .name(format!("sitw-shard-{id}"))
                    .spawn(move || worker.run(rx))?,
            );
        }

        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let ctx = Arc::new(ServerCtx {
            cfg,
            addr,
            shard_txs,
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            frames: AtomicU64::new(0),
            batched_decisions: AtomicU64::new(0),
            proto_errors: AtomicU64::new(0),
        });

        let acceptor_ctx = Arc::clone(&ctx);
        let acceptor = std::thread::Builder::new()
            .name("sitw-acceptor".into())
            .spawn(move || accept_loop(listener, acceptor_ctx))?;

        Ok(Server {
            ctx,
            acceptor: Some(acceptor),
            shard_handles,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.ctx.addr
    }

    /// Scrapes all shards (in-process equivalent of `GET /metrics`).
    pub fn metrics(&self) -> MetricsReport {
        self.ctx.scrape()
    }

    /// Captures a snapshot of all shards without stopping the server.
    pub fn snapshot(&self) -> Snapshot {
        self.ctx.snapshot()
    }

    /// True once a shutdown has been requested (e.g. via
    /// `POST /admin/shutdown`).
    pub fn shutdown_requested(&self) -> bool {
        self.ctx.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until a shutdown is requested.
    pub fn wait(&self) {
        while !self.shutdown_requested() {
            std::thread::sleep(Duration::from_millis(100));
        }
    }

    /// Gracefully stops: drains connections, stops shards, and writes
    /// the final snapshot to [`ServeConfig::snapshot_path`] when set.
    /// Returns the final state.
    pub fn shutdown(mut self) -> io::Result<Snapshot> {
        self.ctx.shutdown.store(true, Ordering::SeqCst);
        self.ctx.wake_acceptor();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for tx in &self.ctx.shard_txs {
            let _ = tx.send(ShardMsg::Shutdown);
        }
        let mut exports: Vec<ShardExport> = Vec::new();
        for handle in self.shard_handles.drain(..) {
            match handle.join() {
                Ok(export) => exports.push(export),
                Err(_) => {
                    return Err(io::Error::other("shard panicked"));
                }
            }
        }
        let snapshot = merge_exports(self.ctx.cfg.policy.label(), exports);
        if let Some(path) = &self.ctx.cfg.snapshot_path {
            snapshot.write_to(path)?;
        }
        Ok(snapshot)
    }
}

fn accept_loop(listener: TcpListener, ctx: Arc<ServerCtx>) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if ctx.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_ctx = Arc::clone(&ctx);
        if let Ok(handle) = std::thread::Builder::new()
            .name("sitw-conn".into())
            .spawn(move || handle_conn(stream, conn_ctx))
        {
            // Opportunistically reap finished connections so the
            // registry stays proportional to *live* connections.
            conns.retain(|h| !h.is_finished());
            conns.push(handle);
        }
    }
    for handle in conns {
        let _ = handle.join();
    }
}

/// Flush threshold for the per-connection output buffer.
const OUT_FLUSH_BYTES: usize = 64 * 1024;

fn handle_conn(stream: TcpStream, ctx: Arc<ServerCtx>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(ctx.cfg.read_timeout));
    let Ok(mut write_half) = stream.try_clone() else {
        return;
    };
    let mut conn = ConnBuf::new(stream);

    let (reply_tx, reply_rx) = mpsc::channel::<InvokeReply>();
    let (batch_tx, batch_rx) = mpsc::channel::<BatchReply>();
    let mut out: Vec<u8> = Vec::with_capacity(OUT_FLUSH_BYTES + 4 * 1024);
    // Pipelining state: decisions in flight, reordering by sequence.
    let mut pending: usize = 0;
    let mut next_seq: u64 = 0;
    let mut next_write: u64 = 0;
    let mut reorder: BTreeMap<u64, Result<crate::shard::Decision, InvokeError>> = BTreeMap::new();
    let mut close = false;

    'conn: loop {
        // Write everything we owe before potentially blocking on the
        // socket with nothing in flight.
        if pending == 0 {
            if !out.is_empty() && write_half.write_all(&out).is_err() {
                break 'conn;
            }
            out.clear();
            if close || ctx.shutdown.load(Ordering::SeqCst) {
                break 'conn;
            }
        }

        match conn.read_event() {
            Ok(EventOutcome::Frame(records)) => {
                // Settle in-flight pipelined JSON decisions first, so a
                // client mixing protocols sees responses in send order.
                if !drain_pending(
                    &reply_rx,
                    &mut reorder,
                    &mut pending,
                    &mut next_write,
                    &mut out,
                ) {
                    break 'conn;
                }
                if !submit_batch(records, &ctx, &batch_tx, &batch_rx, &mut out) {
                    break 'conn; // Shards gone: shutting down.
                }
            }
            Ok(EventOutcome::FrameError {
                code,
                detail,
                recoverable,
            }) => {
                if !drain_pending(
                    &reply_rx,
                    &mut reorder,
                    &mut pending,
                    &mut next_write,
                    &mut out,
                ) {
                    break 'conn;
                }
                ctx.proto_errors.fetch_add(1, Ordering::Relaxed);
                wire::encode_error_frame(&mut out, code, &detail);
                if !recoverable {
                    // The framing itself is broken: answer, then close
                    // with a drained receive queue so the error frame
                    // arrives as data + FIN, not an RST (same rationale
                    // as the HTTP 413 path).
                    let _ = write_half.write_all(&out);
                    out.clear();
                    conn.drain_for_close(2 * crate::http::MAX_BODY_BYTES);
                    break 'conn;
                }
            }
            Ok(EventOutcome::Request(req)) => {
                if req.close {
                    close = true;
                }
                if req.method == "POST" && req.path == "/invoke" {
                    match wire::parse_invoke(&req.body) {
                        Ok(inv) => {
                            let shard = shard_of(&inv.app, ctx.shard_txs.len());
                            let msg = ShardMsg::Invoke {
                                app: inv.app,
                                ts: inv.ts,
                                seq: next_seq,
                                reply: reply_tx.clone(),
                            };
                            if ctx.shard_txs[shard].send(msg).is_err() {
                                break 'conn; // Shard gone: shutting down.
                            }
                            next_seq += 1;
                            pending += 1;
                        }
                        Err(e) => {
                            // Responses must stay ordered: settle every
                            // in-flight decision before the error.
                            if !drain_pending(
                                &reply_rx,
                                &mut reorder,
                                &mut pending,
                                &mut next_write,
                                &mut out,
                            ) {
                                break 'conn;
                            }
                            let mut body = Vec::with_capacity(64);
                            body.extend_from_slice(b"{\"error\":\"");
                            body.extend_from_slice(e.replace('"', "'").as_bytes());
                            body.extend_from_slice(b"\"}");
                            write_response(&mut out, 400, "application/json", &body);
                        }
                    }
                } else {
                    if !drain_pending(
                        &reply_rx,
                        &mut reorder,
                        &mut pending,
                        &mut next_write,
                        &mut out,
                    ) {
                        break 'conn;
                    }
                    handle_control(&req, &ctx, &mut out);
                }
            }
            Ok(EventOutcome::Eof) => {
                close = true;
                if pending == 0 {
                    break 'conn;
                }
            }
            Ok(EventOutcome::BodyTooLarge { .. }) => {
                // The body was never read, so the stream cannot be
                // resynchronized: answer 413 (in order) and close.
                if !drain_pending(
                    &reply_rx,
                    &mut reorder,
                    &mut pending,
                    &mut next_write,
                    &mut out,
                ) {
                    break 'conn;
                }
                write_response(
                    &mut out,
                    413,
                    "application/json",
                    b"{\"error\":\"payload too large\"}",
                );
                if write_half.write_all(&out).is_err() {
                    break 'conn;
                }
                out.clear();
                // Discard whatever body bytes are in flight (bounded)
                // so the close sends FIN, not an RST that could destroy
                // the 413 before the client reads it.
                conn.drain_for_close(2 * crate::http::MAX_BODY_BYTES);
                break 'conn;
            }
            Ok(EventOutcome::Timeout) => {
                // Idle socket: settle anything in flight, then loop (the
                // top of the loop flushes and checks the shutdown flag).
                if pending > 0
                    && !drain_pending(
                        &reply_rx,
                        &mut reorder,
                        &mut pending,
                        &mut next_write,
                        &mut out,
                    )
                {
                    break 'conn;
                }
                continue 'conn;
            }
            Err(_) => break 'conn, // Malformed request or I/O error.
        }

        // Collect whatever replies already arrived (without blocking).
        while let Ok(reply) = reply_rx.try_recv() {
            reorder.insert(reply.seq, reply.result);
        }
        write_ready(&mut reorder, &mut next_write, &mut pending, &mut out);

        // Backpressure: cap in-flight decisions per connection.
        while pending >= ctx.cfg.pipeline_window {
            let Ok(reply) = reply_rx.recv() else {
                break 'conn;
            };
            reorder.insert(reply.seq, reply.result);
            write_ready(&mut reorder, &mut next_write, &mut pending, &mut out);
        }

        // No more buffered requests: settle all in-flight decisions so
        // the client is never left waiting on responses we could send.
        if conn.buffered() == 0
            && !drain_pending(
                &reply_rx,
                &mut reorder,
                &mut pending,
                &mut next_write,
                &mut out,
            )
        {
            break 'conn;
        }

        if out.len() >= OUT_FLUSH_BYTES {
            if write_half.write_all(&out).is_err() {
                break 'conn;
            }
            out.clear();
        }
    }

    if !out.is_empty() {
        let _ = write_half.write_all(&out);
    }
}

/// Moves one SITW-BIN frame through the shards and appends the reply
/// frame to `out`: records are partitioned by shard, each shard gets its
/// whole slice in **one** mailbox message, and the replies are
/// reassembled in frame order. Returns false when a shard is gone
/// (server shutting down) and the connection should close.
fn submit_batch(
    records: Vec<InvokeRequest>,
    ctx: &ServerCtx,
    batch_tx: &Sender<BatchReply>,
    batch_rx: &Receiver<BatchReply>,
    out: &mut Vec<u8>,
) -> bool {
    let n = records.len();
    ctx.frames.fetch_add(1, Ordering::Relaxed);
    if n == 0 {
        wire::encode_reply_frame(out, &[]);
        return true;
    }
    let shards = ctx.shard_txs.len();
    let mut per_shard: Vec<Vec<BatchItem>> = vec![Vec::new(); shards];
    for (idx, rec) in records.into_iter().enumerate() {
        per_shard[shard_of(&rec.app, shards)].push(BatchItem {
            idx: idx as u32,
            app: rec.app,
            ts: rec.ts,
        });
    }
    let mut expected = 0usize;
    for (shard, items) in per_shard.into_iter().enumerate() {
        if items.is_empty() {
            continue;
        }
        let msg = ShardMsg::InvokeBatch {
            items,
            reply: batch_tx.clone(),
        };
        if ctx.shard_txs[shard].send(msg).is_err() {
            return false;
        }
        expected += 1;
    }
    let mut results: Vec<Option<Result<crate::shard::Decision, InvokeError>>> = vec![None; n];
    for _ in 0..expected {
        let Ok(reply) = batch_rx.recv() else {
            return false;
        };
        for (idx, result) in reply.results {
            results[idx as usize] = Some(result);
        }
    }
    let ordered: Vec<Result<crate::shard::Decision, InvokeError>> = results
        .into_iter()
        .map(|r| r.expect("every frame record gets exactly one shard answer"))
        .collect();
    wire::encode_reply_frame(out, &ordered);
    ctx.batched_decisions.fetch_add(n as u64, Ordering::Relaxed);
    true
}

/// Blocks until every in-flight decision has been written to `out`.
/// Returns false when the reply channel died (server shutting down).
fn drain_pending(
    reply_rx: &Receiver<InvokeReply>,
    reorder: &mut BTreeMap<u64, Result<crate::shard::Decision, InvokeError>>,
    pending: &mut usize,
    next_write: &mut u64,
    out: &mut Vec<u8>,
) -> bool {
    while *pending > 0 {
        let Ok(reply) = reply_rx.recv() else {
            return false;
        };
        reorder.insert(reply.seq, reply.result);
        write_ready(reorder, next_write, pending, out);
    }
    true
}

/// Writes every reply that is next in sequence order.
fn write_ready(
    reorder: &mut BTreeMap<u64, Result<crate::shard::Decision, InvokeError>>,
    next_write: &mut u64,
    pending: &mut usize,
    out: &mut Vec<u8>,
) {
    while let Some(result) = reorder.remove(next_write) {
        *next_write += 1;
        *pending -= 1;
        match result {
            Ok(decision) => {
                let mut body = Vec::with_capacity(128);
                wire::render_decision(&mut body, &decision);
                write_response(out, 200, "application/json", &body);
            }
            Err(InvokeError::OutOfOrder { last_ts }) => {
                let mut body = Vec::with_capacity(64);
                body.extend_from_slice(b"{\"error\":\"out-of-order\",\"last_ts\":");
                push_u64(&mut body, last_ts);
                body.push(b'}');
                write_response(out, 409, "application/json", &body);
            }
        }
    }
}

/// Non-invoke endpoints: health, metrics, admin.
fn handle_control(req: &Request, ctx: &Arc<ServerCtx>, out: &mut Vec<u8>) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let mut body = Vec::with_capacity(96);
            body.extend_from_slice(b"{\"status\":\"ok\",\"policy\":\"");
            body.extend_from_slice(ctx.cfg.policy.label().as_bytes());
            body.extend_from_slice(b"\",\"shards\":");
            push_u64(&mut body, ctx.shard_txs.len() as u64);
            body.extend_from_slice(b",\"uptime_ms\":");
            push_u64(&mut body, ctx.started.elapsed().as_millis() as u64);
            body.push(b'}');
            write_response(out, 200, "application/json", &body);
        }
        ("GET", "/metrics") => {
            let report = ctx.scrape();
            write_response(
                out,
                200,
                "text/plain; version=0.0.4",
                report.render().as_bytes(),
            );
        }
        ("POST", "/admin/snapshot") => match &ctx.cfg.snapshot_path {
            Some(path) => {
                let snapshot = ctx.snapshot();
                match snapshot.write_to(path) {
                    Ok(()) => {
                        let mut body = Vec::with_capacity(64);
                        body.extend_from_slice(b"{\"apps\":");
                        push_u64(&mut body, snapshot.apps.len() as u64);
                        body.push(b'}');
                        write_response(out, 200, "application/json", &body);
                    }
                    Err(e) => {
                        let body = format!("{{\"error\":\"{}\"}}", e.to_string().replace('"', "'"));
                        write_response(out, 500, "application/json", body.as_bytes());
                    }
                }
            }
            None => {
                write_response(
                    out,
                    400,
                    "application/json",
                    b"{\"error\":\"no snapshot path configured\"}",
                );
            }
        },
        ("POST", "/admin/shutdown") => {
            ctx.shutdown.store(true, Ordering::SeqCst);
            ctx.wake_acceptor();
            write_response(out, 200, "application/json", b"{\"status\":\"stopping\"}");
        }
        ("POST", "/invoke") => unreachable!("handled by the caller"),
        (_, "/invoke" | "/healthz" | "/metrics" | "/admin/snapshot" | "/admin/shutdown") => {
            write_response(
                out,
                405,
                "application/json",
                b"{\"error\":\"method not allowed\"}",
            );
        }
        _ => {
            write_response(out, 404, "application/json", b"{\"error\":\"not found\"}");
        }
    }
}
