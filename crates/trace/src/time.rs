//! Time units for traces and simulation.
//!
//! Everything downstream (policies, simulator, platform) uses integer
//! milliseconds, which keeps event ordering exact and matches the paper's
//! resolutions: 1-minute invocation bins, minute-granularity histograms,
//! and sub-second cold-start latencies.

/// A point in time or a duration, in milliseconds.
pub type TimeMs = u64;

/// One second in milliseconds.
pub const SECOND_MS: TimeMs = 1_000;

/// One minute in milliseconds.
pub const MINUTE_MS: TimeMs = 60 * SECOND_MS;

/// One hour in milliseconds.
pub const HOUR_MS: TimeMs = 60 * MINUTE_MS;

/// One day in milliseconds.
pub const DAY_MS: TimeMs = 24 * HOUR_MS;

/// One week in milliseconds.
pub const WEEK_MS: TimeMs = 7 * DAY_MS;

/// Converts fractional minutes to milliseconds (saturating at 0 below).
pub fn minutes_to_ms(minutes: f64) -> TimeMs {
    if minutes <= 0.0 {
        0
    } else {
        (minutes * MINUTE_MS as f64).round() as TimeMs
    }
}

/// Converts milliseconds to fractional minutes.
pub fn ms_to_minutes(ms: TimeMs) -> f64 {
    ms as f64 / MINUTE_MS as f64
}

/// The minute index (0-based) containing the given time.
pub fn minute_of(ms: TimeMs) -> u64 {
    ms / MINUTE_MS
}

/// The hour index (0-based) containing the given time.
pub fn hour_of(ms: TimeMs) -> u64 {
    ms / HOUR_MS
}

/// The day index (0-based) containing the given time.
pub fn day_of(ms: TimeMs) -> u64 {
    ms / DAY_MS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_consistent() {
        assert_eq!(MINUTE_MS, 60_000);
        assert_eq!(HOUR_MS, 3_600_000);
        assert_eq!(DAY_MS, 86_400_000);
        assert_eq!(WEEK_MS, 7 * 86_400_000);
    }

    #[test]
    fn minute_conversions_roundtrip() {
        assert_eq!(minutes_to_ms(1.0), MINUTE_MS);
        assert_eq!(minutes_to_ms(0.5), 30_000);
        assert_eq!(minutes_to_ms(-3.0), 0);
        assert_eq!(ms_to_minutes(90_000), 1.5);
    }

    #[test]
    fn indices() {
        assert_eq!(minute_of(0), 0);
        assert_eq!(minute_of(59_999), 0);
        assert_eq!(minute_of(60_000), 1);
        assert_eq!(hour_of(HOUR_MS - 1), 0);
        assert_eq!(day_of(DAY_MS + 1), 1);
    }
}
