//! The serving subsystem end to end, in process: start the sharded
//! decision daemon, replay a small synthetic workload through it with
//! the open-loop load generator — over JSON/HTTP *and* over the
//! batched SITW-BIN binary protocol — scrape `/metrics` (including the
//! frame counters), and shut down gracefully.
//!
//! Run with: `cargo run --release --example serve_quickstart`
//!
//! The same flow works across processes with the binaries:
//!
//! ```text
//! cargo run --release --bin sitw-serve    -- --shards 4 --policy hybrid
//! cargo run --release --bin sitw-loadgen  -- --addr 127.0.0.1:7071 --max-speed
//! cargo run --release --bin sitw-loadgen  -- --addr 127.0.0.1:7071 \
//!     --max-speed --proto bin:batch=64
//! curl -s  http://127.0.0.1:7071/metrics
//! curl -XPOST http://127.0.0.1:7071/admin/shutdown
//! ```

#![forbid(unsafe_code)]

use serverless_in_the_wild::prelude::*;

fn main() {
    // 1. The daemon: four shard threads, the paper's default policy.
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards: 4,
        policy: PolicySpec::Hybrid(HybridConfig::default()),
        ..ServeConfig::default()
    })
    .expect("server start");
    println!("daemon on {} (4 shards, hybrid policy)", server.addr());

    // 2. Replay one synthetic day at maximum speed.
    let report = run_loadgen(
        server.addr(),
        &LoadGenConfig {
            apps: 300,
            horizon_ms: DAY_MS,
            cap_per_day: 500.0,
            connections: 2,
            window: 64,
            max_events: 50_000,
            ..LoadGenConfig::default()
        },
    )
    .expect("loadgen");
    println!("{}", report.summary());

    // 3. What the server saw, per shard.
    let metrics = server.metrics();
    for shard in &metrics.shards {
        let p99 = shard
            .latency_us
            .iter()
            .find(|(q, _)| *q == 0.99)
            .map(|(_, v)| *v)
            .unwrap_or(0.0);
        println!(
            "shard {}: {} apps, {} invocations, {} cold, decision p99 {:.1} µs",
            shard.shard, shard.apps, shard.invocations, shard.cold, p99
        );
    }
    assert_eq!(metrics.invocations(), report.ok);

    // 4. Graceful shutdown returns the final state.
    let snapshot = server.shutdown().expect("shutdown");
    println!(
        "stopped; final state covers {} apps under policy {}",
        snapshot.apps.len(),
        snapshot.policy_label
    );

    // 5. The same replay over SITW-BIN frames (batch 64) on a fresh
    // daemon: the binary path end to end, with its frame counters.
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards: 4,
        policy: PolicySpec::Hybrid(HybridConfig::default()),
        ..ServeConfig::default()
    })
    .expect("server start");
    let bin_report = run_loadgen(
        server.addr(),
        &LoadGenConfig {
            apps: 300,
            horizon_ms: DAY_MS,
            cap_per_day: 500.0,
            connections: 2,
            window: 128,
            max_events: 50_000,
            proto: Proto::Bin { batch: 64 },
            ..LoadGenConfig::default()
        },
    )
    .expect("bin loadgen");
    println!("SITW-BIN: {}", bin_report.summary());
    println!(
        "JSON {:.0}/s vs SITW-BIN(batch=64) {:.0}/s = {:.2}x",
        report.throughput,
        bin_report.throughput,
        bin_report.throughput / report.throughput
    );

    let metrics = server.metrics();
    println!(
        "frames {} | batched decisions {} | protocol errors {}",
        metrics.proto.frames, metrics.proto.batched_decisions, metrics.proto.proto_errors
    );
    assert_eq!(metrics.invocations(), bin_report.ok);
    assert!(metrics.proto.frames > 0, "binary path must serve frames");
    assert_eq!(metrics.proto.batched_decisions, bin_report.ok);
    assert_eq!(metrics.proto.proto_errors, 0);
    // The Prometheus rendering exposes the same counters.
    let text = metrics.render();
    assert!(text.contains("sitw_serve_frames_total"), "{text}");
    assert!(
        text.contains("sitw_serve_batched_decisions_total"),
        "{text}"
    );
    assert!(text.contains("sitw_serve_proto_errors_total"), "{text}");

    // 6. The flight-recorder telemetry riding the same report: exact
    // log2 histograms per pipeline stage (invocation-weighted, so every
    // stage's count equals decisions served) plus reactor introspection.
    for (stage, h) in metrics.stage_hists() {
        if let (Some(mean), Some(p99)) = (h.bin.mean(), h.bin.quantile(0.99)) {
            println!(
                "stage {stage:>6}: {:>6} decisions, mean {:>7.1} µs, p99 ≤ {:>7.1} µs",
                h.bin.count(),
                mean / 1_000.0,
                p99 / 1_000.0
            );
        }
    }
    for r in &metrics.reactors {
        println!(
            "reactor {}: {} epoll_waits, {} wakeups, mean {:.1} events/wake",
            r.reactor,
            r.epoll_waits,
            r.wakeups,
            r.events_per_wake.mean().unwrap_or(0.0)
        );
    }
    let (name, decide) = &metrics.stage_hists()[3];
    assert_eq!(*name, "decide");
    assert_eq!(
        decide.bin.count(),
        bin_report.ok,
        "decide stage must count every decision exactly once"
    );

    server.shutdown().expect("shutdown");
    println!("binary-protocol quickstart ok");
}
