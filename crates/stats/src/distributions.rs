//! Continuous distributions used by the workload model.
//!
//! The paper publishes two parametric fits the generator must reproduce:
//!
//! * Function execution times: log-normal with log-mean −0.38 and σ 2.36
//!   (Figure 7, time in seconds);
//! * Per-application allocated memory: Burr XII with c = 11.652,
//!   k = 0.221, λ = 107.083 (Figure 8, memory in MB).
//!
//! All distributions implement [`ContinuousDist`] with analytic CDFs and
//! quantile functions, so sampling is inverse-transform from a caller-owned
//! RNG — deterministic given a seed and independent of `rand`'s own
//! distribution machinery.

use rand::Rng;

/// A continuous distribution with analytic pdf/cdf/quantile and
/// inverse-transform sampling.
pub trait ContinuousDist {
    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;

    /// Cumulative probability `P(X ≤ x)`.
    fn cdf(&self, x: f64) -> f64;

    /// Inverse CDF: the value at cumulative probability `q ∈ [0, 1]`.
    fn quantile(&self, q: f64) -> f64;

    /// Draws one sample by inverse transform.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // `random::<f64>` is uniform on [0, 1); nudge away from exact 0
        // where some quantile functions are -inf.
        let u = rng.random::<f64>().max(f64::MIN_POSITIVE);
        self.quantile(u)
    }

    /// Draws `n` samples.
    fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Error function approximation (Abramowitz & Stegun 7.1.26, max abs error
/// 1.5e-7), sufficient for CDF evaluation and goodness-of-fit checks.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal CDF.
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal quantile (Acklam's rational approximation, relative
/// error below 1.15e-9 — more than enough for inverse-transform sampling).
pub fn std_normal_quantile(q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile needs q in [0,1]");
    if q == 0.0 {
        return f64::NEG_INFINITY;
    }
    if q == 1.0 {
        return f64::INFINITY;
    }
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if q < P_LOW {
        let r = (-2.0 * q.ln()).sqrt();
        (((((C[0] * r + C[1]) * r + C[2]) * r + C[3]) * r + C[4]) * r + C[5])
            / ((((D[0] * r + D[1]) * r + D[2]) * r + D[3]) * r + 1.0)
    } else if q <= 1.0 - P_LOW {
        let r = q - 0.5;
        let s = r * r;
        (((((A[0] * s + A[1]) * s + A[2]) * s + A[3]) * s + A[4]) * s + A[5]) * r
            / (((((B[0] * s + B[1]) * s + B[2]) * s + B[3]) * s + B[4]) * s + 1.0)
    } else {
        let r = (-2.0 * (1.0 - q).ln()).sqrt();
        -(((((C[0] * r + C[1]) * r + C[2]) * r + C[3]) * r + C[4]) * r + C[5])
            / ((((D[0] * r + D[1]) * r + D[2]) * r + D[3]) * r + 1.0)
    }
}

/// Normal distribution `N(mean, std²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    /// Mean of the distribution.
    pub mean: f64,
    /// Standard deviation (must be positive).
    pub std: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `std > 0` and both parameters are finite.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(std > 0.0 && std.is_finite() && mean.is_finite());
        Self { mean, std }
    }
}

impl ContinuousDist for Normal {
    fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std;
        (-0.5 * z * z).exp() / (self.std * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn cdf(&self, x: f64) -> f64 {
        std_normal_cdf((x - self.mean) / self.std)
    }

    fn quantile(&self, q: f64) -> f64 {
        self.mean + self.std * std_normal_quantile(q)
    }
}

/// Log-normal distribution: `ln X ~ N(mu, sigma²)`.
///
/// The paper's execution-time fit is `LogNormal { mu: -0.38, sigma: 2.36 }`
/// with `X` in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    /// Mean of `ln X`.
    pub mu: f64,
    /// Standard deviation of `ln X` (must be positive).
    pub sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `sigma > 0` and both parameters are finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma > 0.0 && sigma.is_finite() && mu.is_finite());
        Self { mu, sigma }
    }

    /// The paper's MLE fit for average function execution times, in
    /// seconds (Figure 7).
    pub fn execution_time_fit() -> Self {
        Self::new(-0.38, 2.36)
    }

    /// Maximum-likelihood fit from positive samples: `mu` and `sigma` are
    /// the mean and (population) std of the logs.
    ///
    /// Returns `None` when fewer than 2 positive samples exist or the logs
    /// are degenerate.
    pub fn fit_mle(samples: &[f64]) -> Option<Self> {
        let logs: Vec<f64> = samples
            .iter()
            .filter(|&&x| x > 0.0)
            .map(|x| x.ln())
            .collect();
        if logs.len() < 2 {
            return None;
        }
        let n = logs.len() as f64;
        let mu = logs.iter().sum::<f64>() / n;
        let var = logs.iter().map(|l| (l - mu).powi(2)).sum::<f64>() / n;
        let sigma = var.sqrt();
        (sigma > 0.0).then(|| Self::new(mu, sigma))
    }

    /// Median of the distribution (`e^mu`).
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }
}

impl ContinuousDist for LogNormal {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (x * self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        std_normal_cdf((x.ln() - self.mu) / self.sigma)
    }

    fn quantile(&self, q: f64) -> f64 {
        (self.mu + self.sigma * std_normal_quantile(q)).exp()
    }
}

/// Burr XII distribution with scale λ:
/// `F(x) = 1 − (1 + (x/λ)^c)^(−k)`.
///
/// The paper's fit for average allocated memory per application is
/// `Burr { c: 11.652, k: 0.221, lambda: 107.083 }` with `X` in MB
/// (Figure 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Burr {
    /// First shape parameter (c > 0).
    pub c: f64,
    /// Second shape parameter (k > 0).
    pub k: f64,
    /// Scale parameter (λ > 0).
    pub lambda: f64,
}

impl Burr {
    /// Creates a Burr XII distribution.
    ///
    /// # Panics
    ///
    /// Panics unless all parameters are positive and finite.
    pub fn new(c: f64, k: f64, lambda: f64) -> Self {
        assert!(c > 0.0 && k > 0.0 && lambda > 0.0);
        assert!(c.is_finite() && k.is_finite() && lambda.is_finite());
        Self { c, k, lambda }
    }

    /// The paper's fit for average allocated memory per application, in MB
    /// (Figure 8).
    pub fn memory_fit() -> Self {
        Self::new(11.652, 0.221, 107.083)
    }
}

impl ContinuousDist for Burr {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let r = x / self.lambda;
        let rc = r.powf(self.c);
        self.c * self.k / self.lambda * r.powf(self.c - 1.0) * (1.0 + rc).powf(-self.k - 1.0)
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        1.0 - (1.0 + (x / self.lambda).powf(self.c)).powf(-self.k)
    }

    fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if q == 0.0 {
            return 0.0;
        }
        if q == 1.0 {
            return f64::INFINITY;
        }
        self.lambda * ((1.0 - q).powf(-1.0 / self.k) - 1.0).powf(1.0 / self.c)
    }
}

/// Exponential distribution with the given rate (events per unit time);
/// the IAT distribution of a Poisson arrival process (§3.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    /// Rate parameter (λ > 0).
    pub rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `rate > 0` and finite.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite());
        Self { rate }
    }

    /// Mean inter-arrival time (`1 / rate`).
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }
}

impl ContinuousDist for Exponential {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            1.0 - (-self.rate * x).exp()
        }
    }

    fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        -(1.0 - q).ln() / self.rate
    }
}

/// Pareto (type I) distribution: heavy-tailed IATs for bursty applications
/// (CV > 1 in Figure 6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    /// Minimum value / scale (x_m > 0).
    pub xm: f64,
    /// Tail index (α > 0); CV is finite only for α > 2.
    pub alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are positive and finite.
    pub fn new(xm: f64, alpha: f64) -> Self {
        assert!(xm > 0.0 && alpha > 0.0);
        assert!(xm.is_finite() && alpha.is_finite());
        Self { xm, alpha }
    }

    /// Mean, finite for `alpha > 1`.
    pub fn mean(&self) -> Option<f64> {
        (self.alpha > 1.0).then(|| self.alpha * self.xm / (self.alpha - 1.0))
    }
}

impl ContinuousDist for Pareto {
    fn pdf(&self, x: f64) -> f64 {
        if x < self.xm {
            0.0
        } else {
            self.alpha * self.xm.powf(self.alpha) / x.powf(self.alpha + 1.0)
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.xm {
            0.0
        } else {
            1.0 - (self.xm / x).powf(self.alpha)
        }
    }

    fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if q == 1.0 {
            return f64::INFINITY;
        }
        self.xm / (1.0 - q).powf(1.0 / self.alpha)
    }
}

/// Uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Exclusive upper bound.
    pub hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `lo < hi` and both are finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo < hi && lo.is_finite() && hi.is_finite());
        Self { lo, hi }
    }
}

impl ContinuousDist for Uniform {
    fn pdf(&self, x: f64) -> f64 {
        if x >= self.lo && x < self.hi {
            1.0 / (self.hi - self.lo)
        } else {
            0.0
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        ((x - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0)
    }

    fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        self.lo + q * (self.hi - self.lo)
    }
}

/// A distribution specified by its quantile function at a set of anchor
/// points, interpolated **linearly in log10 of the value**.
///
/// This is how the synthetic workload reproduces the paper's published
/// quantile anchors directly — e.g. Figure 5(a): 45% of applications are
/// invoked at most once per hour (24/day) and 81% at most once per minute
/// (1440/day), over a total range of 8 orders of magnitude.
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseLogQuantile {
    anchors: Vec<(f64, f64)>,
}

impl PiecewiseLogQuantile {
    /// Creates the distribution from `(cumulative_fraction, value)` anchor
    /// points.
    ///
    /// # Panics
    ///
    /// Panics unless there are ≥ 2 anchors, fractions start at 0 and end
    /// at 1 and strictly increase, and values are positive and
    /// non-decreasing.
    pub fn new(anchors: Vec<(f64, f64)>) -> Self {
        assert!(anchors.len() >= 2, "need at least two anchors");
        assert_eq!(anchors[0].0, 0.0, "first anchor must be at q=0");
        assert_eq!(anchors.last().unwrap().0, 1.0, "last anchor must be at q=1");
        for w in anchors.windows(2) {
            assert!(w[0].0 < w[1].0, "anchor fractions must strictly increase");
            assert!(w[0].1 <= w[1].1, "anchor values must be non-decreasing");
        }
        assert!(anchors.iter().all(|&(_, v)| v > 0.0 && v.is_finite()));
        Self { anchors }
    }

    /// The anchor points.
    pub fn anchors(&self) -> &[(f64, f64)] {
        &self.anchors
    }
}

impl ContinuousDist for PiecewiseLogQuantile {
    // The distribution is quantile-defined; the density is the numerical
    // derivative of the CDF (central difference, step scaled to x).
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let h = (x * 1e-6).max(1e-12);
        ((self.cdf(x + h) - self.cdf(x - h)) / (2.0 * h)).max(0.0)
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= self.anchors[0].1 {
            return 0.0;
        }
        if x >= self.anchors.last().unwrap().1 {
            return 1.0;
        }
        let lx = x.log10();
        for w in self.anchors.windows(2) {
            let (q0, v0) = w[0];
            let (q1, v1) = w[1];
            if x >= v0 && x <= v1 {
                if v1 == v0 {
                    return q1;
                }
                let t = (lx - v0.log10()) / (v1.log10() - v0.log10());
                return q0 + t * (q1 - q0);
            }
        }
        1.0
    }

    fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        for w in self.anchors.windows(2) {
            let (q0, v0) = w[0];
            let (q1, v1) = w[1];
            if q >= q0 && q <= q1 {
                let t = if q1 == q0 { 0.0 } else { (q - q0) / (q1 - q0) };
                let lv = v0.log10() + t * (v1.log10() - v0.log10());
                return 10f64.powf(lv);
            }
        }
        self.anchors.last().unwrap().1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_quantile_roundtrip<D: ContinuousDist>(d: &D, qs: &[f64], tol: f64) {
        for &q in qs {
            let x = d.quantile(q);
            let back = d.cdf(x);
            assert!(
                (back - q).abs() < tol,
                "cdf(quantile({q})) = {back}, expected {q}"
            );
        }
    }

    #[test]
    fn erf_known_values() {
        // The A&S 7.1.26 polynomial has ~1e-9 residual at 0.
        assert!((erf(0.0)).abs() < 1e-8);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(3.0) - 0.9999779095).abs() < 1e-6);
    }

    #[test]
    fn std_normal_quantile_inverts_cdf() {
        for q in [0.001, 0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99, 0.999] {
            let x = std_normal_quantile(q);
            assert!((std_normal_cdf(x) - q).abs() < 1e-6, "q={q}");
        }
        assert_eq!(std_normal_quantile(0.5), 0.0);
    }

    #[test]
    fn lognormal_paper_fit_median_below_one_second() {
        // §3.4: "50% of the functions execute for less than 1s on average".
        let d = LogNormal::execution_time_fit();
        assert!(d.median() < 1.0);
        assert!((d.cdf(1.0) - 0.5).abs() < 0.1);
        check_quantile_roundtrip(&d, &[0.01, 0.1, 0.5, 0.9, 0.99], 1e-6);
    }

    #[test]
    fn lognormal_mle_recovers_parameters() {
        let truth = LogNormal::new(1.5, 0.7);
        let mut rng = StdRng::seed_from_u64(7);
        let samples = truth.sample_n(&mut rng, 20_000);
        let fit = LogNormal::fit_mle(&samples).unwrap();
        assert!((fit.mu - truth.mu).abs() < 0.05, "mu {}", fit.mu);
        assert!(
            (fit.sigma - truth.sigma).abs() < 0.05,
            "sigma {}",
            fit.sigma
        );
    }

    #[test]
    fn lognormal_fit_rejects_degenerate() {
        assert!(LogNormal::fit_mle(&[]).is_none());
        assert!(LogNormal::fit_mle(&[1.0]).is_none());
        assert!(LogNormal::fit_mle(&[2.0, 2.0, 2.0]).is_none());
        assert!(LogNormal::fit_mle(&[-1.0, 0.0]).is_none());
    }

    #[test]
    fn burr_paper_fit_shape() {
        // Figure 8: 50% of applications allocate at most ~170MB and 90%
        // stay below ~400MB; the Burr fit should be in that ballpark.
        let d = Burr::memory_fit();
        let median = d.quantile(0.5);
        assert!(
            (100.0..250.0).contains(&median),
            "median memory {median} MB"
        );
        let p90 = d.quantile(0.9);
        assert!((150.0..600.0).contains(&p90), "p90 memory {p90} MB");
        check_quantile_roundtrip(&d, &[0.05, 0.25, 0.5, 0.75, 0.95], 1e-9);
    }

    #[test]
    fn exponential_mean_and_roundtrip() {
        let d = Exponential::new(0.25);
        assert_eq!(d.mean(), 4.0);
        check_quantile_roundtrip(&d, &[0.1, 0.5, 0.9, 0.99], 1e-9);

        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000;
        let mean = d.sample_n(&mut rng, n).iter().sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "sample mean {mean}");
    }

    #[test]
    fn exponential_cv_is_one() {
        let d = Exponential::new(2.0);
        let mut rng = StdRng::seed_from_u64(13);
        let mut w = crate::Welford::new();
        for _ in 0..50_000 {
            w.push(d.sample(&mut rng));
        }
        assert!((w.cv() - 1.0).abs() < 0.05, "cv {}", w.cv());
    }

    #[test]
    fn pareto_tail_and_mean() {
        let d = Pareto::new(1.0, 2.5);
        assert_eq!(d.cdf(0.5), 0.0);
        check_quantile_roundtrip(&d, &[0.1, 0.5, 0.9, 0.999], 1e-9);
        let mean = d.mean().unwrap();
        assert!((mean - 2.5 / 1.5).abs() < 1e-12);
        assert!(Pareto::new(1.0, 0.9).mean().is_none());
    }

    #[test]
    fn pareto_heavy_tail_cv_above_one() {
        // α = 2.2 gives CV = sqrt(α / (α−2)) / (α−1) … > 1.
        let d = Pareto::new(1.0, 2.2);
        let mut rng = StdRng::seed_from_u64(17);
        let mut w = crate::Welford::new();
        for _ in 0..200_000 {
            w.push(d.sample(&mut rng));
        }
        assert!(w.cv() > 1.0, "cv {}", w.cv());
    }

    #[test]
    fn uniform_basics() {
        let d = Uniform::new(2.0, 4.0);
        assert_eq!(d.cdf(3.0), 0.5);
        assert_eq!(d.quantile(0.25), 2.5);
        assert_eq!(d.pdf(3.0), 0.5);
        assert_eq!(d.pdf(5.0), 0.0);
    }

    #[test]
    fn normal_symmetry() {
        let d = Normal::new(10.0, 2.0);
        assert!((d.cdf(10.0) - 0.5).abs() < 1e-9);
        assert!((d.quantile(0.5) - 10.0).abs() < 1e-9);
        assert!((d.cdf(12.0) + d.cdf(8.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn piecewise_log_quantile_hits_anchors() {
        // Figure 5(a) anchors for applications (invocations per day).
        let d = PiecewiseLogQuantile::new(vec![
            (0.0, 0.05),
            (0.45, 24.0),
            (0.81, 1440.0),
            (0.96, 1e5),
            (1.0, 5e6),
        ]);
        assert!((d.quantile(0.45) - 24.0).abs() < 1e-9);
        assert!((d.quantile(0.81) - 1440.0).abs() < 1e-9);
        assert!((d.cdf(24.0) - 0.45).abs() < 1e-9);
        assert!((d.cdf(1440.0) - 0.81).abs() < 1e-9);
        // 8 orders of magnitude end to end.
        assert!(d.quantile(1.0) / d.quantile(0.0) >= 1e7);
    }

    #[test]
    fn piecewise_log_quantile_pdf_integrates_cdf() {
        let d = PiecewiseLogQuantile::new(vec![(0.0, 1.0), (0.5, 10.0), (1.0, 1000.0)]);
        // Riemann sum of the numerical pdf over the support ≈ 1.
        let grid = crate::ecdf::log_grid(1.0, 1000.0, 4000);
        let mut integral = 0.0;
        for w in grid.windows(2) {
            integral += d.pdf(0.5 * (w[0] + w[1])) * (w[1] - w[0]);
        }
        assert!((integral - 1.0).abs() < 0.02, "integral {integral}");
        assert_eq!(d.pdf(0.0), 0.0);
    }

    #[test]
    fn piecewise_log_quantile_monotone() {
        let d = PiecewiseLogQuantile::new(vec![(0.0, 1.0), (0.5, 10.0), (1.0, 1000.0)]);
        let mut prev = 0.0;
        for i in 0..=100 {
            let v = d.quantile(i as f64 / 100.0);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn sampling_respects_seed_determinism() {
        let d = LogNormal::execution_time_fit();
        let a = d.sample_n(&mut StdRng::seed_from_u64(99), 16);
        let b = d.sample_n(&mut StdRng::seed_from_u64(99), 16);
        assert_eq!(a, b);
    }
}
