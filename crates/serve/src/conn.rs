//! Per-connection state machine, driven by a reactor thread over a
//! non-blocking socket.
//!
//! One [`Conn`] owns everything a connection needs between readiness
//! events: the incremental parse buffer ([`ConnBuf`]), the output buffer
//! with a partial-write cursor, and the **response pipeline** — a single
//! ordered queue of [`Slot`]s, one per inbound message, that unifies
//! what used to be two mechanisms (the JSON reorder map and the SITW-BIN
//! `FramePipeline`). Every message — JSON decision, binary frame,
//! control request, protocol error — occupies one slot in arrival
//! order; shard replies complete their slot out of band; responses are
//! rendered strictly from the head. Response ordering across protocol
//! switches therefore holds *by construction*, with no blocking drains:
//! the old thread-per-connection code had to settle all in-flight frames
//! before an HTTP response could be written, the pipeline just queues
//! the HTTP response behind them.
//!
//! The hot paths allocate nothing in steady state: the request scratch
//! and record buffer are reused across messages, decisions render
//! through a reusable body scratch straight into the output buffer, and
//! the output buffer itself persists across requests (shrunk when a
//! burst inflates it). The per-record app-id `String` handed to the
//! shard is the one remaining allocation — the shard map needs an owned
//! key — and it is part of the dispatched message, not the connection.
//!
//! Failure handling mirrors the blocking server exactly, restated for an
//! event loop:
//! * recoverable SITW-BIN errors join the pipeline as typed error
//!   frames;
//! * fatal errors (bad version, oversized payload, HTTP 413) queue
//!   their response, then put the connection in **lame-duck**: the
//!   response is flushed, the write side is shut down (response + FIN,
//!   never an RST racing the response), and reads are discarded until
//!   the peer closes, a byte budget runs out, or a deadline passes;
//! * a half-received message that stops making progress for
//!   [`crate::server::ServeConfig::idle_timeout`] is a slowloris and is
//!   disconnected by the reactor's sweep. Fully idle keep-alive
//!   connections are never timed out — mostly idle fleets are the
//!   workload this server exists for.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::{Shutdown, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use sitw_reactor::Interest;
use sitw_telemetry::{SpanEvent, Stage};

use crate::http::{write_response, ConnBuf, DrainOutcome, ReadEvent, Request};
use crate::reactor::ReactorIo;
use crate::server::{handle_control, parse_and_route};
use crate::shard::BatchReply;
use crate::shard::{BatchItem, Decision, InvokeError, InvokeReply, ShardMsg};
use crate::telem::ReactorTelemHandle;
use crate::wire::{self, push_u64, BinErrorCode, BinInvoke, ControlRequest};

/// Stop reading a connection whose un-written output backlog exceeds
/// this (a client that pipelines but never reads must not buffer
/// unbounded responses server-side).
const OUT_BACKPRESSURE_BYTES: usize = 256 * 1024;

/// Defer the socket write while responses are still completing and the
/// backlog is below this. Shard replies arrive a few at a time; writing
/// on every reply wake costs a `write(2)` per decision where the
/// blocking server paid one per pipelined burst. Deferral is safe
/// because a non-empty pipeline always receives its remaining replies —
/// the flush is only postponed, never lost — and a drained pipeline
/// (the client is now waiting on us) always flushes immediately.
const WRITE_COALESCE_BYTES: usize = 32 * 1024;

/// Shrink thresholds for the output buffer after a burst.
const OUT_SHRINK_ABOVE: usize = 256 * 1024;
const OUT_SHRINK_TO: usize = 64 * 1024;

/// Lame-duck discard budget: how many request bytes we absorb after a
/// fatal error so the close delivers the error response + FIN instead of
/// an RST (same rationale as the blocking `drain_for_close`).
const LAME_BUDGET: usize = 2 * crate::http::MAX_BODY_BYTES;

/// Lame-duck linger: how long we wait for the peer to take the FIN.
const LAME_LINGER: Duration = Duration::from_secs(1);

/// What the reactor should do with the connection after a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Flow {
    /// Keep serving.
    Keep,
    /// Retire the connection (drop closes the socket).
    Close,
}

/// One response slot: an inbound message awaiting (or holding) its
/// response. Completed in place, rendered strictly in arrival order.
enum Slot {
    /// A dispatched JSON `/invoke` decision; completed by the shard's
    /// [`InvokeReply`].
    Json {
        /// Telemetry span id (0 when disabled).
        span: u64,
        done: Option<Result<Decision, InvokeError>>,
    },
    /// A dispatched SITW-BIN frame; each shard's [`BatchReply`] fills
    /// its records, `remaining` counts shards still owing one.
    Frame {
        version: u8,
        remaining: usize,
        /// Telemetry span id of the frame (0 when disabled).
        span: u64,
        results: Vec<Option<Result<Decision, InvokeError>>>,
    },
    /// A typed SITW-BIN error frame queued behind earlier messages.
    BinError { code: BinErrorCode, detail: String },
    /// A control request (health, metrics, admin), *executed at flush
    /// time* — exactly when every earlier message has answered — so
    /// admin side effects and scrape visibility keep the blocking
    /// server's settle-then-serve semantics.
    Control(Request),
    /// A SITW-BIN control frame (cluster budget reconciliation), also
    /// executed at flush time for the same settle-then-serve reason: a
    /// usage report answers only after every earlier decision charged
    /// its ledger, and a budget push lands between frames, never inside
    /// one.
    Ctrl(ControlRequest),
    /// A fully rendered HTTP response (invoke parse errors, 413s).
    Http(Vec<u8>),
}

impl Slot {
    fn is_complete(&self) -> bool {
        match self {
            Slot::Json { done, .. } => done.is_some(),
            Slot::Frame { remaining, .. } => *remaining == 0,
            Slot::BinError { .. } | Slot::Control(_) | Slot::Ctrl(_) | Slot::Http(_) => true,
        }
    }
}

/// The ordered response pipeline (see the module docs).
struct Pipeline {
    /// In-flight slots, oldest first; `slots[i]` has sequence
    /// `front_seq + i` (sequences are dense, so reply slotting is O(1)).
    slots: VecDeque<Slot>,
    front_seq: u64,
    next_seq: u64,
    /// Decisions in flight: one per JSON request, one per record across
    /// frames — the `pipeline_window` backpressure unit.
    inflight: usize,
}

impl Pipeline {
    fn new() -> Pipeline {
        Pipeline {
            slots: VecDeque::new(),
            front_seq: 0,
            next_seq: 0,
            inflight: 0,
        }
    }

    fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Appends a slot, returning its sequence number.
    fn push(&mut self, slot: Slot) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.slots.push_back(slot);
        seq
    }

    // sitw-lint: hot-path
    fn absorb_invoke(&mut self, reply: InvokeReply) {
        let Some(idx) = reply.seq.checked_sub(self.front_seq) else {
            return;
        };
        if let Some(Slot::Json { done, .. }) = self.slots.get_mut(idx as usize) {
            *done = Some(reply.result);
        }
    }

    // sitw-lint: hot-path
    fn absorb_batch(&mut self, reply: BatchReply) {
        let Some(idx) = reply.frame_seq.checked_sub(self.front_seq) else {
            return;
        };
        if let Some(Slot::Frame {
            results, remaining, ..
        }) = self.slots.get_mut(idx as usize)
        {
            for (i, result) in reply.results {
                // A record index beyond the frame is a malformed reply;
                // indexing would panic the whole reactor thread for one
                // bad message, so drop the record instead. The slot still
                // completes and any hole renders as a typed error.
                if let Some(r) = results.get_mut(i as usize) {
                    *r = Some(result);
                }
            }
            // Saturate: a duplicate reply must not wrap `remaining` and
            // resurrect a settled frame.
            *remaining = remaining.saturating_sub(1);
        }
    }
}

/// Lame-duck drain state after a fatal error's response went out.
struct Lame {
    deadline: Instant,
    budget: usize,
}

/// One connection owned by a reactor thread.
pub(crate) struct Conn {
    buf: ConnBuf,
    token: u64,
    /// Pending output and the partial-write cursor into it.
    out: Vec<u8>,
    out_pos: usize,
    /// Reusable parse targets (see [`ConnBuf::read_event_into`]).
    req: Request,
    records: Vec<BinInvoke>,
    pipeline: Pipeline,
    /// Interest currently registered with epoll.
    read_armed: bool,
    write_armed: bool,
    /// The peer half-closed cleanly; settle and retire.
    read_eof: bool,
    /// Stop reading new requests (client `Connection: close`, or server
    /// shutdown); settle and retire.
    close_requested: bool,
    /// A fatal response is queued: once it flushes, half-close and go
    /// lame-duck.
    fatal: bool,
    lame: Option<Lame>,
    /// When the buffered partial message stopped making progress — the
    /// slowloris clock. `None` while no partial message is pending.
    partial_since: Option<Instant>,
    /// Read backpressure latch. Set when in-flight decisions or the
    /// output backlog hit their high-water marks, cleared only at the
    /// low-water marks: without the hysteresis, a client that pins its
    /// pipeline window full would toggle epoll read interest (two
    /// `epoll_ctl` syscalls) around *every* decision.
    paused: bool,
    /// A write hit `WouldBlock` with bytes left: EPOLLOUT is wanted and
    /// writes flush on writability instead of waiting for coalescing.
    write_blocked: bool,
    /// Telemetry spans rendered into `out` but not yet flushed:
    /// `(span, is_bin, decisions)`. Their write-stage spans are recorded
    /// when the buffer fully flushes (partial writes keep them pending);
    /// a frame's write cost is amortized over its `decisions` records so
    /// every stage histogram stays invocation-weighted.
    pending_spans: Vec<(u64, bool, u32)>,
    /// Set while the connection sits on the reactor's touched list.
    pub(crate) dirty: bool,
}

impl Conn {
    /// Adopts an accepted stream: non-blocking, no delay, empty state.
    pub fn new(stream: TcpStream) -> io::Result<Conn> {
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        Ok(Conn {
            buf: ConnBuf::new(stream),
            token: 0,
            out: Vec::new(),
            out_pos: 0,
            req: Request::default(),
            records: Vec::new(),
            pipeline: Pipeline::new(),
            read_armed: true,
            write_armed: false,
            read_eof: false,
            close_requested: false,
            fatal: false,
            lame: None,
            partial_since: None,
            paused: false,
            write_blocked: false,
            pending_spans: Vec::new(),
            dirty: false,
        })
    }

    /// Records the slab token the reactor filed this connection under.
    pub fn set_token(&mut self, token: u64) {
        self.token = token;
    }

    /// The socket descriptor (for epoll registration).
    pub fn raw_fd(&self) -> RawFd {
        self.buf.stream().as_raw_fd()
    }

    /// Interest the reactor registered at `add` time.
    pub fn initial_interest(&self) -> Interest {
        Interest::READ
    }

    /// Absorbs one shard reply to a JSON decision.
    pub fn on_invoke_reply(&mut self, reply: InvokeReply) {
        self.pipeline.absorb_invoke(reply);
    }

    /// Absorbs one shard reply to (a slice of) a SITW-BIN frame.
    pub fn on_batch_reply(&mut self, reply: BatchReply) {
        self.pipeline.absorb_batch(reply);
    }

    /// Handles one epoll readiness event.
    pub fn on_event(&mut self, readable: bool, hangup: bool, io: &mut ReactorIo<'_>) -> Flow {
        if hangup && !readable {
            // Error/full hang-up with nothing left to deliver.
            return Flow::Close;
        }
        if readable {
            if let Flow::Close = self.on_readable(io) {
                return Flow::Close;
            }
        }
        self.pump(io)
    }

    /// True once nothing is owed in either direction.
    pub fn settled(&self) -> bool {
        self.pipeline.is_empty() && self.out_pos == self.out.len()
    }

    /// Server shutdown: stop taking new requests; the reactor keeps
    /// pumping until the connection settles (or its grace runs out).
    pub fn begin_shutdown(&mut self) {
        self.close_requested = true;
    }

    /// Periodic check: enforce the slowloris idle timeout and the
    /// lame-duck linger.
    pub fn sweep(&mut self, now: Instant, idle_timeout: Duration) -> Flow {
        if let Some(lame) = &self.lame {
            if now >= lame.deadline {
                return Flow::Close;
            }
        }
        if let Some(since) = self.partial_since {
            if now.duration_since(since) >= idle_timeout {
                return Flow::Close;
            }
        }
        Flow::Keep
    }

    /// The readiness the connection wants right now (`paused` is the
    /// backpressure latch maintained by [`Conn::read_paused`]).
    pub fn desired_interest(&self) -> Interest {
        let readable = if self.lame.is_some() {
            true // Keep absorbing until EOF/budget/deadline.
        } else {
            !self.read_eof && !self.close_requested && !self.fatal && !self.paused
        };
        Interest {
            readable,
            // Write readiness only helps a *blocked* write; a deferred
            // (coalescing) write must not arm EPOLLOUT, or the instantly
            // writable socket would defeat the deferral.
            writable: self.write_blocked,
        }
    }

    /// Syncs `desired` against what epoll last heard; returns the new
    /// interest when a `modify` is needed.
    pub fn interest_change(&mut self) -> Option<Interest> {
        let desired = self.desired_interest();
        if desired.readable == self.read_armed && desired.writable == self.write_armed {
            return None;
        }
        self.read_armed = desired.readable;
        self.write_armed = desired.writable;
        Some(desired)
    }

    /// Updates the backpressure latch and reports it. Pauses at the
    /// high-water marks, resumes at half of them. Transitions count on
    /// the owning reactor's telemetry (`/debug/threads`).
    fn read_paused(&mut self, io: &ReactorIo<'_>) -> bool {
        let inflight = self.pipeline.inflight;
        let backlog = self.out.len() - self.out_pos;
        if self.paused {
            if inflight <= io.ctx.cfg.pipeline_window / 2 && backlog < OUT_BACKPRESSURE_BYTES / 2 {
                self.paused = false;
                io.telem.with(|t| t.bp_resumes += 1);
            }
        } else if inflight >= io.ctx.cfg.pipeline_window || backlog >= OUT_BACKPRESSURE_BYTES {
            self.paused = true;
            io.telem.with(|t| t.bp_pauses += 1);
        }
        self.paused
    }

    /// Parses and dispatches everything the socket has for us.
    // sitw-lint: hot-path
    fn on_readable(&mut self, io: &mut ReactorIo<'_>) -> Flow {
        if self.lame.is_some() {
            return self.drain_lame();
        }
        if self.read_eof || self.close_requested || self.fatal {
            return Flow::Keep;
        }
        // The read-stage mark: everything between here and a message
        // parsing out is that message's read time; dispatching advances
        // the mark so back-to-back pipelined messages don't double-count.
        let mut mark = io.telem.now();
        loop {
            if self.read_paused(io) {
                break;
            }
            match self.buf.read_event_into(&mut self.req, &mut self.records) {
                Ok(ReadEvent::Request) => {
                    self.partial_since = None;
                    if let Flow::Close = self.handle_request(io, &mut mark) {
                        return Flow::Close;
                    }
                    if self.close_requested {
                        break;
                    }
                }
                Ok(ReadEvent::Frame { version, trace }) => {
                    self.partial_since = None;
                    if let Flow::Close = self.submit_frame(version, trace, io, &mut mark) {
                        return Flow::Close;
                    }
                }
                Ok(ReadEvent::RawFrame { .. }) => {
                    // Raw passthrough is a proxy-only mode the server
                    // never enables; if it ever surfaces, drop the
                    // connection rather than answer bytes we didn't
                    // decode.
                    self.fatal = true;
                    break;
                }
                Ok(ReadEvent::Ctrl(ctrl)) => {
                    self.partial_since = None;
                    self.pipeline.push(Slot::Ctrl(ctrl));
                }
                Ok(ReadEvent::FrameError {
                    code,
                    detail,
                    recoverable,
                }) => {
                    self.partial_since = None;
                    self.pipeline.push(Slot::BinError { code, detail });
                    if !recoverable {
                        // The stream cannot be resynchronized: answer in
                        // order, then half-close and drain (lame-duck).
                        self.fatal = true;
                        break;
                    }
                }
                Ok(ReadEvent::Eof) => {
                    self.read_eof = true;
                    break;
                }
                Ok(ReadEvent::Timeout) => {
                    // Socket drained. A leftover partial message — or an
                    // unfinished malformed-frame skip, whose bytes the
                    // peer still owes us — starts the slowloris clock;
                    // progress resets it above.
                    if self.buf.buffered() > 0 || self.buf.skipping() {
                        // Wall-clock bookkeeping: the slowloris deadline
                        // is real time, not telemetry time.
                        // sitw-lint: allow(clock-discipline)
                        self.partial_since.get_or_insert_with(Instant::now);
                    } else {
                        self.partial_since = None;
                    }
                    break;
                }
                Ok(ReadEvent::BodyTooLarge { .. }) => {
                    // The body was never read, so the stream cannot be
                    // resynchronized: 413 (in order), then lame-duck.
                    let mut resp = Vec::with_capacity(128);
                    write_response(
                        &mut resp,
                        413,
                        "application/json",
                        b"{\"error\":\"payload too large\"}",
                    );
                    self.pipeline.push(Slot::Http(resp));
                    self.fatal = true;
                    break;
                }
                Err(_) => return Flow::Close, // Malformed request or I/O error.
            }
        }
        Flow::Keep
    }

    /// Queues (and for `/invoke`, dispatches) one parsed HTTP request.
    // sitw-lint: hot-path
    fn handle_request(&mut self, io: &mut ReactorIo<'_>, mark: &mut u64) -> Flow {
        if self.req.close {
            self.close_requested = true;
        }
        if self.req.method == "POST" && self.req.path == "/invoke" {
            let t_read_end = io.telem.now();
            match parse_and_route(&self.req.body, io.ctx) {
                Ok((tenant, shard, inv)) => {
                    let (span, sent_ns) = if io.telem.enabled() {
                        // A propagated fleet trace id becomes the span id,
                        // so the router can pick this request's stages out
                        // of `/debug/trace` by id.
                        let span = match self.req.trace {
                            Some(id) => id,
                            None => io.telem.new_span(),
                        };
                        let sent_ns = io.telem.now();
                        io.telem.with(|t| {
                            t.read.json.record(t_read_end.saturating_sub(*mark));
                            t.decode.json.record(sent_ns.saturating_sub(t_read_end));
                            t.recorder.push(SpanEvent {
                                span,
                                stage: Stage::Read,
                                start_ns: *mark,
                                end_ns: t_read_end,
                            });
                            t.recorder.push(SpanEvent {
                                span,
                                stage: Stage::Decode,
                                start_ns: t_read_end,
                                end_ns: sent_ns,
                            });
                        });
                        *mark = sent_ns;
                        (span, sent_ns)
                    } else {
                        (0, 0)
                    };
                    let seq = self.pipeline.push(Slot::Json { span, done: None });
                    self.pipeline.inflight += 1;
                    let msg = ShardMsg::Invoke {
                        tenant,
                        app: inv.app,
                        ts: inv.ts,
                        seq,
                        span,
                        sent_ns,
                        reply: io.reply_sink(self.token),
                    };
                    if io.ctx.shard_txs[shard].send(msg).is_err() {
                        return Flow::Close; // Shard gone: shutting down.
                    }
                }
                Err(e) => {
                    let mut body = Vec::with_capacity(64);
                    body.extend_from_slice(b"{\"error\":\"");
                    body.extend_from_slice(wire::json_escape(&e).as_bytes());
                    body.extend_from_slice(b"\"}");
                    let mut resp = Vec::with_capacity(body.len() + 64);
                    write_response(&mut resp, 400, "application/json", &body);
                    self.pipeline.push(Slot::Http(resp));
                }
            }
        } else {
            // Control requests execute when they reach the pipeline
            // head; queue the request itself (rare path, one clone).
            let queued = self.req.clone(); // sitw-lint: allow(hot-path-alloc)
            self.pipeline.push(Slot::Control(queued));
        }
        Flow::Keep
    }

    /// Dispatches one SITW-BIN frame to the shards without waiting:
    /// records are partitioned by `(tenant, app)` route, each shard gets
    /// its whole slice in **one** mailbox message, and a frame slot
    /// joins the pipeline to be reassembled in order as the
    /// [`BatchReply`]s come back.
    // sitw-lint: hot-path
    fn submit_frame(
        &mut self,
        version: u8,
        trace: Option<u64>,
        io: &mut ReactorIo<'_>,
        mark: &mut u64,
    ) -> Flow {
        let ctx = io.ctx;
        let n = self.records.len();
        let t_read_end = io.telem.now();
        ctx.frames.fetch_add(1, Ordering::Relaxed);
        let shards = ctx.shard_txs.len();
        if io.per_shard.len() < shards {
            // One-time per-reactor scratch warmup, not steady state.
            // sitw-lint: allow(hot-path-alloc)
            io.per_shard.resize_with(shards, Vec::new);
        }
        {
            // A poisoned registry lock means an admin writer panicked;
            // reads are still coherent (the registry is append-only
            // tenant config), so recover the guard instead of poisoning
            // every reactor thread too.
            let registry = match ctx.registry.read() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            for (idx, rec) in self.records.drain(..).enumerate() {
                if registry.get(rec.tenant).is_none() {
                    for slice in io.per_shard.iter_mut() {
                        slice.clear();
                    }
                    self.pipeline.push(Slot::BinError {
                        code: BinErrorCode::Malformed,
                        // Cold error path: the frame is rejected anyway.
                        // sitw-lint: allow(hot-path-alloc)
                        detail: format!("record {idx}: unknown tenant id {}", rec.tenant),
                    });
                    return Flow::Keep;
                }
                let shard = registry.shard_of(rec.tenant, &rec.app, shards);
                io.per_shard[shard].push(BatchItem {
                    idx: idx as u32,
                    tenant: rec.tenant,
                    app: rec.app,
                    ts: rec.ts,
                });
            }
        }
        // One span covers the whole frame: read ends where decode
        // (partitioning) starts, and decode ends at dispatch. A
        // propagated fleet trace id becomes the frame's span id.
        let (span, sent_ns) = if io.telem.enabled() {
            let span = match trace {
                Some(id) => id,
                None => io.telem.new_span(),
            };
            let sent_ns = io.telem.now();
            // Frame costs are amortized per record so the bin stage
            // histograms stay invocation-weighted like the json ones.
            let per = |dt: u64| dt / n.max(1) as u64;
            io.telem.with(|t| {
                t.read
                    .bin
                    .record_n(per(t_read_end.saturating_sub(*mark)), n as u64);
                t.decode
                    .bin
                    .record_n(per(sent_ns.saturating_sub(t_read_end)), n as u64);
                t.recorder.push(SpanEvent {
                    span,
                    stage: Stage::Read,
                    start_ns: *mark,
                    end_ns: t_read_end,
                });
                t.recorder.push(SpanEvent {
                    span,
                    stage: Stage::Decode,
                    start_ns: t_read_end,
                    end_ns: sent_ns,
                });
            });
            *mark = sent_ns;
            (span, sent_ns)
        } else {
            (0, 0)
        };
        // The frame's sequence is fixed before dispatch; replies cannot
        // overtake the push below because this thread processes them.
        let frame_seq = self.pipeline.next_seq;
        let mut expected = 0usize;
        for shard in 0..shards {
            if io.per_shard[shard].is_empty() {
                continue;
            }
            let msg = ShardMsg::InvokeBatch {
                frame_seq,
                items: std::mem::take(&mut io.per_shard[shard]),
                span,
                sent_ns,
                reply: io.reply_sink(self.token),
            };
            if ctx.shard_txs[shard].send(msg).is_err() {
                // Shard gone (shutting down / panicked). The scratch is
                // reactor-wide: clear the not-yet-taken slices so this
                // dead frame's records cannot leak into the next frame
                // dispatched on this reactor.
                for slice in io.per_shard.iter_mut() {
                    slice.clear();
                }
                return Flow::Close;
            }
            expected += 1;
        }
        let seq = self.pipeline.push(Slot::Frame {
            version,
            remaining: expected,
            span,
            results: vec![None; n],
        });
        debug_assert_eq!(seq, frame_seq);
        self.pipeline.inflight += n;
        Flow::Keep
    }

    /// Renders every complete slot at the pipeline head, writes, and
    /// decides the connection's fate.
    // sitw-lint: hot-path
    pub fn pump(&mut self, io: &mut ReactorIo<'_>) -> Flow {
        loop {
            let t_render_end = self.flush_ready(io);
            let backlog = self.out.len() - self.out_pos;
            if backlog > 0
                && (self.pipeline.is_empty()
                    || backlog >= WRITE_COALESCE_BYTES
                    || self.write_blocked)
            {
                if let Flow::Close = self.write_out(io.telem, t_render_end) {
                    return Flow::Close;
                }
            }
            if self.fatal && self.lame.is_none() && self.settled() {
                // Fatal response delivered: FIN the write side, absorb
                // the rest so the response survives, then retire.
                let _ = self.buf.stream().shutdown(Shutdown::Write);
                self.lame = Some(Lame {
                    // Wall-clock bookkeeping: the linger deadline.
                    // sitw-lint: allow(clock-discipline)
                    deadline: Instant::now() + LAME_LINGER,
                    budget: LAME_BUDGET,
                });
                return self.drain_lame();
            }
            if (self.read_eof || self.close_requested) && self.lame.is_none() && self.settled() {
                return Flow::Close;
            }
            // Backpressure can pause parsing with complete messages
            // already pulled off the socket into the connection buffer;
            // level-triggered epoll will never re-signal those bytes.
            // Once flushing makes room again, resume parsing here — but
            // only while it makes progress (a half-received message
            // legitimately stays buffered).
            let resumable = self.lame.is_none()
                && !self.read_eof
                && !self.close_requested
                && !self.fatal
                && !self.read_paused(io)
                && self.buf.buffered() > 0;
            if !resumable {
                return Flow::Keep;
            }
            let before = (self.pipeline.next_seq, self.buf.buffered());
            if let Flow::Close = self.on_readable(io) {
                return Flow::Close;
            }
            if (self.pipeline.next_seq, self.buf.buffered()) == before {
                return Flow::Keep;
            }
        }
    }

    /// Records the render run of `k` consecutive JSON slots ending now:
    /// one clock read and one recorder lock for the whole run, every
    /// decision recorded at the run mean (counts stay exact). The run's
    /// spans are the last `k` entries of `pending_spans` — nothing else
    /// is pushed between a run's first slot and its boundary.
    // sitw-lint: hot-path
    fn flush_render_run(&self, io: &ReactorIo<'_>, t0: u64, k: u32) -> u64 {
        let t1 = io.telem.now();
        let n = k as u64;
        let mean = t1.saturating_sub(t0).checked_div(n).unwrap_or(0);
        let spans = &self.pending_spans[self.pending_spans.len() - k as usize..];
        io.telem.with(|t| {
            t.render.json.record_n(mean, n);
            for &(span, _, _) in spans {
                t.recorder.push(SpanEvent {
                    span,
                    stage: Stage::Render,
                    start_ns: t0,
                    end_ns: t1,
                });
            }
        });
        t1
    }

    /// Returns the last timestamp it read (0 when it read none), so the
    /// caller can seed the write stage without a redundant clock call.
    // sitw-lint: hot-path
    fn flush_ready(&mut self, io: &mut ReactorIo<'_>) -> u64 {
        if !self.pipeline.slots.front().is_some_and(Slot::is_complete) {
            return 0;
        }
        let mut t0 = io.telem.now();
        // Consecutive JSON slots accumulate and are clocked as one run
        // at the next boundary (frame/control/loop end).
        let mut json_run: u32 = 0;
        while self.pipeline.slots.front().is_some_and(Slot::is_complete) {
            let Some(slot) = self.pipeline.slots.pop_front() else {
                break; // front() above proved non-empty; defensive.
            };
            self.pipeline.front_seq += 1;
            match slot {
                Slot::Json {
                    span,
                    done: Some(done),
                } => {
                    self.pipeline.inflight -= 1;
                    render_json(&mut self.out, io.scratch, done);
                    if io.telem.enabled() {
                        self.pending_spans.push((span, false, 1));
                        json_run += 1;
                    }
                }
                Slot::Json { span, done: None } => {
                    // is_complete() gated the pop, so an undone slot here
                    // means the pipeline invariant broke. Put it back and
                    // stop flushing rather than panic a reactor thread.
                    self.pipeline.front_seq -= 1;
                    self.pipeline
                        .slots
                        .push_front(Slot::Json { span, done: None });
                    break;
                }
                Slot::Frame {
                    version,
                    span,
                    results,
                    ..
                } => {
                    if json_run > 0 {
                        t0 = self.flush_render_run(io, t0, json_run);
                        json_run = 0;
                    }
                    self.pipeline.inflight -= results.len();
                    io.results.clear();
                    // A record left unanswered (a malformed shard reply
                    // was dropped by `absorb_batch`) renders as a typed
                    // rejection instead of panicking mid-render.
                    io.results.extend(
                        results
                            .into_iter()
                            .map(|r| r.unwrap_or(Err(InvokeError::UnknownTenant))),
                    );
                    wire::encode_reply_frame(&mut self.out, version, io.results);
                    io.ctx
                        .batched_decisions
                        .fetch_add(io.results.len() as u64, Ordering::Relaxed);
                    if io.telem.enabled() {
                        let t1 = io.telem.now();
                        let n = io.results.len() as u64;
                        io.telem.with(|t| {
                            t.render.bin.record_n(t1.saturating_sub(t0) / n.max(1), n);
                            t.recorder.push(SpanEvent {
                                span,
                                stage: Stage::Render,
                                start_ns: t0,
                                end_ns: t1,
                            });
                        });
                        self.pending_spans.push((span, true, n as u32));
                        t0 = t1;
                    }
                }
                Slot::BinError { code, detail } => {
                    if json_run > 0 {
                        self.flush_render_run(io, t0, json_run);
                        json_run = 0;
                    }
                    io.ctx.proto_errors.fetch_add(1, Ordering::Relaxed);
                    wire::encode_error_frame(&mut self.out, code, &detail);
                    t0 = io.telem.now();
                }
                Slot::Control(req) => {
                    if json_run > 0 {
                        self.flush_render_run(io, t0, json_run);
                        json_run = 0;
                    }
                    // Executed only now — once every earlier message on
                    // the connection has fully answered. A scrape can
                    // take a while; refresh the render mark after it so
                    // the next slot isn't charged for the control work.
                    handle_control(&req, io.ctx, &mut self.out);
                    t0 = io.telem.now();
                }
                Slot::Ctrl(ctrl) => {
                    if json_run > 0 {
                        self.flush_render_run(io, t0, json_run);
                        json_run = 0;
                    }
                    crate::server::handle_ctrl_frame(&ctrl, io.ctx, &mut self.out);
                    t0 = io.telem.now();
                }
                Slot::Http(bytes) => {
                    if json_run > 0 {
                        self.flush_render_run(io, t0, json_run);
                        json_run = 0;
                    }
                    self.out.extend_from_slice(&bytes);
                    t0 = io.telem.now();
                }
            }
        }
        if json_run > 0 {
            t0 = self.flush_render_run(io, t0, json_run);
        }
        t0
    }

    /// Writes as much pending output as the socket takes; keeps the
    /// cursor for resumption when the kernel buffer fills. Write-stage
    /// spans settle only on a full flush: a partial write keeps its
    /// spans pending so they are charged the whole (resumed) drain.
    ///
    /// `t_hint` is the caller's last clock reading (the render-stage
    /// end, from [`Conn::flush_ready`]); when nonzero it seeds the
    /// write-stage start so the common pump path reads the clock once
    /// less per flush.
    // sitw-lint: hot-path
    fn write_out(&mut self, telem: &ReactorTelemHandle, t_hint: u64) -> Flow {
        let t0 = if t_hint != 0 { t_hint } else { telem.now() };
        let start_pos = self.out_pos;
        while self.out_pos < self.out.len() {
            let mut stream = self.buf.stream();
            match stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return Flow::Close,
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.write_blocked = true;
                    return Flow::Keep;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Flow::Close,
            }
        }
        self.write_blocked = false;
        if self.out_pos > 0 {
            if telem.enabled() {
                let t1 = telem.now();
                let dt = t1.saturating_sub(t0);
                let written = (self.out_pos - start_pos) as u64;
                telem.with(|t| {
                    t.write_bursts.record(written);
                    for &(span, is_bin, n) in &self.pending_spans {
                        let n = n as u64;
                        if is_bin {
                            t.write.bin.record_n(dt / n.max(1), n);
                        } else {
                            t.write.json.record(dt);
                        }
                        t.recorder.push(SpanEvent {
                            span,
                            stage: Stage::Write,
                            start_ns: t0,
                            end_ns: t1,
                        });
                    }
                });
                self.pending_spans.clear();
            }
            self.out.clear();
            self.out_pos = 0;
            if self.out.capacity() > OUT_SHRINK_ABOVE {
                self.out.shrink_to(OUT_SHRINK_TO);
            }
        }
        Flow::Keep
    }

    fn drain_lame(&mut self) -> Flow {
        // Callers only enter with lame set; a missing state just means
        // the connection is not lame-duck after all.
        let Some(lame) = self.lame.as_mut() else {
            return Flow::Keep;
        };
        match self.buf.drain_nonblocking(&mut lame.budget) {
            DrainOutcome::Eof | DrainOutcome::Overflow => Flow::Close,
            DrainOutcome::Pending => {
                // Wall-clock bookkeeping: the linger deadline.
                // sitw-lint: allow(clock-discipline)
                if Instant::now() >= lame.deadline {
                    Flow::Close
                } else {
                    Flow::Keep
                }
            }
        }
    }
}

/// Renders one JSON decision (or rejection) as a full HTTP response,
/// through the reactor's reusable body scratch.
// sitw-lint: hot-path
fn render_json(out: &mut Vec<u8>, scratch: &mut Vec<u8>, result: Result<Decision, InvokeError>) {
    match result {
        Ok(decision) => {
            scratch.clear();
            wire::render_decision(scratch, &decision);
            write_response(out, 200, "application/json", scratch);
        }
        Err(InvokeError::OutOfOrder { last_ts }) => {
            scratch.clear();
            scratch.extend_from_slice(b"{\"error\":\"out-of-order\",\"last_ts\":");
            push_u64(scratch, last_ts);
            scratch.push(b'}');
            write_response(out, 409, "application/json", scratch);
        }
        Err(InvokeError::UnknownTenant) => {
            // Unreachable: tenants are resolved before dispatch.
            write_response(
                out,
                400,
                "application/json",
                b"{\"error\":\"unknown tenant\"}",
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_pipeline(records: usize, remaining: usize) -> Pipeline {
        let mut p = Pipeline::new();
        p.push(Slot::Frame {
            version: 1,
            remaining,
            span: 0,
            results: vec![None; records],
        });
        p.inflight += records;
        p
    }

    /// Regression (failing before this PR): a `BatchReply` carrying a
    /// record index beyond the frame's record count indexed straight
    /// into `results` and panicked the reactor thread. The malformed
    /// record is now dropped; the in-range one still lands and the
    /// slot still completes.
    #[test]
    fn absorb_batch_drops_out_of_range_record_index() {
        let mut p = frame_pipeline(2, 1);
        p.absorb_batch(BatchReply {
            frame_seq: 0,
            results: vec![
                (1, Err(InvokeError::UnknownTenant)),
                (9, Err(InvokeError::UnknownTenant)), // out of range
            ],
        });
        let Some(Slot::Frame {
            remaining, results, ..
        }) = p.slots.front()
        else {
            panic!("frame slot");
        };
        assert_eq!(*remaining, 0);
        assert!(results[1].is_some(), "in-range record landed");
        assert!(results[0].is_none(), "untouched record stays open");
        assert!(p.slots.front().is_some_and(Slot::is_complete));
    }

    /// Regression (failing before this PR): a duplicate `BatchReply`
    /// for an already-settled frame underflowed `remaining`
    /// (`usize` wrap; a panic under debug assertions). It now
    /// saturates at zero and the frame stays complete.
    #[test]
    fn absorb_batch_tolerates_duplicate_reply() {
        let mut p = frame_pipeline(1, 1);
        let reply = || BatchReply {
            frame_seq: 0,
            results: vec![(0, Err(InvokeError::UnknownTenant))],
        };
        p.absorb_batch(reply());
        p.absorb_batch(reply());
        let Some(Slot::Frame { remaining, .. }) = p.slots.front() else {
            panic!("frame slot");
        };
        assert_eq!(*remaining, 0, "duplicate reply must not wrap remaining");
        assert!(p.slots.front().is_some_and(Slot::is_complete));
    }

    /// Replies addressed below the pipeline window (already-flushed
    /// sequences) are ignored, not mis-slotted.
    #[test]
    fn absorb_batch_ignores_stale_sequence() {
        let mut p = frame_pipeline(1, 1);
        p.front_seq = 5;
        p.absorb_batch(BatchReply {
            frame_seq: 3,
            results: vec![(0, Err(InvokeError::UnknownTenant))],
        });
        let Some(Slot::Frame { remaining, .. }) = p.slots.front() else {
            panic!("frame slot");
        };
        assert_eq!(*remaining, 1, "stale reply must not touch a newer slot");
    }
}
