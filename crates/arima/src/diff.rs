//! Differencing and integration for the "I" in ARIMA.

/// First difference: `y[t] - y[t-1]`. Output has `len - 1` elements.
pub fn diff_once(series: &[f64]) -> Vec<f64> {
    series.windows(2).map(|w| w[1] - w[0]).collect()
}

/// `d`-th order differencing. Output has `len - d` elements.
///
/// # Panics
///
/// Panics if `series.len() <= d`.
pub fn difference(series: &[f64], d: usize) -> Vec<f64> {
    assert!(series.len() > d, "series too short to difference {d} times");
    let mut out = series.to_vec();
    for _ in 0..d {
        out = diff_once(&out);
    }
    out
}

/// The trailing values needed to undo `d` levels of differencing.
///
/// `tails[k]` is the last value of the series differenced `k` times
/// (`k = 0..d`), exactly what [`integrate`] consumes.
///
/// # Panics
///
/// Panics if `series.len() <= d`.
pub fn integration_tails(series: &[f64], d: usize) -> Vec<f64> {
    assert!(series.len() > d, "series too short to difference {d} times");
    let mut tails = Vec::with_capacity(d);
    let mut cur = series.to_vec();
    for _ in 0..d {
        tails.push(*cur.last().unwrap());
        cur = diff_once(&cur);
    }
    tails
}

/// Integrates forecasts of a `d`-differenced series back to the original
/// scale, given the [`integration_tails`] of the training series.
///
/// # Panics
///
/// Panics if `tails.len()` does not match the number of differencing
/// levels implied by the caller (`d = tails.len()` is assumed).
pub fn integrate(forecasts_diffed: &[f64], tails: &[f64]) -> Vec<f64> {
    let mut out = forecasts_diffed.to_vec();
    // Undo differencing innermost-first: tails is ordered outermost-first.
    for &tail in tails.iter().rev() {
        let mut acc = tail;
        for v in out.iter_mut() {
            acc += *v;
            *v = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_once_basic() {
        assert_eq!(diff_once(&[1.0, 4.0, 9.0, 16.0]), vec![3.0, 5.0, 7.0]);
    }

    #[test]
    fn difference_zero_is_identity() {
        let s = [5.0, 6.0, 7.0];
        assert_eq!(difference(&s, 0), s.to_vec());
    }

    #[test]
    fn difference_twice_of_quadratic_is_constant() {
        let s: Vec<f64> = (0..8).map(|i| (i * i) as f64).collect();
        let d2 = difference(&s, 2);
        assert!(d2.iter().all(|&v| (v - 2.0).abs() < 1e-12));
    }

    #[test]
    fn integrate_inverts_difference_d1() {
        let s = [3.0, 7.0, 2.0, 9.0, 9.5];
        let tails = integration_tails(&s, 1);
        // Pretend the future diffed values are known; integration must
        // reproduce a continuation of the original series.
        let future_diffs = [1.0, -2.0, 0.5];
        let levels = integrate(&future_diffs, &tails);
        assert_eq!(levels, vec![10.5, 8.5, 9.0]);
    }

    #[test]
    fn integrate_inverts_difference_d2() {
        // Quadratic series: second difference constant 2.
        let s: Vec<f64> = (0..10).map(|i| (i * i) as f64).collect();
        let tails = integration_tails(&s, 2);
        let future = integrate(&[2.0, 2.0, 2.0], &tails);
        assert_eq!(future, vec![100.0, 121.0, 144.0]);
    }

    #[test]
    fn integrate_with_no_tails_is_identity() {
        assert_eq!(integrate(&[1.0, 2.0], &[]), vec![1.0, 2.0]);
    }

    #[test]
    fn roundtrip_property_small() {
        let s = [10.0, 12.0, 11.0, 15.0, 14.0, 18.0];
        for d in 0..3 {
            let diffed = difference(&s, d);
            let tails = integration_tails(&s, d);
            // Integrating the last diffed value forward by zero steps is a
            // no-op; integrating the *next* diffed value must extend the
            // series consistently: check by re-differencing.
            let extended = integrate(&[diffed.last().copied().unwrap_or(0.0)], &tails);
            assert_eq!(extended.len(), 1);
            let mut full = s.to_vec();
            full.push(extended[0]);
            let rediffed = difference(&full, d);
            assert!((rediffed.last().unwrap() - diffed.last().unwrap()).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn difference_rejects_short_series() {
        difference(&[1.0], 1);
    }
}
