//! Invokers and containers: the execution layer of the OpenWhisk model.
//!
//! Each invoker owns a memory-capped pool of application containers and
//! mirrors OpenWhisk's `ContainerProxy` lifecycle: containers start cold
//! (paying container-init), execute one activation at a time, then sit
//! idle until their per-activation keep-alive deadline passes — the
//! deadline our modified `ActivationMessage` carries (§4.3).

use sitw_trace::TimeMs;

/// Container lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerState {
    /// Being created/pre-warmed; becomes idle at the given time.
    Starting {
        /// When initialization completes.
        ready_at: TimeMs,
    },
    /// Loaded and free to serve an activation.
    Idle {
        /// Keep-alive deadline; the container unloads when it passes.
        expires_at: TimeMs,
    },
    /// Executing an activation.
    Busy {
        /// When the running activation completes.
        until: TimeMs,
    },
}

/// A per-application container on an invoker.
#[derive(Debug, Clone)]
pub struct Container {
    /// Unique id (monotonic across the simulation).
    pub id: u64,
    /// Application the container hosts.
    pub app: u32,
    /// Resident memory, MB.
    pub memory_mb: f64,
    /// Lifecycle state.
    pub state: ContainerState,
    /// Time the container last finished (or was created); used for LRU
    /// eviction.
    pub last_used: TimeMs,
    /// Start of the current idle (or starting) span, for idle-time
    /// accounting.
    pub idle_since: TimeMs,
}

/// Per-invoker accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct InvokerStats {
    /// Containers started (cold or pre-warm).
    pub containers_started: u64,
    /// Containers evicted to make room.
    pub evictions: u64,
    /// Containers expired by keep-alive.
    pub expirations: u64,
    /// Loaded-but-idle memory integral (MB·ms) — the §5.3 memory
    /// consumption metric.
    pub idle_mb_ms: f64,
    /// Total loaded memory integral (MB·ms).
    pub loaded_mb_ms: f64,
    /// Peak loaded memory (MB).
    pub peak_loaded_mb: f64,
}

/// One invoker node.
#[derive(Debug)]
pub struct Invoker {
    /// Invoker index.
    pub id: usize,
    /// Memory capacity for containers, MB.
    pub capacity_mb: f64,
    /// Containers currently loaded (any state).
    pub containers: Vec<Container>,
    /// Pre-initialized stem-cell containers available for adoption, each
    /// holding its own memory size. Per-cell sizes (rather than a count
    /// times one "current" size) are what keeps the held memory counted
    /// exactly once when provisioning rounds use different sizes — the
    /// old count×latest-size accounting re-priced every existing cell,
    /// so `loaded_mb` drifted from the memory actually held and
    /// `make_room` could double-book capacity against the ledger.
    stemcells: Vec<f64>,
    /// Accounting.
    pub stats: InvokerStats,
    last_integral_at: TimeMs,
}

impl Invoker {
    /// Creates an empty invoker.
    pub fn new(id: usize, capacity_mb: f64) -> Self {
        Self {
            id,
            capacity_mb,
            containers: Vec::new(),
            stemcells: Vec::new(),
            stats: InvokerStats::default(),
            last_integral_at: 0,
        }
    }

    /// Provisions `n` stem-cell containers of `mb` MB each (capacity
    /// permitting); returns how many were created.
    pub fn provision_stemcells(&mut self, n: usize, mb: f64) -> usize {
        let mut created = 0;
        for _ in 0..n {
            if self.free_mb() < mb {
                break;
            }
            self.stemcells.push(mb);
            created += 1;
        }
        created
    }

    /// Takes one stem cell for adoption (skipping container init);
    /// returns false when none is free. The most recently provisioned
    /// cell is adopted first, releasing exactly the memory it held.
    pub fn take_stemcell(&mut self) -> bool {
        self.stemcells.pop().is_some()
    }

    /// Pre-initialized stem cells available for adoption.
    pub fn stemcells_free(&self) -> usize {
        self.stemcells.len()
    }

    /// Memory currently held by the stem-cell pool, MB.
    pub fn stemcell_mb(&self) -> f64 {
        self.stemcells.iter().sum()
    }

    /// Replenishes the stem-cell pool back toward `target` if capacity
    /// allows (OpenWhisk re-creates prewarm containers in the background).
    pub fn replenish_stemcells(&mut self, target: usize, mb: f64) {
        while self.stemcells.len() < target && self.free_mb() >= mb {
            self.stemcells.push(mb);
        }
    }

    /// Memory currently loaded (all container states + stem cells), MB.
    pub fn loaded_mb(&self) -> f64 {
        self.containers.iter().map(|c| c.memory_mb).sum::<f64>() + self.stemcell_mb()
    }

    /// Free capacity, MB.
    pub fn free_mb(&self) -> f64 {
        (self.capacity_mb - self.loaded_mb()).max(0.0)
    }

    /// Advances the memory integrals to `now`. Call before any state
    /// change.
    pub fn advance_integrals(&mut self, now: TimeMs) {
        let dt = now.saturating_sub(self.last_integral_at) as f64;
        if dt > 0.0 {
            let loaded = self.loaded_mb();
            let idle: f64 = self
                .containers
                .iter()
                .filter(|c| !matches!(c.state, ContainerState::Busy { .. }))
                .map(|c| c.memory_mb)
                .sum();
            self.stats.loaded_mb_ms += loaded * dt;
            self.stats.idle_mb_ms += idle * dt;
            self.last_integral_at = now;
        }
        let loaded = self.loaded_mb();
        if loaded > self.stats.peak_loaded_mb {
            self.stats.peak_loaded_mb = loaded;
        }
    }

    /// Finds an idle container for `app` whose init has completed,
    /// preferring the most recently used.
    pub fn find_idle(&mut self, app: u32, now: TimeMs) -> Option<&mut Container> {
        self.containers
            .iter_mut()
            .filter(|c| c.app == app)
            .filter(|c| match c.state {
                ContainerState::Idle { .. } => true,
                ContainerState::Starting { ready_at } => ready_at <= now,
                ContainerState::Busy { .. } => false,
            })
            .max_by_key(|c| c.last_used)
    }

    /// Whether any loaded (non-busy or busy) container exists for `app`.
    pub fn has_container(&self, app: u32) -> bool {
        self.containers.iter().any(|c| c.app == app)
    }

    /// Evicts idle containers (least recently used first) until
    /// `needed_mb` fits, through the shared budgeted-eviction engine
    /// ([`sitw_fleet::evict_until`] — the same loop the tenant memory
    /// ledger runs with earliest-expiry ordering). Returns false if the
    /// space cannot be freed (busy/starting containers — and the
    /// stem-cell pool's held memory — are not evictable).
    pub fn make_room(&mut self, needed_mb: f64, now: TimeMs) -> bool {
        if needed_mb > self.capacity_mb {
            return false;
        }
        self.advance_integrals(now);
        sitw_fleet::evict_until(
            self,
            |inv| inv.free_mb() >= needed_mb,
            |inv| {
                inv.containers
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| matches!(c.state, ContainerState::Idle { .. }))
                    .min_by_key(|(_, c)| c.last_used)
                    .map(|(i, _)| i)
            },
            |inv, i| {
                inv.containers.swap_remove(i);
                inv.stats.evictions += 1;
            },
        )
    }

    /// Starts a container for `app`; the caller has ensured capacity.
    pub fn start_container(
        &mut self,
        id: u64,
        app: u32,
        memory_mb: f64,
        now: TimeMs,
        ready_at: TimeMs,
    ) -> u64 {
        self.advance_integrals(now);
        self.containers.push(Container {
            id,
            app,
            memory_mb,
            state: ContainerState::Starting { ready_at },
            last_used: now,
            idle_since: now,
        });
        self.stats.containers_started += 1;
        id
    }

    /// Removes containers whose keep-alive deadline passed.
    pub fn expire_due(&mut self, now: TimeMs) {
        self.advance_integrals(now);
        let before = self.containers.len();
        self.containers.retain(|c| match c.state {
            ContainerState::Idle { expires_at } => expires_at > now,
            _ => true,
        });
        self.stats.expirations += (before - self.containers.len()) as u64;
    }

    /// Looks up a container by id.
    pub fn container_mut(&mut self, id: u64) -> Option<&mut Container> {
        self.containers.iter_mut().find(|c| c.id == id)
    }

    /// Removes a container by id (used for immediate unload when the
    /// policy's pre-warm window is positive).
    pub fn remove_container(&mut self, id: u64, now: TimeMs) -> bool {
        self.advance_integrals(now);
        let before = self.containers.len();
        self.containers.retain(|c| c.id != id);
        before != self.containers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idle_container(id: u64, app: u32, mem: f64, last_used: TimeMs) -> Container {
        Container {
            id,
            app,
            memory_mb: mem,
            state: ContainerState::Idle {
                expires_at: 1_000_000,
            },
            last_used,
            idle_since: last_used,
        }
    }

    #[test]
    fn capacity_accounting() {
        let mut inv = Invoker::new(0, 1000.0);
        assert_eq!(inv.free_mb(), 1000.0);
        inv.start_container(1, 7, 300.0, 0, 100);
        assert_eq!(inv.loaded_mb(), 300.0);
        assert_eq!(inv.free_mb(), 700.0);
    }

    #[test]
    fn find_idle_prefers_most_recent_and_ready() {
        let mut inv = Invoker::new(0, 1000.0);
        inv.containers.push(idle_container(1, 5, 100.0, 10));
        inv.containers.push(idle_container(2, 5, 100.0, 50));
        inv.containers.push(Container {
            id: 3,
            app: 5,
            memory_mb: 100.0,
            state: ContainerState::Starting { ready_at: 500 },
            last_used: 90,
            idle_since: 90,
        });
        // At t=100 the starting container is not ready; MRU idle wins.
        let c = inv.find_idle(5, 100).unwrap();
        assert_eq!(c.id, 2);
        // At t=600 the starting container is ready and most recent.
        let c = inv.find_idle(5, 600).unwrap();
        assert_eq!(c.id, 3);
        assert!(inv.find_idle(99, 600).is_none());
    }

    #[test]
    fn make_room_evicts_lru_idle_only() {
        let mut inv = Invoker::new(0, 300.0);
        inv.containers.push(idle_container(1, 1, 100.0, 5));
        inv.containers.push(idle_container(2, 2, 100.0, 50));
        inv.containers.push(Container {
            id: 3,
            app: 3,
            memory_mb: 100.0,
            state: ContainerState::Busy { until: 900 },
            last_used: 1,
            idle_since: 0,
        });
        // Need 50 MB: evict container 1 (LRU idle), not the busy one.
        assert!(inv.make_room(50.0, 100));
        assert_eq!(inv.stats.evictions, 1);
        assert!(inv.container_mut(1).is_none());
        assert!(inv.container_mut(2).is_some());
        assert!(inv.container_mut(3).is_some());
        // Need more than evictable space allows: fails (after evicting
        // the remaining idle container; the busy one is untouchable).
        assert!(!inv.make_room(250.0, 101));
        assert!(inv.container_mut(3).is_some());
    }

    #[test]
    fn make_room_rejects_oversized() {
        let mut inv = Invoker::new(0, 100.0);
        assert!(!inv.make_room(200.0, 0));
    }

    #[test]
    fn expiry_removes_due_idle() {
        let mut inv = Invoker::new(0, 1000.0);
        inv.containers.push(Container {
            id: 1,
            app: 1,
            memory_mb: 100.0,
            state: ContainerState::Idle { expires_at: 50 },
            last_used: 0,
            idle_since: 0,
        });
        inv.containers.push(idle_container(2, 2, 100.0, 0));
        inv.expire_due(60);
        assert!(inv.container_mut(1).is_none());
        assert!(inv.container_mut(2).is_some());
        assert_eq!(inv.stats.expirations, 1);
    }

    #[test]
    fn integrals_split_idle_and_busy() {
        let mut inv = Invoker::new(0, 1000.0);
        inv.containers.push(idle_container(1, 1, 100.0, 0));
        inv.containers.push(Container {
            id: 2,
            app: 2,
            memory_mb: 200.0,
            state: ContainerState::Busy { until: 1_000 },
            last_used: 0,
            idle_since: 0,
        });
        inv.advance_integrals(1_000);
        assert!((inv.stats.loaded_mb_ms - 300.0 * 1_000.0).abs() < 1e-6);
        assert!((inv.stats.idle_mb_ms - 100.0 * 1_000.0).abs() < 1e-6);
        assert_eq!(inv.stats.peak_loaded_mb, 300.0);
    }

    #[test]
    fn stemcell_memory_counted_once_across_mixed_sizes() {
        // Regression (failing before the per-cell accounting): the pool
        // tracked `count × latest size`, so a provisioning round with a
        // different size re-priced every existing cell. Two 300 MB cells
        // followed by a 50 MB replenish used to report 3 × 50 = 150 MB
        // held instead of 650 — and make_room, believing that phantom
        // free memory, double-booked capacity the stem cells hold.
        let mut inv = Invoker::new(0, 1000.0);
        assert_eq!(inv.provision_stemcells(2, 300.0), 2);
        inv.replenish_stemcells(3, 50.0);
        assert_eq!(inv.stemcells_free(), 3);
        assert_eq!(inv.loaded_mb(), 650.0, "2×300 + 1×50, each counted once");
        assert_eq!(inv.free_mb(), 350.0);
        // 400 MB does not fit and nothing is evictable: make_room must
        // refuse instead of double-counting the stem-cell memory away.
        assert!(!inv.make_room(400.0, 0));
        assert!(inv.make_room(350.0, 0));
        // Adoption releases exactly the adopted cell's memory (LIFO).
        assert!(inv.take_stemcell());
        assert_eq!(inv.loaded_mb(), 600.0);
        assert!(inv.take_stemcell());
        assert!(inv.take_stemcell());
        assert!(!inv.take_stemcell());
        assert_eq!(inv.loaded_mb(), 0.0);
    }

    #[test]
    fn remove_container_unloads() {
        let mut inv = Invoker::new(0, 500.0);
        inv.containers.push(idle_container(9, 4, 50.0, 0));
        assert!(inv.remove_container(9, 10));
        assert!(!inv.remove_container(9, 11));
        assert!(!inv.has_container(4));
    }
}
