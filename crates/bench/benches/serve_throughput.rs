//! Serving throughput: decisions per second through the full loopback
//! wire path, across shard counts, both protocols (JSON/HTTP vs
//! SITW-BIN at batch 1/16/128), and tenant modes, measured by the
//! open-loop load generator. The ISSUE-1 acceptance floor is 50k
//! decisions/sec on a 4-shard daemon in release mode; the ISSUE-3 gate
//! is SITW-BIN at batch ≥ 16 sustaining ≥ 1.5× the JSON rate on the
//! same hardware; the ISSUE-4 gate is 4-tenant fleet mode sustaining
//! ≥ 0.8× the single-tenant JSON rate (the memory ledger must not eat
//! the serving path).
//!
//! The ISSUE-5 additions: `conns=256` high-fan-in cases for both
//! protocols (the reactor's scale-out dimension), and a cross-run gate —
//! the in-run json and bin batch=1 rates must hold ≥ 0.9× the committed
//! `BENCH_serve.json` baseline at the repo root (the thread-per-conn
//! numbers PR 4 recorded, thereafter the reactor trajectory), read
//! before this run refreshes the file. The cross-run gate only makes
//! sense on the hardware that produced the baseline, so it is skipped —
//! with a message — when `SITW_BENCH_GATE=0` or the baseline is absent.
//!
//! Besides the human-readable report, this bench is the perf-trajectory
//! recorder: with `SITW_BENCH_JSON=path` it writes every case's mean
//! dec/s as a JSON array (`{proto, policy, shards, batch, tenants,
//! conns, dec_per_sec}` records) — CI commits the refreshed
//! `BENCH_serve.json` at the repo root so speedups stay verifiable
//! across PRs. Set `SITW_BENCH_GATE=0` to skip every ratio assertion
//! (they are on by default).
//!
//! The ISSUE-6 addition: an in-run telemetry-overhead gate — the json
//! 4-shard and bin batch=128 rates with the default-on flight recorder
//! must hold ≥ 0.95× a `telemetry: false` measurement taken in the same
//! run (the committed `BENCH_serve.json` numbers are telemetry-on).
//!
//! The ISSUE-8 additions: `json-routed` and `bin-routed` cases — the
//! same 4-shard shapes driven through an in-process `sitw-router` in
//! front of the node — recorded as trajectory points and gated in-run at
//! ≥ 0.8× the direct single-node rate of the same shape (the extra hop
//! must stay thin).

use std::io::Write as _;
use std::sync::Mutex;
use std::time::Duration;

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use sitw_cluster::{Router, RouterConfig};
use sitw_core::{HybridConfig, ProductionConfig};
use sitw_serve::{
    run_loadgen, FollowConfig, Follower, LoadGenConfig, Proto, ServeConfig, Server, TenantConfig,
};
use sitw_sim::PolicySpec;
use sitw_trace::DAY_MS;

const EVENTS: usize = 20_000;

/// The ISSUE-3 acceptance floor: BIN at batch ≥ 16 vs JSON, same shards.
const GATE_RATIO: f64 = 1.5;

/// The ISSUE-4 acceptance floor: 4-tenant fleet mode vs single-tenant,
/// same shards and protocol.
const TENANT_GATE_RATIO: f64 = 0.8;

/// Tenants in the fleet-mode cases.
const TENANTS: usize = 4;

/// Connections in the baseline-shaped cases (the PR-1..4 shape).
const BASE_CONNS: usize = 2;

/// Connections in the high-fan-in cases.
const FANIN_CONNS: usize = 256;

/// The ISSUE-6 acceptance floor: telemetry-on throughput vs an in-run
/// `telemetry: false` measurement of the same shape — the flight
/// recorder and stage histograms may cost at most 5%.
const TELEM_GATE_RATIO: f64 = 0.95;

/// The ISSUE-5 acceptance floor: in-run json and bin batch=1 rates vs
/// the committed baseline (same hardware).
const BASELINE_RATIO: f64 = 0.9;

/// The ISSUE-8 acceptance floor: routed-through-`sitw-router` rates vs
/// the direct single-node rate of the same shape.
const ROUTED_GATE_RATIO: f64 = 0.8;

/// The ISSUE-10 acceptance floor: steady-state throughput with a warm
/// standby actively pulling the replication stream vs the same shape
/// with no follower attached. Dirty tracking plus chunked snapshot
/// export must never pause shards, so replication may cost at most 10%.
const REPL_GATE_RATIO: f64 = 0.9;

/// One measured case, accumulated for the machine-readable report.
struct CaseResult {
    proto: &'static str,
    policy: &'static str,
    shards: usize,
    batch: usize,
    tenants: usize,
    conns: usize,
    samples: Vec<f64>,
}

impl CaseResult {
    fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }
}

static RESULTS: Mutex<Vec<CaseResult>> = Mutex::new(Vec::new());

fn loadgen_config(proto: Proto, tenants: usize, conns: usize) -> LoadGenConfig {
    LoadGenConfig {
        // One connection per active app at most: the high-fan-in cases
        // need comfortably more apps than connections to drive them all.
        apps: 300.max(3 * conns),
        seed: 42,
        horizon_ms: DAY_MS,
        cap_per_day: 1_000.0,
        speedup: f64::INFINITY,
        connections: conns,
        window: 128,
        max_events: EVENTS,
        proto,
        tenants,
        zipf: if tenants > 0 { 1.0 } else { 0.0 },
        trace_sample: 0,
    }
}

fn run_once(
    shards: usize,
    policy: PolicySpec,
    proto: Proto,
    tenants: usize,
    conns: usize,
    telemetry: bool,
) -> f64 {
    // A fresh server per iteration: policy state is cumulative and
    // timestamps must stay monotone.
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards,
        policy: policy.clone(),
        tenants: (0..tenants)
            .map(|k| TenantConfig {
                name: format!("t{k}"),
                policy: policy.clone(),
                budget_mb: 0,
            })
            .collect(),
        telemetry,
        ..ServeConfig::default()
    })
    .expect("server start");
    let report =
        run_loadgen(server.addr(), &loadgen_config(proto, tenants, conns)).expect("loadgen");
    assert_eq!(report.ok, EVENTS as u64, "lost responses");
    if conns > BASE_CONNS {
        assert!(
            report.max_live_conns >= conns.min(250) as u64,
            "high-fan-in case must actually drive ~{conns} connections \
             (drove {})",
            report.max_live_conns
        );
    }
    if tenants > 0 {
        let served: u64 = report.per_tenant.iter().map(|t| t.ok).sum();
        assert_eq!(served, EVENTS as u64, "every decision tenant-attributed");
    }
    server.shutdown().expect("shutdown");
    report.throughput
}

/// Like [`run_once`], but with an in-process `sitw-router` between the
/// load generator and the node — the ISSUE-8 routed shapes.
fn run_once_routed(shards: usize, policy: PolicySpec, proto: Proto, conns: usize) -> f64 {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards,
        policy,
        ..ServeConfig::default()
    })
    .expect("server start");
    let router = Router::start(RouterConfig {
        addr: "127.0.0.1:0".into(),
        nodes: vec![server.addr().to_string()],
        reconcile_ms: 0,
        ..RouterConfig::default()
    })
    .expect("router start");
    let report = run_loadgen(router.addr(), &loadgen_config(proto, 0, conns)).expect("loadgen");
    assert_eq!(
        report.ok, EVENTS as u64,
        "lost responses through the router"
    );
    router.shutdown();
    server.shutdown().expect("shutdown");
    report.throughput
}

/// Like [`run_once`], but with a warm standby (`sitw_serve::Follower`)
/// pulling the replication stream for the whole measurement — the
/// ISSUE-10 replication-on shapes.
fn run_once_replicated(shards: usize, policy: PolicySpec, proto: Proto, conns: usize) -> f64 {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards,
        policy: policy.clone(),
        ..ServeConfig::default()
    })
    .expect("server start");
    let follower = Follower::start(FollowConfig {
        primary_addr: server.addr().to_string(),
        pull_interval: Duration::from_millis(25),
        serve: ServeConfig {
            addr: "127.0.0.1:0".into(),
            shards,
            policy,
            ..ServeConfig::default()
        },
        ..FollowConfig::default()
    })
    .expect("follower start");
    let report = run_loadgen(server.addr(), &loadgen_config(proto, 0, conns)).expect("loadgen");
    assert_eq!(report.ok, EVENTS as u64, "lost responses under replication");
    follower.shutdown().expect("follower shutdown");
    server.shutdown().expect("shutdown");
    report.throughput
}

fn bench_decisions_per_sec(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_throughput");
    group.throughput(Throughput::Elements(EVENTS as u64));
    group.sample_size(10);

    #[allow(clippy::too_many_arguments)]
    let case = |group: &mut criterion::BenchmarkGroup<'_>,
                id: BenchmarkId,
                proto_label: &'static str,
                policy_label: &'static str,
                shards: usize,
                batch: usize,
                tenants: usize,
                conns: usize,
                policy: fn() -> PolicySpec,
                proto: Proto| {
        let mut samples = Vec::new();
        group.bench_function(id, |b| {
            b.iter(|| {
                let dec_per_sec = run_once(shards, policy(), proto, tenants, conns, true);
                samples.push(dec_per_sec);
                dec_per_sec
            })
        });
        RESULTS.lock().unwrap().push(CaseResult {
            proto: proto_label,
            policy: policy_label,
            shards,
            batch,
            tenants,
            conns,
            samples,
        });
    };

    let hybrid = || PolicySpec::Hybrid(HybridConfig::default());
    let production = || PolicySpec::Production(ProductionConfig::default());

    // JSON across shard counts (the PR-1 shape, unchanged).
    for shards in [1usize, 2, 4] {
        case(
            &mut group,
            BenchmarkId::new("json/shards", shards),
            "json",
            "hybrid",
            shards,
            1,
            0,
            BASE_CONNS,
            hybrid,
            Proto::Json,
        );
    }
    // The §6 production-manager mode on the 4-shard shape.
    case(
        &mut group,
        BenchmarkId::new("json/production", 4usize),
        "json",
        "production",
        4,
        1,
        0,
        BASE_CONNS,
        production,
        Proto::Json,
    );
    // SITW-BIN at increasing batch sizes, same 4-shard shape as the
    // JSON baseline it is gated against.
    for batch in [1usize, 16, 128] {
        case(
            &mut group,
            BenchmarkId::new("bin/batch", batch),
            "bin",
            "hybrid",
            4,
            batch,
            0,
            BASE_CONNS,
            hybrid,
            Proto::Bin { batch },
        );
    }
    // High fan-in (ISSUE-5): the same 4-shard hybrid decisions spread
    // over 256 concurrent keep-alive connections — the reactor's
    // scale-out dimension, recorded as new trajectory points.
    case(
        &mut group,
        BenchmarkId::new("json/conns", FANIN_CONNS),
        "json",
        "hybrid",
        4,
        1,
        0,
        FANIN_CONNS,
        hybrid,
        Proto::Json,
    );
    case(
        &mut group,
        BenchmarkId::new("bin/conns", FANIN_CONNS),
        "bin",
        "hybrid",
        4,
        16,
        0,
        FANIN_CONNS,
        hybrid,
        Proto::Bin { batch: 16 },
    );
    // Fleet mode (ISSUE-4): the same 4-shard hybrid shapes with the
    // replay spread over 4 tenants (zipf 1.0), ledger charging every
    // decision — gated at >= 0.8x the single-tenant JSON rate.
    case(
        &mut group,
        BenchmarkId::new("json/tenants", TENANTS),
        "json",
        "hybrid",
        4,
        1,
        TENANTS,
        BASE_CONNS,
        hybrid,
        Proto::Json,
    );
    case(
        &mut group,
        BenchmarkId::new("bin/tenants", TENANTS),
        "bin",
        "hybrid",
        4,
        128,
        TENANTS,
        BASE_CONNS,
        hybrid,
        Proto::Bin { batch: 128 },
    );
    // Routed (ISSUE-8): the same 4-shard hybrid shapes with an
    // in-process `sitw-router` between the load generator and the node —
    // gated in-run at >= 0.8x the direct rate of the same shape.
    for (id, proto_label, batch, proto) in [
        (
            BenchmarkId::new("json/routed", 4usize),
            "json-routed",
            1usize,
            Proto::Json,
        ),
        (
            BenchmarkId::new("bin/routed", 128usize),
            "bin-routed",
            128,
            Proto::Bin { batch: 128 },
        ),
    ] {
        let mut samples = Vec::new();
        group.bench_function(id, |b| {
            b.iter(|| {
                let dec_per_sec = run_once_routed(4, hybrid(), proto, BASE_CONNS);
                samples.push(dec_per_sec);
                dec_per_sec
            })
        });
        RESULTS.lock().unwrap().push(CaseResult {
            proto: proto_label,
            policy: "hybrid",
            shards: 4,
            batch,
            tenants: 0,
            conns: BASE_CONNS,
            samples,
        });
    }
    // Replication (ISSUE-10): the same 4-shard hybrid shapes with a
    // warm standby pulling the snapshot stream throughout — gated
    // in-run at >= 0.9x the no-follower rate of the same shape.
    for (id, proto_label, batch, proto) in [
        (
            BenchmarkId::new("json/repl", 4usize),
            "json-repl",
            1usize,
            Proto::Json,
        ),
        (
            BenchmarkId::new("bin/repl", 128usize),
            "bin-repl",
            128,
            Proto::Bin { batch: 128 },
        ),
    ] {
        let mut samples = Vec::new();
        group.bench_function(id, |b| {
            b.iter(|| {
                let dec_per_sec = run_once_replicated(4, hybrid(), proto, BASE_CONNS);
                samples.push(dec_per_sec);
                dec_per_sec
            })
        });
        RESULTS.lock().unwrap().push(CaseResult {
            proto: proto_label,
            policy: "hybrid",
            shards: 4,
            batch,
            tenants: 0,
            conns: BASE_CONNS,
            samples,
        });
    }
    group.finish();
}

/// One record parsed back out of a committed `BENCH_serve.json`.
struct BaselineCase {
    proto: String,
    policy: String,
    shards: usize,
    batch: usize,
    tenants: usize,
    /// Absent in pre-reactor baselines (which were all 2-connection).
    conns: Option<usize>,
    dec_per_sec: f64,
}

/// Minimal parser for the flat record arrays this bench itself writes
/// (older baselines without the `conns` field parse fine — the field is
/// simply absent and the lookup ignores it).
fn parse_baseline(text: &str) -> Vec<BaselineCase> {
    fn str_field(obj: &str, key: &str) -> Option<String> {
        let tag = format!("\"{key}\":");
        let rest = &obj[obj.find(&tag)? + tag.len()..];
        let rest = rest.trim_start();
        let rest = rest.strip_prefix('"')?;
        Some(rest[..rest.find('"')?].to_owned())
    }
    fn num_field(obj: &str, key: &str) -> Option<f64> {
        let tag = format!("\"{key}\":");
        let rest = &obj[obj.find(&tag)? + tag.len()..];
        let digits: String = rest
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        digits.parse().ok()
    }
    text.split('{')
        .skip(1)
        .filter_map(|chunk| {
            let obj = chunk.split('}').next()?;
            Some(BaselineCase {
                proto: str_field(obj, "proto")?,
                policy: str_field(obj, "policy")?,
                shards: num_field(obj, "shards")? as usize,
                batch: num_field(obj, "batch")? as usize,
                tenants: num_field(obj, "tenants")? as usize,
                conns: num_field(obj, "conns").map(|c| c as usize),
                dec_per_sec: num_field(obj, "dec_per_sec")?,
            })
        })
        .collect()
}

/// Workspace-root-anchored path (cargo runs benches from the package
/// dir).
fn workspace_path(path: &str) -> std::path::PathBuf {
    if std::path::Path::new(path).is_absolute() {
        std::path::PathBuf::from(path)
    } else {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(path)
    }
}

/// Writes `BENCH_serve.json`-style output and enforces the perf gates.
fn report_and_gate() {
    let results = RESULTS.lock().unwrap();

    // Read the committed baseline *before* refreshing the file: the
    // cross-run gate compares this run against the numbers the previous
    // PR committed on this hardware.
    let baseline = std::fs::read_to_string(workspace_path("BENCH_serve.json"))
        .ok()
        .map(|text| parse_baseline(&text))
        .unwrap_or_default();

    if let Ok(path) = std::env::var("SITW_BENCH_JSON") {
        // Anchor relative paths at the workspace root so
        // `SITW_BENCH_JSON=BENCH_serve.json` lands where CI and the
        // committed baseline expect it.
        let path = workspace_path(&path);
        let mut json = String::from("[\n");
        for (i, r) in results.iter().enumerate() {
            if i > 0 {
                json.push_str(",\n");
            }
            json.push_str(&format!(
                "  {{\"proto\": \"{}\", \"policy\": \"{}\", \"shards\": {}, \"batch\": {}, \
                 \"tenants\": {}, \"conns\": {}, \"dec_per_sec\": {:.0}}}",
                r.proto,
                r.policy,
                r.shards,
                r.batch,
                r.tenants,
                r.conns,
                r.mean()
            ));
        }
        json.push_str("\n]\n");
        let mut file = std::fs::File::create(&path).expect("create SITW_BENCH_JSON");
        file.write_all(json.as_bytes()).expect("write bench json");
        println!("wrote {} ({} cases)", path.display(), results.len());
    }

    if std::env::var("SITW_BENCH_GATE").as_deref() == Ok("0") {
        return;
    }

    // Cross-run gate (ISSUE-5): the reactor must hold >= 0.9x the
    // committed baseline for json (4 shards) and bin batch=1 — the two
    // shapes a connection-layer rewrite is most able to regress.
    for (proto, batch) in [("json", 1usize), ("bin", 1usize)] {
        let in_run = results
            .iter()
            .find(|r| {
                r.proto == proto
                    && r.policy == "hybrid"
                    && r.shards == 4
                    && r.batch == batch
                    && r.tenants == 0
                    && r.conns == BASE_CONNS
            })
            .map(CaseResult::mean);
        let committed = baseline
            .iter()
            .find(|b| {
                b.proto == proto
                    && b.policy == "hybrid"
                    && b.shards == 4
                    && b.batch == batch
                    && b.tenants == 0
                    // The refreshed baseline also carries conns=256
                    // records for the same proto/shards/batch shape;
                    // gate strictly against the 2-connection case
                    // (pre-reactor files lack the field = 2 conns).
                    && b.conns.unwrap_or(BASE_CONNS) == BASE_CONNS
            })
            .map(|b| b.dec_per_sec);
        match (in_run, committed) {
            (Some(mut now), Some(before)) => {
                // Shared-box noise reaches tens of percent run to run;
                // a shortfall only counts as a regression if it
                // reproduces. Re-measure the gated shape directly and
                // take the best observation — real regressions fail
                // every retry, noise does not.
                let mut retries = 0;
                while now < BASELINE_RATIO * before && retries < 4 {
                    retries += 1;
                    let wire = if proto == "bin" {
                        Proto::Bin { batch }
                    } else {
                        Proto::Json
                    };
                    let again = run_once(
                        4,
                        PolicySpec::Hybrid(HybridConfig::default()),
                        wire,
                        0,
                        BASE_CONNS,
                        true,
                    );
                    println!("gate: {proto} batch={batch} retry {retries}: {again:.0} dec/s");
                    now = now.max(again);
                }
                println!(
                    "gate: {proto} batch={batch} {now:.0} dec/s vs committed baseline \
                     {before:.0} dec/s = {:.2}x (floor {BASELINE_RATIO}x)",
                    now / before
                );
                assert!(
                    now >= BASELINE_RATIO * before,
                    "perf gate failed: {proto} batch={batch} must hold >= \
                     {BASELINE_RATIO}x the committed baseline ({now:.0} vs {before:.0} dec/s)"
                );
            }
            _ => println!(
                "gate: no committed baseline for {proto} batch={batch}; cross-run gate skipped"
            ),
        }
    }
    let json_4 = results
        .iter()
        .find(|r| {
            r.proto == "json"
                && r.policy == "hybrid"
                && r.shards == 4
                && r.tenants == 0
                && r.conns == BASE_CONNS
        })
        .map(CaseResult::mean)
        .expect("json 4-shard baseline case");
    let bin_best = results
        .iter()
        .filter(|r| r.proto == "bin" && r.batch >= 16 && r.tenants == 0 && r.conns == BASE_CONNS)
        .map(CaseResult::mean)
        .fold(0.0f64, f64::max);
    println!(
        "gate: bin(batch>=16) {:.0} dec/s vs json {:.0} dec/s = {:.2}x (floor {GATE_RATIO}x)",
        bin_best,
        json_4,
        bin_best / json_4
    );
    assert!(
        bin_best >= GATE_RATIO * json_4,
        "perf gate failed: SITW-BIN at batch>=16 must sustain >= {GATE_RATIO}x the JSON \
         rate ({bin_best:.0} vs {json_4:.0} dec/s)"
    );
    let mut tenants_json = results
        .iter()
        .find(|r| r.proto == "json" && r.tenants == TENANTS)
        .map(CaseResult::mean)
        .expect("json tenants case");
    // On a shortfall, re-measure both sides back-to-back (paired, like
    // the routed and telemetry gates): the box swings absolute rates
    // run-to-run, and an unpaired ratio gates on that noise instead of
    // on the ledger overhead this gate exists to bound.
    let mut tenant_base = json_4;
    let mut tenant_ratio = tenants_json / tenant_base;
    let mut retries = 0;
    while tenant_ratio < TENANT_GATE_RATIO && retries < 4 {
        retries += 1;
        let again_base = run_once(
            4,
            PolicySpec::Hybrid(HybridConfig::default()),
            Proto::Json,
            0,
            BASE_CONNS,
            true,
        );
        let again_tenants = run_once(
            4,
            PolicySpec::Hybrid(HybridConfig::default()),
            Proto::Json,
            TENANTS,
            BASE_CONNS,
            true,
        );
        println!(
            "gate: json {TENANTS}-tenant retry {retries}: tenants {again_tenants:.0} vs \
             single-tenant {again_base:.0} dec/s = {:.2}x",
            again_tenants / again_base
        );
        if again_tenants / again_base > tenant_ratio {
            tenant_ratio = again_tenants / again_base;
            tenants_json = again_tenants;
            tenant_base = again_base;
        }
    }
    println!(
        "gate: json {TENANTS}-tenant {tenants_json:.0} dec/s vs single-tenant \
         {tenant_base:.0} dec/s = {tenant_ratio:.2}x (floor {TENANT_GATE_RATIO}x)"
    );
    assert!(
        tenant_ratio >= TENANT_GATE_RATIO,
        "perf gate failed: fleet mode must sustain >= {TENANT_GATE_RATIO}x the single-tenant \
         JSON rate ({tenants_json:.0} vs {tenant_base:.0} dec/s)"
    );

    // Routed gate (ISSUE-8): through-router rates must hold >= 0.8x the
    // direct single-node rate of the same shape — the router adds one
    // hop and a re-encode, not a serialization point. On a shortfall
    // both sides re-measure back-to-back (the telemetry gate's pairing
    // discipline): the single-core box swings both absolute rates by
    // ~15% run-to-run, so only a paired ratio isolates router overhead
    // from machine noise. Real overhead reproduces in every pair;
    // noise does not.
    for (routed_label, direct_proto, batch) in
        [("json-routed", "json", 1usize), ("bin-routed", "bin", 128)]
    {
        let mut direct = results
            .iter()
            .find(|r| {
                r.proto == direct_proto
                    && r.policy == "hybrid"
                    && r.shards == 4
                    && r.batch == batch
                    && r.tenants == 0
                    && r.conns == BASE_CONNS
            })
            .map(CaseResult::mean)
            .expect("direct case for the routed gate");
        let mut routed = results
            .iter()
            .find(|r| r.proto == routed_label)
            .map(CaseResult::mean)
            .expect("routed case measured");
        let wire = if direct_proto == "bin" {
            Proto::Bin { batch }
        } else {
            Proto::Json
        };
        let mut ratio = routed / direct;
        let mut retries = 0;
        while ratio < ROUTED_GATE_RATIO && retries < 4 {
            retries += 1;
            let again_direct = run_once(
                4,
                PolicySpec::Hybrid(HybridConfig::default()),
                wire,
                0,
                BASE_CONNS,
                true,
            );
            let again_routed = run_once_routed(
                4,
                PolicySpec::Hybrid(HybridConfig::default()),
                wire,
                BASE_CONNS,
            );
            println!(
                "gate: {routed_label} retry {retries}: routed {again_routed:.0} vs direct \
                 {again_direct:.0} dec/s = {:.2}x",
                again_routed / again_direct
            );
            if again_routed / again_direct > ratio {
                ratio = again_routed / again_direct;
                routed = again_routed;
                direct = again_direct;
            }
        }
        println!(
            "gate: {routed_label} {routed:.0} dec/s vs direct {direct:.0} dec/s = {ratio:.2}x \
             (floor {ROUTED_GATE_RATIO}x)"
        );
        assert!(
            ratio >= ROUTED_GATE_RATIO,
            "perf gate failed: {routed_label} must sustain >= {ROUTED_GATE_RATIO}x the \
             direct rate ({routed:.0} vs {direct:.0} dec/s)"
        );
    }

    // Replication gate (ISSUE-10): with a warm standby pulling the
    // snapshot stream, steady-state throughput must hold >= 0.9x the
    // no-follower rate of the same shape — dirty tracking and chunked
    // export never pause shards. Same paired-retry discipline as the
    // routed gate: re-measure both sides back-to-back on a shortfall so
    // machine noise can't masquerade as replication overhead.
    for (repl_label, direct_proto, batch) in
        [("json-repl", "json", 1usize), ("bin-repl", "bin", 128)]
    {
        let mut direct = results
            .iter()
            .find(|r| {
                r.proto == direct_proto
                    && r.policy == "hybrid"
                    && r.shards == 4
                    && r.batch == batch
                    && r.tenants == 0
                    && r.conns == BASE_CONNS
            })
            .map(CaseResult::mean)
            .expect("direct case for the replication gate");
        let mut repl = results
            .iter()
            .find(|r| r.proto == repl_label)
            .map(CaseResult::mean)
            .expect("replicated case measured");
        let wire = if direct_proto == "bin" {
            Proto::Bin { batch }
        } else {
            Proto::Json
        };
        let mut ratio = repl / direct;
        let mut retries = 0;
        while ratio < REPL_GATE_RATIO && retries < 4 {
            retries += 1;
            let again_direct = run_once(
                4,
                PolicySpec::Hybrid(HybridConfig::default()),
                wire,
                0,
                BASE_CONNS,
                true,
            );
            let again_repl = run_once_replicated(
                4,
                PolicySpec::Hybrid(HybridConfig::default()),
                wire,
                BASE_CONNS,
            );
            println!(
                "gate: {repl_label} retry {retries}: replicated {again_repl:.0} vs direct \
                 {again_direct:.0} dec/s = {:.2}x",
                again_repl / again_direct
            );
            if again_repl / again_direct > ratio {
                ratio = again_repl / again_direct;
                repl = again_repl;
                direct = again_direct;
            }
        }
        println!(
            "gate: {repl_label} {repl:.0} dec/s vs direct {direct:.0} dec/s = {ratio:.2}x \
             (floor {REPL_GATE_RATIO}x)"
        );
        assert!(
            ratio >= REPL_GATE_RATIO,
            "perf gate failed: {repl_label} must sustain >= {REPL_GATE_RATIO}x the \
             no-follower rate ({repl:.0} vs {direct:.0} dec/s)"
        );
    }

    // Telemetry-overhead gate (ISSUE-6): the default-on flight recorder
    // and stage histograms may cost at most 5% against a telemetry-off
    // measurement of the same shape, taken *in this run* so both sides
    // see the same machine state. Both sides re-measure on a shortfall
    // (best-of-retries each): real overhead reproduces, noise does not.
    for (proto, batch) in [("json", 1usize), ("bin", 128usize)] {
        let wire = if proto == "bin" {
            Proto::Bin { batch }
        } else {
            Proto::Json
        };
        let hybrid = PolicySpec::Hybrid(HybridConfig::default());
        let mut on = results
            .iter()
            .find(|r| {
                r.proto == proto
                    && r.policy == "hybrid"
                    && r.shards == 4
                    && r.batch == batch
                    && r.tenants == 0
                    && r.conns == BASE_CONNS
            })
            .map(CaseResult::mean)
            .expect("telemetry-gated case measured");
        let mut off = run_once(4, hybrid.clone(), wire, 0, BASE_CONNS, false);
        // Gate on the best *paired* ratio, never max-of-each-side: the
        // latter only raises the bar with every retry (a lucky off-side
        // window from attempt 1 haunts all later attempts), which is
        // the opposite of what retries are for.
        let mut ratio = on / off;
        let mut retries = 0;
        while ratio < TELEM_GATE_RATIO && retries < 4 {
            retries += 1;
            let again_on = run_once(4, hybrid.clone(), wire, 0, BASE_CONNS, true);
            let again_off = run_once(4, hybrid.clone(), wire, 0, BASE_CONNS, false);
            println!(
                "gate: {proto} batch={batch} telemetry retry {retries}: \
                 on {again_on:.0} off {again_off:.0} dec/s = {:.2}x",
                again_on / again_off
            );
            if again_on / again_off > ratio {
                ratio = again_on / again_off;
                on = again_on;
                off = again_off;
            }
        }
        println!(
            "gate: {proto} batch={batch} telemetry-on {on:.0} dec/s vs off {off:.0} dec/s \
             = {ratio:.2}x (floor {TELEM_GATE_RATIO}x)"
        );
        assert!(
            ratio >= TELEM_GATE_RATIO,
            "perf gate failed: {proto} batch={batch} telemetry overhead exceeds 5% \
             ({on:.0} vs {off:.0} dec/s)"
        );
    }
}

criterion_group!(benches, bench_decisions_per_sec);

fn main() {
    benches();
    report_and_gate();
}
