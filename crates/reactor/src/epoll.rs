//! Safe wrapper around the Linux epoll readiness multiplexer
//! (level-triggered).

use std::io;
use std::os::unix::io::RawFd;

use crate::sys;

/// What readiness to watch a descriptor for. Error/hang-up conditions
/// are always reported, whatever the interest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor is readable (or the peer half-closed).
    pub readable: bool,
    /// Wake when the descriptor accepts writes again.
    pub writable: bool,
}

impl Interest {
    /// Read readiness only — the state most connections idle in.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// No readiness at all (backpressured connection with nothing to
    /// write); errors and hang-ups still wake the loop.
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };

    fn bits(self) -> u32 {
        let mut bits = 0;
        if self.readable {
            bits |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if self.writable {
            bits |= sys::EPOLLOUT;
        }
        bits
    }
}

/// One readiness notification out of [`Epoll::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the descriptor was registered with.
    pub token: u64,
    /// Data can be read (or the peer sent FIN).
    pub readable: bool,
    /// The descriptor accepts writes.
    pub writable: bool,
    /// Error or full hang-up on the descriptor; the owner should try an
    /// I/O operation and retire it on failure.
    pub hangup: bool,
}

/// Reusable buffer [`Epoll::wait`] fills — sized once, no allocation per
/// poll round.
pub struct Events {
    buf: Vec<sys::EpollEvent>,
    len: usize,
}

impl Events {
    /// A buffer receiving at most `capacity` events per wait.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            buf: vec![sys::EpollEvent { events: 0, data: 0 }; capacity.max(1)],
            len: 0,
        }
    }

    /// The events delivered by the most recent [`Epoll::wait`].
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf[..self.len].iter().map(|raw| {
            // Copy out of the (possibly packed) ABI struct first.
            let bits = raw.events;
            let data = raw.data;
            Event {
                token: data,
                readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                writable: bits & sys::EPOLLOUT != 0,
                hangup: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
            }
        })
    }
}

/// A level-triggered epoll instance.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a new (close-on-exec) epoll instance.
    pub fn new() -> io::Result<Epoll> {
        Ok(Epoll {
            fd: sys::sys_epoll_create()?,
        })
    }

    /// Registers `fd` under `token` with the given interest.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        sys::sys_epoll_ctl(self.fd, sys::EPOLL_CTL_ADD, fd, interest.bits(), token)
    }

    /// Changes the interest of an already registered descriptor.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        sys::sys_epoll_ctl(self.fd, sys::EPOLL_CTL_MOD, fd, interest.bits(), token)
    }

    /// Deregisters a descriptor. (Closing the fd deregisters implicitly;
    /// explicit removal keeps the lifecycle visible.)
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        sys::sys_epoll_ctl(self.fd, sys::EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks until readiness or `timeout_ms` (`-1` = forever), filling
    /// `events`. Returns the number of events delivered. `EINTR` is
    /// retried internally.
    pub fn wait(&self, events: &mut Events, timeout_ms: i32) -> io::Result<usize> {
        events.len = sys::sys_epoll_wait(self.fd, &mut events.buf, timeout_ms)?;
        Ok(events.len)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        sys::sys_close(self.fd);
    }
}

// The kernel serializes epoll_ctl/epoll_wait on one instance.
unsafe impl Send for Epoll {}
unsafe impl Sync for Epoll {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn reports_read_readiness_with_token() {
        let (mut client, server) = pair();
        server.set_nonblocking(true).unwrap();
        let epoll = Epoll::new().unwrap();
        epoll.add(server.as_raw_fd(), 42, Interest::READ).unwrap();
        let mut events = Events::with_capacity(8);

        // Nothing readable yet: a zero-timeout wait delivers nothing.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        client.write_all(b"x").unwrap();
        assert_eq!(epoll.wait(&mut events, 1_000).unwrap(), 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.token, 42);
        assert!(ev.readable);
        assert!(!ev.writable);
    }

    #[test]
    fn interest_modification_and_delete() {
        let (_client, server) = pair();
        server.set_nonblocking(true).unwrap();
        let epoll = Epoll::new().unwrap();
        epoll.add(server.as_raw_fd(), 7, Interest::NONE).unwrap();
        let mut events = Events::with_capacity(8);

        // A fresh socket is writable once we ask for write readiness.
        let write_only = Interest {
            readable: false,
            writable: true,
        };
        epoll.modify(server.as_raw_fd(), 7, write_only).unwrap();
        assert_eq!(epoll.wait(&mut events, 1_000).unwrap(), 1);
        assert!(events.iter().next().unwrap().writable);

        epoll.delete(server.as_raw_fd()).unwrap();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn peer_close_reported_as_readable() {
        let (client, server) = pair();
        server.set_nonblocking(true).unwrap();
        let epoll = Epoll::new().unwrap();
        epoll.add(server.as_raw_fd(), 1, Interest::READ).unwrap();
        drop(client);
        let mut events = Events::with_capacity(8);
        assert!(epoll.wait(&mut events, 1_000).unwrap() >= 1);
        let ev = events.iter().next().unwrap();
        assert!(ev.readable || ev.hangup);
    }
}
