//! Shard workers: each worker thread exclusively owns the per-tenant,
//! per-application policy state for its slice of the fleet.
//!
//! The decision path is lock-free by construction — connection threads
//! route `(tenant, app)` to a shard and exchange messages over `mpsc`
//! channels, so a shard's state is touched by exactly one thread. The
//! fleet extends the PR-1 isolation argument one level up: default-tenant
//! apps spread over shards by app hash (apps are independent, §5.1), and
//! each *named* tenant lands whole on one shard (tenant-name hash), so
//! its memory ledger — whose eviction decisions couple apps to each
//! other — has a single writer and a shard-count-independent event
//! order.
//!
//! Every tenant owns: its [`PolicySpec`]'s per-app policy state (or a
//! tenant-local [`ProductionManager`] in production mode), a
//! [`TenantLedger`] charging each warm container its deterministic Burr
//! footprint, and eviction bookkeeping. When a charge pushes a budgeted
//! tenant over its limit, victims (earliest keep-alive expiry first) are
//! marked evicted; their next invocation is downgraded to a cold start
//! with the `evicted` flag set — the memory-pressure dimension the
//! paper's §3.4 trade-off implies but a stateless verdict oracle cannot
//! express.

use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{Receiver, Sender};

use sitw_core::{
    AppKey, AppPolicy, DecisionKind, FixedKeepAlive, HybridPolicy, NoUnloading, ProductionManager,
    Windows,
};
use sitw_fleet::{footprint_mb, LedgerExport, TenantId, TenantLedger, TenantSpec};
use sitw_sim::PolicySpec;
use sitw_telemetry::{EventKind, LifecycleEvent, Log2Histogram, SpanEvent, Stage};

use crate::metrics::{ShardStats, TenantStats};
use crate::reactor::ReplySink;
use crate::snapshot::{AppRecord, PolicyState, ShardExport, TenantExport};
use crate::telem::ShardTelem;

/// Latency quantiles `/metrics` exports as compatibility gauges,
/// derived from the shard's decision-latency log2 histogram.
pub const LATENCY_QUANTILES: [f64; 3] = [0.50, 0.95, 0.99];

/// Mailbox messages a worker pulls non-blockingly behind each blocking
/// `recv` (one telemetry *drain wave*) — bounds the wave's memory and
/// the reply delay a deep backlog can impose on its first message.
const DRAIN_WAVE: usize = 128;

/// A concrete per-application policy instance.
///
/// An enum rather than `Box<dyn AppPolicy>` for two reasons: decisions
/// dispatch without a vtable on the hot path, and snapshot export can
/// match on the variant instead of downcasting.
// The hybrid variant dominates the size, but hybrid is also the policy
// every realistic deployment serves — boxing it would add a pointer
// chase per decision to shrink the two baseline variants nobody runs.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum ServedPolicy {
    /// Fixed keep-alive baseline.
    Fixed(FixedKeepAlive),
    /// Never unload.
    NoUnload(NoUnloading),
    /// The hybrid histogram policy.
    Hybrid(HybridPolicy),
    /// Production-manager mode (§6): the per-app state lives in the
    /// tenant's fleet-wide [`ProductionManager`]; this variant holds the
    /// app's key into it plus the branch that served its last decision.
    Production {
        /// Key of this app inside the tenant's manager.
        key: AppKey,
        /// The branch that produced the most recent decision.
        last: DecisionKind,
    },
}

impl ServedPolicy {
    /// Creates a fresh instance for one application under `spec`.
    ///
    /// # Panics
    ///
    /// Panics for [`PolicySpec::Production`]: production apps are
    /// registered with their tenant's manager (see
    /// [`ShardWorker::invoke`]), not built standalone.
    pub fn new(spec: &PolicySpec) -> ServedPolicy {
        match spec {
            PolicySpec::Fixed(f) => ServedPolicy::Fixed(*f),
            PolicySpec::NoUnloading => ServedPolicy::NoUnload(NoUnloading),
            PolicySpec::Hybrid(cfg) => ServedPolicy::Hybrid(HybridPolicy::new(cfg.clone())),
            PolicySpec::Production(_) => {
                unreachable!("production apps are created by the tenant's manager")
            }
        }
    }

    // sitw-lint: hot-path
    fn on_invocation(&mut self, idle_time_ms: Option<u64>) -> Windows {
        match self {
            ServedPolicy::Fixed(p) => p.on_invocation(idle_time_ms),
            ServedPolicy::NoUnload(p) => p.on_invocation(idle_time_ms),
            ServedPolicy::Hybrid(p) => p.on_invocation(idle_time_ms),
            ServedPolicy::Production { .. } => {
                // Production apps never reach this dispatcher: invoke()
                // matches the Production variant first and routes through
                // the tenant manager. A type-level split would duplicate
                // the whole enum; the invariant is cheaper to state here.
                // sitw-lint: allow(panic-freedom)
                unreachable!("production decisions go through the tenant's manager")
            }
        }
    }

    fn last_decision(&self) -> DecisionKind {
        match self {
            ServedPolicy::Fixed(p) => p.last_decision(),
            ServedPolicy::NoUnload(p) => p.last_decision(),
            ServedPolicy::Hybrid(p) => p.last_decision(),
            ServedPolicy::Production { last, .. } => *last,
        }
    }
}

/// Tenant-local production state: one manager covering the tenant's
/// shard slice of the app space, plus §6 bookkeeping counters.
struct ProductionShard {
    manager: ProductionManager,
    /// Next key to hand to a newly seen app. Keys are shard-local and
    /// never serialized — snapshots are app-id-keyed, so a restore (even
    /// with a different shard count) just re-assigns them.
    next_key: AppKey,
    /// Pre-warm events scheduled so far (each one `prewarm_slack_ms`
    /// before the computed window, per §6).
    prewarm_scheduled: u64,
}

impl ProductionShard {
    fn decide(&mut self, key: AppKey, ts: u64, idle: Option<u64>) -> (Windows, DecisionKind) {
        let (windows, kind) = self.manager.on_invocation(key, ts, idle);
        // An unload/pre-warm cycle means a pre-warm event was put on the
        // schedule (fired 90 s early, off the critical path).
        if windows.pre_warm_ms > 0 {
            self.prewarm_scheduled += 1;
        }
        (windows, kind)
    }
}

/// One keep-alive decision, as returned to a client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// The invocation found no loaded image.
    pub cold: bool,
    /// A pre-warm load occurred in the gap ending at this invocation.
    pub prewarm_load: bool,
    /// The image was evicted for memory pressure during the gap: a
    /// would-be warm start was downgraded to cold (the fleet's budget
    /// dimension; always false for unbudgeted tenants).
    pub evicted: bool,
    /// The policy branch that produced the new windows.
    pub kind: DecisionKind,
    /// Windows governing the gap until the app's next invocation.
    pub windows: Windows,
}

/// Why an invocation was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvokeError {
    /// The timestamp is older than the app's last accepted one. Policy
    /// state is a function of the ordered idle-time stream, so
    /// out-of-order delivery must be surfaced, not silently folded in.
    OutOfOrder {
        /// The app's last accepted timestamp.
        last_ts: u64,
    },
    /// The tenant id is not registered on this shard. Unreachable from
    /// the daemon's connection path (ids are validated against the
    /// registry before dispatch); kept as a typed error so the shard
    /// never panics on a protocol-level race.
    UnknownTenant,
}

/// A reply to one `Invoke` message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvokeReply {
    /// Echo of the request's sequence number (responses from different
    /// shards interleave on the reply channel; the connection reorders).
    pub seq: u64,
    /// The decision or the rejection.
    pub result: Result<Decision, InvokeError>,
}

/// One record of a batched invoke: the frame-relative index plus the
/// invocation itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchItem {
    /// Position of this record in its frame (replies are reassembled in
    /// frame order across shards).
    pub idx: u32,
    /// Tenant the app belongs to.
    pub tenant: TenantId,
    /// Application id.
    pub app: String,
    /// Invocation timestamp (trace milliseconds).
    pub ts: u64,
}

/// A shard's answers to one [`ShardMsg::InvokeBatch`]: `(idx, result)`
/// pairs in submission order, tagged with the frame they belong to so
/// connections can keep several frames in flight (server-side frame
/// pipelining).
#[derive(Debug)]
pub struct BatchReply {
    /// The connection-local frame sequence this reply answers.
    pub frame_seq: u64,
    /// One result per submitted item, tagged with its frame index.
    pub results: Vec<(u32, Result<Decision, InvokeError>)>,
}

/// Messages a shard worker accepts.
pub enum ShardMsg {
    /// One invocation to classify.
    Invoke {
        /// Tenant the app belongs to.
        tenant: TenantId,
        /// Application id.
        app: String,
        /// Invocation timestamp (trace milliseconds).
        ts: u64,
        /// Connection-local sequence number echoed in the reply.
        seq: u64,
        /// Telemetry span id assigned at parse time (0 when disabled).
        span: u64,
        /// Dispatch timestamp (ns since server start; 0 when disabled).
        /// The shard records dequeue-minus-dispatch as queue wait.
        sent_ns: u64,
        /// Where to send the reply (the owning reactor's queue).
        reply: ReplySink,
    },
    /// A whole frame slice in one mpsc hop: every record of a SITW-BIN
    /// frame that hashed to this shard. Amortizes mailbox and wake costs
    /// across the batch — the point of the binary protocol.
    InvokeBatch {
        /// Connection-local frame sequence (echoed in the reply so the
        /// connection can pipeline frames).
        frame_seq: u64,
        /// The shard's slice of the frame, in frame order.
        items: Vec<BatchItem>,
        /// Telemetry span id of the frame (0 when disabled).
        span: u64,
        /// Dispatch timestamp (ns since server start; 0 when disabled).
        sent_ns: u64,
        /// Where to send the batched reply (the owning reactor's queue).
        reply: ReplySink,
    },
    /// Registers a tenant on this shard (admin path). Acked so the
    /// registry only exposes the tenant once its shard can serve it.
    AddTenant {
        /// The tenant to create (empty state).
        spec: TenantSpec,
        /// Acked once the tenant exists.
        ack: Sender<()>,
    },
    /// Replaces a tenant's memory budget (0 = unlimited). Enforcement is
    /// lazy — the new budget bites on the *next* charge — so applying a
    /// cluster-reconciled share never rewrites verdicts retroactively.
    /// Acked with `true` iff the tenant lives on this shard.
    SetBudget {
        /// The tenant whose budget to replace.
        tenant: TenantId,
        /// The new budget in MB (0 = unlimited).
        budget_mb: u64,
        /// Acked with whether the tenant was found.
        ack: Sender<bool>,
    },
    /// Exports a tenant's complete state and removes it from the shard
    /// (the first half of a cross-node migration). Replies `None` when
    /// the tenant does not live here. Traffic arriving after the take
    /// gets typed `UnknownTenant` errors, never a panic.
    TakeTenant {
        /// The tenant to export and drop.
        tenant: TenantId,
        /// The exported state, or `None` if unknown.
        reply: Sender<Option<TenantExport>>,
    },
    /// Installs a tenant from a migration payload (the second half of a
    /// cross-node migration), replacing any existing state for that id.
    RestoreTenant {
        /// The tenant's spec, apps, and ledger to install.
        restore: Box<TenantRestore>,
        /// `Ok` once installed; `Err` carries the decode failure.
        ack: Sender<Result<(), String>>,
    },
    /// Renders one app's live policy state as JSON — the decision
    /// provenance view behind `GET /debug/policy`. Replies `None` when
    /// the tenant or app has no state on this shard.
    PolicyProbe {
        /// Tenant the app belongs to.
        tenant: TenantId,
        /// Application id.
        app: String,
        /// The rendered JSON body, or `None` if unknown.
        reply: Sender<Option<String>>,
    },
    /// Report counters and latency percentiles.
    Scrape(Sender<ShardStats>),
    /// Export the complete per-app state.
    Snapshot(Sender<ShardExport>),
    /// Export only the state mutated after `since` — one shard's half
    /// of a replication round. The tenant list is always complete
    /// (specs, ledgers, clocks are cheap and carried wholesale every
    /// round); only the per-app records are filtered, so the export
    /// cost scales with the mutation rate, not the fleet size.
    ExportDirty {
        /// The replication frontier: apps stamped at or before this
        /// sequence are skipped (0 exports everything mutated since
        /// the worker started).
        since: u64,
        /// The filtered export plus the new frontier.
        reply: Sender<DirtyShardExport>,
    },
    /// Drain and exit; the worker returns its final state to `join`.
    Shutdown,
}

/// One shard's answer to [`ShardMsg::ExportDirty`]: the state mutated
/// since the requested frontier, plus the frontier to ask from next
/// round.
#[derive(Debug)]
pub struct DirtyShardExport {
    /// The worker's mutation sequence at export time. Feeding it back
    /// as `since` on the next round yields exactly the mutations in
    /// between — a lost round re-sends, never skips.
    pub seq: u64,
    /// The complete tenant list with apps filtered to the dirty set.
    pub export: ShardExport,
}

/// Per-application serving state.
struct AppState {
    policy: ServedPolicy,
    windows: Windows,
    last_ts: u64,
    /// The image was evicted for memory pressure during the gap in
    /// progress; the next invocation is downgraded to cold.
    evicted: bool,
    /// The app's deterministic Burr footprint, computed once at first
    /// sight — a pure function of `(tenant, app)`, so the hot path
    /// never re-runs the quantile transform.
    footprint_mb: u64,
    /// The most recent verdict served plus its inputs — the provenance
    /// `GET /debug/policy` reports (`None` only for restored apps that
    /// have not been invoked since).
    last_verdict: Option<LastVerdict>,
    /// The worker's mutation sequence when this app's state last
    /// changed (invocation, eviction flag, or migration-restore).
    /// Replication rounds export exactly the apps whose stamp is newer
    /// than the follower's frontier — never the whole map.
    dirty_seq: u64,
}

/// One served verdict with the inputs that produced it, kept per app
/// for decision provenance.
#[derive(Debug, Clone, Copy)]
struct LastVerdict {
    /// Invocation timestamp (trace milliseconds).
    ts: u64,
    /// The idle time classified (`None` for the app's first sight).
    idle_ms: Option<u64>,
    cold: bool,
    prewarm_load: bool,
    evicted: bool,
    kind: DecisionKind,
}

/// One tenant's complete state on this shard.
struct TenantShard {
    spec: TenantSpec,
    apps: HashMap<String, AppState>,
    /// `Some` iff the tenant's policy is [`PolicySpec::Production`].
    production: Option<ProductionShard>,
    ledger: TenantLedger,
    invocations: u64,
    cold: u64,
    /// Decision latency for this tenant's invocations, nanoseconds.
    decide_ns: Log2Histogram,
}

impl TenantShard {
    fn new(spec: TenantSpec, ledger: TenantLedger, prod_clock: Option<u64>) -> TenantShard {
        let production = match &spec.policy {
            PolicySpec::Production(cfg) => {
                let mut manager = ProductionManager::new(*cfg);
                if let Some(at_ms) = prod_clock {
                    manager.set_last_backup_ms(at_ms);
                }
                Some(ProductionShard {
                    manager,
                    next_key: 0,
                    prewarm_scheduled: 0,
                })
            }
            _ => None,
        };
        TenantShard {
            spec,
            apps: HashMap::new(),
            production,
            ledger,
            invocations: 0,
            cold: 0,
            decide_ns: Log2Histogram::new(),
        }
    }
}

/// Restore payload for one tenant on one shard: its spec plus the app
/// records and ledger slice routed here.
pub struct TenantRestore {
    /// The tenant's configuration.
    pub spec: TenantSpec,
    /// This shard's app records (tenant-filtered, app-routed).
    pub apps: Vec<AppRecord>,
    /// This shard's slice of the tenant's ledger.
    pub ledger: LedgerExport,
    /// Production backup clock, when the tenant serves production mode.
    pub prod_clock: Option<u64>,
}

impl TenantRestore {
    /// An empty-state restore for `spec`.
    pub fn fresh(spec: TenantSpec) -> TenantRestore {
        TenantRestore {
            spec,
            apps: Vec::new(),
            ledger: LedgerExport::default(),
            prod_clock: None,
        }
    }
}

/// The state owned by one shard worker thread.
pub struct ShardWorker {
    id: usize,
    tenants: HashMap<TenantId, TenantShard>,
    invocations: u64,
    cold: u64,
    prewarm_loads: u64,
    out_of_order: u64,
    /// Bumped on every state mutation (decision, budget change, tenant
    /// add/take/restore); apps are stamped with it so replication
    /// rounds can export the dirty subset without pausing the shard.
    mutation_seq: u64,
    telem: ShardTelem,
    /// Per-frame `(tenant, records)` counts, reused across batches so
    /// per-tenant histogram attribution stays allocation-free.
    tenant_scratch: Vec<(TenantId, u64)>,
    /// Decided-but-unreplied JSON invokes of the current drain wave,
    /// reused across waves (see [`ShardWorker::run`]).
    json_wave: Vec<PendingInvoke>,
}

/// One JSON invocation decided inside a drain wave, awaiting its reply
/// and telemetry records (all of which share the wave's clock pair).
struct PendingInvoke {
    tenant: TenantId,
    span: u64,
    sent_ns: u64,
    seq: u64,
    result: Result<Decision, InvokeError>,
    reply: ReplySink,
}

impl ShardWorker {
    /// Creates a worker for shard `id` serving `tenants` (the default
    /// tenant plus every named tenant routed to this shard), optionally
    /// restoring their state.
    pub fn new(id: usize, tenants: Vec<TenantRestore>) -> Result<Self, String> {
        let mut map = HashMap::with_capacity(tenants.len());
        for restore in tenants {
            // Startup-restored apps stamp dirty sequence 0: a follower
            // attaching to a fresh primary full-syncs anyway, so they
            // need no delta visibility.
            let (tid, shard) = Self::build_tenant(restore, 0)?;
            map.insert(tid, shard);
        }
        Ok(Self {
            id,
            tenants: map,
            invocations: 0,
            cold: 0,
            prewarm_loads: 0,
            out_of_order: 0,
            mutation_seq: 0,
            telem: ShardTelem::default(),
            tenant_scratch: Vec::new(),
            json_wave: Vec::new(),
        })
    }

    /// Replaces the worker's telemetry wiring (recorder, gauge, clock,
    /// enable switch) — the server threads its shared handles in here.
    pub fn with_telem(mut self, telem: ShardTelem) -> Self {
        self.telem = telem;
        self
    }

    /// Builds one tenant's in-memory state from a restore payload — the
    /// shared path behind startup restore and live tenant migration.
    /// Restored apps are stamped `dirty_seq` so a migrated-in tenant is
    /// visible to the next replication round (0 at startup, where the
    /// follower full-syncs regardless).
    fn build_tenant(
        restore: TenantRestore,
        dirty_seq: u64,
    ) -> Result<(TenantId, TenantShard), String> {
        let budget = restore.spec.budget_mb;
        let tid = restore.spec.id;
        let mut shard = TenantShard::new(
            restore.spec,
            TenantLedger::restore(budget, restore.ledger),
            restore.prod_clock,
        );
        shard.apps.reserve(restore.apps.len().max(16));
        for rec in restore.apps {
            let policy = match (rec.state, &mut shard.production) {
                (PolicyState::Production { last, state }, Some(prod)) => {
                    let key = prod.next_key;
                    prod.next_key += 1;
                    prod.manager.import_app(key, state)?;
                    ServedPolicy::Production { key, last }
                }
                (state, _) => state.into_policy(&shard.spec.policy)?,
            };
            let footprint_mb = footprint_mb(&shard.spec.name, &rec.app);
            shard.apps.insert(
                rec.app,
                AppState {
                    policy,
                    windows: rec.windows,
                    last_ts: rec.last_ts,
                    evicted: rec.evicted,
                    footprint_mb,
                    last_verdict: None,
                    dirty_seq,
                },
            );
        }
        Ok((tid, shard))
    }

    /// Registers a fresh tenant (admin path). Bumps the mutation
    /// sequence: the tenant list is part of the replicated state, so
    /// the next round must fire even though no app is dirty yet.
    pub fn add_tenant(&mut self, spec: TenantSpec) {
        let budget = spec.budget_mb;
        self.mutation_seq += 1;
        self.tenants
            .entry(spec.id)
            .or_insert_with(|| TenantShard::new(spec, TenantLedger::new(budget), None));
    }

    /// Classifies one invocation. Mirrors `sitw_sim::fleet_verdict_trace`
    /// exactly: both paths classify through
    /// [`sitw_core::Windows::classify_gap`], apply the same eviction
    /// downgrade, advance the policy, and charge the same ledger.
    // sitw-lint: hot-path
    pub fn invoke(
        &mut self,
        tenant: TenantId,
        app: &str,
        ts: u64,
    ) -> Result<Decision, InvokeError> {
        // The dirty stamp of every state this invocation mutates
        // (committed to `mutation_seq` only on the success path — an
        // out-of-order rejection changes no replicated state).
        let seq = self.mutation_seq + 1;
        let t = self
            .tenants
            .get_mut(&tenant)
            .ok_or(InvokeError::UnknownTenant)?;
        let (decision, mb) = match t.apps.get_mut(app) {
            None => {
                // First invocation of this app: cold by definition (§5.1).
                let (policy, windows, kind) = match &mut t.production {
                    Some(prod) => {
                        let key = prod.next_key;
                        prod.next_key += 1;
                        let (windows, kind) = prod.decide(key, ts, None);
                        (ServedPolicy::Production { key, last: kind }, windows, kind)
                    }
                    None => {
                        let mut policy = ServedPolicy::new(&t.spec.policy);
                        let windows = policy.on_invocation(None);
                        let kind = policy.last_decision();
                        (policy, windows, kind)
                    }
                };
                let mb = footprint_mb(&t.spec.name, app);
                t.apps.insert(
                    app.to_owned(),
                    AppState {
                        policy,
                        windows,
                        last_ts: ts,
                        evicted: false,
                        footprint_mb: mb,
                        last_verdict: Some(LastVerdict {
                            ts,
                            idle_ms: None,
                            cold: true,
                            prewarm_load: false,
                            evicted: false,
                            kind,
                        }),
                        dirty_seq: seq,
                    },
                );
                (
                    Decision {
                        cold: true,
                        prewarm_load: false,
                        evicted: false,
                        kind,
                        windows,
                    },
                    mb,
                )
            }
            Some(state) => {
                if ts < state.last_ts {
                    self.out_of_order += 1;
                    return Err(InvokeError::OutOfOrder {
                        last_ts: state.last_ts,
                    });
                }
                let idle = ts - state.last_ts;
                let outcome = state.windows.classify_gap(idle);
                // The memory-pressure downgrade: a gap the policy would
                // have served warm is cold when the budget evicted the
                // image mid-gap (and the phantom pre-warm load with it).
                let was_evicted = state.evicted;
                state.evicted = false;
                state.windows = match (&mut t.production, &mut state.policy) {
                    (Some(prod), ServedPolicy::Production { key, last }) => {
                        let (windows, kind) = prod.decide(*key, ts, Some(idle));
                        *last = kind;
                        windows
                    }
                    (_, policy) => policy.on_invocation(Some(idle)),
                };
                state.last_ts = ts;
                let d = Decision {
                    cold: outcome.cold || was_evicted,
                    prewarm_load: outcome.prewarm_load && !was_evicted,
                    evicted: was_evicted,
                    kind: state.policy.last_decision(),
                    windows: state.windows,
                };
                state.last_verdict = Some(LastVerdict {
                    ts,
                    idle_ms: Some(idle),
                    cold: d.cold,
                    prewarm_load: d.prewarm_load,
                    evicted: d.evicted,
                    kind: d.kind,
                });
                state.dirty_seq = seq;
                (d, state.footprint_mb)
            }
        };

        // Charge the ledger: the app is warm until its windows lapse,
        // holding its deterministic Burr footprint (computed once at
        // first sight, cached in its AppState). Budget overflows evict
        // by earliest expiry — possibly the just-charged app itself,
        // when its footprint cannot fit at all.
        let expiry = decision.windows.loaded_until(ts);
        for victim in t.ledger.charge(app, ts, expiry, mb) {
            if let Some(v) = t.apps.get_mut(&victim) {
                v.evicted = true;
                v.dirty_seq = seq;
            }
            // Evictions are rare (budget pressure only), so the event
            // push — try_lock, never blocking the decision path — stays
            // off the common invoke. Stamped with workload time: the
            // ring stays deterministic and costs no clock read.
            if self.telem.enabled {
                if let Ok(mut ring) = self.telem.events.try_lock() {
                    ring.push(LifecycleEvent {
                        ts_ms: ts,
                        kind: EventKind::Eviction,
                        tenant: t.spec.name.clone(), // sitw-lint: allow(hot-path-alloc)
                        app: victim,
                        // sitw-lint: allow(hot-path-alloc)
                        detail: format!("budget {} MB", t.spec.budget_mb),
                    });
                }
            }
        }

        t.invocations += 1;
        self.invocations += 1;
        self.mutation_seq = seq;
        if decision.cold {
            t.cold += 1;
            self.cold += 1;
            // Cold starts are off the steady state by definition; the
            // push is enabled-gated and try_lock like the eviction one.
            if self.telem.enabled {
                if let Ok(mut ring) = self.telem.events.try_lock() {
                    ring.push(LifecycleEvent {
                        ts_ms: ts,
                        kind: EventKind::ColdStart,
                        tenant: t.spec.name.clone(), // sitw-lint: allow(hot-path-alloc)
                        app: app.to_owned(),
                        detail: if decision.evicted {
                            "eviction downgrade".to_owned()
                        } else {
                            String::new()
                        },
                    });
                }
            }
        }
        if decision.prewarm_load {
            self.prewarm_loads += 1;
        }
        Ok(decision)
    }

    /// Classifies a whole batch in order. Decisions are identical to
    /// calling [`ShardWorker::invoke`] per item — batching only changes
    /// transport cost, never outcomes. Timing lives in the mailbox loop
    /// (the batch is clocked once and recorded per record at the batch
    /// mean), so this method stays a pure decision function.
    // sitw-lint: hot-path
    pub fn invoke_batch(&mut self, frame_seq: u64, items: Vec<BatchItem>) -> BatchReply {
        let results: Vec<(u32, Result<Decision, InvokeError>)> = items
            .into_iter()
            .map(|item| (item.idx, self.invoke(item.tenant, &item.app, item.ts)))
            .collect();
        BatchReply { frame_seq, results }
    }

    fn stats(&self) -> ShardStats {
        let mut tenants: Vec<TenantStats> = self
            .tenants
            .values()
            .map(|t| {
                let ledger = t.ledger.stats();
                TenantStats {
                    id: t.spec.id,
                    name: t.spec.name.clone(),
                    budget_mb: t.spec.budget_mb,
                    warm_mb: ledger.warm_mb,
                    warm_apps: ledger.warm_apps,
                    evictions: ledger.evictions,
                    idle_mb_ms: ledger.idle_mb_ms,
                    invocations: t.invocations,
                    cold: t.cold,
                    decision_ns: t.decide_ns.clone(),
                }
            })
            .collect();
        tenants.sort_by_key(|t| t.id);
        ShardStats {
            shard: self.id,
            apps: self.tenants.values().map(|t| t.apps.len() as u64).sum(),
            invocations: self.invocations,
            cold: self.cold,
            warm: self.invocations - self.cold,
            prewarm_loads: self.prewarm_loads,
            out_of_order: self.out_of_order,
            backups: self
                .tenants
                .values()
                .filter_map(|t| t.production.as_ref())
                .map(|p| p.manager.backups_taken())
                .sum(),
            prewarm_scheduled: self
                .tenants
                .values()
                .filter_map(|t| t.production.as_ref())
                .map(|p| p.prewarm_scheduled)
                .sum(),
            latency_us: {
                // Compatibility quantile gauges, derived from the same
                // buckets the histogram family exports. Empty until the
                // shard has observed a decision — an empty estimator
                // must not export garbage (the NaN-suppression bugfix).
                let decide = self.telem.decide.merged();
                LATENCY_QUANTILES
                    .iter()
                    .filter_map(|&q| decide.quantile(q).map(|ns| (q, ns / 1_000.0)))
                    .collect()
            },
            queue_ns: self.telem.queue.clone(),
            decide_ns: self.telem.decide.clone(),
            mailbox_depth: self.telem.gauge.read().0,
            mailbox_peak: self.telem.gauge.read().1,
            tenants,
        }
    }

    fn export_tenant(t: &TenantShard) -> TenantExport {
        Self::export_tenant_if(t, |_| true)
    }

    /// Exports one tenant with its app records filtered by `keep` —
    /// the full snapshot keeps everything, a replication round keeps
    /// the dirty subset. Tenant-level state (spec, ledger, production
    /// clock) is always exported whole: it is O(1) per tenant, and
    /// carrying it every round is what lets delta application replace
    /// it wholesale instead of diffing.
    fn export_tenant_if(t: &TenantShard, keep: impl Fn(&AppState) -> bool) -> TenantExport {
        let mut apps: Vec<AppRecord> = t
            .apps
            .iter()
            .filter(|(_, state)| keep(state))
            .map(|(app, state)| AppRecord {
                app: app.clone(),
                last_ts: state.last_ts,
                windows: state.windows,
                evicted: state.evicted,
                state: match (&state.policy, &t.production) {
                    (ServedPolicy::Production { key, last }, Some(prod)) => {
                        PolicyState::Production {
                            last: *last,
                            state: prod.manager.export_app(*key).unwrap_or_default(),
                        }
                    }
                    (policy, _) => PolicyState::export(policy),
                },
            })
            .collect();
        apps.sort_by(|a, b| a.app.cmp(&b.app));
        TenantExport {
            id: t.spec.id,
            name: t.spec.name.clone(),
            policy_label: t.spec.policy.label(),
            spec_str: t.spec.policy.spec_str(),
            budget_mb: t.spec.budget_mb,
            prod_clock: t.production.as_ref().map(|p| p.manager.last_backup_ms()),
            ledger: t.ledger.export(),
            apps,
        }
    }

    fn export(&self) -> ShardExport {
        let mut tenants: Vec<TenantExport> =
            self.tenants.values().map(Self::export_tenant).collect();
        tenants.sort_by_key(|t| t.id);
        ShardExport { tenants }
    }

    /// One shard's half of a replication round: every tenant, with the
    /// app records mutated after `since`. Walks the app maps without
    /// mutating anything — decisions in flight on other shards are
    /// unaffected, and this shard resumes its mailbox immediately
    /// after.
    fn export_dirty(&self, since: u64) -> DirtyShardExport {
        let mut tenants: Vec<TenantExport> = self
            .tenants
            .values()
            .map(|t| Self::export_tenant_if(t, |s| s.dirty_seq > since))
            .collect();
        tenants.sort_by_key(|t| t.id);
        DirtyShardExport {
            seq: self.mutation_seq,
            export: ShardExport { tenants },
        }
    }

    /// Records a tenant migration on the lifecycle event ring (take or
    /// restore). Migrations carry no workload timestamp, so they stamp
    /// domain time 0 and name the direction in `detail`.
    fn push_migration_event(&self, tenant: &str, detail: &str) {
        if !self.telem.enabled {
            return;
        }
        if let Ok(mut ring) = self.telem.events.try_lock() {
            ring.push(LifecycleEvent {
                ts_ms: 0,
                kind: EventKind::Migration,
                tenant: tenant.to_owned(),
                app: String::new(),
                detail: detail.to_owned(),
            });
        }
    }

    /// The worker loop: drains the mailbox until `Shutdown`, then
    /// returns the final per-app state (for the shutdown snapshot).
    ///
    /// With telemetry on, each blocking `recv` starts a *drain wave*:
    /// the backlog behind it is pulled non-blockingly (bounded by
    /// [`DRAIN_WAVE`]), observed once on the mailbox gauge, and a run of
    /// consecutive JSON invokes at the wave front shares one clock pair
    /// and one recorder lock — per-message telemetry cost amortizes over
    /// the backlog instead of taxing every decision. Every decision
    /// still lands in every stage histogram (counts stay exact).
    pub fn run(mut self, mailbox: Receiver<ShardMsg>) -> ShardExport {
        let mut pending: VecDeque<ShardMsg> = VecDeque::new();
        loop {
            let msg = match pending.pop_front() {
                Some(msg) => msg,
                None => {
                    let Ok(msg) = mailbox.recv() else { break };
                    if self.telem.enabled {
                        while pending.len() < DRAIN_WAVE {
                            match mailbox.try_recv() {
                                Ok(m) => pending.push_back(m),
                                Err(_) => break,
                            }
                        }
                        self.telem.gauge.observe(1 + pending.len() as u64);
                    }
                    msg
                }
            };
            match msg {
                ShardMsg::Invoke {
                    tenant,
                    app,
                    ts,
                    seq,
                    span,
                    sent_ns,
                    reply,
                } => {
                    if !self.telem.enabled {
                        // Telemetry off: no clock reads, no histogram
                        // touches — the decision is the whole hot path.
                        let result = self.invoke(tenant, &app, ts);
                        reply.invoke(InvokeReply { seq, result });
                        continue;
                    }
                    let mut wave = std::mem::take(&mut self.json_wave);
                    let t0 = self.telem.clock.now_ns();
                    let result = self.invoke(tenant, &app, ts);
                    wave.push(PendingInvoke {
                        tenant,
                        span,
                        sent_ns,
                        seq,
                        result,
                        reply,
                    });
                    while let Some(ShardMsg::Invoke { .. }) = pending.front() {
                        match pending.pop_front() {
                            Some(ShardMsg::Invoke {
                                tenant,
                                app,
                                ts,
                                seq,
                                span,
                                sent_ns,
                                reply,
                            }) => {
                                let result = self.invoke(tenant, &app, ts);
                                wave.push(PendingInvoke {
                                    tenant,
                                    span,
                                    sent_ns,
                                    seq,
                                    result,
                                    reply,
                                });
                            }
                            // front() just matched Invoke, so these arms
                            // are unreachable in practice — but if they
                            // ever fire, requeue rather than drop a
                            // message on the floor and keep serving.
                            Some(other) => {
                                pending.push_front(other);
                                break;
                            }
                            None => break,
                        }
                    }
                    let t1 = self.telem.clock.now_ns();
                    let k = wave.len() as u64;
                    // The run is clocked once; every decision gets the
                    // run mean (invocation-weighted, exact counts).
                    let mean = t1.saturating_sub(t0).checked_div(k).unwrap_or(0);
                    for p in &wave {
                        self.telem.queue.json.record(t0.saturating_sub(p.sent_ns));
                        if let Some(t) = self.tenants.get_mut(&p.tenant) {
                            t.decide_ns.record(mean);
                        }
                    }
                    self.telem.decide.json.record_n(mean, k);
                    // try_lock: losing the race to a /debug/trace scrape
                    // drops the spans, never blocks the decision path.
                    if let Ok(mut rec) = self.telem.recorder.try_lock() {
                        for p in &wave {
                            rec.push(SpanEvent {
                                span: p.span,
                                stage: Stage::Queue,
                                start_ns: p.sent_ns,
                                end_ns: t0,
                            });
                            rec.push(SpanEvent {
                                span: p.span,
                                stage: Stage::Decide,
                                start_ns: t0,
                                end_ns: t1,
                            });
                        }
                    }
                    // A reply to a connection that died is dropped by
                    // the reactor's slab generation check; the decision
                    // was still applied, which is correct (the
                    // invocation happened).
                    for p in wave.drain(..) {
                        p.reply.invoke(InvokeReply {
                            seq: p.seq,
                            result: p.result,
                        });
                    }
                    self.json_wave = wave;
                }
                ShardMsg::InvokeBatch {
                    frame_seq,
                    items,
                    span,
                    sent_ns,
                    reply,
                } => {
                    if !self.telem.enabled {
                        reply.batch(self.invoke_batch(frame_seq, items));
                        continue;
                    }
                    // Per-tenant record counts, folded before `items`
                    // moves into the decision loop (scratch is reused
                    // across frames — no steady-state allocation).
                    self.tenant_scratch.clear();
                    for item in &items {
                        match self
                            .tenant_scratch
                            .iter_mut()
                            .find(|(tid, _)| *tid == item.tenant)
                        {
                            Some((_, c)) => *c += 1,
                            None => self.tenant_scratch.push((item.tenant, 1)),
                        }
                    }
                    let n = items.len() as u64;
                    let t0 = self.telem.clock.now_ns();
                    let batch = self.invoke_batch(frame_seq, items);
                    let t1 = self.telem.clock.now_ns();
                    // The batch is clocked once; every record gets the
                    // batch mean, keeping the histograms
                    // invocation-weighted without a clock read per
                    // record.
                    let mean = t1.saturating_sub(t0).checked_div(n).unwrap_or(0);
                    self.telem.queue.bin.record_n(t0.saturating_sub(sent_ns), n);
                    self.telem.decide.bin.record_n(mean, n);
                    let scratch = std::mem::take(&mut self.tenant_scratch);
                    for &(tid, c) in &scratch {
                        if let Some(t) = self.tenants.get_mut(&tid) {
                            t.decide_ns.record_n(mean, c);
                        }
                    }
                    self.tenant_scratch = scratch;
                    if let Ok(mut rec) = self.telem.recorder.try_lock() {
                        rec.push(SpanEvent {
                            span,
                            stage: Stage::Queue,
                            start_ns: sent_ns,
                            end_ns: t0,
                        });
                        rec.push(SpanEvent {
                            span,
                            stage: Stage::Decide,
                            start_ns: t0,
                            end_ns: t1,
                        });
                    }
                    reply.batch(batch);
                }
                ShardMsg::AddTenant { spec, ack } => {
                    self.add_tenant(spec);
                    let _ = ack.send(());
                }
                ShardMsg::SetBudget {
                    tenant,
                    budget_mb,
                    ack,
                } => {
                    let found = match self.tenants.get_mut(&tenant) {
                        Some(t) => {
                            t.spec.budget_mb = budget_mb;
                            t.ledger.set_budget(budget_mb);
                            // Specs replicate with the tenant list, so
                            // the bump alone makes the next round carry
                            // the new budget.
                            self.mutation_seq += 1;
                            true
                        }
                        None => false,
                    };
                    let _ = ack.send(found);
                }
                ShardMsg::TakeTenant { tenant, reply } => {
                    let export = self.tenants.remove(&tenant).map(|t| {
                        // Removal replicates through the (authoritative)
                        // tenant list of the next round.
                        self.mutation_seq += 1;
                        self.push_migration_event(&t.spec.name, "take");
                        Self::export_tenant(&t)
                    });
                    let _ = reply.send(export);
                }
                ShardMsg::RestoreTenant { restore, ack } => {
                    let name = restore.spec.name.clone();
                    // Stamp past the frontier: every migrated-in app
                    // must ride the next replication round.
                    let seq = self.mutation_seq + 1;
                    let result = Self::build_tenant(*restore, seq).map(|(tid, shard)| {
                        self.tenants.insert(tid, shard);
                        self.mutation_seq = seq;
                        self.push_migration_event(&name, "restore");
                    });
                    let _ = ack.send(result);
                }
                ShardMsg::PolicyProbe { tenant, app, reply } => {
                    let body = self
                        .tenants
                        .get(&tenant)
                        .and_then(|t| t.apps.get(&app).map(|s| render_policy(t, &app, s)));
                    let _ = reply.send(body);
                }
                ShardMsg::Scrape(reply) => {
                    let _ = reply.send(self.stats());
                }
                ShardMsg::Snapshot(reply) => {
                    let _ = reply.send(self.export());
                }
                ShardMsg::ExportDirty { since, reply } => {
                    let _ = reply.send(self.export_dirty(since));
                }
                ShardMsg::Shutdown => break,
            }
        }
        self.export()
    }
}

/// Stable names for the policy branch behind a verdict.
fn kind_name(kind: DecisionKind) -> &'static str {
    match kind {
        DecisionKind::Histogram => "histogram",
        DecisionKind::StandardKeepAlive => "standard-keep-alive",
        DecisionKind::Arima => "arima",
        DecisionKind::Static => "static",
    }
}

/// Renders one app's live policy state as JSON — the decision
/// provenance view `GET /debug/policy` serves: the current windows,
/// the last verdict with its inputs, and (for hybrid apps) the learned
/// idle-time histogram plus the §4.2 classification the *next* gap
/// would run against, next to the thresholds that gate it.
fn render_policy(t: &TenantShard, app: &str, state: &AppState) -> String {
    use crate::wire::json_escape;
    use std::fmt::Write as _;
    let mut out = String::with_capacity(512);
    let _ = write!(
        out,
        "{{\"tenant\":\"{}\",\"app\":\"{}\",\"policy\":\"{}\",\"last_ts\":{},\
         \"evicted\":{},\"footprint_mb\":{},\
         \"windows\":{{\"pre_warm_ms\":{},\"keep_alive_ms\":{}}}",
        json_escape(&t.spec.name),
        json_escape(app),
        json_escape(&t.spec.policy.label()),
        state.last_ts,
        state.evicted,
        state.footprint_mb,
        state.windows.pre_warm_ms,
        state.windows.keep_alive_ms,
    );
    if let Some(v) = &state.last_verdict {
        let idle = match v.idle_ms {
            Some(ms) => ms.to_string(),
            None => "null".to_owned(),
        };
        let _ = write!(
            out,
            ",\"last_verdict\":{{\"ts\":{},\"idle_ms\":{idle},\"cold\":{},\
             \"prewarm_load\":{},\"evicted\":{},\"branch\":\"{}\"}}",
            v.ts,
            v.cold,
            v.prewarm_load,
            v.evicted,
            kind_name(v.kind),
        );
    }
    if let ServedPolicy::Hybrid(p) = &state.policy {
        let h = p.histogram();
        let cfg = p.config();
        let counts = p.decisions();
        // Mirror of HybridPolicy::on_invocation's branch order: the
        // classification the next observed gap would fall under.
        let class = if h.total_count() < cfg.min_samples {
            "learning"
        } else if h.oob_fraction() > cfg.oob_threshold {
            if cfg.use_arima {
                "out-of-bounds-arima"
            } else {
                "out-of-bounds-standard"
            }
        } else if h.bin_count_cv() < cfg.cv_threshold {
            "not-representative"
        } else {
            "representative"
        };
        let _ = write!(
            out,
            ",\"hybrid\":{{\"classification\":\"{class}\",\"samples\":{},\
             \"oob_count\":{},\"oob_fraction\":{:.4},\"bin_count_cv\":{:.4},\
             \"thresholds\":{{\"min_samples\":{},\"oob_threshold\":{},\"cv_threshold\":{}}},\
             \"cutoffs\":{{\"head_percentile\":{},\"tail_percentile\":{}}},\
             \"decisions\":{{\"histogram\":{},\"standard\":{},\"arima\":{}}},\
             \"bin_width_minutes\":{},\"bins\":[",
            h.total_count(),
            h.oob_count(),
            h.oob_fraction(),
            h.bin_count_cv(),
            cfg.min_samples,
            cfg.oob_threshold,
            cfg.cv_threshold,
            cfg.head_percentile,
            cfg.tail_percentile,
            counts.histogram,
            counts.standard,
            counts.arima,
            h.bin_width(),
        );
        // Sparse export: `[bin, count]` pairs for the non-zero bins
        // only, so a 240-bin histogram stays a small body.
        let mut first = true;
        for (i, &c) in h.bins().iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "[{i},{c}]");
        }
        out.push_str("]}");
    }
    out.push('}');
    out
}

/// Maps an app id to its shard: FNV-1a over the id bytes, mod `shards`.
/// Stable across restarts (snapshots record app ids, not shard indexes,
/// so a restore can even change the shard count). Default-tenant
/// routing; named tenants route whole via
/// [`sitw_fleet::TenantRegistry::shard_of`].
pub fn shard_of(app: &str, shards: usize) -> usize {
    (sitw_fleet::fnv1a(app.as_bytes()) % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitw_core::MINUTE_MS;
    use sitw_fleet::{DEFAULT_TENANT, DEFAULT_TENANT_NAME};

    fn default_spec(spec: PolicySpec) -> TenantSpec {
        TenantSpec {
            id: DEFAULT_TENANT,
            name: DEFAULT_TENANT_NAME.to_owned(),
            policy: spec,
            budget_mb: 0,
        }
    }

    fn worker(spec: PolicySpec) -> ShardWorker {
        ShardWorker::new(0, vec![TenantRestore::fresh(default_spec(spec))]).unwrap()
    }

    impl ShardWorker {
        fn invoke0(&mut self, app: &str, ts: u64) -> Result<Decision, InvokeError> {
            self.invoke(DEFAULT_TENANT, app, ts)
        }
    }

    #[test]
    fn first_invocation_cold_then_warm_within_keep_alive() {
        let mut w = worker(PolicySpec::fixed_minutes(10));
        let d0 = w.invoke0("a", 0).unwrap();
        assert!(d0.cold);
        let d1 = w.invoke0("a", 5 * MINUTE_MS).unwrap();
        assert!(!d1.cold);
        let d2 = w.invoke0("a", 30 * MINUTE_MS).unwrap();
        assert!(d2.cold, "25-minute gap exceeds the 10-minute keep-alive");
        assert!(!d2.evicted, "keep-alive lapse is not an eviction");
        assert_eq!(w.stats().invocations, 3);
        assert_eq!(w.stats().cold, 2);
    }

    #[test]
    fn apps_are_isolated() {
        let mut w = worker(PolicySpec::fixed_minutes(10));
        w.invoke0("a", 0).unwrap();
        let db = w.invoke0("b", MINUTE_MS).unwrap();
        assert!(db.cold, "b's first invocation is cold regardless of a");
        assert_eq!(w.stats().apps, 2);
    }

    #[test]
    fn tenants_are_isolated_namespaces() {
        let mut w = ShardWorker::new(
            0,
            vec![
                TenantRestore::fresh(default_spec(PolicySpec::fixed_minutes(10))),
                TenantRestore::fresh(TenantSpec {
                    id: 1,
                    name: "acme".into(),
                    policy: PolicySpec::fixed_minutes(20),
                    budget_mb: 0,
                }),
            ],
        )
        .unwrap();
        // The same app id under two tenants is two independent apps
        // under two different policies.
        let d0 = w.invoke(0, "a", 0).unwrap();
        let d1 = w.invoke(1, "a", 0).unwrap();
        assert!(d0.cold && d1.cold);
        assert_eq!(d0.windows, Windows::keep_loaded(10 * MINUTE_MS));
        assert_eq!(d1.windows, Windows::keep_loaded(20 * MINUTE_MS));
        // 15-minute gap: cold under 10-minute KA, warm under 20.
        assert!(w.invoke(0, "a", 15 * MINUTE_MS).unwrap().cold);
        assert!(!w.invoke(1, "a", 15 * MINUTE_MS).unwrap().cold);
        assert_eq!(w.invoke(7, "a", 0), Err(InvokeError::UnknownTenant));
        let stats = w.stats();
        assert_eq!(stats.tenants.len(), 2);
        assert_eq!(stats.tenants[1].name, "acme");
        assert_eq!(stats.tenants[1].invocations, 2);
    }

    #[test]
    fn budget_pressure_evicts_and_downgrades() {
        // A budget that holds exactly one of the two apps' footprints.
        let name = "metered";
        let mb_a = footprint_mb(name, "a");
        let mb_b = footprint_mb(name, "b");
        let mut w = ShardWorker::new(
            0,
            vec![TenantRestore::fresh(TenantSpec {
                id: 1,
                name: name.into(),
                policy: PolicySpec::fixed_minutes(10),
                budget_mb: mb_a.max(mb_b),
            })],
        )
        .unwrap();
        assert!(w.invoke(1, "a", 0).unwrap().cold);
        let db = w.invoke(1, "b", 1_000).unwrap();
        assert!(db.cold && !db.evicted);
        // a was evicted to fit b: its return within the keep-alive
        // window is downgraded to cold and flagged.
        let da = w.invoke(1, "a", 2_000).unwrap();
        assert!(da.cold && da.evicted && !da.prewarm_load);
        let stats = w.stats();
        assert!(stats.tenants[0].evictions >= 1);
        assert!(stats.tenants[0].warm_mb <= mb_a.max(mb_b));
    }

    #[test]
    fn out_of_order_rejected_without_state_change() {
        let mut w = worker(PolicySpec::fixed_minutes(10));
        w.invoke0("a", 10 * MINUTE_MS).unwrap();
        let err = w.invoke0("a", 5 * MINUTE_MS).unwrap_err();
        assert_eq!(
            err,
            InvokeError::OutOfOrder {
                last_ts: 10 * MINUTE_MS
            }
        );
        // Equal timestamps are fine (concurrent arrivals): warm.
        let d = w.invoke0("a", 10 * MINUTE_MS).unwrap();
        assert!(!d.cold);
        assert_eq!(w.stats().out_of_order, 1);
    }

    #[test]
    fn matches_offline_verdict_trace() {
        use sitw_core::{HybridConfig, PolicyFactory};
        let events: Vec<u64> = (0..200u64)
            .map(|i| i * 7 * MINUTE_MS + (i % 3) * 20_000)
            .collect();

        let spec = PolicySpec::Hybrid(HybridConfig::default());
        let mut w = worker(spec);
        let online: Vec<Decision> = events.iter().map(|&t| w.invoke0("x", t).unwrap()).collect();

        let mut policy = HybridConfig::default().new_policy();
        let offline = sitw_sim::verdict_trace(&events, &mut policy);

        assert_eq!(online.len(), offline.len());
        for (on, off) in online.iter().zip(&offline) {
            assert_eq!(on.cold, off.cold);
            assert_eq!(on.prewarm_load, off.prewarm_load);
            assert_eq!(on.kind, off.kind);
            assert_eq!(on.windows, off.windows);
        }
    }

    #[test]
    fn production_mode_matches_offline_production_trace() {
        use sitw_core::ProductionConfig;
        // Multi-day stream with absolute timestamps (day-aware path).
        let events: Vec<u64> = (0..300u64)
            .map(|i| i * 17 * MINUTE_MS + (i % 5) * 11_000)
            .collect();

        let mut w = worker(PolicySpec::Production(ProductionConfig::default()));
        let online: Vec<Decision> = events.iter().map(|&t| w.invoke0("x", t).unwrap()).collect();

        let mut manager = sitw_core::ProductionManager::new(ProductionConfig::default());
        let offline = sitw_sim::production_verdict_trace(&events, &mut manager, 0);

        assert_eq!(online.len(), offline.len());
        for (on, off) in online.iter().zip(&offline) {
            assert_eq!(on.cold, off.cold);
            assert_eq!(on.prewarm_load, off.prewarm_load);
            assert_eq!(on.kind, off.kind);
            assert_eq!(on.windows, off.windows);
        }
        // §6 bookkeeping surfaced by the shard: backups along the
        // advancing clock, pre-warm events for unload/pre-warm windows.
        let stats = w.stats();
        assert_eq!(stats.backups, manager.backups_taken());
        let offline_prewarms = offline.iter().filter(|v| v.windows.pre_warm_ms > 0).count() as u64;
        assert_eq!(stats.prewarm_scheduled, offline_prewarms);
        assert!(stats.backups > 0, "multi-day trace must tick backups");
    }

    #[test]
    fn production_equal_timestamp_invocation_is_warm() {
        use sitw_core::ProductionConfig;
        // Regression: ts == last_ts (concurrent arrivals) must be
        // accepted and classified warm, exactly like per-app policies.
        let mut w = worker(PolicySpec::Production(ProductionConfig::default()));
        w.invoke0("a", 5 * MINUTE_MS).unwrap();
        let d = w.invoke0("a", 5 * MINUTE_MS).unwrap();
        assert!(!d.cold, "zero idle gap is warm by definition");
        assert_eq!(w.stats().out_of_order, 0);
        let err = w.invoke0("a", 5 * MINUTE_MS - 1).unwrap_err();
        assert_eq!(
            err,
            InvokeError::OutOfOrder {
                last_ts: 5 * MINUTE_MS
            }
        );
    }

    #[test]
    fn invoke_batch_matches_sequential_invokes_bit_for_bit() {
        let events: Vec<(String, u64)> = (0..120u64)
            .map(|i| (format!("app-{:02}", i % 7), i * 3 * MINUTE_MS))
            .collect();

        // Sequential reference.
        let mut seq = worker(PolicySpec::Hybrid(sitw_core::HybridConfig::default()));
        let expected: Vec<Result<Decision, InvokeError>> = events
            .iter()
            .map(|(app, ts)| seq.invoke0(app, *ts))
            .collect();

        // The same stream in batches of 33 (crossing app boundaries).
        let mut batched = worker(PolicySpec::Hybrid(sitw_core::HybridConfig::default()));
        let mut got: Vec<Result<Decision, InvokeError>> = Vec::new();
        for (frame_seq, chunk) in events.chunks(33).enumerate() {
            let items: Vec<BatchItem> = chunk
                .iter()
                .enumerate()
                .map(|(i, (app, ts))| BatchItem {
                    idx: i as u32,
                    tenant: DEFAULT_TENANT,
                    app: app.clone(),
                    ts: *ts,
                })
                .collect();
            let reply = batched.invoke_batch(frame_seq as u64, items);
            assert_eq!(reply.frame_seq, frame_seq as u64);
            // Replies come back in submission order.
            for (i, (idx, result)) in reply.results.into_iter().enumerate() {
                assert_eq!(idx as usize, i);
                got.push(result);
            }
        }
        assert_eq!(expected, got);
        assert_eq!(seq.stats().invocations, batched.stats().invocations);
        assert_eq!(seq.stats().cold, batched.stats().cold);
    }

    #[test]
    fn invoke_batch_reports_per_record_errors_and_continues() {
        let mut w = worker(PolicySpec::fixed_minutes(10));
        w.invoke0("a", 10 * MINUTE_MS).unwrap();
        let reply = w.invoke_batch(
            0,
            vec![
                BatchItem {
                    idx: 0,
                    tenant: DEFAULT_TENANT,
                    app: "a".into(),
                    ts: MINUTE_MS, // Out of order.
                },
                BatchItem {
                    idx: 1,
                    tenant: DEFAULT_TENANT,
                    app: "a".into(),
                    ts: 12 * MINUTE_MS, // Still served.
                },
            ],
        );
        assert_eq!(
            reply.results[0].1,
            Err(InvokeError::OutOfOrder {
                last_ts: 10 * MINUTE_MS
            })
        );
        assert!(reply.results[1].1.as_ref().unwrap().cold.eq(&false));
        assert_eq!(w.stats().out_of_order, 1);
    }

    #[test]
    fn latency_gauges_absent_until_observed() {
        // Regression companion to the render-side NaN guard: a shard
        // that has decided nothing exports no quantile pairs at all.
        let mut w = worker(PolicySpec::fixed_minutes(10));
        assert!(w.stats().latency_us.is_empty());
        // Direct invokes are untimed (timing lives in the mailbox
        // loop), so the quantiles stay absent rather than garbage.
        w.invoke0("a", 0).unwrap();
        assert!(w.stats().latency_us.is_empty());
        // Once the decision histogram has a sample, quantiles appear.
        w.telem.decide.json.record(1_500);
        let lat = w.stats().latency_us;
        assert_eq!(lat.len(), LATENCY_QUANTILES.len());
        assert!(lat.iter().all(|(_, v)| v.is_finite()));
    }

    #[test]
    fn dirty_export_tracks_the_mutation_frontier() {
        let mut w = worker(PolicySpec::fixed_minutes(10));
        w.invoke0("a", 0).unwrap();
        w.invoke0("b", 1_000).unwrap();

        // From frontier 0: both apps are dirty.
        let round1 = w.export_dirty(0);
        let apps: Vec<&str> = round1.export.tenants[0]
            .apps
            .iter()
            .map(|r| r.app.as_str())
            .collect();
        assert_eq!(apps, vec!["a", "b"]);

        // Nothing mutated since: tenant still listed, zero apps.
        let idle = w.export_dirty(round1.seq);
        assert_eq!(idle.seq, round1.seq, "no mutation, no frontier move");
        assert_eq!(idle.export.tenants.len(), 1, "tenant list stays whole");
        assert!(idle.export.tenants[0].apps.is_empty());

        // Only the re-invoked app rides the next round.
        w.invoke0("b", 2_000).unwrap();
        let round2 = w.export_dirty(round1.seq);
        assert!(round2.seq > round1.seq);
        let apps: Vec<&str> = round2.export.tenants[0]
            .apps
            .iter()
            .map(|r| r.app.as_str())
            .collect();
        assert_eq!(apps, vec!["b"]);

        // The full snapshot is unaffected by dirty filtering.
        assert_eq!(w.export().tenants[0].apps.len(), 2);
    }

    #[test]
    fn eviction_victims_are_dirty() {
        let name = "metered";
        let budget = footprint_mb(name, "a").max(footprint_mb(name, "b"));
        let mut w = ShardWorker::new(
            0,
            vec![TenantRestore::fresh(TenantSpec {
                id: 1,
                name: name.into(),
                policy: PolicySpec::fixed_minutes(10),
                budget_mb: budget,
            })],
        )
        .unwrap();
        w.invoke(1, "a", 0).unwrap();
        let frontier = w.export_dirty(0).seq;
        // b's invocation evicts a: *both* must ride the next round —
        // a follower that misses the eviction flag would serve a's
        // next invocation warm where the primary serves it cold.
        w.invoke(1, "b", 1_000).unwrap();
        let round = w.export_dirty(frontier);
        let dirty = &round.export.tenants[0].apps;
        let a = dirty.iter().find(|r| r.app == "a").expect("victim dirty");
        assert!(a.evicted);
        assert!(dirty.iter().any(|r| r.app == "b"));
    }

    #[test]
    fn control_mutations_advance_the_frontier() {
        let mut w = worker(PolicySpec::fixed_minutes(10));
        let f0 = w.export_dirty(0).seq;
        // A fresh tenant has no dirty apps, but the tenant list is
        // replicated state — the frontier must move so a round fires.
        w.add_tenant(TenantSpec {
            id: 9,
            name: "fresh".into(),
            policy: PolicySpec::fixed_minutes(5),
            budget_mb: 0,
        });
        let round = w.export_dirty(f0);
        assert!(round.seq > f0);
        assert_eq!(round.export.tenants.len(), 2);
        assert!(round.export.tenants.iter().all(|t| t.apps.is_empty()));
    }

    #[test]
    fn restored_tenants_ride_the_next_round() {
        // Simulates a migration-in mid-replication: the restored apps
        // must be stamped past the current frontier.
        let mut w = worker(PolicySpec::fixed_minutes(10));
        w.invoke0("a", 0).unwrap();
        let frontier = w.export_dirty(0).seq;
        let seq = w.mutation_seq + 1;
        let (tid, shard) = ShardWorker::build_tenant(
            TenantRestore {
                spec: TenantSpec {
                    id: 3,
                    name: "moved".into(),
                    policy: PolicySpec::fixed_minutes(10),
                    budget_mb: 0,
                },
                apps: vec![AppRecord {
                    app: "m".into(),
                    last_ts: 7,
                    windows: Windows::keep_loaded(600_000),
                    evicted: false,
                    state: PolicyState::Stateless,
                }],
                ledger: LedgerExport::default(),
                prod_clock: None,
            },
            seq,
        )
        .unwrap();
        w.tenants.insert(tid, shard);
        w.mutation_seq = seq;
        let round = w.export_dirty(frontier);
        let moved = round
            .export
            .tenants
            .iter()
            .find(|t| t.id == 3)
            .expect("restored tenant exported");
        assert_eq!(moved.apps.len(), 1);
        assert_eq!(moved.apps[0].app, "m");
        // The pre-existing clean app does not ride along.
        let default = round.export.tenants.iter().find(|t| t.id == 0).unwrap();
        assert!(default.apps.is_empty());
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for shards in [1usize, 2, 4, 7] {
            for app in ["app-000000", "app-000001", "x", ""] {
                let s = shard_of(app, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(app, shards));
            }
        }
        // Different apps spread over shards (sanity, not uniformity).
        let hits: std::collections::HashSet<usize> = (0..100)
            .map(|i| shard_of(&format!("app-{i:06}"), 4))
            .collect();
        assert!(hits.len() > 1);
    }
}
