//! Cold-start simulator for keep-alive policies (§5.1 methodology).
//!
//! * [`engine`] replays one application's invocation timestamps against a
//!   policy, classifying cold/warm starts and accounting wasted memory
//!   time exactly as the paper's simulator does (zero execution times,
//!   first invocation cold, equal memory per app);
//! * [`metrics`] aggregates per-app results into the evaluation's
//!   statistics (cold-start CDFs, 75th percentile, normalized waste,
//!   always-cold share, ARIMA usage);
//! * [`sweep`] evaluates many policy configurations over a population in
//!   parallel, generating each app's stream once.
//!
//! # Examples
//!
//! ```
//! use sitw_core::{FixedKeepAlive, PolicyFactory};
//! use sitw_sim::simulate_app;
//!
//! // An app invoked every 30 minutes for 5 hours.
//! let events: Vec<u64> = (0..10).map(|i| i * 30 * 60_000).collect();
//! let mut policy = FixedKeepAlive::minutes(10).new_policy();
//! let result = simulate_app(&events, 10 * 30 * 60_000, &mut policy);
//! // 30-minute gaps always exceed a 10-minute keep-alive: all cold.
//! assert_eq!(result.cold_starts, 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod metrics;
pub mod sweep;

pub use engine::{
    production_verdict_trace, simulate_app, simulate_app_with_exec, verdict_trace, AppSimResult,
    InvocationVerdict,
};
pub use metrics::{pareto_points, ParetoPoint, PolicyAggregate};
pub use sweep::{run_sweep, PolicySpec};

// The multi-tenant ground truth lives in `sitw_fleet` (shared with the
// serving daemon); re-exported here next to the single-policy traces so
// parity tests find every offline oracle in one place.
pub use sitw_fleet::{fleet_verdict_trace, FleetError, FleetEvent, FleetSim, FleetVerdict};
