//! Workload characterization: computes the data behind the paper's
//! Figures 1–8 from a population or trace.
//!
//! Each function returns plottable series (or table rows) mirroring one
//! figure; the `figures` binary in `sitw-bench` prints and exports them.

use std::collections::BTreeMap;

use sitw_stats::{Ecdf, Welford};

use crate::model::{Population, TriggerType};
use crate::time::{TimeMs, HOUR_MS};
use crate::Trace;

/// Figure 1: CDFs over "functions per app" — fraction of apps,
/// of invocations, and of functions belonging to apps with at most `x`
/// functions.
#[derive(Debug, Clone)]
pub struct FunctionsPerApp {
    /// `(x, F(x))` for the fraction of applications.
    pub apps_cdf: Vec<(f64, f64)>,
    /// `(x, F(x))` for the fraction of invocations.
    pub invocations_cdf: Vec<(f64, f64)>,
    /// `(x, F(x))` for the fraction of functions.
    pub functions_cdf: Vec<(f64, f64)>,
}

/// Computes Figure 1 from profiles (invocations weighted by daily rate).
pub fn functions_per_app(pop: &Population) -> FunctionsPerApp {
    // Group apps by function count.
    let mut by_count: BTreeMap<usize, (u64, f64, u64)> = BTreeMap::new();
    for a in &pop.apps {
        let e = by_count.entry(a.functions.len()).or_insert((0, 0.0, 0));
        e.0 += 1;
        e.1 += a.daily_rate;
        e.2 += a.functions.len() as u64;
    }
    let total_apps = pop.len() as f64;
    let total_rate: f64 = pop.apps.iter().map(|a| a.daily_rate).sum();
    let total_funcs = pop.num_functions() as f64;

    let mut apps_cdf = Vec::new();
    let mut invocations_cdf = Vec::new();
    let mut functions_cdf = Vec::new();
    let (mut ca, mut ci, mut cf) = (0.0, 0.0, 0.0);
    for (&count, &(apps, rate, funcs)) in &by_count {
        ca += apps as f64 / total_apps;
        ci += rate / total_rate;
        cf += funcs as f64 / total_funcs;
        apps_cdf.push((count as f64, ca));
        invocations_cdf.push((count as f64, ci));
        functions_cdf.push((count as f64, cf));
    }
    FunctionsPerApp {
        apps_cdf,
        invocations_cdf,
        functions_cdf,
    }
}

/// One row of Figure 2: a trigger's share of functions and invocations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriggerRow {
    /// Trigger class.
    pub trigger: TriggerType,
    /// Percentage of all functions with this trigger.
    pub pct_functions: f64,
    /// Percentage of all invocations produced by this trigger.
    pub pct_invocations: f64,
}

/// Computes Figure 2 (functions and invocations per trigger type).
pub fn trigger_shares(pop: &Population) -> Vec<TriggerRow> {
    let mut funcs: BTreeMap<TriggerType, u64> = BTreeMap::new();
    let mut invs: BTreeMap<TriggerType, f64> = BTreeMap::new();
    let mut total_funcs = 0u64;
    let mut total_inv = 0.0f64;
    for a in &pop.apps {
        for f in &a.functions {
            *funcs.entry(f.trigger).or_default() += 1;
            let rate = f.invocation_share * a.daily_rate;
            *invs.entry(f.trigger).or_default() += rate;
            total_funcs += 1;
            total_inv += rate;
        }
    }
    TriggerType::ALL
        .iter()
        .map(|&t| TriggerRow {
            trigger: t,
            pct_functions: 100.0 * funcs.get(&t).copied().unwrap_or(0) as f64
                / total_funcs.max(1) as f64,
            pct_invocations: 100.0 * invs.get(&t).copied().unwrap_or(0.0) / total_inv.max(1e-12),
        })
        .collect()
}

/// Figure 3(a): percentage of applications with at least one trigger of
/// each type (sums above 100% since apps mix triggers).
pub fn apps_with_trigger(pop: &Population) -> Vec<(TriggerType, f64)> {
    TriggerType::ALL
        .iter()
        .map(|&t| {
            let n = pop
                .apps
                .iter()
                .filter(|a| a.functions.iter().any(|f| f.trigger == t))
                .count();
            (t, 100.0 * n as f64 / pop.len().max(1) as f64)
        })
        .collect()
}

/// Figure 3(b): trigger combinations by application share, descending,
/// with cumulative percentages.
pub fn combo_shares(pop: &Population) -> Vec<(String, f64, f64)> {
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    for a in &pop.apps {
        *counts.entry(a.combo_key()).or_default() += 1;
    }
    let mut rows: Vec<(String, f64)> = counts
        .into_iter()
        .map(|(k, c)| (k, 100.0 * c as f64 / pop.len().max(1) as f64))
        .collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut cum = 0.0;
    rows.into_iter()
        .map(|(k, pct)| {
            cum += pct;
            (k, pct, cum)
        })
        .collect()
}

/// Figure 4: invocations per hour across the platform, normalized to the
/// peak hour.
pub fn hourly_load(trace: &Trace) -> Vec<f64> {
    let hours = (trace.horizon_ms / HOUR_MS).max(1) as usize;
    let mut counts = vec![0u64; hours];
    for app in &trace.apps {
        for &t in &app.invocations {
            let h = (t / HOUR_MS) as usize;
            if h < hours {
                counts[h] += 1;
            }
        }
    }
    let peak = counts.iter().copied().max().unwrap_or(1).max(1) as f64;
    counts.into_iter().map(|c| c as f64 / peak).collect()
}

/// Figure 5(a): ECDFs of average invocations per day, for applications
/// (realized from the trace) and functions (realized app rate × profile
/// share).
pub fn daily_rate_ecdfs(trace: &Trace) -> (Ecdf, Ecdf) {
    let days = (trace.horizon_ms as f64 / crate::time::DAY_MS as f64).max(1e-9);
    let mut app_rates = Vec::with_capacity(trace.apps.len());
    let mut func_rates = Vec::new();
    for app in &trace.apps {
        let rate = app.invocations.len() as f64 / days;
        // Apps with zero realized invocations have no measurable rate;
        // give them a floor below the axis range so the CDF still counts
        // them (the paper's sample has a minimum of ~1 per 2 weeks).
        let rate = rate.max(1.0 / (2.0 * 14.0));
        app_rates.push(rate);
        for f in &app.profile.functions {
            func_rates.push((rate * f.invocation_share).max(1.0 / (2.0 * 14.0)));
        }
    }
    (Ecdf::new(app_rates), Ecdf::new(func_rates))
}

/// Figure 5(b): cumulative fraction of invocations versus the fraction of
/// most popular applications. Returns `(popularity_fraction,
/// invocation_fraction)` points, popularity ascending.
pub fn popularity_concentration(trace: &Trace) -> Vec<(f64, f64)> {
    let mut counts: Vec<u64> = trace
        .apps
        .iter()
        .map(|a| a.invocations.len() as u64)
        .collect();
    counts.sort_unstable_by(|a, b| b.cmp(a)); // Most popular first.
    let total: u64 = counts.iter().sum();
    let n = counts.len() as f64;
    let mut cum = 0u64;
    counts
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            cum += c;
            ((i + 1) as f64 / n, cum as f64 / total.max(1) as f64)
        })
        .collect()
}

/// Figure 5(b) from profiles: the same concentration curve using expected
/// (uncapped) daily rates. The generator caps hot applications' *event
/// streams*; this variant reflects the head of the popularity
/// distribution exactly (the paper: top 18.6% of apps — those invoked at
/// least once per minute — account for 99.6% of invocations).
pub fn popularity_concentration_expected(pop: &Population) -> Vec<(f64, f64)> {
    let mut rates: Vec<f64> = pop.apps.iter().map(|a| a.daily_rate).collect();
    rates.sort_by(|a, b| b.total_cmp(a));
    let total: f64 = rates.iter().sum();
    let n = rates.len() as f64;
    let mut cum = 0.0;
    rates
        .iter()
        .enumerate()
        .map(|(i, &r)| {
            cum += r;
            ((i + 1) as f64 / n, cum / total.max(1e-12))
        })
        .collect()
}

/// Figure 6: per-application IAT coefficient of variation, for the four
/// subsets the paper plots.
#[derive(Debug, Clone)]
pub struct IatCvStats {
    /// CV per app, all applications (with ≥ 3 invocations).
    pub all: Vec<f64>,
    /// Apps whose functions are all timer-triggered.
    pub only_timers: Vec<f64>,
    /// Apps with at least one timer trigger.
    pub at_least_one_timer: Vec<f64>,
    /// Apps without timer triggers.
    pub no_timers: Vec<f64>,
}

/// Computes Figure 6 from realized streams.
pub fn iat_cv(trace: &Trace) -> IatCvStats {
    let mut stats = IatCvStats {
        all: Vec::new(),
        only_timers: Vec::new(),
        at_least_one_timer: Vec::new(),
        no_timers: Vec::new(),
    };
    for app in &trace.apps {
        if app.invocations.len() < 3 {
            continue;
        }
        let mut w = Welford::new();
        for pair in app.invocations.windows(2) {
            w.push((pair[1] - pair[0]) as f64);
        }
        let cv = w.cv();
        stats.all.push(cv);
        if app.profile.only_timers() {
            stats.only_timers.push(cv);
        }
        if app.profile.has_timer() {
            stats.at_least_one_timer.push(cv);
        } else {
            stats.no_timers.push(cv);
        }
    }
    stats
}

/// Figure 7: execution-time distributions (minimum, average, maximum of
/// each function, independently sorted as in the paper).
pub fn exec_time_ecdfs(pop: &Population) -> (Ecdf, Ecdf, Ecdf) {
    let mut mins = Vec::new();
    let mut avgs = Vec::new();
    let mut maxs = Vec::new();
    for a in &pop.apps {
        for f in &a.functions {
            mins.push(f.min_exec_secs);
            avgs.push(f.avg_exec_secs);
            maxs.push(f.max_exec_secs);
        }
    }
    (Ecdf::new(mins), Ecdf::new(avgs), Ecdf::new(maxs))
}

/// Figure 8: allocated-memory distributions per application
/// (1st percentile, average, maximum; independently sorted).
pub fn memory_ecdfs(pop: &Population) -> (Ecdf, Ecdf, Ecdf) {
    let pct1: Vec<f64> = pop.apps.iter().map(|a| a.memory_mb_pct1).collect();
    let avg: Vec<f64> = pop.apps.iter().map(|a| a.memory_mb).collect();
    let max: Vec<f64> = pop.apps.iter().map(|a| a.memory_mb_max).collect();
    (Ecdf::new(pct1), Ecdf::new(avg), Ecdf::new(max))
}

/// Idle-time vs inter-arrival-time similarity check (§3.4): for apps
/// invoked at most once per minute, the IT ≈ IAT because executions are
/// short. Returns the mean relative gap between mean IAT and mean IT
/// using profile execution times.
pub fn it_iat_gap(trace: &Trace) -> f64 {
    let mut gaps = Vec::new();
    for app in &trace.apps {
        if app.invocations.len() < 2 {
            continue;
        }
        let days = (trace.horizon_ms as f64) / crate::time::DAY_MS as f64;
        let rate = app.invocations.len() as f64 / days;
        if rate > 1440.0 {
            continue; // Only the ≤ 1/minute band, as in the paper.
        }
        let mean_iat: f64 = {
            let mut w = Welford::new();
            for pair in app.invocations.windows(2) {
                w.push((pair[1] - pair[0]) as f64 / 1000.0);
            }
            w.mean()
        };
        let mean_exec: f64 = app
            .profile
            .functions
            .iter()
            .map(|f| f.invocation_share * f.avg_exec_secs)
            .sum();
        if mean_iat > 0.0 {
            gaps.push(mean_exec / mean_iat);
        }
    }
    if gaps.is_empty() {
        0.0
    } else {
        gaps.iter().sum::<f64>() / gaps.len() as f64
    }
}

/// Helper: builds a `(value, F)` series from a CDF over sorted samples,
/// downsampled for export.
pub fn cdf_series(ecdf: &Ecdf, max_points: usize) -> Vec<(f64, f64)> {
    ecdf.points_downsampled(max_points)
}

/// Shared quantile summary used in reports: `(p25, p50, p75, p90, p99)`.
pub fn quantile_summary(ecdf: &Ecdf) -> [f64; 5] {
    [
        ecdf.quantile(0.25),
        ecdf.quantile(0.50),
        ecdf.quantile(0.75),
        ecdf.quantile(0.90),
        ecdf.quantile(0.99),
    ]
}

/// Fraction of hours (`0..1`) whose load is at least `threshold` × peak —
/// used to verify Figure 4's "constant baseline of roughly 50%".
pub fn baseline_fraction(hourly: &[f64], threshold: f64) -> f64 {
    if hourly.is_empty() {
        return 0.0;
    }
    hourly.iter().filter(|&&v| v >= threshold).count() as f64 / hourly.len() as f64
}

/// Timestamp helper: hour index within the trace for a timestamp.
pub fn hour_index(t: TimeMs) -> u64 {
    t / HOUR_MS
}

/// Streaming accumulator for the trace-dependent characterization figures
/// (4, 5a, 6) — processes one application's events at a time so the full
/// trace never has to be materialized.
///
/// # Examples
///
/// ```
/// use sitw_trace::analysis::StreamingCharacterization;
/// use sitw_trace::{build_population, for_each_app, PopulationConfig, TraceConfig};
///
/// let pop = build_population(&PopulationConfig { num_apps: 30, seed: 1 });
/// let cfg = TraceConfig::default();
/// let mut sc = StreamingCharacterization::new(cfg.horizon_ms);
/// for_each_app(&pop, &cfg, |profile, events| sc.add(profile, &events));
/// assert!(sc.hourly_normalized().len() == 24 * 7);
/// ```
#[derive(Debug, Clone)]
pub struct StreamingCharacterization {
    horizon_ms: TimeMs,
    hourly: Vec<u64>,
    app_rates: Vec<f64>,
    func_rates: Vec<f64>,
    cv: IatCvStats,
    total_events: u64,
}

impl StreamingCharacterization {
    /// Creates an accumulator for traces of the given horizon.
    pub fn new(horizon_ms: TimeMs) -> Self {
        let hours = (horizon_ms / HOUR_MS).max(1) as usize;
        Self {
            horizon_ms,
            hourly: vec![0; hours],
            app_rates: Vec::new(),
            func_rates: Vec::new(),
            cv: IatCvStats {
                all: Vec::new(),
                only_timers: Vec::new(),
                at_least_one_timer: Vec::new(),
                no_timers: Vec::new(),
            },
            total_events: 0,
        }
    }

    /// Folds one application's (sorted) events in.
    pub fn add(&mut self, profile: &crate::model::AppProfile, events: &[TimeMs]) {
        let days = (self.horizon_ms as f64 / crate::time::DAY_MS as f64).max(1e-9);
        for &t in events {
            let h = (t / HOUR_MS) as usize;
            if h < self.hourly.len() {
                self.hourly[h] += 1;
            }
        }
        self.total_events += events.len() as u64;
        let rate = (events.len() as f64 / days).max(1.0 / 28.0);
        self.app_rates.push(rate);
        for f in &profile.functions {
            self.func_rates
                .push((rate * f.invocation_share).max(1.0 / 28.0));
        }
        if events.len() >= 3 {
            let mut w = Welford::new();
            for pair in events.windows(2) {
                w.push((pair[1] - pair[0]) as f64);
            }
            let cv = w.cv();
            self.cv.all.push(cv);
            if profile.only_timers() {
                self.cv.only_timers.push(cv);
            }
            if profile.has_timer() {
                self.cv.at_least_one_timer.push(cv);
            } else {
                self.cv.no_timers.push(cv);
            }
        }
    }

    /// Figure 4 series: hourly load normalized to the peak hour.
    pub fn hourly_normalized(&self) -> Vec<f64> {
        let peak = self.hourly.iter().copied().max().unwrap_or(1).max(1) as f64;
        self.hourly.iter().map(|&c| c as f64 / peak).collect()
    }

    /// Figure 5(a) ECDFs `(apps, functions)` of daily invocation rates.
    ///
    /// # Panics
    ///
    /// Panics when no applications were added.
    pub fn daily_rate_ecdfs(&self) -> (Ecdf, Ecdf) {
        (
            Ecdf::new(self.app_rates.clone()),
            Ecdf::new(self.func_rates.clone()),
        )
    }

    /// Figure 6 CV statistics.
    pub fn iat_cv(&self) -> &IatCvStats {
        &self.cv
    }

    /// Total events folded in.
    pub fn total_events(&self) -> u64 {
        self.total_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_trace, TraceConfig};
    use crate::population::{build_population, PopulationConfig};
    use crate::time::DAY_MS;

    fn setup() -> (Population, Trace) {
        let pop = build_population(&PopulationConfig {
            num_apps: 600,
            seed: 42,
        });
        let cfg = TraceConfig {
            horizon_ms: 2 * DAY_MS,
            cap_per_day: 3000.0,
            seed: 1,
        };
        let trace = generate_trace(&pop, &cfg);
        (pop, trace)
    }

    #[test]
    fn fig1_cdfs_monotone_and_end_at_one() {
        let (pop, _) = setup();
        let f = functions_per_app(&pop);
        for series in [&f.apps_cdf, &f.invocations_cdf, &f.functions_cdf] {
            assert!(series.windows(2).all(|w| w[0].1 <= w[1].1 + 1e-12));
            assert!((series.last().unwrap().1 - 1.0).abs() < 1e-9);
        }
        // Majority of apps have one function.
        assert!(f.apps_cdf[0].0 == 1.0 && f.apps_cdf[0].1 > 0.4);
    }

    #[test]
    fn fig2_shares_sum_to_100() {
        let (pop, _) = setup();
        let rows = trigger_shares(&pop);
        let fsum: f64 = rows.iter().map(|r| r.pct_functions).sum();
        let isum: f64 = rows.iter().map(|r| r.pct_invocations).sum();
        assert!((fsum - 100.0).abs() < 1e-6);
        assert!((isum - 100.0).abs() < 1e-6);
        // HTTP leads functions.
        let http = rows
            .iter()
            .find(|r| r.trigger == TriggerType::Http)
            .unwrap();
        assert!(http.pct_functions > 30.0);
    }

    #[test]
    fn fig3a_marginals_exceed_combo_shares() {
        let (pop, _) = setup();
        let marg = apps_with_trigger(&pop);
        let total: f64 = marg.iter().map(|(_, p)| p).sum();
        // Apps can have several triggers, so marginals sum to > 100%.
        assert!(total > 100.0, "marginal sum {total}");
    }

    #[test]
    fn fig3b_cumulative_increases_to_100() {
        let (pop, _) = setup();
        let rows = combo_shares(&pop);
        assert!(!rows.is_empty());
        assert!(rows.windows(2).all(|w| w[0].1 >= w[1].1));
        assert!((rows.last().unwrap().2 - 100.0).abs() < 1e-6);
        // HTTP-only should be the most common combination.
        assert_eq!(rows[0].0, "H");
    }

    #[test]
    fn fig4_load_normalized() {
        let (_, trace) = setup();
        let hourly = hourly_load(&trace);
        assert_eq!(hourly.len(), 48);
        let peak = hourly.iter().cloned().fold(f64::MIN, f64::max);
        assert!((peak - 1.0).abs() < 1e-12);
        assert!(hourly.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn fig5a_app_function_rates() {
        let (_, trace) = setup();
        let (apps, funcs) = daily_rate_ecdfs(&trace);
        assert!(!apps.is_empty() && funcs.len() >= apps.len());
        // Median app rate far below 1/minute (most apps are infrequent).
        assert!(apps.quantile(0.5) < 1440.0);
    }

    #[test]
    fn fig5b_concentration_skewed() {
        let (pop, trace) = setup();
        // Realized curve (event cap flattens the extreme head, so the
        // bound is looser than the paper's 99.6%).
        let pts = popularity_concentration(&trace);
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-9);
        let at20 = pts
            .iter()
            .find(|(f, _)| *f >= 0.20)
            .map(|(_, inv)| *inv)
            .unwrap();
        assert!(at20 > 0.70, "top-20% realized share {at20}");

        // Expected (uncapped) curve must reproduce the paper's extreme
        // skew: top 20% of apps ≈ 99%+ of invocations.
        let exp = popularity_concentration_expected(&pop);
        let at20 = exp
            .iter()
            .find(|(f, _)| *f >= 0.20)
            .map(|(_, inv)| *inv)
            .unwrap();
        assert!(at20 > 0.95, "top-20% expected share {at20}");
    }

    #[test]
    fn fig6_cv_subsets_partition() {
        let (_, trace) = setup();
        let stats = iat_cv(&trace);
        assert_eq!(
            stats.all.len(),
            stats.at_least_one_timer.len() + stats.no_timers.len()
        );
        assert!(stats.only_timers.len() <= stats.at_least_one_timer.len());
        // Timer-only apps include exact CV-0 members.
        let zero = stats.only_timers.iter().filter(|&&c| c < 1e-9).count();
        assert!(
            zero as f64 >= 0.25 * stats.only_timers.len().max(1) as f64,
            "only-timer CV-0 fraction too low: {zero}/{}",
            stats.only_timers.len()
        );
    }

    #[test]
    fn fig7_exec_ordering() {
        let (pop, _) = setup();
        let (min, avg, max) = exec_time_ecdfs(&pop);
        assert!(min.quantile(0.5) <= avg.quantile(0.5));
        assert!(avg.quantile(0.5) <= max.quantile(0.5));
        // §3.4: half the functions average under ~1 s.
        assert!(avg.quantile(0.5) < 2.0);
    }

    #[test]
    fn fig8_memory_ordering() {
        let (pop, _) = setup();
        let (p1, avg, max) = memory_ecdfs(&pop);
        assert!(p1.quantile(0.5) <= avg.quantile(0.5));
        assert!(avg.quantile(0.5) <= max.quantile(0.5));
    }

    #[test]
    fn it_iat_gap_small() {
        let (_, trace) = setup();
        // §3.4: execution times are ≥ 2 orders of magnitude below IATs
        // for most apps; the mean exec/IAT ratio must be small.
        let gap = it_iat_gap(&trace);
        assert!(gap < 0.15, "gap {gap}");
    }

    #[test]
    fn baseline_fraction_bounds() {
        assert_eq!(baseline_fraction(&[], 0.5), 0.0);
        assert_eq!(baseline_fraction(&[1.0, 0.4, 0.6], 0.5), 2.0 / 3.0);
    }
}
