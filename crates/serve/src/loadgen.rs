//! Open-loop, trace-driven load generator.
//!
//! Replays a synthetic `sitw_trace` workload against a running daemon:
//! every generated invocation becomes one `POST /invoke`, sent at its
//! trace time scaled by a speedup factor (or flat out when
//! [`LoadGenConfig::speedup`] is infinite). The generator is *open
//! loop*: when the server falls behind, requests are not throttled to
//! match — they queue — so sustained throughput and tail latency reflect
//! server capacity, not a closed feedback loop flattering it.
//!
//! Apps are partitioned across connections (an app's requests must stay
//! ordered, and the server requires per-app timestamp monotonicity), and
//! each connection pipelines up to a window of requests. Latencies are
//! recorded per request and reported as exact percentiles.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use sitw_stats::percentile_sorted;
use sitw_trace::{app_invocations, build_population, PopulationConfig, TraceConfig, HOUR_MS};

use crate::wire::{self, BinReply, ServerFrameDecode};

/// Which wire protocol the generator speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Proto {
    /// One `POST /invoke` JSON request per invocation (pipelined).
    Json,
    /// SITW-BIN v1 frames of `batch` invocations each.
    Bin {
        /// Records per frame (clamped to `1..=`[`wire::MAX_BATCH`]).
        batch: usize,
    },
}

impl Proto {
    /// Parses a `--proto` argument: `json`, `bin`, or `bin:batch=N`.
    pub fn parse(s: &str) -> Result<Proto, String> {
        match s {
            "json" => Ok(Proto::Json),
            "bin" => Ok(Proto::Bin { batch: 16 }),
            _ => match s.strip_prefix("bin:batch=") {
                Some(n) => {
                    let batch: usize = n.parse().map_err(|_| format!("bad batch '{n}'"))?;
                    if batch == 0 || batch > wire::MAX_BATCH {
                        return Err(format!("batch must be in 1..={}", wire::MAX_BATCH));
                    }
                    Ok(Proto::Bin { batch })
                }
                None => Err(format!("unknown proto '{s}' (json | bin | bin:batch=N)")),
            },
        }
    }

    /// Human-readable label, e.g. `json` or `bin:batch=16`.
    pub fn label(&self) -> String {
        match self {
            Proto::Json => "json".into(),
            Proto::Bin { batch } => format!("bin:batch={batch}"),
        }
    }
}

/// Load generator configuration.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Applications in the synthetic population.
    pub apps: usize,
    /// Population / trace seed.
    pub seed: u64,
    /// Trace horizon in milliseconds.
    pub horizon_ms: u64,
    /// Per-app daily event cap (see [`TraceConfig`]).
    pub cap_per_day: f64,
    /// Trace-time acceleration: 60 ⇒ one trace hour replays in one
    /// minute. `f64::INFINITY` ⇒ replay as fast as the server accepts.
    pub speedup: f64,
    /// Parallel connections.
    pub connections: usize,
    /// In-flight invocations per connection (JSON: pipelined requests;
    /// BIN: records across in-flight frames).
    pub window: usize,
    /// Cap on total invocations sent (0 = no cap).
    pub max_events: usize,
    /// Wire protocol to speak.
    pub proto: Proto,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        Self {
            apps: 500,
            seed: 42,
            horizon_ms: 24 * HOUR_MS,
            cap_per_day: 2_000.0,
            speedup: f64::INFINITY,
            connections: 2,
            window: 64,
            max_events: 0,
            proto: Proto::Json,
        }
    }
}

/// Results of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadGenReport {
    /// Requests sent.
    pub sent: u64,
    /// 200 responses.
    pub ok: u64,
    /// Cold verdicts among `ok`.
    pub cold: u64,
    /// Warm verdicts among `ok`.
    pub warm: u64,
    /// Non-200 responses.
    pub errors: u64,
    /// Wall-clock duration of the replay.
    pub elapsed: Duration,
    /// `ok / elapsed`, decisions per second.
    pub throughput: f64,
    /// Exact client-observed latency percentiles in microseconds
    /// (p50, p95, p99) and the maximum.
    pub latency_us: LatencySummary,
}

/// Exact latency percentiles over all requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl LoadGenReport {
    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} decisions in {:.2}s = {:.0}/s | cold {} ({:.1}%) warm {} errors {} | \
             latency µs p50 {:.0} p95 {:.0} p99 {:.0} max {:.0}",
            self.ok,
            self.elapsed.as_secs_f64(),
            self.throughput,
            self.cold,
            100.0 * self.cold as f64 / (self.ok.max(1)) as f64,
            self.warm,
            self.errors,
            self.latency_us.p50,
            self.latency_us.p95,
            self.latency_us.p99,
            self.latency_us.max,
        )
    }
}

/// One scheduled request.
struct Event {
    ts: u64,
    app: u32,
}

/// Builds the merged, time-ordered schedule and partitions it across
/// connections by app.
fn build_schedules(cfg: &LoadGenConfig) -> Vec<Vec<Event>> {
    let population = build_population(&PopulationConfig {
        num_apps: cfg.apps,
        seed: cfg.seed,
    });
    let trace_cfg = TraceConfig {
        horizon_ms: cfg.horizon_ms,
        cap_per_day: cfg.cap_per_day,
        seed: cfg.seed ^ 0x10AD,
    };
    let mut merged: Vec<Event> = Vec::new();
    for app in &population.apps {
        for ts in app_invocations(app, &trace_cfg) {
            merged.push(Event { ts, app: app.id.0 });
        }
    }
    // Stable global order; ties broken by app id for determinism.
    merged.sort_by_key(|e| (e.ts, e.app));
    if cfg.max_events > 0 {
        merged.truncate(cfg.max_events);
    }

    let connections = cfg.connections.max(1);
    let mut schedules: Vec<Vec<Event>> = (0..connections).map(|_| Vec::new()).collect();
    for event in merged {
        // Per-app ordering is preserved because an app always maps to
        // the same connection and the merged stream is time-ordered.
        schedules[event.app as usize % connections].push(event);
    }
    schedules
}

/// Replays the configured workload against `addr` and reports.
pub fn run_loadgen(addr: SocketAddr, cfg: &LoadGenConfig) -> io::Result<LoadGenReport> {
    let schedules = build_schedules(cfg);
    let start_ts = schedules
        .iter()
        .filter_map(|s| s.first().map(|e| e.ts))
        .min()
        .unwrap_or(0);

    let started = Instant::now();
    let mut results: Vec<ConnResult> = Vec::new();
    std::thread::scope(|scope| -> io::Result<()> {
        let mut handles = Vec::new();
        for schedule in &schedules {
            if schedule.is_empty() {
                continue;
            }
            handles.push(scope.spawn(move || match cfg.proto {
                Proto::Json => {
                    drive_connection(addr, schedule, start_ts, cfg.speedup, cfg.window, started)
                }
                Proto::Bin { batch } => drive_connection_bin(
                    addr,
                    schedule,
                    start_ts,
                    cfg.speedup,
                    cfg.window,
                    batch,
                    started,
                ),
            }));
        }
        for handle in handles {
            let result = handle
                .join()
                .map_err(|_| io::Error::other("loadgen worker panicked"))??;
            results.push(result);
        }
        Ok(())
    })?;
    let elapsed = started.elapsed();

    let mut sent = 0u64;
    let mut ok = 0u64;
    let mut cold = 0u64;
    let mut errors = 0u64;
    let mut latencies: Vec<f64> = Vec::new();
    for mut r in results {
        sent += r.sent;
        ok += r.ok;
        cold += r.cold;
        errors += r.errors;
        latencies.append(&mut r.latencies_us);
    }
    latencies.sort_by(f64::total_cmp);
    let lat = |p: f64| {
        if latencies.is_empty() {
            0.0
        } else {
            percentile_sorted(&latencies, p)
        }
    };
    Ok(LoadGenReport {
        sent,
        ok,
        cold,
        warm: ok - cold,
        errors,
        elapsed,
        throughput: ok as f64 / elapsed.as_secs_f64().max(1e-9),
        latency_us: LatencySummary {
            p50: lat(50.0),
            p95: lat(95.0),
            p99: lat(99.0),
            max: latencies.last().copied().unwrap_or(0.0),
        },
    })
}

struct ConnResult {
    sent: u64,
    ok: u64,
    cold: u64,
    errors: u64,
    latencies_us: Vec<f64>,
}

/// Sends one connection's schedule with pipelining; parses responses in
/// order (HTTP/1.1 guarantees response ordering per connection).
fn drive_connection(
    addr: SocketAddr,
    schedule: &[Event],
    start_ts: u64,
    speedup: f64,
    window: usize,
    started: Instant,
) -> io::Result<ConnResult> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut reader = ResponseReader::new(stream.try_clone()?);

    let window = window.max(1);
    let paced = speedup.is_finite() && speedup > 0.0;
    let mut result = ConnResult {
        sent: 0,
        ok: 0,
        cold: 0,
        errors: 0,
        latencies_us: Vec::with_capacity(schedule.len()),
    };
    let mut out: Vec<u8> = Vec::with_capacity(64 * 1024);
    let mut in_flight: std::collections::VecDeque<Instant> =
        std::collections::VecDeque::with_capacity(window);

    let read_one = |reader: &mut ResponseReader,
                    in_flight: &mut std::collections::VecDeque<Instant>,
                    result: &mut ConnResult|
     -> io::Result<()> {
        let response = reader.read_response()?;
        let sent_at = in_flight.pop_front().expect("response without request");
        result
            .latencies_us
            .push(sent_at.elapsed().as_nanos() as f64 / 1_000.0);
        if response.status == 200 {
            result.ok += 1;
            if response.cold {
                result.cold += 1;
            }
        } else {
            result.errors += 1;
        }
        Ok(())
    };

    for event in schedule {
        if paced {
            let target = Duration::from_secs_f64((event.ts - start_ts) as f64 / 1_000.0 / speedup);
            loop {
                let now = started.elapsed();
                if now >= target {
                    break;
                }
                // Flush and settle outstanding responses before
                // sleeping: idle trace gaps are when responses drain, so
                // measured latency is the server's, not the pacing's.
                if !out.is_empty() {
                    stream.write_all(&out)?;
                    out.clear();
                }
                while !in_flight.is_empty() {
                    read_one(&mut reader, &mut in_flight, &mut result)?;
                }
                std::thread::sleep((target - now).min(Duration::from_millis(2)));
            }
        }

        out.extend_from_slice(b"POST /invoke HTTP/1.1\r\ncontent-length: ");
        let body_len = invoke_body_len(event);
        crate::wire::push_u64(&mut out, body_len as u64);
        out.extend_from_slice(b"\r\n\r\n");
        write_invoke_body(&mut out, event);
        in_flight.push_back(Instant::now());
        result.sent += 1;

        if in_flight.len() >= window {
            stream.write_all(&out)?;
            out.clear();
            read_one(&mut reader, &mut in_flight, &mut result)?;
        }
    }
    stream.write_all(&out)?;
    out.clear();
    while !in_flight.is_empty() {
        read_one(&mut reader, &mut in_flight, &mut result)?;
    }
    Ok(result)
}

/// Sends one connection's schedule as SITW-BIN frames of `batch`
/// records, keeping up to `window` records in flight across frames.
/// Per-record latency is the latency of the frame that carried it.
fn drive_connection_bin(
    addr: SocketAddr,
    schedule: &[Event],
    start_ts: u64,
    speedup: f64,
    window: usize,
    batch: usize,
    started: Instant,
) -> io::Result<ConnResult> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut reader = ResponseReader::new(stream.try_clone()?);

    let batch = batch.clamp(1, wire::MAX_BATCH);
    let window = window.max(batch);
    let paced = speedup.is_finite() && speedup > 0.0;
    let mut result = ConnResult {
        sent: 0,
        ok: 0,
        cold: 0,
        errors: 0,
        latencies_us: Vec::with_capacity(schedule.len()),
    };
    let mut out: Vec<u8> = Vec::with_capacity(64 * 1024);
    // The frame under construction (app names owned until encoded).
    let mut building: Vec<(String, u64)> = Vec::with_capacity(batch);
    // In-flight frames: when they were last written and their size.
    let mut in_flight: std::collections::VecDeque<(Instant, usize)> =
        std::collections::VecDeque::new();
    let mut in_flight_records = 0usize;

    fn flush_frame(
        building: &mut Vec<(String, u64)>,
        out: &mut Vec<u8>,
        in_flight: &mut std::collections::VecDeque<(Instant, usize)>,
        in_flight_records: &mut usize,
    ) {
        if building.is_empty() {
            return;
        }
        let records: Vec<(&str, u64)> = building.iter().map(|(a, ts)| (a.as_str(), *ts)).collect();
        wire::encode_request_frame(out, &records);
        in_flight.push_back((Instant::now(), building.len()));
        *in_flight_records += building.len();
        building.clear();
    }

    let read_one_frame = |reader: &mut ResponseReader,
                          in_flight: &mut std::collections::VecDeque<(Instant, usize)>,
                          in_flight_records: &mut usize,
                          result: &mut ConnResult|
     -> io::Result<()> {
        let records = reader.read_bin_frame()?;
        let (sent_at, count) = in_flight.pop_front().expect("reply without frame");
        *in_flight_records -= count;
        let latency_us = sent_at.elapsed().as_nanos() as f64 / 1_000.0;
        match records {
            Some(records) => {
                if records.len() != count {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("reply of {} records for frame of {count}", records.len()),
                    ));
                }
                for r in records {
                    result.latencies_us.push(latency_us);
                    match r {
                        BinReply::Verdict { cold, .. } => {
                            result.ok += 1;
                            if cold {
                                result.cold += 1;
                            }
                        }
                        BinReply::OutOfOrder { .. } => result.errors += 1,
                    }
                }
            }
            None => {
                // A typed error frame answers the whole request frame.
                for _ in 0..count {
                    result.latencies_us.push(latency_us);
                    result.errors += 1;
                }
            }
        }
        Ok(())
    };

    for event in schedule {
        if paced {
            let target = Duration::from_secs_f64((event.ts - start_ts) as f64 / 1_000.0 / speedup);
            loop {
                let now = started.elapsed();
                if now >= target {
                    break;
                }
                // Idle trace gaps: ship the partial frame and settle all
                // replies, so measured latency is the server's.
                flush_frame(
                    &mut building,
                    &mut out,
                    &mut in_flight,
                    &mut in_flight_records,
                );
                if !out.is_empty() {
                    stream.write_all(&out)?;
                    out.clear();
                }
                while !in_flight.is_empty() {
                    read_one_frame(
                        &mut reader,
                        &mut in_flight,
                        &mut in_flight_records,
                        &mut result,
                    )?;
                }
                std::thread::sleep((target - now).min(Duration::from_millis(2)));
            }
        }

        building.push((app_name(event.app), event.ts));
        result.sent += 1;
        if building.len() >= batch {
            flush_frame(
                &mut building,
                &mut out,
                &mut in_flight,
                &mut in_flight_records,
            );
        }
        if in_flight_records + building.len() >= window {
            if !out.is_empty() {
                stream.write_all(&out)?;
                out.clear();
            }
            if !in_flight.is_empty() {
                read_one_frame(
                    &mut reader,
                    &mut in_flight,
                    &mut in_flight_records,
                    &mut result,
                )?;
            }
        }
    }
    flush_frame(
        &mut building,
        &mut out,
        &mut in_flight,
        &mut in_flight_records,
    );
    if !out.is_empty() {
        stream.write_all(&out)?;
        out.clear();
    }
    while !in_flight.is_empty() {
        read_one_frame(
            &mut reader,
            &mut in_flight,
            &mut in_flight_records,
            &mut result,
        )?;
    }
    Ok(result)
}

fn app_name(app: u32) -> String {
    format!("app-{app:06}")
}

fn invoke_body_len(event: &Event) -> usize {
    // {"app":"app-XXXXXX","ts":N}
    let ts_digits = if event.ts == 0 {
        1
    } else {
        (event.ts.ilog10() + 1) as usize
    };
    8 + app_name(event.app).len() + 7 + ts_digits + 1
}

fn write_invoke_body(out: &mut Vec<u8>, event: &Event) {
    out.extend_from_slice(b"{\"app\":\"");
    out.extend_from_slice(app_name(event.app).as_bytes());
    out.extend_from_slice(b"\",\"ts\":");
    crate::wire::push_u64(out, event.ts);
    out.push(b'}');
}

/// A minimal HTTP response.
struct Response {
    status: u16,
    cold: bool,
}

/// Buffered response parser (headers + `Content-Length` body).
struct ResponseReader {
    stream: TcpStream,
    buf: Vec<u8>,
    start: usize,
}

impl ResponseReader {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            buf: Vec::with_capacity(64 * 1024),
            start: 0,
        }
    }

    fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    fn fill(&mut self) -> io::Result<usize> {
        // Compact once the consumed prefix dominates.
        if self.start > 8 * 1024 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        let mut chunk = [0u8; 32 * 1024];
        let n = self.stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed connection",
            ));
        }
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    /// Reads one SITW-BIN server frame: `Some(records)` for a reply,
    /// `None` for a typed error frame (the caller counts its whole
    /// request frame as failed).
    fn read_bin_frame(&mut self) -> io::Result<Option<Vec<BinReply>>> {
        loop {
            match wire::decode_server_frame(&self.buf[self.start..]) {
                ServerFrameDecode::Reply { records, consumed } => {
                    self.start += consumed;
                    return Ok(Some(records));
                }
                ServerFrameDecode::Error { consumed, .. } => {
                    self.start += consumed;
                    return Ok(None);
                }
                ServerFrameDecode::Incomplete => {
                    self.fill()?;
                }
                ServerFrameDecode::Malformed(msg) => {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, msg));
                }
            }
        }
    }

    fn read_response(&mut self) -> io::Result<Response> {
        loop {
            let window = &self.buf[self.start..];
            if let Some(header_end) = window.windows(4).position(|w| w == b"\r\n\r\n") {
                let header = std::str::from_utf8(&window[..header_end])
                    .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 header"))?;
                let status: u16 = header
                    .split_ascii_whitespace()
                    .nth(1)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
                let content_length: usize = header
                    .lines()
                    .find_map(|l| {
                        let (name, value) = l.split_once(':')?;
                        name.eq_ignore_ascii_case("content-length")
                            .then(|| value.trim().parse().ok())?
                    })
                    .unwrap_or(0);
                let total = header_end + 4 + content_length;
                while self.buffered() < total {
                    self.fill()?;
                }
                let body_start = self.start + header_end + 4;
                let body = &self.buf[body_start..body_start + content_length];
                let cold = find_subslice(body, b"\"verdict\":\"cold\"");
                self.start += total;
                return Ok(Response { status, cold });
            }
            self.fill()?;
        }
    }
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> bool {
    haystack.windows(needle.len()).any(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_partition_by_app_and_stay_ordered() {
        let cfg = LoadGenConfig {
            apps: 40,
            connections: 3,
            max_events: 5_000,
            ..LoadGenConfig::default()
        };
        let schedules = build_schedules(&cfg);
        assert_eq!(schedules.len(), 3);
        let total: usize = schedules.iter().map(|s| s.len()).sum();
        assert!(total > 0 && total <= 5_000);
        for (conn, schedule) in schedules.iter().enumerate() {
            assert!(schedule.windows(2).all(|w| w[0].ts <= w[1].ts));
            for event in schedule {
                assert_eq!(event.app as usize % 3, conn);
            }
        }
    }

    #[test]
    fn body_length_precomputation_matches() {
        for event in [
            Event { ts: 0, app: 0 },
            Event { ts: 9, app: 1 },
            Event {
                ts: 1_209_600_000,
                app: 999_999,
            },
        ] {
            let mut body = Vec::new();
            write_invoke_body(&mut body, &event);
            assert_eq!(body.len(), invoke_body_len(&event), "{body:?}");
        }
    }

    #[test]
    fn proto_parse_forms() {
        assert_eq!(Proto::parse("json").unwrap(), Proto::Json);
        assert_eq!(Proto::parse("bin").unwrap(), Proto::Bin { batch: 16 });
        assert_eq!(
            Proto::parse("bin:batch=128").unwrap(),
            Proto::Bin { batch: 128 }
        );
        assert!(Proto::parse("bin:batch=0").is_err());
        assert!(Proto::parse(&format!("bin:batch={}", wire::MAX_BATCH + 1)).is_err());
        assert!(Proto::parse("grpc").is_err());
        assert_eq!(Proto::Bin { batch: 16 }.label(), "bin:batch=16");
    }

    #[test]
    fn find_subslice_works() {
        assert!(find_subslice(
            b"abc\"verdict\":\"cold\"x",
            b"\"verdict\":\"cold\""
        ));
        assert!(!find_subslice(
            b"\"verdict\":\"warm\"",
            b"\"verdict\":\"cold\""
        ));
    }
}
