//! Trace subsetting for scaled-down experiments.
//!
//! §5.3 of the paper replays "68 randomly selected mid-range popularity
//! applications" for 8 hours against a 19-VM OpenWhisk deployment. This
//! module reproduces that selection against any population and slices
//! traces to sub-horizons.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::generator::{AppTrace, Trace};
use crate::model::Population;
use crate::time::TimeMs;

/// Selects `n` applications with daily rates inside `[min_rate, max_rate)`
/// uniformly at random (deterministic in `seed`).
///
/// Returns fewer than `n` applications when the band does not contain
/// enough candidates.
pub fn mid_popularity_subset(
    pop: &Population,
    n: usize,
    min_rate: f64,
    max_rate: f64,
    seed: u64,
) -> Population {
    let mut candidates: Vec<usize> = pop
        .apps
        .iter()
        .enumerate()
        .filter(|(_, a)| a.daily_rate >= min_rate && a.daily_rate < max_rate)
        .map(|(i, _)| i)
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    // Fisher–Yates; then take the first n.
    for i in (1..candidates.len()).rev() {
        let j = rng.random_range(0..=i);
        candidates.swap(i, j);
    }
    candidates.truncate(n);
    candidates.sort_unstable();
    Population {
        apps: candidates
            .into_iter()
            .map(|i| pop.apps[i].clone())
            .collect(),
    }
}

/// The paper's mid-range-popularity band, calibrated from its own §5.3
/// replay: 12,383 invocations across 68 applications over 8 hours is an
/// average of ~550 invocations per app-day — the once-per-few-minutes
/// regime where minute-scale timers and steady HTTP traffic live.
pub fn paper_mid_band() -> (f64, f64) {
    (120.0, 1440.0)
}

/// Keeps applications whose invocation-weighted average execution time
/// is at most `max_secs` — the interactive population the §5.3 replay
/// exercises (a single minutes-long batch function would otherwise
/// dominate mean latency measurements).
pub fn filter_by_weighted_exec(pop: &Population, max_secs: f64) -> Population {
    Population {
        apps: pop
            .apps
            .iter()
            .filter(|a| {
                let weighted: f64 = a
                    .functions
                    .iter()
                    .map(|f| f.invocation_share * f.avg_exec_secs)
                    .sum();
                weighted <= max_secs
            })
            .cloned()
            .collect(),
    }
}

/// Restricts a trace to the window `[start, end)`, re-basing timestamps
/// to 0 and dropping apps left without invocations.
pub fn slice_trace(trace: &Trace, start: TimeMs, end: TimeMs) -> Trace {
    assert!(start < end, "empty slice window");
    let apps = trace
        .apps
        .iter()
        .filter_map(|app| {
            let lo = app.invocations.partition_point(|&t| t < start);
            let hi = app.invocations.partition_point(|&t| t < end);
            if lo == hi {
                return None;
            }
            Some(AppTrace {
                profile: app.profile.clone(),
                invocations: app.invocations[lo..hi].iter().map(|&t| t - start).collect(),
            })
        })
        .collect();
    Trace {
        horizon_ms: end - start,
        apps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_trace, TraceConfig};
    use crate::population::{build_population, PopulationConfig};
    use crate::time::{DAY_MS, HOUR_MS};

    #[test]
    fn subset_respects_band_and_count() {
        let pop = build_population(&PopulationConfig {
            num_apps: 6000,
            seed: 11,
        });
        let (lo, hi) = paper_mid_band();
        let sub = mid_popularity_subset(&pop, 68, lo, hi, 1);
        assert_eq!(sub.len(), 68);
        for a in &sub.apps {
            assert!(a.daily_rate >= lo && a.daily_rate < hi);
        }
        // The band reproduces the paper's replay volume: 12,383
        // invocations over 8 hours ≈ 1,640 per app-day on average.
        let mean_rate: f64 = sub.apps.iter().map(|a| a.daily_rate).sum::<f64>() / sub.len() as f64;
        assert!(
            (200.0..1200.0).contains(&mean_rate),
            "mean rate {mean_rate}"
        );
    }

    #[test]
    fn exec_filter_drops_slow_apps() {
        let pop = build_population(&PopulationConfig {
            num_apps: 1000,
            seed: 15,
        });
        let fast = filter_by_weighted_exec(&pop, 1.0);
        assert!(!fast.is_empty());
        assert!(fast.len() < pop.len());
        for a in &fast.apps {
            let w: f64 = a
                .functions
                .iter()
                .map(|f| f.invocation_share * f.avg_exec_secs)
                .sum();
            assert!(w <= 1.0);
        }
    }

    #[test]
    fn subset_deterministic_and_distinct_seeds_differ() {
        let pop = build_population(&PopulationConfig {
            num_apps: 2000,
            seed: 12,
        });
        let a = mid_popularity_subset(&pop, 50, 24.0, 1440.0, 7);
        let b = mid_popularity_subset(&pop, 50, 24.0, 1440.0, 7);
        let c = mid_popularity_subset(&pop, 50, 24.0, 1440.0, 8);
        let ids = |p: &Population| p.apps.iter().map(|x| x.id).collect::<Vec<_>>();
        assert_eq!(ids(&a), ids(&b));
        assert_ne!(ids(&a), ids(&c));
    }

    #[test]
    fn subset_smaller_than_requested_when_band_sparse() {
        let pop = build_population(&PopulationConfig {
            num_apps: 50,
            seed: 13,
        });
        let sub = mid_popularity_subset(&pop, 1000, 24.0, 1440.0, 1);
        assert!(sub.len() < 1000);
    }

    #[test]
    fn slice_rebases_and_filters() {
        let pop = build_population(&PopulationConfig {
            num_apps: 200,
            seed: 14,
        });
        let trace = generate_trace(
            &pop,
            &TraceConfig {
                horizon_ms: DAY_MS,
                cap_per_day: 2000.0,
                seed: 2,
            },
        );
        let sliced = slice_trace(&trace, 2 * HOUR_MS, 10 * HOUR_MS);
        assert_eq!(sliced.horizon_ms, 8 * HOUR_MS);
        for app in &sliced.apps {
            assert!(!app.invocations.is_empty());
            assert!(*app.invocations.last().unwrap() < 8 * HOUR_MS);
        }
        // Events must correspond to the original window.
        let orig_count: usize = trace
            .apps
            .iter()
            .map(|a| {
                a.invocations
                    .iter()
                    .filter(|&&t| (2 * HOUR_MS..10 * HOUR_MS).contains(&t))
                    .count()
            })
            .sum();
        let sliced_count: usize = sliced.apps.iter().map(|a| a.invocations.len()).sum();
        assert_eq!(orig_count, sliced_count);
    }

    #[test]
    #[should_panic(expected = "empty slice")]
    fn slice_rejects_empty_window() {
        let trace = Trace {
            horizon_ms: 100,
            apps: vec![],
        };
        let _ = slice_trace(&trace, 10, 10);
    }
}
