//! The keep-alive policy abstraction.
//!
//! A *policy* governs two per-application parameters (§4):
//!
//! * the **pre-warming window** — how long after an execution the
//!   platform waits before loading the application image in anticipation
//!   of the next invocation (0 ⇒ the app is not unloaded at all);
//! * the **keep-alive window** — how long the image stays loaded after
//!   (a) being pre-warmed, or (b) the execution end when the pre-warming
//!   window is 0.
//!
//! Policies are *per-application* state machines: the platform keeps one
//! instance per app and consults it after every function execution.

/// Milliseconds; matches `sitw_trace::TimeMs` without creating a
/// dependency from policies to the workload substrate.
pub type DurationMs = u64;

/// One minute in milliseconds (the paper's histogram bin width).
pub const MINUTE_MS: DurationMs = 60_000;

/// The two windows a policy emits after each execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Windows {
    /// Time to wait after the execution before re-loading the image;
    /// 0 means the image stays loaded.
    pub pre_warm_ms: DurationMs,
    /// Time the image stays loaded once loaded (from the execution end
    /// when `pre_warm_ms == 0`, from the pre-warm otherwise).
    pub keep_alive_ms: DurationMs,
}

impl Windows {
    /// A policy decision that keeps the image loaded for `keep_alive_ms`
    /// after the execution (no unload/pre-warm cycle).
    pub fn keep_loaded(keep_alive_ms: DurationMs) -> Self {
        Self {
            pre_warm_ms: 0,
            keep_alive_ms,
        }
    }

    /// Unload now, re-load after `pre_warm_ms`, keep for `keep_alive_ms`.
    pub fn pre_warmed(pre_warm_ms: DurationMs, keep_alive_ms: DurationMs) -> Self {
        Self {
            pre_warm_ms,
            keep_alive_ms,
        }
    }

    /// Keep the image loaded forever (the no-unloading upper bound).
    pub const NEVER_UNLOAD: Windows = Windows {
        pre_warm_ms: 0,
        keep_alive_ms: DurationMs::MAX,
    };

    /// End of the loaded interval relative to the execution end,
    /// saturating (handles [`Windows::NEVER_UNLOAD`]).
    pub fn loaded_until(&self, exec_end: DurationMs) -> DurationMs {
        exec_end
            .saturating_add(self.pre_warm_ms)
            .saturating_add(self.keep_alive_ms)
    }

    /// Whether an invocation arriving `idle_ms` after the execution end
    /// hits a loaded image (a warm start).
    pub fn is_warm_at(&self, idle_ms: DurationMs) -> bool {
        if self.pre_warm_ms == 0 {
            idle_ms <= self.keep_alive_ms
        } else {
            idle_ms >= self.pre_warm_ms
                && idle_ms <= self.pre_warm_ms.saturating_add(self.keep_alive_ms)
        }
    }

    /// Classifies one idle gap ending in an invocation: was it cold, how
    /// much loaded-but-idle memory time accrued, and did a pre-warm load
    /// happen during the gap.
    ///
    /// This is the single source of truth for cold/warm semantics: the
    /// offline simulator (`sitw_sim::simulate_app`) and the online
    /// serving daemon (`sitw_serve`) both classify through it, which is
    /// what makes their verdicts bit-for-bit comparable.
    ///
    /// * `idle_ms == 0`: the next invocation arrives while the execution
    ///   is (conceptually) still finishing — always warm, no waste.
    /// * `pre_warm_ms == 0`: the image stays loaded; an invocation inside
    ///   the keep-alive window is warm (waste = the idle gap), a later
    ///   one is cold (waste = the whole keep-alive window).
    /// * `pre_warm_ms > 0`: the image unloads at execution end and
    ///   re-loads at `pre_warm_ms`; an invocation before that is cold
    ///   with zero waste (the pending pre-warm is cancelled), one inside
    ///   `[pre_warm, pre_warm+keep_alive]` is warm (waste = arrival −
    ///   load), one after is cold (waste = the keep-alive window).
    pub fn classify_gap(&self, idle_ms: DurationMs) -> GapOutcome {
        if idle_ms == 0 {
            return GapOutcome {
                cold: false,
                wasted_ms: 0,
                prewarm_load: false,
            };
        }
        if self.pre_warm_ms == 0 {
            if idle_ms <= self.keep_alive_ms {
                GapOutcome {
                    cold: false,
                    wasted_ms: idle_ms,
                    prewarm_load: false,
                }
            } else {
                GapOutcome {
                    cold: true,
                    wasted_ms: self.keep_alive_ms,
                    prewarm_load: false,
                }
            }
        } else if idle_ms < self.pre_warm_ms {
            GapOutcome {
                cold: true,
                wasted_ms: 0,
                prewarm_load: false,
            }
        } else if idle_ms <= self.pre_warm_ms.saturating_add(self.keep_alive_ms) {
            GapOutcome {
                cold: false,
                wasted_ms: idle_ms - self.pre_warm_ms,
                prewarm_load: true,
            }
        } else {
            GapOutcome {
                cold: true,
                wasted_ms: self.keep_alive_ms,
                prewarm_load: true,
            }
        }
    }
}

/// Outcome of classifying one idle gap against a [`Windows`] pair; see
/// [`Windows::classify_gap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapOutcome {
    /// The invocation ending the gap found no loaded image.
    pub cold: bool,
    /// Loaded-but-idle memory time accrued during the gap.
    pub wasted_ms: DurationMs,
    /// A pre-warm load happened during the gap (the image was re-loaded
    /// at the pre-warming window's end before the invocation arrived).
    pub prewarm_load: bool,
}

/// Which branch of the hybrid policy produced a decision (Figure 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionKind {
    /// Head/tail of the idle-time histogram.
    Histogram,
    /// Conservative standard keep-alive (histogram unrepresentative or
    /// still learning).
    StandardKeepAlive,
    /// Time-series forecast (too many out-of-bounds idle times).
    Arima,
    /// Policies without internal branching (fixed, no-unloading).
    Static,
}

/// A per-application keep-alive policy.
pub trait AppPolicy {
    /// Observes one invocation and returns the windows governing the gap
    /// until the next one.
    ///
    /// `idle_time_ms` is the idle time (IT) that just *ended*: the gap
    /// between the previous execution's end and this invocation. It is
    /// `None` for the app's first observed invocation.
    fn on_invocation(&mut self, idle_time_ms: Option<DurationMs>) -> Windows;

    /// Which branch produced the most recent decision.
    fn last_decision(&self) -> DecisionKind;

    /// Stable short name for reports.
    fn name(&self) -> String;
}

/// A factory creating one policy instance per application; configs
/// implement this so simulation sweeps can be written generically.
pub trait PolicyFactory: Sync {
    /// The policy type produced.
    type Policy: AppPolicy;

    /// Creates a fresh per-application policy instance.
    fn new_policy(&self) -> Self::Policy;

    /// Label for tables and plots (e.g. `"fixed-10min"`,
    /// `"hybrid-4h[5,99]"`).
    fn label(&self) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keep_loaded_warm_iff_within_keep_alive() {
        let w = Windows::keep_loaded(10 * MINUTE_MS);
        assert!(w.is_warm_at(0));
        assert!(w.is_warm_at(10 * MINUTE_MS));
        assert!(!w.is_warm_at(10 * MINUTE_MS + 1));
    }

    #[test]
    fn pre_warmed_window_cold_before_and_after() {
        let w = Windows::pre_warmed(5 * MINUTE_MS, 2 * MINUTE_MS);
        assert!(!w.is_warm_at(0));
        assert!(!w.is_warm_at(5 * MINUTE_MS - 1));
        assert!(w.is_warm_at(5 * MINUTE_MS));
        assert!(w.is_warm_at(7 * MINUTE_MS));
        assert!(!w.is_warm_at(7 * MINUTE_MS + 1));
    }

    #[test]
    fn never_unload_is_always_warm() {
        let w = Windows::NEVER_UNLOAD;
        assert!(w.is_warm_at(DurationMs::MAX));
        assert_eq!(w.loaded_until(123), DurationMs::MAX);
    }

    #[test]
    fn loaded_until_saturates() {
        let w = Windows::pre_warmed(DurationMs::MAX, 10);
        assert_eq!(w.loaded_until(5), DurationMs::MAX);
    }

    #[test]
    fn classify_gap_agrees_with_is_warm_at() {
        for w in [
            Windows::keep_loaded(10 * MINUTE_MS),
            Windows::pre_warmed(5 * MINUTE_MS, 2 * MINUTE_MS),
            Windows::NEVER_UNLOAD,
        ] {
            for idle in [
                1,
                MINUTE_MS,
                5 * MINUTE_MS - 1,
                5 * MINUTE_MS,
                7 * MINUTE_MS,
                7 * MINUTE_MS + 1,
                10 * MINUTE_MS,
                10 * MINUTE_MS + 1,
                DurationMs::MAX,
            ] {
                assert_eq!(
                    w.classify_gap(idle).cold,
                    !w.is_warm_at(idle),
                    "{w:?} at idle {idle}"
                );
            }
        }
    }

    #[test]
    fn classify_gap_zero_is_always_warm_and_free() {
        let w = Windows::pre_warmed(5 * MINUTE_MS, 2 * MINUTE_MS);
        let o = w.classify_gap(0);
        assert!(!o.cold);
        assert_eq!(o.wasted_ms, 0);
        assert!(!o.prewarm_load);
    }

    #[test]
    fn classify_gap_waste_accounting() {
        // Keep-loaded: waste = idle while warm, full keep-alive when cold.
        let kl = Windows::keep_loaded(10 * MINUTE_MS);
        assert_eq!(kl.classify_gap(4 * MINUTE_MS).wasted_ms, 4 * MINUTE_MS);
        assert_eq!(kl.classify_gap(30 * MINUTE_MS).wasted_ms, 10 * MINUTE_MS);

        // Pre-warmed: cancelled pre-warm wastes nothing; a hit wastes
        // arrival − load; an overrun wastes the keep-alive window.
        let pw = Windows::pre_warmed(8 * MINUTE_MS, 4 * MINUTE_MS);
        let before = pw.classify_gap(5 * MINUTE_MS);
        assert!(before.cold && before.wasted_ms == 0 && !before.prewarm_load);
        let hit = pw.classify_gap(10 * MINUTE_MS);
        assert!(!hit.cold && hit.prewarm_load);
        assert_eq!(hit.wasted_ms, 2 * MINUTE_MS);
        let overrun = pw.classify_gap(20 * MINUTE_MS);
        assert!(overrun.cold && overrun.prewarm_load);
        assert_eq!(overrun.wasted_ms, 4 * MINUTE_MS);
    }
}
