//! Range-limited fixed-width histograms.
//!
//! [`RangeHistogram`] is the centerpiece data structure of the paper's
//! hybrid policy (§4.2): a compact array of integer counts over fixed-width
//! bins (1 minute in the paper) up to a configurable range (4 hours ⇒ 240
//! bins ⇒ 960 bytes, §6). Values beyond the range are *out of bounds*
//! (OOB) and only counted, not binned. The structure supports:
//!
//! * O(1) recording,
//! * O(1) coefficient-of-variation of the bin counts (the
//!   representativeness signal of §4.2), via an incrementally maintained
//!   sum of squared counts,
//! * head/tail percentile extraction with the paper's rounding rule
//!   ("round to the next lower value for the head or the next higher value
//!   for the tail"),
//! * merging and weighted aggregation ([`WeightedBins`]) for the
//!   production-style daily histogram scheme of §6.

/// Outcome of recording a value into a [`RangeHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recorded {
    /// The value fell into the bin with the given index.
    InBounds {
        /// Index of the bin that received the value.
        bin: usize,
    },
    /// The value was at or beyond the histogram range.
    OutOfBounds,
}

/// A fixed-width histogram over `u64` values with a bounded range.
///
/// Bin `i` covers the half-open interval `[i*w, (i+1)*w)` where `w` is the
/// bin width; values `≥ num_bins * w` are counted as out of bounds.
///
/// # Examples
///
/// ```
/// use sitw_stats::{RangeHistogram, Recorded};
///
/// // The paper's production configuration: 240 one-minute bins.
/// let mut h = RangeHistogram::new(240, 1);
/// assert_eq!(h.record(5), Recorded::InBounds { bin: 5 });
/// assert_eq!(h.record(239), Recorded::InBounds { bin: 239 });
/// assert_eq!(h.record(240), Recorded::OutOfBounds);
/// assert_eq!(h.in_bounds_count(), 2);
/// assert_eq!(h.oob_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RangeHistogram {
    bin_width: u64,
    bins: Vec<u32>,
    in_bounds: u64,
    oob: u64,
    /// Sum of squared bin counts, maintained incrementally so the CV of the
    /// bin counts is O(1) to read.
    sumsq: f64,
}

impl RangeHistogram {
    /// Creates a histogram with `num_bins` bins of width `bin_width`.
    ///
    /// # Panics
    ///
    /// Panics if `num_bins` or `bin_width` is zero.
    pub fn new(num_bins: usize, bin_width: u64) -> Self {
        assert!(num_bins > 0, "histogram needs at least one bin");
        assert!(bin_width > 0, "bin width must be positive");
        Self {
            bin_width,
            bins: vec![0; num_bins],
            in_bounds: 0,
            oob: 0,
            sumsq: 0.0,
        }
    }

    /// Reconstructs a histogram from raw counts (the inverse of reading
    /// [`RangeHistogram::bins`] and [`RangeHistogram::oob_count`]), used
    /// by snapshot/restore paths. The derived fields (in-bounds total,
    /// sum of squared counts) are recomputed, so a round trip through
    /// `from_parts(h.bin_width(), h.bins().to_vec(), h.oob_count())`
    /// yields a histogram equal to `h`.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is empty or `bin_width` is zero.
    pub fn from_parts(bin_width: u64, bins: Vec<u32>, oob: u64) -> Self {
        assert!(!bins.is_empty(), "histogram needs at least one bin");
        assert!(bin_width > 0, "bin width must be positive");
        let in_bounds = bins.iter().map(|&c| c as u64).sum();
        let sumsq = bins.iter().map(|&c| (c as f64) * (c as f64)).sum();
        Self {
            bin_width,
            bins,
            in_bounds,
            oob,
            sumsq,
        }
    }

    /// Bin width in value units.
    pub fn bin_width(&self) -> u64 {
        self.bin_width
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Exclusive upper bound of representable values
    /// (`num_bins * bin_width`).
    pub fn range(&self) -> u64 {
        self.bins.len() as u64 * self.bin_width
    }

    /// Records a value, returning where it landed.
    pub fn record(&mut self, value: u64) -> Recorded {
        let bin = (value / self.bin_width) as usize;
        if bin < self.bins.len() {
            let c = self.bins[bin];
            self.bins[bin] = c.saturating_add(1);
            self.in_bounds += 1;
            self.sumsq += 2.0 * c as f64 + 1.0;
            Recorded::InBounds { bin }
        } else {
            self.oob += 1;
            Recorded::OutOfBounds
        }
    }

    /// The raw bin counts.
    pub fn bins(&self) -> &[u32] {
        &self.bins
    }

    /// Count held by bin `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn bin_count(&self, idx: usize) -> u32 {
        self.bins[idx]
    }

    /// Number of in-bounds recordings.
    pub fn in_bounds_count(&self) -> u64 {
        self.in_bounds
    }

    /// Number of out-of-bounds recordings.
    pub fn oob_count(&self) -> u64 {
        self.oob
    }

    /// Total recordings, in-bounds plus out-of-bounds.
    pub fn total_count(&self) -> u64 {
        self.in_bounds + self.oob
    }

    /// Fraction of recordings that were out of bounds (0 when empty).
    pub fn oob_fraction(&self) -> f64 {
        let total = self.total_count();
        if total == 0 {
            0.0
        } else {
            self.oob as f64 / total as f64
        }
    }

    /// True when nothing has been recorded (in-bounds or out).
    pub fn is_empty(&self) -> bool {
        self.total_count() == 0
    }

    /// Coefficient of variation of the bin counts.
    ///
    /// A histogram concentrated in few bins has a high CV; a flat histogram
    /// has CV 0. The hybrid policy treats the histogram as representative
    /// only when this exceeds a threshold (§4.2, Figure 18). O(1).
    pub fn bin_count_cv(&self) -> f64 {
        if self.in_bounds == 0 {
            return 0.0;
        }
        let n = self.bins.len() as f64;
        let mean = self.in_bounds as f64 / n;
        let var = (self.sumsq / n - mean * mean).max(0.0);
        var.sqrt() / mean
    }

    /// Lower edge of the bin containing the in-bounds `p`-th percentile,
    /// i.e. the percentile "rounded to the next lower value" (used for the
    /// head of the idle-time distribution / the pre-warming window).
    ///
    /// Returns `None` when no in-bounds values exist.
    pub fn head_value(&self, p: f64) -> Option<u64> {
        self.percentile_bin(p).map(|b| b as u64 * self.bin_width)
    }

    /// Upper edge of the bin containing the in-bounds `p`-th percentile,
    /// i.e. the percentile "rounded to the next higher value" (used for the
    /// tail of the idle-time distribution / the keep-alive window).
    ///
    /// Returns `None` when no in-bounds values exist.
    pub fn tail_value(&self, p: f64) -> Option<u64> {
        self.percentile_bin(p)
            .map(|b| (b as u64 + 1) * self.bin_width)
    }

    /// Index of the bin containing the in-bounds `p`-th percentile.
    pub fn percentile_bin(&self, p: f64) -> Option<usize> {
        percentile_bin_over(&self.bins, self.in_bounds as f64, p)
    }

    /// Clears all counts.
    pub fn reset(&mut self) {
        self.bins.fill(0);
        self.in_bounds = 0;
        self.oob = 0;
        self.sumsq = 0.0;
    }

    /// Merges another histogram with identical geometry into this one.
    ///
    /// # Panics
    ///
    /// Panics if bin widths or bin counts differ.
    pub fn merge(&mut self, other: &RangeHistogram) {
        assert_eq!(self.bin_width, other.bin_width, "bin width mismatch");
        assert_eq!(self.bins.len(), other.bins.len(), "bin count mismatch");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a = a.saturating_add(*b);
        }
        self.in_bounds += other.in_bounds;
        self.oob += other.oob;
        self.sumsq = self.bins.iter().map(|&c| (c as f64) * (c as f64)).sum();
    }

    /// Approximate in-memory footprint of the count array, in bytes.
    ///
    /// The paper's production deployment quotes 240 × 4-byte integers =
    /// 960 bytes per application (§6).
    pub fn memory_footprint_bytes(&self) -> usize {
        self.bins.len() * std::mem::size_of::<u32>()
    }
}

/// Float-weighted bins with the same geometry and percentile rules as
/// [`RangeHistogram`], used to aggregate several daily histograms "in a
/// weighted fashion to give more importance to recent records" (§6).
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedBins {
    bin_width: u64,
    bins: Vec<f64>,
    in_bounds: f64,
    oob: f64,
}

impl WeightedBins {
    /// Creates empty weighted bins with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `num_bins` or `bin_width` is zero.
    pub fn new(num_bins: usize, bin_width: u64) -> Self {
        assert!(num_bins > 0, "histogram needs at least one bin");
        assert!(bin_width > 0, "bin width must be positive");
        Self {
            bin_width,
            bins: vec![0.0; num_bins],
            in_bounds: 0.0,
            oob: 0.0,
        }
    }

    /// Adds `weight ×` the counts of `h`.
    ///
    /// # Panics
    ///
    /// Panics if geometries differ or `weight` is negative/non-finite.
    pub fn add_scaled(&mut self, h: &RangeHistogram, weight: f64) {
        assert_eq!(self.bin_width, h.bin_width, "bin width mismatch");
        assert_eq!(self.bins.len(), h.bins.len(), "bin count mismatch");
        assert!(
            weight >= 0.0 && weight.is_finite(),
            "weight must be finite and non-negative"
        );
        for (a, &b) in self.bins.iter_mut().zip(h.bins.iter()) {
            *a += weight * b as f64;
        }
        self.in_bounds += weight * h.in_bounds as f64;
        self.oob += weight * h.oob as f64;
    }

    /// Total in-bounds weight.
    pub fn in_bounds_weight(&self) -> f64 {
        self.in_bounds
    }

    /// Total out-of-bounds weight.
    pub fn oob_weight(&self) -> f64 {
        self.oob
    }

    /// Fraction of weight that is out of bounds (0 when empty).
    pub fn oob_fraction(&self) -> f64 {
        let total = self.in_bounds + self.oob;
        if total <= 0.0 {
            0.0
        } else {
            self.oob / total
        }
    }

    /// True when no weight has been added.
    pub fn is_empty(&self) -> bool {
        self.in_bounds + self.oob <= 0.0
    }

    /// Coefficient of variation of the (weighted) bin values.
    pub fn bin_count_cv(&self) -> f64 {
        if self.in_bounds <= 0.0 {
            return 0.0;
        }
        let n = self.bins.len() as f64;
        let mean = self.in_bounds / n;
        let sumsq: f64 = self.bins.iter().map(|&c| c * c).sum();
        let var = (sumsq / n - mean * mean).max(0.0);
        var.sqrt() / mean
    }

    /// Lower bin edge of the weighted `p`-th percentile; see
    /// [`RangeHistogram::head_value`].
    pub fn head_value(&self, p: f64) -> Option<u64> {
        percentile_bin_over(&self.bins, self.in_bounds, p).map(|b| b as u64 * self.bin_width)
    }

    /// Upper bin edge of the weighted `p`-th percentile; see
    /// [`RangeHistogram::tail_value`].
    pub fn tail_value(&self, p: f64) -> Option<u64> {
        percentile_bin_over(&self.bins, self.in_bounds, p).map(|b| (b as u64 + 1) * self.bin_width)
    }
}

/// Shared percentile-bin walk over integer or float counts.
///
/// Finds the first non-empty bin at which the cumulative count reaches
/// `p`% of `total`. Returns `None` when `total` is zero.
fn percentile_bin_over<C: Copy + Into<f64>>(bins: &[C], total: f64, p: f64) -> Option<usize> {
    if total <= 0.0 {
        return None;
    }
    let p = p.clamp(0.0, 100.0);
    let target = p / 100.0 * total;
    let mut cum = 0.0;
    let mut last_nonempty = None;
    for (i, &c) in bins.iter().enumerate() {
        let c: f64 = c.into();
        if c > 0.0 {
            cum += c;
            last_nonempty = Some(i);
            if cum >= target {
                return Some(i);
            }
        }
    }
    // Float round-off can leave `cum` a hair short of `target`; the
    // percentile then belongs to the last non-empty bin.
    last_nonempty
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_bounds() {
        let mut h = RangeHistogram::new(10, 60);
        assert_eq!(h.record(0), Recorded::InBounds { bin: 0 });
        assert_eq!(h.record(59), Recorded::InBounds { bin: 0 });
        assert_eq!(h.record(60), Recorded::InBounds { bin: 1 });
        assert_eq!(h.record(599), Recorded::InBounds { bin: 9 });
        assert_eq!(h.record(600), Recorded::OutOfBounds);
        assert_eq!(h.in_bounds_count(), 4);
        assert_eq!(h.oob_count(), 1);
        assert!((h.oob_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn production_footprint_is_960_bytes() {
        let h = RangeHistogram::new(240, 1);
        assert_eq!(h.memory_footprint_bytes(), 960);
        assert_eq!(h.range(), 240);
    }

    #[test]
    fn head_tail_rounding() {
        // All mass in bin 3 (values 3..4 with width 1).
        let mut h = RangeHistogram::new(240, 1);
        for _ in 0..100 {
            h.record(3);
        }
        // Head rounds down to the bin's lower edge, tail up to the upper.
        assert_eq!(h.head_value(5.0), Some(3));
        assert_eq!(h.tail_value(99.0), Some(4));
    }

    #[test]
    fn head_zero_percentile_hits_first_nonempty_bin() {
        let mut h = RangeHistogram::new(16, 1);
        h.record(7);
        h.record(9);
        assert_eq!(h.head_value(0.0), Some(7));
        assert_eq!(h.tail_value(100.0), Some(10));
    }

    #[test]
    fn percentiles_walk_cumulative_mass() {
        let mut h = RangeHistogram::new(100, 1);
        // 90 values in bin 10, 10 values in bin 50.
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..10 {
            h.record(50);
        }
        assert_eq!(h.head_value(5.0), Some(10));
        assert_eq!(h.tail_value(90.0), Some(11)); // 90% of mass is in bin 10
        assert_eq!(h.tail_value(99.0), Some(51));
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = RangeHistogram::new(8, 1);
        assert_eq!(h.head_value(5.0), None);
        assert_eq!(h.tail_value(99.0), None);
        assert!(h.is_empty());
        assert_eq!(h.bin_count_cv(), 0.0);
    }

    #[test]
    fn oob_only_histogram_has_no_percentiles() {
        let mut h = RangeHistogram::new(8, 1);
        h.record(100);
        assert!(!h.is_empty());
        assert_eq!(h.head_value(50.0), None);
        assert_eq!(h.oob_fraction(), 1.0);
    }

    #[test]
    fn cv_concentrated_vs_flat() {
        let mut concentrated = RangeHistogram::new(10, 1);
        for _ in 0..100 {
            concentrated.record(4);
        }
        // One bin holds everything: CV = sqrt(n-1) = 3.
        assert!((concentrated.bin_count_cv() - 3.0).abs() < 1e-9);

        let mut flat = RangeHistogram::new(10, 1);
        for v in 0..10 {
            flat.record(v);
        }
        assert!(flat.bin_count_cv().abs() < 1e-9);
    }

    #[test]
    fn cv_incremental_matches_recomputed() {
        let mut h = RangeHistogram::new(32, 1);
        let values = [0u64, 5, 5, 5, 9, 31, 31, 2, 2, 2, 2, 17];
        for &v in &values {
            h.record(v);
        }
        let n = h.num_bins() as f64;
        let mean = h.in_bounds_count() as f64 / n;
        let var = h
            .bins()
            .iter()
            .map(|&c| (c as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        let expect = var.sqrt() / mean;
        assert!((h.bin_count_cv() - expect).abs() < 1e-9);
    }

    #[test]
    fn from_parts_round_trips() {
        let mut h = RangeHistogram::new(32, 2);
        for v in [0u64, 3, 3, 17, 63, 64, 200] {
            h.record(v);
        }
        let rebuilt = RangeHistogram::from_parts(h.bin_width(), h.bins().to_vec(), h.oob_count());
        assert_eq!(rebuilt, h);
        assert_eq!(rebuilt.bin_count_cv(), h.bin_count_cv());
        assert_eq!(rebuilt.head_value(5.0), h.head_value(5.0));
        assert_eq!(rebuilt.tail_value(99.0), h.tail_value(99.0));
    }

    #[test]
    fn reset_clears_everything() {
        let mut h = RangeHistogram::new(4, 1);
        h.record(1);
        h.record(100);
        h.reset();
        assert!(h.is_empty());
        assert_eq!(h.bins(), &[0, 0, 0, 0]);
        assert_eq!(h.bin_count_cv(), 0.0);
    }

    #[test]
    fn merge_adds_counts_and_rebuilds_cv() {
        let mut a = RangeHistogram::new(8, 1);
        let mut b = RangeHistogram::new(8, 1);
        a.record(1);
        a.record(20); // OOB
        b.record(1);
        b.record(3);
        a.merge(&b);
        assert_eq!(a.bin_count(1), 2);
        assert_eq!(a.bin_count(3), 1);
        assert_eq!(a.in_bounds_count(), 3);
        assert_eq!(a.oob_count(), 1);

        // CV must equal a freshly built histogram with the same content.
        let mut fresh = RangeHistogram::new(8, 1);
        fresh.record(1);
        fresh.record(1);
        fresh.record(3);
        assert!((a.bin_count_cv() - fresh.bin_count_cv()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bin width mismatch")]
    fn merge_rejects_mismatched_geometry() {
        let mut a = RangeHistogram::new(8, 1);
        let b = RangeHistogram::new(8, 2);
        a.merge(&b);
    }

    #[test]
    fn weighted_bins_aggregate_recency() {
        let mut day1 = RangeHistogram::new(16, 1);
        let mut day2 = RangeHistogram::new(16, 1);
        for _ in 0..10 {
            day1.record(2);
        }
        for _ in 0..10 {
            day2.record(8);
        }
        let mut agg = WeightedBins::new(16, 1);
        agg.add_scaled(&day1, 0.25);
        agg.add_scaled(&day2, 1.0);
        // Recent day dominates: the median sits in day2's bin.
        let head = agg.head_value(50.0).unwrap();
        assert_eq!(head, 8);
        assert!((agg.in_bounds_weight() - 12.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_bins_empty() {
        let agg = WeightedBins::new(4, 1);
        assert!(agg.is_empty());
        assert_eq!(agg.head_value(50.0), None);
        assert_eq!(agg.oob_fraction(), 0.0);
    }

    #[test]
    fn weighted_bins_match_unweighted_when_weight_one() {
        let mut h = RangeHistogram::new(32, 1);
        for v in [1u64, 1, 5, 9, 9, 9, 30] {
            h.record(v);
        }
        let mut agg = WeightedBins::new(32, 1);
        agg.add_scaled(&h, 1.0);
        for p in [0.0, 5.0, 50.0, 99.0, 100.0] {
            assert_eq!(agg.head_value(p), h.head_value(p), "head at {p}");
            assert_eq!(agg.tail_value(p), h.tail_value(p), "tail at {p}");
        }
        assert!((agg.bin_count_cv() - h.bin_count_cv()).abs() < 1e-12);
    }
}
