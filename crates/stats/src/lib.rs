//! Statistics substrate for the Serverless-in-the-Wild reproduction.
//!
//! The paper (Shahrad et al., USENIX ATC 2020) leans on a small set of
//! statistical machinery that this crate provides from scratch:
//!
//! * **Online moments** ([`online::Welford`]) — the paper tracks the
//!   coefficient of variation (CV) of histogram bin counts "using Welford's
//!   online algorithm" (§4.2) and characterizes IAT variability through CVs
//!   (§3.3, Figure 6).
//! * **Weighted percentiles** ([`percentile::WeightedSamples`]) — §3.1
//!   reconstructs execution-time and memory distributions from
//!   `(average, count)` samples by weighting each average by its count.
//! * **Range-limited histograms** ([`histogram::RangeHistogram`]) — the
//!   centerpiece data structure of the hybrid policy: 1-minute bins over a
//!   bounded range with out-of-bounds tracking (§4.2, §6).
//! * **Empirical CDFs** ([`ecdf::Ecdf`]) — every characterization figure is
//!   a CDF.
//! * **Distributions** ([`distributions`]) — the published fits: log-normal
//!   execution times (Figure 7), Burr XII memory (Figure 8), plus the
//!   samplers the synthetic trace generator needs.
//! * **Goodness-of-fit and series helpers** ([`fit`]).
//! * **Report formatting** ([`report`]) — aligned text tables and CSV
//!   emission shared by the figure-regeneration harness.
//!
//! Everything is deterministic given a caller-provided RNG; no global state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributions;
pub mod ecdf;
pub mod fit;
pub mod histogram;
pub mod online;
pub mod percentile;
pub mod quantile_stream;
pub mod report;

pub use distributions::{Burr, ContinuousDist, Exponential, LogNormal, Normal, Pareto, Uniform};
pub use ecdf::Ecdf;
pub use histogram::{RangeHistogram, Recorded};
pub use online::{MinMaxMean, Welford};
pub use percentile::{percentile_sorted, WeightedSamples};
pub use quantile_stream::{P2Quantile, StreamingPercentiles};
