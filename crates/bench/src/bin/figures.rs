//! Regenerates every table and figure of the paper's characterization
//! (Figures 1–8) and evaluation (Figures 14–20), printing the series the
//! paper plots and writing CSV artifacts under `results/`.
//!
//! Usage:
//!
//! ```text
//! figures [--apps N] [--char-apps N] [--seed S] [--threads T]
//!         [--cap EVENTS_PER_DAY] [--out DIR]
//!         <fig1|fig2|fig3|fig4|fig5|fig6|fig7|fig8|
//!          fig14|fig15|fig16|fig17|fig18|fig19|fig20|
//!          ablation-bins|ablation-minsamples|ablation-oob|all>...
//! ```

#![forbid(unsafe_code)]

use std::collections::HashMap;

use sitw_bench::{
    cdf_rows, cold_summary_row, labels, print_figure, run_full_grid, write_series, HarnessConfig,
    CUTOFFS, CV_THRESHOLDS, FIXED_MINUTES, HYBRID_RANGE_HOURS,
};
use sitw_core::{AppPolicy, FixedKeepAlive, HybridConfig, PolicyFactory};
use sitw_platform::{run_platform, PlatformConfig};
use sitw_sim::{run_sweep, PolicyAggregate, PolicySpec};
use sitw_stats::distributions::{Burr, ContinuousDist, LogNormal};
use sitw_stats::report::{fnum, TextTable};
use sitw_stats::Ecdf;
use sitw_trace::analysis::{self, StreamingCharacterization};
use sitw_trace::subset::{filter_by_weighted_exec, mid_popularity_subset, paper_mid_band};
use sitw_trace::{for_each_app, generate_trace, Population, TraceConfig, HOUR_MS};

fn main() {
    let (cfg, figs) = parse_args();
    if figs.is_empty() {
        eprintln!("no figures requested; try `figures all`");
        std::process::exit(2);
    }

    let needs_char = figs.iter().any(|f| {
        matches!(
            f.as_str(),
            "fig1" | "fig2" | "fig3" | "fig4" | "fig5" | "fig6" | "fig7" | "fig8"
        )
    });
    let needs_grid = figs.iter().any(|f| {
        matches!(
            f.as_str(),
            "fig14" | "fig15" | "fig16" | "fig17" | "fig18" | "fig19"
        )
    });

    let char_assets = needs_char.then(|| {
        eprintln!(
            "[figures] building characterization population ({} apps) and 2-week trace…",
            cfg.char_apps
        );
        CharAssets::build(&cfg)
    });
    let grid = if needs_grid {
        eprintln!(
            "[figures] running policy grid over {} apps × 1 week ({} threads)…",
            cfg.sim_apps, cfg.threads
        );
        run_full_grid(&cfg)
    } else {
        HashMap::new()
    };

    for fig in &figs {
        match fig.as_str() {
            "fig1" => fig1(&cfg, char_assets.as_ref().unwrap()),
            "fig2" => fig2(&cfg, char_assets.as_ref().unwrap()),
            "fig3" => fig3(&cfg, char_assets.as_ref().unwrap()),
            "fig4" => fig4(&cfg, char_assets.as_ref().unwrap()),
            "fig5" => fig5(&cfg, char_assets.as_ref().unwrap()),
            "fig6" => fig6(&cfg, char_assets.as_ref().unwrap()),
            "fig7" => fig7(&cfg, char_assets.as_ref().unwrap()),
            "fig8" => fig8(&cfg, char_assets.as_ref().unwrap()),
            "fig12" => fig12(&cfg),
            "fig14" => fig14(&cfg, &grid),
            "fig15" => fig15(&cfg, &grid),
            "fig16" => fig16(&cfg, &grid),
            "fig17" => fig17(&cfg, &grid),
            "fig18" => fig18(&cfg, &grid),
            "fig19" => fig19(&cfg, &grid),
            "fig20" => fig20(&cfg),
            "ablation-bins" => ablation_bins(&cfg),
            "ablation-minsamples" => ablation_minsamples(&cfg),
            "ablation-oob" => ablation_oob(&cfg),
            other => {
                eprintln!("unknown figure id {other:?}");
                std::process::exit(2);
            }
        }
    }
}

fn parse_args() -> (HarnessConfig, Vec<String>) {
    let mut cfg = HarnessConfig::default();
    let mut figs = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut next = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--apps" => cfg.sim_apps = next("--apps").parse().expect("--apps"),
            "--char-apps" => cfg.char_apps = next("--char-apps").parse().expect("--char-apps"),
            "--seed" => cfg.seed = next("--seed").parse().expect("--seed"),
            "--threads" => cfg.threads = next("--threads").parse().expect("--threads"),
            "--cap" => cfg.sim_cap_per_day = next("--cap").parse().expect("--cap"),
            "--out" => cfg.out_dir = next("--out").into(),
            "all" => {
                figs.extend(
                    [
                        "fig1",
                        "fig2",
                        "fig3",
                        "fig4",
                        "fig5",
                        "fig6",
                        "fig7",
                        "fig8",
                        "fig12",
                        "fig14",
                        "fig15",
                        "fig16",
                        "fig17",
                        "fig18",
                        "fig19",
                        "fig20",
                        "ablation-bins",
                        "ablation-minsamples",
                        "ablation-oob",
                    ]
                    .iter()
                    .map(|s| s.to_string()),
                );
            }
            other => figs.push(other.to_owned()),
        }
    }
    figs.dedup();
    (cfg, figs)
}

/// Characterization inputs: a population plus streamed trace statistics.
struct CharAssets {
    population: Population,
    streamed: StreamingCharacterization,
}

impl CharAssets {
    fn build(cfg: &HarnessConfig) -> Self {
        let population = cfg.char_population();
        let tcfg = cfg.char_trace_config();
        let mut streamed = StreamingCharacterization::new(tcfg.horizon_ms);
        for_each_app(&population, &tcfg, |p, ev| streamed.add(p, &ev));
        Self {
            population,
            streamed,
        }
    }
}

// ---------------------------------------------------------------------
// Characterization figures (§3).
// ---------------------------------------------------------------------

fn fig1(cfg: &HarnessConfig, assets: &CharAssets) {
    let f = analysis::functions_per_app(&assets.population);
    let mut t = TextTable::new(vec![
        "functions<=",
        "% apps",
        "% invocations",
        "% functions",
    ]);
    let probe = [1.0, 3.0, 6.0, 10.0, 100.0];
    let lookup = |series: &[(f64, f64)], x: f64| {
        series
            .iter()
            .take_while(|(v, _)| *v <= x)
            .last()
            .map(|(_, f)| 100.0 * f)
            .unwrap_or(0.0)
    };
    for x in probe {
        t.row(vec![
            fnum(x, 0),
            fnum(lookup(&f.apps_cdf, x), 1),
            fnum(lookup(&f.invocations_cdf, x), 1),
            fnum(lookup(&f.functions_cdf, x), 1),
        ]);
    }
    print_figure(
        "Figure 1",
        "functions per app (paper: 54% of apps have 1 function; 50% of \
         invocations from apps with <=3; 50% of functions in apps with <=6)",
        &t,
    );
    let mut rows = Vec::new();
    for (label, series) in [
        ("apps", &f.apps_cdf),
        ("invocations", &f.invocations_cdf),
        ("functions", &f.functions_cdf),
    ] {
        for (x, y) in series {
            rows.push(vec![label.to_owned(), fnum(*x, 0), fnum(*y, 6)]);
        }
    }
    write_series(
        cfg,
        "fig1_functions_per_app",
        &["series", "x", "cdf"],
        &rows,
    )
    .unwrap();
}

fn fig2(cfg: &HarnessConfig, assets: &CharAssets) {
    let rows = analysis::trigger_shares(&assets.population);
    // Paper values (Figure 2) for side-by-side comparison.
    let paper: HashMap<&str, (f64, f64)> = [
        ("HTTP", (55.0, 35.9)),
        ("Queue", (15.2, 33.5)),
        ("Event", (2.2, 24.7)),
        ("Orchestration", (6.9, 2.3)),
        ("Timer", (15.6, 2.0)),
        ("Storage", (2.8, 0.7)),
        ("Others", (2.2, 1.0)),
    ]
    .into_iter()
    .collect();
    let mut t = TextTable::new(vec![
        "Trigger",
        "%Functions",
        "%Invocations",
        "paper %F",
        "paper %I",
    ]);
    let mut csv = Vec::new();
    for r in &rows {
        let (pf, pi) = paper[r.trigger.name()];
        t.row(vec![
            r.trigger.name().to_owned(),
            fnum(r.pct_functions, 1),
            fnum(r.pct_invocations, 1),
            fnum(pf, 1),
            fnum(pi, 1),
        ]);
        csv.push(vec![
            r.trigger.name().to_owned(),
            fnum(r.pct_functions, 3),
            fnum(r.pct_invocations, 3),
        ]);
    }
    print_figure("Figure 2", "functions and invocations per trigger type", &t);
    write_series(
        cfg,
        "fig2_triggers",
        &["trigger", "pct_functions", "pct_invocations"],
        &csv,
    )
    .unwrap();
}

// The paper's "Others: 6.28%" happens to look like TAU to clippy.
#[allow(clippy::approx_constant)]
fn fig3(cfg: &HarnessConfig, assets: &CharAssets) {
    let marginals = analysis::apps_with_trigger(&assets.population);
    let mut t = TextTable::new(vec!["Trigger", "% apps (>=1)", "paper"]);
    let paper: HashMap<&str, f64> = [
        ("HTTP", 64.07),
        ("Timer", 29.15),
        ("Queue", 23.70),
        ("Storage", 6.83),
        ("Event", 5.79),
        ("Orchestration", 3.09),
        ("Others", 6.28),
    ]
    .into_iter()
    .collect();
    for (trigger, pct) in &marginals {
        t.row(vec![
            trigger.name().to_owned(),
            fnum(*pct, 2),
            fnum(paper[trigger.name()], 2),
        ]);
    }
    print_figure("Figure 3(a)", "apps with at least one trigger of type", &t);

    let combos = analysis::combo_shares(&assets.population);
    let mut t = TextTable::new(vec!["Types", "% apps", "cumulative %"]);
    let mut csv = Vec::new();
    for (key, pct, cum) in combos.iter().take(12) {
        t.row(vec![key.clone(), fnum(*pct, 2), fnum(*cum, 2)]);
    }
    for (key, pct, cum) in &combos {
        csv.push(vec![key.clone(), fnum(*pct, 4), fnum(*cum, 4)]);
    }
    print_figure(
        "Figure 3(b)",
        "popular trigger combinations (paper: H 43.27, T 13.36, Q 9.47, …)",
        &t,
    );
    write_series(cfg, "fig3_combos", &["combo", "pct_apps", "cum_pct"], &csv).unwrap();
}

fn fig4(cfg: &HarnessConfig, assets: &CharAssets) {
    let hourly = assets.streamed.hourly_normalized();
    let baseline = analysis::baseline_fraction(&hourly, 0.45);
    let min = hourly.iter().cloned().fold(f64::MAX, f64::min);
    let mut t = TextTable::new(vec!["metric", "value"]);
    t.row(vec!["hours".into(), format!("{}", hourly.len())]);
    t.row(vec!["peak (normalized)".into(), "1.000".into()]);
    t.row(vec!["min / peak".into(), fnum(min, 3)]);
    t.row(vec![
        "fraction of hours >= 0.45×peak".into(),
        fnum(baseline, 3),
    ]);
    print_figure(
        "Figure 4",
        "hourly invocations normalized to peak (paper: diurnal + weekly \
         pattern, ~50% flat baseline)",
        &t,
    );
    let rows: Vec<Vec<String>> = hourly
        .iter()
        .enumerate()
        .map(|(h, v)| vec![format!("{h}"), fnum(*v, 5)])
        .collect();
    write_series(cfg, "fig4_hourly_load", &["hour", "relative_load"], &rows).unwrap();
}

fn fig5(cfg: &HarnessConfig, assets: &CharAssets) {
    let (apps, funcs) = assets.streamed.daily_rate_ecdfs();
    let mut t = TextTable::new(vec!["series", "q", "invocations/day"]);
    for (name, e) in [("apps", &apps), ("functions", &funcs)] {
        for q in [0.25, 0.45, 0.50, 0.81, 0.95, 0.99] {
            t.row(vec![name.into(), fnum(q, 2), fnum(e.quantile(q), 2)]);
        }
    }
    print_figure(
        "Figure 5(a)",
        "daily invocation rates (paper anchors: 45% of apps <= 1/hour \
         (24/day), 81% <= 1/minute (1440/day); 8 orders of magnitude)",
        &t,
    );
    let mut rows = cdf_rows("apps", &apps, 400);
    rows.extend(cdf_rows("functions", &funcs, 400));
    write_series(cfg, "fig5a_daily_rates", &["series", "rate", "cdf"], &rows).unwrap();

    // 5(b): popularity concentration from expected (uncapped) rates.
    let conc = analysis::popularity_concentration_expected(&assets.population);
    let mut t = TextTable::new(vec!["top % of apps", "% of invocations"]);
    for frac in [0.001, 0.01, 0.1, 0.186, 0.5] {
        let share = conc
            .iter()
            .find(|(f, _)| *f >= frac)
            .map(|(_, s)| 100.0 * s)
            .unwrap_or(100.0);
        t.row(vec![fnum(100.0 * frac, 1), fnum(share, 2)]);
    }
    print_figure(
        "Figure 5(b)",
        "invocation concentration (paper: top 18.6% of apps = 99.6% of \
         invocations)",
        &t,
    );
    let rows: Vec<Vec<String>> = conc
        .iter()
        .step_by((conc.len() / 500).max(1))
        .map(|(f, s)| vec![fnum(*f, 5), fnum(*s, 6)])
        .collect();
    write_series(
        cfg,
        "fig5b_concentration",
        &["top_fraction_of_apps", "invocation_share"],
        &rows,
    )
    .unwrap();
}

fn fig6(cfg: &HarnessConfig, assets: &CharAssets) {
    let stats = assets.streamed.iat_cv();
    let mut t = TextTable::new(vec!["subset", "apps", "CV=0 (<0.05)", "CV<=1", "CV>1"]);
    let mut rows = Vec::new();
    for (name, xs) in [
        ("all", &stats.all),
        ("only-timers", &stats.only_timers),
        (">=1 timer", &stats.at_least_one_timer),
        ("no timers", &stats.no_timers),
    ] {
        if xs.is_empty() {
            continue;
        }
        let n = xs.len() as f64;
        let z = xs.iter().filter(|&&c| c < 0.05).count() as f64 / n;
        let le1 = xs.iter().filter(|&&c| c <= 1.0).count() as f64 / n;
        t.row(vec![
            name.into(),
            format!("{}", xs.len()),
            fnum(100.0 * z, 1),
            fnum(100.0 * le1, 1),
            fnum(100.0 * (1.0 - le1), 1),
        ]);
        let e = Ecdf::new(xs.clone());
        rows.extend(cdf_rows(name, &e, 200));
    }
    print_figure(
        "Figure 6",
        "IAT coefficient of variation (paper: ~50% of only-timer apps at \
         CV 0; ~20% of all apps; ~40% of apps above CV 1)",
        &t,
    );
    write_series(cfg, "fig6_iat_cv", &["subset", "cv", "cdf"], &rows).unwrap();
}

fn fig7(cfg: &HarnessConfig, assets: &CharAssets) {
    let (min, avg, max) = analysis::exec_time_ecdfs(&assets.population);
    let fit = LogNormal::execution_time_fit();
    let mut t = TextTable::new(vec![
        "percentile",
        "min (s)",
        "avg (s)",
        "max (s)",
        "fit (s)",
    ]);
    for q in [0.10, 0.25, 0.50, 0.75, 0.90, 0.96, 0.99] {
        t.row(vec![
            fnum(100.0 * q, 0),
            fnum(min.quantile(q), 3),
            fnum(avg.quantile(q), 3),
            fnum(max.quantile(q), 3),
            fnum(fit.quantile(q), 3),
        ]);
    }
    print_figure(
        "Figure 7",
        "execution times (paper: 50% of functions average < 1 s; 96% \
         average < 60 s; log-normal fit mu=-0.38 sigma=2.36)",
        &t,
    );
    let mut rows = cdf_rows("min", &min, 300);
    rows.extend(cdf_rows("avg", &avg, 300));
    rows.extend(cdf_rows("max", &max, 300));
    let grid = sitw_stats::ecdf::log_grid(1e-3, 3600.0, 200);
    rows.extend(
        grid.iter()
            .map(|&x| vec!["lognormal-fit".to_owned(), fnum(x, 4), fnum(fit.cdf(x), 6)]),
    );
    write_series(cfg, "fig7_exec_times", &["series", "seconds", "cdf"], &rows).unwrap();
}

fn fig8(cfg: &HarnessConfig, assets: &CharAssets) {
    let (p1, avg, max) = analysis::memory_ecdfs(&assets.population);
    let fit = Burr::memory_fit();
    let mut t = TextTable::new(vec![
        "percentile",
        "pct1 (MB)",
        "avg (MB)",
        "max (MB)",
        "Burr fit (MB)",
    ]);
    for q in [0.10, 0.25, 0.50, 0.75, 0.90, 0.99] {
        t.row(vec![
            fnum(100.0 * q, 0),
            fnum(p1.quantile(q), 1),
            fnum(avg.quantile(q), 1),
            fnum(max.quantile(q), 1),
            fnum(fit.quantile(q), 1),
        ]);
    }
    print_figure(
        "Figure 8",
        "allocated memory per app (paper: 50% of apps <= 170 MB; 90% never \
         above 400 MB; Burr fit c=11.652 k=0.221 lambda=107.083)",
        &t,
    );
    let mut rows = cdf_rows("pct1", &p1, 300);
    rows.extend(cdf_rows("avg", &avg, 300));
    rows.extend(cdf_rows("max", &max, 300));
    write_series(cfg, "fig8_memory", &["series", "mb", "cdf"], &rows).unwrap();
}

// ---------------------------------------------------------------------
// Figure 12: nine normalized idle-time distributions over a week.
// ---------------------------------------------------------------------

fn fig12(cfg: &HarnessConfig) {
    use sitw_stats::RangeHistogram;
    use sitw_trace::{app_invocations, Archetype};

    let population = cfg.sim_population();
    let tcfg = cfg.sim_trace_config();

    // Pick nine applications covering the paper's three columns: sharp
    // head+tail (timers/steady), head at zero (sub-minute chatter), and
    // widely spread (no useful cutoffs).
    let mut picks: Vec<(&str, usize)> = Vec::new();
    let take = |label: &'static str,
                pred: &dyn Fn(&sitw_trace::AppProfile) -> bool,
                picks: &mut Vec<(&str, usize)>| {
        for (i, app) in population.apps.iter().enumerate() {
            if picks.iter().any(|&(_, j)| j == i) {
                continue;
            }
            if pred(app) {
                picks.push((label, i));
                return;
            }
        }
    };
    let timer_mid = |a: &sitw_trace::AppProfile| {
        matches!(&a.archetype, Archetype::Timers(t)
            if t.len() == 1 && (5.0..=60.0).contains(&(t[0].period_ms as f64 / 60_000.0)))
    };
    let chatter = |a: &sitw_trace::AppProfile| {
        matches!(a.archetype, Archetype::Bursty { intra_gap_ms, .. } if intra_gap_ms < 30_000.0)
            && a.daily_rate > 200.0
    };
    let spread = |a: &sitw_trace::AppProfile| {
        matches!(a.archetype, Archetype::Poisson) && a.daily_rate > 10.0 && a.daily_rate < 200.0
    };
    for _ in 0..3 {
        take("sharp", &timer_mid, &mut picks);
        take("head-at-zero", &chatter, &mut picks);
        take("spread", &spread, &mut picks);
    }

    let mut t = TextTable::new(vec![
        "panel",
        "kind",
        "app",
        "ITs",
        "OOB %",
        "mode bin (min)",
        "bin-count CV",
    ]);
    let mut rows = Vec::new();
    for (panel, (kind, idx)) in picks.iter().enumerate() {
        let app = &population.apps[*idx];
        let events = app_invocations(app, &tcfg);
        let mut h = RangeHistogram::new(240, 1);
        for w in events.windows(2) {
            h.record((w[1] - w[0]) / 60_000);
        }
        let mode = h
            .bins()
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap_or(0);
        t.row(vec![
            format!("{}", panel + 1),
            kind.to_string(),
            app.id.to_string(),
            format!("{}", h.in_bounds_count()),
            fnum(100.0 * h.oob_fraction(), 1),
            format!("{mode}"),
            fnum(h.bin_count_cv(), 2),
        ]);
        // Normalized per-bin frequencies for the CSV artifact.
        let peak = h.bins().iter().copied().max().unwrap_or(1).max(1) as f64;
        for (bin, &c) in h.bins().iter().enumerate() {
            if c > 0 {
                rows.push(vec![
                    format!("{}", panel + 1),
                    format!("{bin}"),
                    fnum(c as f64 / peak, 4),
                ]);
            }
        }
    }
    print_figure(
        "Figure 12",
        "nine normalized IT distributions over a week (paper: left column \
         sharp head+tail; middle column head at bin 0; right column spread \
         — the histogram-unfriendly case)",
        &t,
    );
    write_series(
        cfg,
        "fig12_it_distributions",
        &["panel", "it_minutes", "normalized_frequency"],
        &rows,
    )
    .unwrap();
}

// ---------------------------------------------------------------------
// Evaluation figures (§5.2).
// ---------------------------------------------------------------------

fn fig14(cfg: &HarnessConfig, grid: &HashMap<String, PolicyAggregate>) {
    let mut t = TextTable::new(vec!["policy", "p25", "p50", "p75", "p90", "cold starts"]);
    let mut rows = Vec::new();
    let mut order: Vec<String> = vec![labels::no_unloading()];
    order.extend(FIXED_MINUTES.iter().rev().map(|&m| labels::fixed(m)));
    for label in order {
        let agg = &grid[&label];
        t.row(cold_summary_row(agg));
        rows.extend(cdf_rows(&agg.label, &agg.cold_cdf(), 200));
    }
    print_figure(
        "Figure 14",
        "per-app cold-start % under fixed keep-alive (paper: p75 is 50.3% \
         at 10 min, 25% at 1 h; ~3.5% of apps always cold even with \
         no-unloading)",
        &t,
    );
    write_series(
        cfg,
        "fig14_fixed_keepalive",
        &["policy", "cold_pct", "cdf"],
        &rows,
    )
    .unwrap();
}

fn fig15(cfg: &HarnessConfig, grid: &HashMap<String, PolicyAggregate>) {
    let baseline = &grid[&labels::fixed(10)];
    let mut t = TextTable::new(vec!["policy", "p75 cold %", "normalized waste %"]);
    let mut rows = Vec::new();
    {
        let mut emit = |label: String| {
            let agg = &grid[&label];
            let p75 = agg.cold_pct_percentile(75.0);
            let waste = agg.normalized_waste_pct(baseline);
            t.row(vec![label.clone(), fnum(p75, 2), fnum(waste, 2)]);
            rows.push(vec![label, fnum(p75, 4), fnum(waste, 4)]);
        };
        for minutes in FIXED_MINUTES {
            emit(labels::fixed(minutes));
        }
        for hours in HYBRID_RANGE_HOURS {
            emit(labels::hybrid(hours));
        }
    }
    print_figure(
        "Figure 15",
        "cold-start/memory trade-off (paper: fixed-10min has ~2.5× the \
         cold starts of hybrid-4h at equal memory; fixed-2h needs ~1.5× \
         the memory at equal cold starts)",
        &t,
    );
    write_series(
        cfg,
        "fig15_pareto",
        &["policy", "p75_cold_pct", "normalized_waste_pct"],
        &rows,
    )
    .unwrap();
}

fn fig16(cfg: &HarnessConfig, grid: &HashMap<String, PolicyAggregate>) {
    let baseline = &grid[&labels::fixed(10)];
    let mut t = TextTable::new(vec!["cutoffs", "p75 cold %", "normalized waste %"]);
    let mut rows = Vec::new();
    for (head, tail) in CUTOFFS {
        let label = labels::hybrid_cutoff(head, tail);
        let agg = &grid[&label];
        t.row(vec![
            format!("[{head},{tail}]"),
            fnum(agg.cold_pct_percentile(75.0), 2),
            fnum(agg.normalized_waste_pct(baseline), 2),
        ]);
        rows.extend(cdf_rows(&label, &agg.cold_cdf(), 200));
    }
    print_figure(
        "Figure 16",
        "histogram cutoff sensitivity (paper: [5,99] cuts wasted memory \
         ~15% vs [0,100] with no noticeable cold-start degradation)",
        &t,
    );
    write_series(cfg, "fig16_cutoffs", &["policy", "cold_pct", "cdf"], &rows).unwrap();
}

fn fig17(cfg: &HarnessConfig, grid: &HashMap<String, PolicyAggregate>) {
    let baseline = &grid[&labels::fixed(10)];
    let variants = [
        ("no PW, KA:99th", labels::hybrid_nopw()),
        ("PW:1st, KA:99th", labels::hybrid_cutoff(1.0, 99.0)),
        ("PW:5th, KA:99th", labels::hybrid_cutoff(5.0, 99.0)),
    ];
    let mut t = TextTable::new(vec!["variant", "p75 cold %", "normalized waste %"]);
    let mut rows = Vec::new();
    for (name, label) in variants {
        let agg = &grid[&label];
        t.row(vec![
            name.to_owned(),
            fnum(agg.cold_pct_percentile(75.0), 2),
            fnum(agg.normalized_waste_pct(baseline), 2),
        ]);
        rows.extend(cdf_rows(name, &agg.cold_cdf(), 200));
    }
    print_figure(
        "Figure 17",
        "pre-warming impact (paper: unload+pre-warm cuts wasted memory \
         significantly at a slight cold-start cost)",
        &t,
    );
    write_series(
        cfg,
        "fig17_prewarming",
        &["variant", "cold_pct", "cdf"],
        &rows,
    )
    .unwrap();
}

fn fig18(cfg: &HarnessConfig, grid: &HashMap<String, PolicyAggregate>) {
    let baseline = &grid[&labels::fixed(10)];
    let mut t = TextTable::new(vec!["CV threshold", "p75 cold %", "normalized waste %"]);
    let mut rows = Vec::new();
    for cv in CV_THRESHOLDS {
        let label = labels::hybrid_cv(cv);
        let agg = &grid[&label];
        t.row(vec![
            fnum(cv, 0),
            fnum(agg.cold_pct_percentile(75.0), 2),
            fnum(agg.normalized_waste_pct(baseline), 2),
        ]);
        rows.extend(cdf_rows(&label, &agg.cold_cdf(), 200));
    }
    print_figure(
        "Figure 18",
        "representativeness CV threshold (paper: clear gains up to CV=2, \
         then diminishing cold-start returns at higher memory cost)",
        &t,
    );
    write_series(
        cfg,
        "fig18_cv_threshold",
        &["policy", "cold_pct", "cdf"],
        &rows,
    )
    .unwrap();
}

fn fig19(cfg: &HarnessConfig, grid: &HashMap<String, PolicyAggregate>) {
    let rows_def = [
        ("fixed (4h)", labels::fixed(240)),
        ("hybrid w/o ARIMA", labels::hybrid_noarima()),
        ("hybrid (full)", labels::hybrid(4)),
    ];
    let mut t = TextTable::new(vec![
        "policy",
        "% always-cold",
        "% always-cold (excl. 1-invocation)",
    ]);
    let mut csv = Vec::new();
    for (name, label) in rows_def {
        let agg = &grid[&label];
        t.row(vec![
            name.to_owned(),
            fnum(agg.always_cold_pct(), 2),
            fnum(agg.always_cold_pct_excluding_single(), 2),
        ]);
        csv.push(vec![
            name.to_owned(),
            fnum(agg.always_cold_pct(), 4),
            fnum(agg.always_cold_pct_excluding_single(), 4),
        ]);
    }
    let hybrid = &grid[&labels::hybrid(4)];
    let single_pct = if hybrid.apps == 0 {
        0.0
    } else {
        100.0 * hybrid.single_invocation_apps as f64 / hybrid.apps as f64
    };
    t.row(vec![
        "(single-invocation apps)".to_owned(),
        fnum(single_pct, 2),
        "-".to_owned(),
    ]);
    print_figure(
        "Figure 19",
        "always-cold applications (paper: ARIMA halves the share, 10.5% → \
         5.2%; excluding single-invocation apps, 6.9% → 1.7%; ARIMA served \
         0.64% of invocations across 9.3% of apps)",
        &t,
    );
    let mut t2 = TextTable::new(vec!["metric", "value", "paper"]);
    t2.row(vec![
        "% invocations via ARIMA".into(),
        fnum(hybrid.arima_invocation_share_pct(), 3),
        "0.64".into(),
    ]);
    t2.row(vec![
        "% apps that used ARIMA".into(),
        fnum(hybrid.arima_app_share_pct(), 2),
        "9.3".into(),
    ]);
    print_figure("Figure 19 (cont.)", "ARIMA usage", &t2);
    write_series(
        cfg,
        "fig19_always_cold",
        &["policy", "always_cold_pct", "always_cold_excl_single_pct"],
        &csv,
    )
    .unwrap();
}

// ---------------------------------------------------------------------
// Figure 20: OpenWhisk-model experiment (§5.3).
// ---------------------------------------------------------------------

fn fig20(cfg: &HarnessConfig) {
    eprintln!("[figures] fig20: building 68-app / 8-hour platform replay…");
    let population = cfg.sim_population();
    // Interactive mid-popularity applications (see EXPERIMENTS.md): the
    // paper's replay averages ~1,640 invocations/app-day with latency
    // metrics dominated by sub-second handlers.
    let interactive = filter_by_weighted_exec(&population, 2.0);
    let (lo, hi) = paper_mid_band();
    let subset = mid_popularity_subset(&interactive, 68, lo, hi, cfg.seed ^ 0x68);
    let tcfg = TraceConfig {
        horizon_ms: 8 * HOUR_MS,
        cap_per_day: cfg.sim_cap_per_day,
        seed: cfg.seed ^ 0x20,
    };
    let trace = generate_trace(&subset, &tcfg);
    let pcfg = PlatformConfig::default();

    let fixed = run_platform(&trace, &pcfg, || {
        Box::new(FixedKeepAlive::minutes(10).new_policy()) as Box<dyn AppPolicy>
    });
    let hybrid = run_platform(&trace, &pcfg, || {
        Box::new(HybridConfig::default().new_policy()) as Box<dyn AppPolicy>
    });

    let mem_reduction =
        100.0 * (1.0 - hybrid.total_idle_mb_ms() / fixed.total_idle_mb_ms().max(1e-9));
    let avg_cut = 100.0 * (1.0 - hybrid.avg_exec_ms() / fixed.avg_exec_ms().max(1e-9));
    let p99_cut =
        100.0 * (1.0 - hybrid.exec_percentile_ms(99.0) / fixed.exec_percentile_ms(99.0).max(1e-9));

    let mut t = TextTable::new(vec![
        "metric",
        "fixed-10min",
        "hybrid-4h",
        "change",
        "paper",
    ]);
    t.row(vec![
        "apps / invocations".into(),
        format!("{} / {}", subset.len(), fixed.served()),
        format!("{} / {}", subset.len(), hybrid.served()),
        "-".into(),
        "68 / 12383".into(),
    ]);
    t.row(vec![
        "cold starts".into(),
        format!("{}", fixed.cold_count()),
        format!("{}", hybrid.cold_count()),
        fnum(
            100.0 * (1.0 - hybrid.cold_count() as f64 / fixed.cold_count().max(1) as f64),
            1,
        ) + "% fewer",
        "significant reduction".into(),
    ]);
    t.row(vec![
        "idle memory (GB·min)".into(),
        fnum(fixed.total_idle_mb_ms() / 1024.0 / 60_000.0, 1),
        fnum(hybrid.total_idle_mb_ms() / 1024.0 / 60_000.0, 1),
        fnum(mem_reduction, 1) + "% less",
        "15.6% less".into(),
    ]);
    t.row(vec![
        "avg exec (ms)".into(),
        fnum(fixed.avg_exec_ms(), 1),
        fnum(hybrid.avg_exec_ms(), 1),
        fnum(avg_cut, 1) + "% faster",
        "32.5% faster".into(),
    ]);
    t.row(vec![
        "p99 exec (ms)".into(),
        fnum(fixed.exec_percentile_ms(99.0), 1),
        fnum(hybrid.exec_percentile_ms(99.0), 1),
        fnum(p99_cut, 1) + "% faster",
        "82.4% faster".into(),
    ]);
    print_figure(
        "Figure 20",
        "OpenWhisk-model replay: 68 mid-popularity apps, 8 h, 18 invokers",
        &t,
    );

    let mut rows = cdf_rows("fixed-10min", &fixed.cold_cdf(), 100);
    rows.extend(cdf_rows("hybrid-4h", &hybrid.cold_cdf(), 100));
    write_series(
        cfg,
        "fig20_openwhisk",
        &["policy", "cold_pct", "cdf"],
        &rows,
    )
    .unwrap();
}

// ---------------------------------------------------------------------
// Ablations (design choices §4.2 calls out).
// ---------------------------------------------------------------------

fn ablation_sweep(
    cfg: &HarnessConfig,
    name: &str,
    caption: &str,
    variants: Vec<(String, HybridConfig)>,
) {
    let population = cfg.sim_population();
    let tcfg = cfg.sim_trace_config();
    let mut specs = vec![PolicySpec::fixed_minutes(10)];
    specs.extend(variants.iter().map(|(_, c)| PolicySpec::Hybrid(c.clone())));
    let aggs = run_sweep(&population, &tcfg, &specs, cfg.threads);
    let baseline = aggs[0].clone();
    let mut t = TextTable::new(vec!["variant", "p75 cold %", "normalized waste %"]);
    let mut rows = Vec::new();
    for ((vname, _), agg) in variants.iter().zip(aggs.iter().skip(1)) {
        let p75 = agg.cold_pct_percentile(75.0);
        let waste = agg.normalized_waste_pct(&baseline);
        t.row(vec![vname.clone(), fnum(p75, 2), fnum(waste, 2)]);
        rows.push(vec![vname.clone(), fnum(p75, 4), fnum(waste, 4)]);
    }
    print_figure(name, caption, &t);
    write_series(
        cfg,
        &name.replace(' ', "_"),
        &["variant", "p75_cold_pct", "normalized_waste_pct"],
        &rows,
    )
    .unwrap();
}

fn ablation_bins(cfg: &HarnessConfig) {
    let variants = [1usize, 2, 5, 10, 30]
        .into_iter()
        .map(|w| {
            let c = HybridConfig {
                bin_width_minutes: w,
                ..HybridConfig::default()
            };
            (format!("bin-width-{w}min"), c)
        })
        .collect();
    ablation_sweep(
        cfg,
        "ablation-bins",
        "histogram bin width (paper fixes 1-minute bins as the metadata/\
         resolution sweet spot)",
        variants,
    );
}

fn ablation_minsamples(cfg: &HarnessConfig) {
    let variants = [1u64, 2, 5, 10, 25]
        .into_iter()
        .map(|m| {
            let c = HybridConfig {
                min_samples: m,
                ..HybridConfig::default()
            };
            (format!("min-samples-{m}"), c)
        })
        .collect();
    ablation_sweep(
        cfg,
        "ablation-minsamples",
        "minimum idle-times before trusting the histogram",
        variants,
    );
}

fn ablation_oob(cfg: &HarnessConfig) {
    let variants = [0.25f64, 0.5, 0.75, 0.9]
        .into_iter()
        .map(|th| {
            let c = HybridConfig {
                oob_threshold: th,
                ..HybridConfig::default()
            };
            (format!("oob-threshold-{th}"), c)
        })
        .collect();
    ablation_sweep(
        cfg,
        "ablation-oob",
        "out-of-bounds share that reroutes an app to the ARIMA path",
        variants,
    );
}
