//! Seeded violations for the `unsafe-confinement` rule: the crate root
//! lacks `#![forbid(unsafe_code)]` and smuggles an `unsafe` block.

pub fn peek(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) }
}
