//! The `sitw-router` daemon: one port in front of N `sitw-serve` nodes.
//!
//! The router is deliberately thin. It terminates both wire protocols
//! (JSON over HTTP and SITW-BIN, sniffed per message exactly like a
//! node), applies cluster-wide QoS admission, consults the
//! [`ClusterRing`] for placement, and forwards. It keeps **no policy
//! state**: every verdict is produced by a node, so a one-node cluster
//! answers bit-for-bit what the bare node would.
//!
//! Per client connection the router runs a single thread over a FIFO of
//! pending responses: it parses and forwards every message the client
//! has buffered, then drains the queue — reading node replies and
//! answering the client — before blocking on the socket again. Request
//! pipelining survives the extra hop as whole-burst batching (one
//! upstream flush and one client write per burst rather than a
//! syscall per request), with no cross-thread handoff on the hot path.
//! A batched SITW-BIN frame is split into at most one subframe per
//! owning node; the drain reassembles the per-node reply frames into
//! one client frame in request order, splicing in locally generated
//! `Throttled` records for the invocations admission rejected.
//!
//! Failure is typed, never silent: a dead node surfaces as the
//! [`BinErrorCode::Unavailable`] error frame (or HTTP 503 with the node
//! address in the body) within the `upstream_timeout` bound — a hung
//! node (SIGSTOP, dead disk) cannot stall a client drain forever.
//! Recovery stays an explicit epoch advance, so the ring remains a
//! deterministic function of operator actions — which is what lets
//! [`crate::sim`] model the cluster offline. An operator acknowledges a
//! loss via `POST /admin/ring/drop`, or, with `--failover
//! supervised|auto`, a health prober raises a drop/promote *proposal*
//! on `GET /admin/ring/proposals` after three consecutive probe
//! failures. Confirming it (`POST /admin/ring/proposals/confirm` — the
//! auto policy is just an operator with zero think time) promotes the
//! slot's configured warm standby (`--standby IDX=CONTROL_ADDR`,
//! a `sitw-serve --follow` control address) via its
//! `POST /admin/promote`, provisions the promoted node, swaps it into
//! the dead slot, and bumps the ring epoch; with no standby the node is
//! dropped and its tenants rehash over the survivors. Every failover
//! control-plane step retries with bounded exponential backoff plus
//! deterministic jitter, and the whole lifecycle lands in
//! `/debug/events` and the `sitw_router_failover_*` metric families.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use sitw_core::PolicySpec;
use sitw_fleet::{fnv1a, registry::parse_tenant_arg, Admission, QosPolicy};
use sitw_serve::http::{write_response, ConnBuf, EventOutcome};
use sitw_serve::wire::{
    self, decode_server_frame, encode_error_frame, encode_reply_records, encode_request_frame_v2,
    encode_request_frame_v2_traced, BinErrorCode, BinInvoke, BinReply, ControlReply,
    ControlRequest, ServerFrameDecode,
};

use sitw_telemetry::{is_trace_span, EventKind, LifecycleEvent, Stage};

use crate::federate::{parse_hist_body, parse_trace_spans, rebase, FleetHists, NodeSpan};
use crate::metrics::{render_fleet, RouterMetrics};
use crate::reconcile::{aggregate_usage, control_roundtrip, reconcile_shares, NodeReport};
use crate::ring::ClusterRing;
use crate::telem::RouterTelem;

/// How long the router waits for a control-plane TCP connect
/// (provisioning, migration, reconciliation). The data path uses the
/// configurable [`RouterConfig::upstream_timeout`] instead.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(2);

/// Consecutive health-probe failures before the prober raises a
/// drop/promote proposal — one failed probe is a blip, three in a row
/// is a dead or wedged node.
const PROBE_FAILURE_THRESHOLD: u32 = 3;

/// Attempts per failover control-plane step (standby promote,
/// promoted-node provisioning) before the confirmation fails and the
/// proposal stays pending.
const FAILOVER_ATTEMPTS: u32 = 4;

/// Base backoff between failover attempts; doubles per retry.
const FAILOVER_BACKOFF_MS: u64 = 50;

/// Jitter bound added to each backoff (deterministic, hash-derived —
/// desynchronizes concurrent confirmations without RNG state).
const FAILOVER_JITTER_MS: u64 = 25;

/// When and how the router reacts to a node failing health probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailoverMode {
    /// No probing; operators drop dead nodes via `POST
    /// /admin/ring/drop` (the pre-failover behavior).
    #[default]
    Off,
    /// Probe failures raise proposals on `GET /admin/ring/proposals`;
    /// an operator confirms each via
    /// `POST /admin/ring/proposals/confirm?node=N`.
    Supervised,
    /// Proposals are confirmed by the prober itself as soon as they are
    /// raised (and re-tried every probe sweep until they succeed).
    Auto,
}

impl FailoverMode {
    /// Parses the CLI grammar: `off`, `supervised`, or `auto`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "off" => Ok(Self::Off),
            "supervised" => Ok(Self::Supervised),
            "auto" => Ok(Self::Auto),
            other => Err(format!(
                "unknown failover mode '{other}' (expected off, supervised, or auto)"
            )),
        }
    }

    /// The mode's stable name (`/healthz`, logs).
    pub fn name(self) -> &'static str {
        match self {
            Self::Off => "off",
            Self::Supervised => "supervised",
            Self::Auto => "auto",
        }
    }

    /// The `sitw_router_failover_mode` gauge value.
    fn gauge(self) -> u64 {
        match self {
            Self::Off => 0,
            Self::Supervised => 1,
            Self::Auto => 2,
        }
    }
}

/// One pending failover proposal: the prober saw `node` fail
/// [`PROBE_FAILURE_THRESHOLD`] consecutive health probes; confirmation
/// (operator or auto policy) promotes its standby or drops it.
#[derive(Debug, Clone)]
pub struct FailoverProposal {
    /// Ring slot of the failing node.
    pub node: usize,
    /// The failing node's address when the proposal was raised.
    pub addr: String,
    /// Why the prober raised it.
    pub reason: String,
    /// Control address of the slot's configured warm standby, if any.
    pub standby: Option<String>,
}

/// One tenant as the router knows it: the cluster-wide name and budget,
/// the policy nodes serve it under, and the optional QoS admission
/// policy the router itself enforces.
#[derive(Debug, Clone)]
pub struct RouterTenant {
    /// Tenant name — the stable cluster-wide key.
    pub name: String,
    /// Per-app policy, pushed to nodes that don't know the tenant yet.
    pub policy: PolicySpec,
    /// Cluster memory budget in MB (0 = unlimited). The reconciler
    /// pushes it to the tenant's current ring owner.
    pub budget_mb: u64,
    /// QoS class and rate limit; `None` admits everything.
    pub qos: Option<QosPolicy>,
}

impl RouterTenant {
    /// Parses the CLI grammar `NAME=POLICY[,budget=MB][,qos=SPEC]` —
    /// the node grammar plus an optional QoS suffix, e.g.
    /// `t0=hybrid,budget=64,qos=bronze:rate=50`.
    pub fn parse(arg: &str) -> Result<Self, String> {
        let (base, qos) = match arg.split_once(",qos=") {
            Some((base, spec)) => (base, Some(QosPolicy::parse(spec)?)),
            None => (arg, None),
        };
        let (name, policy, budget_mb) = parse_tenant_arg(base)?;
        Ok(Self {
            name,
            policy,
            budget_mb,
            qos,
        })
    }
}

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Listen address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Node addresses; slot order defines ring node indices.
    pub nodes: Vec<String>,
    /// The cluster tenant table. Wire id `k+1` is `tenants[k]`; id 0 is
    /// the default tenant, exactly as on a node.
    pub tenants: Vec<RouterTenant>,
    /// Budget reconciliation interval in milliseconds; 0 disables the
    /// background reconciler (`POST /admin/reconcile` still works).
    pub reconcile_ms: u64,
    /// Client-side read timeout — the shutdown poll interval of reader
    /// threads.
    pub read_timeout: Duration,
    /// Tag every Nth untraced request with a router-originated trace id
    /// and record hop spans for all traced requests; 0 disables hop
    /// recording (client trace ids still propagate to the nodes).
    pub trace_sample: usize,
    /// How the router reacts to a node failing health probes.
    pub failover: FailoverMode,
    /// Health-probe interval in milliseconds (with failover on).
    pub probe_ms: u64,
    /// Warm-standby control addresses by node slot: confirming a
    /// failover of slot `i` promotes the standby registered for `i`
    /// (a `sitw-serve --follow` control address) instead of dropping
    /// the node.
    pub standbys: Vec<(usize, String)>,
    /// Data-path upstream deadline (connect, read, and write): a hung
    /// node surfaces as a typed 503 / `Unavailable` naming the node
    /// within this bound instead of stalling the client thread forever.
    pub upstream_timeout: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            nodes: Vec::new(),
            tenants: Vec::new(),
            reconcile_ms: 1_000,
            read_timeout: Duration::from_millis(50),
            trace_sample: 0,
            failover: FailoverMode::Off,
            probe_ms: 500,
            standbys: Vec::new(),
            upstream_timeout: Duration::from_millis(2_000),
        }
    }
}

/// Shared state of a running router.
struct RouterCtx {
    cfg: RouterConfig,
    /// Node slot count — fixed for the router's life (a failover swaps
    /// a slot's address, never adds or removes slots).
    slots: usize,
    /// Resolved node addresses, by ring slot. Writable: a confirmed
    /// failover swaps the promoted standby's address into the dead
    /// node's slot.
    nodes: RwLock<Vec<SocketAddr>>,
    /// Display names for errors and metric labels, by ring slot
    /// (updated together with `nodes`).
    node_names: RwLock<Vec<String>>,
    /// Pending failover proposals (supervised/auto modes).
    proposals: Mutex<Vec<FailoverProposal>>,
    /// The router's own listen address (used to wake the acceptor).
    addr: SocketAddr,
    ring: RwLock<ClusterRing>,
    /// Cluster-wide QoS admission state, shared by every connection.
    admission: Mutex<Admission>,
    /// Whether any tenant carries a QoS policy. When false the hot
    /// paths skip the admission mutex entirely — `admit` would answer
    /// an unconditional yes for every tenant anyway.
    has_qos: bool,
    /// One-node cluster without QoS: every `/invoke` forwards to node 0
    /// unparsed (the routing decision is a constant).
    solo_target: bool,
    /// Solo-target fast path for binary request frames: relay v1
    /// frames byte-for-byte without decoding records. v1 carries no
    /// tenant ids, so a constant routing decision is all it needs.
    raw_v1: bool,
    /// Same for v2 frames, which embed node-local tenant ids. Only
    /// sound while node 0's id table is the identity mapping the
    /// router itself provisioned (tenant `i` → id `i + 1`); migration
    /// churn never perturbs a one-node ring, so this holds for the
    /// life of a solo target.
    raw_v2: bool,
    /// Per-node tenant name → node-local wire id (ids diverge across
    /// nodes once tenants migrate).
    node_ids: RwLock<Vec<HashMap<String, u16>>>,
    metrics: RouterMetrics,
    /// Hop span recorder, lifecycle event ring, and trace sampler.
    telem: RouterTelem,
    shutdown: AtomicBool,
}

impl RouterCtx {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// The current address of one node slot.
    fn node_addr(&self, node: usize) -> SocketAddr {
        self.nodes.read().expect("nodes poisoned")[node]
    }

    /// The current display name of one node slot.
    fn node_name(&self, node: usize) -> String {
        self.node_names.read().expect("node names poisoned")[node].clone()
    }

    /// A snapshot of every slot's display name (metric labels).
    fn node_names_snapshot(&self) -> Vec<String> {
        self.node_names.read().expect("node names poisoned").clone()
    }

    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(500));
    }

    /// One budget reconciliation cycle: poll reports, aggregate for
    /// `/metrics`, push budget shares to ring owners. Returns
    /// `(nodes reporting, shares acknowledged)`.
    fn reconcile_once(&self) -> (usize, u32) {
        let ring = self.ring.read().expect("ring poisoned").clone();
        let mut reports = Vec::new();
        for node in 0..self.slots {
            if !ring.is_live(node) {
                continue;
            }
            match control_roundtrip(self.node_addr(node), &ControlRequest::Report) {
                Ok(ControlReply::Report(tenants)) => reports.push(NodeReport { node, tenants }),
                Ok(ControlReply::BudgetAck { .. }) | Err(_) => self.metrics.node_error(node),
            }
        }
        let budgets: Vec<(String, u64)> = self
            .cfg
            .tenants
            .iter()
            .map(|t| (t.name.clone(), t.budget_mb))
            .collect();
        let mut pushes = 0u32;
        for (node, shares) in reconcile_shares(&budgets, &ring) {
            match control_roundtrip(self.node_addr(node), &ControlRequest::BudgetSet(shares)) {
                Ok(ControlReply::BudgetAck { applied }) => pushes += applied,
                Ok(ControlReply::Report(_)) | Err(_) => self.metrics.node_error(node),
            }
        }
        let nodes_reporting = reports.len();
        *self.metrics.usage.lock().expect("usage poisoned") = aggregate_usage(&reports);
        self.metrics.reconcile_runs.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .budget_pushes
            .fetch_add(pushes as u64, Ordering::Relaxed);
        self.sync_ring_gauges(&ring);
        (nodes_reporting, pushes)
    }

    fn sync_ring_gauges(&self, ring: &ClusterRing) {
        self.metrics
            .ring_epoch
            .store(ring.epoch(), Ordering::Relaxed);
        self.metrics
            .nodes_live
            .store(ring.live_count() as u64, Ordering::Relaxed);
    }

    /// Migrates `tenant` to node `to`: take on the current owner,
    /// restore on the target, flip the ring epoch. Returns
    /// `(from, to, new epoch)` or an HTTP-shaped error.
    fn migrate(&self, tenant: &str, to: usize) -> Result<(usize, usize, u64), (u16, String)> {
        if !self.cfg.tenants.iter().any(|t| t.name == tenant) {
            return Err((404, format!("unknown tenant '{tenant}'")));
        }
        let from = {
            let ring = self.ring.read().expect("ring poisoned");
            if !ring.is_live(to) {
                return Err((400, format!("target node {to} is not live")));
            }
            ring.node_of_tenant(tenant)
                .ok_or_else(|| (503, "no live nodes".to_owned()))?
        };
        if from != to {
            let take_path = format!("/admin/tenants/{tenant}/take");
            let (status, payload) = http_request(self.node_addr(from), "POST", &take_path, b"")
                .map_err(|e| {
                    self.metrics.node_error(from);
                    (503, format!("take from node {}: {e}", self.node_name(from)))
                })?;
            if status != 200 {
                return Err((502, format!("take failed ({status}): {payload}")));
            }
            let restore_path = format!("/admin/tenants/{tenant}/restore");
            let (status, resp) = http_request(
                self.node_addr(to),
                "POST",
                &restore_path,
                payload.as_bytes(),
            )
            .map_err(|e| {
                self.metrics.node_error(to);
                (503, format!("restore on node {}: {e}", self.node_name(to)))
            })?;
            if status != 200 {
                return Err((502, format!("restore failed ({status}): {resp}")));
            }
            let id = parse_id_field(&resp)
                .ok_or_else(|| (502, format!("malformed restore response: {resp}")))?;
            let mut ids = self.node_ids.write().expect("node_ids poisoned");
            ids[to].insert(tenant.to_owned(), id);
            ids[from].remove(tenant);
        }
        let epoch = {
            let mut ring = self.ring.write().expect("ring poisoned");
            ring.set_override(tenant, to).map_err(|e| (400, e))?;
            let epoch = ring.epoch();
            self.sync_ring_gauges(&ring);
            epoch
        };
        self.metrics.migrations.fetch_add(1, Ordering::Relaxed);
        self.telem.event(
            EventKind::Migration,
            tenant,
            "",
            format!("from={from} to={to}"),
        );
        self.telem
            .event(EventKind::RingEpoch, "", "", format!("epoch={epoch}"));
        Ok((from, to, epoch))
    }

    /// One fleet federation pass: scrapes every live node's
    /// `/debug/hist` and merges the raw log2 buckets exactly. Scrape or
    /// parse failures count a node error and leave that node out of the
    /// merge (`sitw_router_fleet_nodes` reports the coverage).
    fn fleet_scrape(&self) -> FleetHists {
        let ring = self.ring.read().expect("ring poisoned").clone();
        let mut fleet = FleetHists::default();
        for node in 0..self.slots {
            if !ring.is_live(node) {
                continue;
            }
            match http_request(self.node_addr(node), "GET", "/debug/hist", b"") {
                Ok((200, body)) => match parse_hist_body(&body) {
                    Some(h) => fleet.absorb(h),
                    None => self.metrics.node_error(node),
                },
                Ok(_) | Err(_) => self.metrics.node_error(node),
            }
        }
        fleet
    }

    /// The merged end-to-end timeline: the router's own hop spans plus
    /// every live node's propagated-trace spans, rebased per
    /// (node, trace) onto the router clock (anchored at the router's
    /// forward-completion instant for that trace) and ordered by
    /// (trace, start). Non-destructive on both sides — scraping changes
    /// nothing.
    fn merged_trace(&self) -> Vec<NodeSpan> {
        let mut spans: Vec<NodeSpan> = Vec::new();
        let mut forward_end: HashMap<u64, u64> = HashMap::new();
        {
            let rec = self.telem.recorder.lock().expect("recorder poisoned");
            for ev in rec.events() {
                if ev.stage == Stage::Forward {
                    forward_end.insert(ev.span, ev.end_ns);
                }
                spans.push(NodeSpan {
                    span: ev.span,
                    stage: ev.stage.name().to_owned(),
                    start_ns: ev.start_ns,
                    end_ns: ev.end_ns,
                    source: "router".to_owned(),
                });
            }
        }
        let ring = self.ring.read().expect("ring poisoned").clone();
        for node in 0..self.slots {
            if !ring.is_live(node) {
                continue;
            }
            let body = match http_request(
                self.node_addr(node),
                "GET",
                "/debug/trace?format=json&n=4096",
                b"",
            ) {
                Ok((200, body)) => body,
                Ok(_) | Err(_) => {
                    self.metrics.node_error(node);
                    continue;
                }
            };
            let mut by_trace: HashMap<u64, Vec<NodeSpan>> = HashMap::new();
            for s in parse_trace_spans(&body) {
                if is_trace_span(s.span) {
                    by_trace.entry(s.span).or_default().push(s);
                }
            }
            let name = self.node_name(node);
            for (trace, mut group) in by_trace {
                if let Some(&anchor) = forward_end.get(&trace) {
                    rebase(&mut group, anchor);
                }
                for mut s in group {
                    s.source = format!("{name}/{}", s.source);
                    spans.push(s);
                }
            }
        }
        spans.sort_by_key(|s| (s.span, s.start_ns, s.end_ns));
        spans
    }

    /// Raises a failover proposal for `node` unless one is already
    /// pending. Returns whether a new proposal was raised.
    fn raise_proposal(&self, node: usize, reason: &str) -> bool {
        let mut proposals = self.proposals.lock().expect("proposals poisoned");
        if proposals.iter().any(|p| p.node == node) {
            return false;
        }
        let addr = self.node_name(node);
        let standby = self
            .cfg
            .standbys
            .iter()
            .find(|(i, _)| *i == node)
            .map(|(_, ctrl)| ctrl.clone());
        self.telem.event(
            EventKind::NodeDown,
            "",
            "",
            format!(
                "node {node} ({addr}): {reason}; proposal raised (standby: {})",
                standby.as_deref().unwrap_or("none")
            ),
        );
        proposals.push(FailoverProposal {
            node,
            addr,
            reason: reason.to_owned(),
            standby,
        });
        self.metrics
            .failover_proposals
            .fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Confirms the pending proposal for `node`: promotes its warm
    /// standby into the slot (or drops the node when no standby is
    /// configured) and bumps the ring epoch. A failed confirmation
    /// leaves the proposal pending so the operator (or the auto policy's
    /// next sweep) can retry. Returns the response body or an
    /// HTTP-shaped error.
    fn confirm_failover(&self, node: usize) -> Result<String, (u16, String)> {
        let proposal = {
            let proposals = self.proposals.lock().expect("proposals poisoned");
            proposals
                .iter()
                .find(|p| p.node == node)
                .cloned()
                .ok_or_else(|| (404, format!("no pending proposal for node {node}")))?
        };
        let body = match &proposal.standby {
            Some(ctrl) => {
                let ctrl_addr = ctrl
                    .to_socket_addrs()
                    .ok()
                    .and_then(|mut a| a.next())
                    .ok_or_else(|| (502, format!("cannot resolve standby '{ctrl}'")))?;
                // Promote the follower. Idempotent on the standby side:
                // an already-promoted follower answers with the same
                // serve address, so a retried confirmation converges.
                let serve = self
                    .failover_retry("standby promote", || {
                        let (status, body) = http_request(ctrl_addr, "POST", "/admin/promote", b"")
                            .map_err(|e| e.to_string())?;
                        if status != 200 {
                            return Err(format!("promote failed ({status}): {body}"));
                        }
                        parse_str_field(&body, "serve_addr")
                            .ok_or_else(|| format!("malformed promote response: {body}"))
                    })
                    .map_err(|e| (502, e))?;
                let serve_addr: SocketAddr = serve
                    .parse()
                    .map_err(|_| (502, format!("standby reported bad serve addr '{serve}'")))?;
                // Provision the promoted node: replication already
                // carried the tenants, so this mostly just re-learns
                // the wire-id map — but it also backfills any tenant
                // registered after the last replication round.
                let ids = self
                    .failover_retry("provision promoted node", || {
                        provision_node(serve_addr, &self.cfg.tenants)
                    })
                    .map_err(|e| (502, e))?;
                let old = self.node_name(node);
                {
                    self.nodes.write().expect("nodes poisoned")[node] = serve_addr;
                    self.node_names.write().expect("node names poisoned")[node] = serve.clone();
                    self.node_ids.write().expect("node_ids poisoned")[node] = ids;
                }
                let epoch = {
                    let mut ring = self.ring.write().expect("ring poisoned");
                    let epoch = ring.bump_epoch();
                    self.sync_ring_gauges(&ring);
                    epoch
                };
                self.metrics
                    .failover_promotions
                    .fetch_add(1, Ordering::Relaxed);
                self.telem.event(
                    EventKind::Failover,
                    "",
                    "",
                    format!("node {node}: {old} -> {serve} (standby promoted), epoch {epoch}"),
                );
                self.telem.event(
                    EventKind::RingEpoch,
                    "",
                    "",
                    format!("epoch={epoch} failover-node={node}"),
                );
                format!(
                    "{{\"node\":{node},\"action\":\"promoted\",\"addr\":\"{serve}\",\
                     \"epoch\":{epoch}}}"
                )
            }
            None => {
                let (epoch, live) = {
                    let mut ring = self.ring.write().expect("ring poisoned");
                    ring.drop_node(node);
                    self.sync_ring_gauges(&ring);
                    (ring.epoch(), ring.live_count())
                };
                self.telem.event(
                    EventKind::Failover,
                    "",
                    "",
                    format!(
                        "node {node} ({}) dropped, no standby, epoch {epoch}",
                        proposal.addr
                    ),
                );
                self.telem.event(
                    EventKind::RingEpoch,
                    "",
                    "",
                    format!("epoch={epoch} failover-node={node}"),
                );
                format!(
                    "{{\"node\":{node},\"action\":\"dropped\",\"epoch\":{epoch},\"live\":{live}}}"
                )
            }
        };
        // Only a successful confirmation consumes the proposal.
        self.proposals
            .lock()
            .expect("proposals poisoned")
            .retain(|p| p.node != node);
        Ok(body)
    }

    /// Runs one failover control-plane step with bounded exponential
    /// backoff and deterministic (hash-derived) jitter between attempts.
    fn failover_retry<T>(
        &self,
        what: &str,
        mut f: impl FnMut() -> Result<T, String>,
    ) -> Result<T, String> {
        let mut last = String::new();
        for attempt in 0..FAILOVER_ATTEMPTS {
            if attempt > 0 {
                self.metrics
                    .failover_retries
                    .fetch_add(1, Ordering::Relaxed);
                let backoff = FAILOVER_BACKOFF_MS << (attempt - 1);
                let jitter =
                    fnv1a(what.as_bytes()).wrapping_mul(attempt as u64) % FAILOVER_JITTER_MS;
                thread::sleep(Duration::from_millis(backoff + jitter));
            }
            match f() {
                Ok(v) => return Ok(v),
                Err(e) => last = e,
            }
        }
        Err(format!(
            "{what}: {FAILOVER_ATTEMPTS} attempts failed, last error: {last}"
        ))
    }
}

/// A running router daemon.
pub struct Router {
    ctx: Arc<RouterCtx>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    reconciler: Option<JoinHandle<()>>,
    prober: Option<JoinHandle<()>>,
}

impl Router {
    /// Starts the router: resolves and provisions the nodes (registering
    /// any configured tenant a node doesn't know yet and learning each
    /// node's tenant wire ids), binds the listen socket, and spawns the
    /// acceptor and the background reconciler.
    pub fn start(cfg: RouterConfig) -> io::Result<Router> {
        if cfg.nodes.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a cluster needs at least one node",
            ));
        }
        let mut nodes = Vec::with_capacity(cfg.nodes.len());
        for spec in &cfg.nodes {
            let addr = spec
                .to_socket_addrs()
                .ok()
                .and_then(|mut a| a.next())
                .ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!("cannot resolve node '{spec}'"),
                    )
                })?;
            nodes.push(addr);
        }
        let mut node_ids = Vec::with_capacity(nodes.len());
        for (i, addr) in nodes.iter().enumerate() {
            let ids = provision_node(*addr, &cfg.tenants)
                .map_err(|e| io::Error::other(format!("node {}: {e}", cfg.nodes[i])))?;
            node_ids.push(ids);
        }

        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let mut admission = Admission::new();
        for t in &cfg.tenants {
            if let Some(qos) = &t.qos {
                admission.set_policy(&t.name, *qos);
            }
        }
        for (slot, ctrl) in &cfg.standbys {
            if *slot >= nodes.len() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "standby '{ctrl}' names node {slot}, but only {} nodes exist",
                        nodes.len()
                    ),
                ));
            }
        }
        let node_names = cfg.nodes.clone();
        let metrics = RouterMetrics::new(nodes.len());
        metrics
            .failover_mode
            .store(cfg.failover.gauge(), Ordering::Relaxed);
        let reconcile_ms = cfg.reconcile_ms;
        let has_qos = cfg.tenants.iter().any(|t| t.qos.is_some());
        let solo_target = nodes.len() == 1 && !has_qos;
        // Raw relay surfaces frames undecoded, so the sampler could
        // never tag every Nth one: hop tracing forces the decode path.
        // (Client-traced frames bypass raw relay regardless — their
        // flagged kind byte fails the raw capture's exact match.)
        let raw_v1 = solo_target && cfg.trace_sample == 0;
        let raw_v2 = solo_target
            && cfg.trace_sample == 0
            && cfg
                .tenants
                .iter()
                .enumerate()
                .all(|(i, t)| node_ids[0].get(&t.name) == Some(&(i as u16 + 1)));
        let telem = RouterTelem::new(cfg.trace_sample);
        let failover = cfg.failover;
        let ctx = Arc::new(RouterCtx {
            ring: RwLock::new(ClusterRing::new(nodes.len())),
            admission: Mutex::new(admission),
            has_qos,
            solo_target,
            raw_v1,
            raw_v2,
            node_ids: RwLock::new(node_ids),
            metrics,
            telem,
            shutdown: AtomicBool::new(false),
            slots: nodes.len(),
            nodes: RwLock::new(nodes),
            node_names: RwLock::new(node_names),
            proposals: Mutex::new(Vec::new()),
            addr,
            cfg,
        });

        let accept_ctx = ctx.clone();
        let acceptor = thread::Builder::new()
            .name("router-accept".into())
            .spawn(move || accept_loop(accept_ctx, listener))?;
        let reconciler = if reconcile_ms > 0 {
            let rec_ctx = ctx.clone();
            Some(
                thread::Builder::new()
                    .name("router-reconcile".into())
                    .spawn(move || reconcile_loop(rec_ctx))?,
            )
        } else {
            None
        };
        let prober = if failover != FailoverMode::Off {
            let probe_ctx = ctx.clone();
            Some(
                thread::Builder::new()
                    .name("router-probe".into())
                    .spawn(move || probe_loop(probe_ctx))?,
            )
        } else {
            None
        };
        Ok(Router {
            ctx,
            addr,
            acceptor: Some(acceptor),
            reconciler,
            prober,
        })
    }

    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The router's metrics (tests and embedding callers).
    pub fn metrics(&self) -> &RouterMetrics {
        &self.ctx.metrics
    }

    /// Runs one budget reconciliation cycle synchronously. Returns
    /// `(nodes reporting, shares acknowledged)`.
    pub fn reconcile_now(&self) -> (usize, u32) {
        self.ctx.reconcile_once()
    }

    /// Whether `POST /admin/shutdown` (or [`Router::shutdown`]) has been
    /// requested.
    pub fn shutdown_requested(&self) -> bool {
        self.ctx.shutting_down()
    }

    /// Blocks until shutdown is requested, then joins the daemon
    /// threads.
    pub fn wait(mut self) {
        while !self.ctx.shutting_down() {
            thread::sleep(Duration::from_millis(100));
        }
        self.join();
    }

    /// Requests shutdown and joins the daemon threads.
    pub fn shutdown(mut self) {
        self.ctx.request_shutdown();
        self.join();
    }

    fn join(&mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.reconciler.take() {
            let _ = h.join();
        }
        if let Some(h) = self.prober.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(ctx: Arc<RouterCtx>, listener: TcpListener) {
    for stream in listener.incoming() {
        if ctx.shutting_down() {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_ctx = ctx.clone();
        let _ = thread::Builder::new()
            .name("router-conn".into())
            .spawn(move || client_thread(conn_ctx, stream));
    }
}

fn reconcile_loop(ctx: Arc<RouterCtx>) {
    let interval = Duration::from_millis(ctx.cfg.reconcile_ms);
    'outer: loop {
        // Sleep in small slices so shutdown is honored promptly.
        let mut remaining = interval;
        while remaining > Duration::ZERO {
            if ctx.shutting_down() {
                break 'outer;
            }
            let slice = remaining.min(Duration::from_millis(50));
            thread::sleep(slice);
            remaining = remaining.saturating_sub(slice);
        }
        if ctx.shutting_down() {
            break;
        }
        let _ = ctx.reconcile_once();
    }
}

/// The health prober (supervised and auto failover modes): probes every
/// live node's `/healthz` on a fixed cadence, raises a proposal after
/// [`PROBE_FAILURE_THRESHOLD`] consecutive failures, and — in auto
/// mode — confirms pending proposals itself each sweep (a failed
/// confirmation stays pending, so the next sweep is the retry).
fn probe_loop(ctx: Arc<RouterCtx>) {
    let interval = Duration::from_millis(ctx.cfg.probe_ms.max(10));
    let timeout = ctx.cfg.upstream_timeout;
    let mut fails = vec![0u32; ctx.slots];
    'outer: loop {
        // Sleep in small slices so shutdown is honored promptly.
        let mut remaining = interval;
        while remaining > Duration::ZERO {
            if ctx.shutting_down() {
                break 'outer;
            }
            let slice = remaining.min(Duration::from_millis(50));
            thread::sleep(slice);
            remaining = remaining.saturating_sub(slice);
        }
        if ctx.shutting_down() {
            break;
        }
        let ring = ctx.ring.read().expect("ring poisoned").clone();
        for (node, fail_count) in fails.iter_mut().enumerate() {
            if !ring.is_live(node) {
                *fail_count = 0;
                continue;
            }
            let healthy = matches!(
                http_request_timeout(
                    ctx.node_addr(node),
                    "GET",
                    "/healthz",
                    b"",
                    timeout,
                    timeout
                ),
                Ok((200, _))
            );
            if healthy {
                *fail_count = 0;
                continue;
            }
            *fail_count += 1;
            ctx.metrics.probe_failures.fetch_add(1, Ordering::Relaxed);
            if *fail_count >= PROBE_FAILURE_THRESHOLD {
                ctx.raise_proposal(
                    node,
                    &format!("{} consecutive health-probe failures", *fail_count),
                );
                *fail_count = 0;
            }
        }
        if ctx.cfg.failover == FailoverMode::Auto {
            let pending: Vec<usize> = {
                let proposals = ctx.proposals.lock().expect("proposals poisoned");
                proposals.iter().map(|p| p.node).collect()
            };
            for node in pending {
                if let Err((_, e)) = ctx.confirm_failover(node) {
                    ctx.telem.event(
                        EventKind::NodeDown,
                        "",
                        "",
                        format!("auto failover of node {node} failed (will retry): {e}"),
                    );
                }
            }
        }
    }
}

/// Where one record of a client frame goes.
enum Slot {
    /// Rejected by admission; the router answers `Throttled` itself.
    Throttled,
    /// Forwarded to this node's subframe.
    Node(usize),
}

/// One queued response, drained in FIFO order.
enum Pending {
    /// A new upstream connection's read half. Always enqueued before any
    /// pending that reads from it.
    Register { node: usize, stream: TcpStream },
    /// A locally produced response (admin, throttle, typed errors).
    Local(Vec<u8>),
    /// `count` consecutive JSON requests were forwarded to `node`;
    /// relay their responses in order. A pipelined same-node run
    /// coalesces into one pending — except traced requests, which get a
    /// dedicated `count == 1` pending so the drain can time their
    /// `await`/`reassemble` hop spans.
    Json {
        node: usize,
        count: u32,
        /// `(trace id, forward-end ns)` when this pending is one traced
        /// request and hop recording is on.
        hop: Option<(u64, u64)>,
    },
    /// One client SITW-BIN v2 frame whose records all mapped to `node`
    /// with nothing throttled locally: the node's reply (or typed
    /// error) frame answers the client verbatim, no reassembly.
    RawFrame {
        node: usize,
        /// `(trace id, forward-end ns)` when traced (see `Json::hop`).
        hop: Option<(u64, u64)>,
    },
    /// One client BIN frame, split across nodes.
    Frame {
        /// The client frame's protocol version (replies echo it).
        version: u8,
        /// Per-record destination, in request order.
        slots: Vec<Slot>,
        /// Nodes whose subframes were fully written, in send order.
        sent: Vec<usize>,
        /// An upstream write failed; answer `Unavailable` with this
        /// detail after draining the nodes that did receive subframes.
        failed: Option<String>,
        /// `(trace id, forward-end ns)` when traced (see `Json::hop`).
        hop: Option<(u64, u64)>,
    },
}

/// Estimated client-facing bytes for one relayed JSON response, used
/// only to bound the pending queue (below).
const JSON_RESPONSE_ESTIMATE: usize = 256;

/// Drain the pending queue once its estimated response bytes exceed
/// this, even if the client is still streaming requests. Draining
/// blocks on upstream reads, which is deadlock-free only while every
/// undrained reply fits in the node→router socket buffers (~208 KiB
/// each side on Linux): a node never needs the router to accept more
/// requests in order to answer the ones it already read, so as long as
/// its pending replies fit in kernel buffers, our buffered request
/// writes can always make progress too.
const QUEUED_RESPONSE_BYTES_CAP: usize = 128 * 1024;

fn client_thread(ctx: Arc<RouterCtx>, stream: TcpStream) {
    if stream.set_read_timeout(Some(ctx.cfg.read_timeout)).is_err() {
        return;
    }
    // Writes are batched explicitly (flushed when the input drains), so
    // Nagle only adds latency on the already-coalesced segments.
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let upstream = (0..ctx.slots).map(|_| None).collect();
    let readers = (0..ctx.slots).map(|_| None).collect();
    let mut buf = ConnBuf::new(stream);
    buf.set_raw_request_frames(ctx.raw_v1, ctx.raw_v2);
    let mut conn = ClientConn {
        ctx,
        conn: buf,
        writer: write_half,
        upstream,
        readers,
        pendings: VecDeque::new(),
        queued_bytes: 0,
        out_buf: Vec::new(),
        json_run: None,
        egress: Vec::new(),
    };
    conn.run();
}

/// One client connection: parse, forward, drain — all on one thread.
struct ClientConn {
    ctx: Arc<RouterCtx>,
    conn: ConnBuf,
    /// The client socket's write half.
    writer: TcpStream,
    /// Upstream write halves, connected lazily per node. Buffered so a
    /// pipelined burst of client messages coalesces into few upstream
    /// segments; flushed whenever the client input drains.
    upstream: Vec<Option<io::BufWriter<TcpStream>>>,
    /// Upstream read halves, registered through the pending queue so a
    /// reconnect never overtakes replies owed by the old connection.
    readers: Vec<Option<NodeReader>>,
    /// Responses owed to the client, in request order.
    pendings: VecDeque<Pending>,
    /// Estimated client-facing bytes of the queued responses; drained
    /// at [`QUEUED_RESPONSE_BYTES_CAP`].
    queued_bytes: usize,
    /// Rendered-but-unwritten client bytes.
    out_buf: Vec<u8>,
    /// A not-yet-enqueued run of forwarded JSON requests, coalesced
    /// while consecutive requests keep hitting the same node. Flushed
    /// before any other pending is enqueued (the FIFO order is the
    /// response order) and before draining.
    json_run: Option<(usize, u32)>,
    /// Traced responses rendered but not yet written to the client:
    /// `(trace id, reassemble-end ns)`. Their `egress` hop spans close
    /// when the next client flush succeeds.
    egress: Vec<(u64, u64)>,
}

impl ClientConn {
    fn run(&mut self) {
        loop {
            if self.ctx.shutting_down() {
                break;
            }
            // About to block on the client socket: anything buffered for
            // the nodes must go out first (or their replies — and thus
            // the client's next request — never come), and everything
            // owed to the client must be answered, or a request/reply
            // lockstep client never sends the next burst.
            if self.conn.buffered() == 0 && !self.settle() {
                break;
            }
            let event = match self.conn.read_event() {
                Ok(ev) => ev,
                Err(_) => break,
            };
            match event {
                EventOutcome::Timeout => {
                    // A stalled mid-message client still gets the
                    // responses it is owed, bounded by the read
                    // timeout — it can't hold earlier replies hostage.
                    if !self.settle() {
                        break;
                    }
                    continue;
                }
                EventOutcome::Eof => break,
                EventOutcome::Request(req) => {
                    if !self.handle_request(&req) {
                        break;
                    }
                }
                EventOutcome::Frame {
                    records,
                    version,
                    trace,
                } => {
                    if !self.handle_frame(&records, version, trace) {
                        break;
                    }
                }
                EventOutcome::RawFrame { count } => {
                    if !self.handle_raw_frame(count) {
                        break;
                    }
                }
                EventOutcome::Ctrl(_) => {
                    // The control plane flows router → node, never
                    // client → router.
                    if !self.send_error_frame(
                        BinErrorCode::Malformed,
                        "control frames terminate at nodes",
                    ) {
                        break;
                    }
                }
                EventOutcome::FrameError {
                    code,
                    detail,
                    recoverable,
                } => {
                    if !self.send_error_frame(code, &detail) || !recoverable {
                        break;
                    }
                }
                EventOutcome::BodyTooLarge { declared } => {
                    let body = format!("{{\"error\":\"body of {declared} bytes too large\"}}");
                    self.send_response(413, "application/json", body.as_bytes());
                    break;
                }
            }
            if self.queued_bytes >= QUEUED_RESPONSE_BYTES_CAP && !self.settle() {
                break;
            }
        }
        // Requests already forwarded still deserve their responses,
        // even if the client half-closed mid-buffer.
        let _ = self.settle();
    }

    /// Flushes buffered upstream requests, drains every owed response,
    /// and answers the client. Returns false when the client write half
    /// is beyond saving.
    fn settle(&mut self) -> bool {
        self.flush_json_run();
        self.flush_upstream();
        while let Some(pending) = self.pendings.pop_front() {
            handle_pending(
                &self.ctx,
                pending,
                &mut self.readers,
                &mut self.out_buf,
                &mut self.egress,
            );
            if self.out_buf.len() >= 64 * 1024 && !self.flush_client() {
                return false;
            }
        }
        self.queued_bytes = 0;
        self.flush_client()
    }

    fn flush_client(&mut self) -> bool {
        if self.out_buf.is_empty() {
            return true;
        }
        let ok = self.writer.write_all(&self.out_buf).is_ok();
        self.out_buf.clear();
        if ok {
            let t = self.ctx.telem.now_ns();
            for (id, start) in self.egress.drain(..) {
                self.ctx.telem.record(id, Stage::Egress, start, t);
            }
        } else {
            self.egress.clear();
        }
        ok
    }

    fn send_local(&mut self, bytes: Vec<u8>) -> bool {
        self.queued_bytes += bytes.len();
        self.pendings.push_back(Pending::Local(bytes));
        true
    }

    fn send_response(&mut self, status: u16, content_type: &str, body: &[u8]) -> bool {
        self.flush_json_run();
        let mut out = Vec::new();
        write_response(&mut out, status, content_type, body);
        self.send_local(out)
    }

    fn send_error_frame(&mut self, code: BinErrorCode, detail: &str) -> bool {
        self.flush_json_run();
        let mut out = Vec::new();
        encode_error_frame(&mut out, code, detail);
        self.send_local(out)
    }

    /// Records one forwarded JSON request for `node`, extending the
    /// current same-node run or starting a new one. A traced request
    /// (`hop` set) gets its own single-request pending so the drain can
    /// time its hop spans.
    fn queue_json(&mut self, node: usize, hop: Option<(u64, u64)>) -> bool {
        self.queued_bytes += JSON_RESPONSE_ESTIMATE;
        if hop.is_some() {
            self.flush_json_run();
            self.pendings.push_back(Pending::Json {
                node,
                count: 1,
                hop,
            });
            return true;
        }
        match &mut self.json_run {
            Some((n, count)) if *n == node => *count += 1,
            _ => {
                self.flush_json_run();
                self.json_run = Some((node, 1));
            }
        }
        true
    }

    /// Enqueues the coalesced JSON run (if any) behind earlier pendings.
    fn flush_json_run(&mut self) {
        if let Some((node, count)) = self.json_run.take() {
            self.pendings.push_back(Pending::Json {
                node,
                count,
                hop: None,
            });
        }
    }

    /// Flushes every buffered upstream writer. A flush failure drops the
    /// writer and counts a node error; the reply thread turns the dead
    /// connection into a typed `Unavailable` when it tries to read the
    /// response.
    fn flush_upstream(&mut self) {
        for node in 0..self.upstream.len() {
            if let Some(w) = self.upstream[node].as_mut() {
                if w.flush().is_err() {
                    self.ctx.metrics.node_error(node);
                    self.upstream[node] = None;
                }
            }
        }
    }

    /// Connects to `node` if this connection hasn't yet, queueing the
    /// read half behind everything already owed.
    fn ensure_node(&mut self, node: usize) -> io::Result<()> {
        if self.upstream[node].is_some() {
            return Ok(());
        }
        // A pending JSON run may still reference this node's *previous*
        // connection (dropped on a flush failure); it must sit ahead of
        // the `Register` that replaces that reader.
        self.flush_json_run();
        // The whole upstream exchange is deadline-bounded: a killed node
        // surfaces as an immediate reset/EOF, and a *hung* one (SIGSTOP,
        // dead disk) as a timeout — either way a typed error within
        // `upstream_timeout`, never a stalled client drain.
        let timeout = self.ctx.cfg.upstream_timeout;
        let stream = TcpStream::connect_timeout(&self.ctx.node_addr(node), timeout)?;
        let _ = stream.set_nodelay(true);
        stream.set_write_timeout(Some(timeout))?;
        let read_half = stream.try_clone()?;
        read_half.set_read_timeout(Some(timeout))?;
        self.pendings.push_back(Pending::Register {
            node,
            stream: read_half,
        });
        self.upstream[node] = Some(io::BufWriter::with_capacity(64 * 1024, stream));
        Ok(())
    }

    /// Routes one HTTP request. Returns false to close the connection.
    fn handle_request(&mut self, req: &sitw_serve::http::Request) -> bool {
        let (path, query) = match req.path.split_once('?') {
            Some((p, q)) => (p, q),
            None => (req.path.as_str(), ""),
        };
        let ok = match (req.method.as_str(), path) {
            ("POST", "/invoke") => self.forward_invoke(req),
            ("GET", "/healthz") => {
                let ring = self.ctx.ring.read().expect("ring poisoned");
                let body = format!(
                    "{{\"status\":\"ok\",\"role\":\"router\",\"nodes\":{},\"live\":{},\
                     \"epoch\":{},\"tenants\":{},\"failover\":\"{}\"}}",
                    ring.len(),
                    ring.live_count(),
                    ring.epoch(),
                    self.ctx.cfg.tenants.len() + 1,
                    self.ctx.cfg.failover.name(),
                );
                drop(ring);
                self.send_response(200, "application/json", body.as_bytes())
            }
            ("GET", "/metrics") => {
                let text = self.ctx.metrics.render(&self.ctx.node_names_snapshot());
                self.send_response(200, "text/plain; version=0.0.4", text.as_bytes())
            }
            ("GET", "/metrics/fleet") => {
                // Federation pass: pull every live node's raw log2
                // buckets and merge exactly. This blocks on node
                // round-trips, which is fine on the control path — the
                // data path never calls it.
                let text = render_fleet(&self.ctx.fleet_scrape());
                self.send_response(200, "text/plain; version=0.0.4", text.as_bytes())
            }
            ("GET", "/debug/trace") => {
                let json = query.split('&').any(|p| p == "format=json");
                let spans = self.ctx.merged_trace();
                let body = render_merged_trace(&spans, json);
                let content_type = if json {
                    "application/json"
                } else {
                    "text/plain"
                };
                self.send_response(200, content_type, body.as_bytes())
            }
            ("GET", "/debug/events") => {
                // Snapshot the ring under the lock, render outside it.
                let (pushed, events) = {
                    let ring = self.ctx.telem.events.lock().expect("events poisoned");
                    (ring.pushed(), ring.events().cloned().collect::<Vec<_>>())
                };
                let body = render_events(pushed, &events);
                self.send_response(200, "application/json", body.as_bytes())
            }
            ("GET", "/admin/ring") => {
                let names = self.ctx.node_names_snapshot();
                let ring = self.ctx.ring.read().expect("ring poisoned");
                let mut body = format!("{{\"epoch\":{},\"nodes\":[", ring.epoch());
                for (i, name) in names.iter().enumerate() {
                    if i > 0 {
                        body.push(',');
                    }
                    body.push_str(&format!(
                        "{{\"node\":{i},\"addr\":\"{name}\",\"live\":{}}}",
                        ring.is_live(i)
                    ));
                }
                body.push_str("],\"overrides\":[");
                for (i, (tenant, node)) in ring.overrides().enumerate() {
                    if i > 0 {
                        body.push(',');
                    }
                    body.push_str(&format!("{{\"tenant\":\"{tenant}\",\"node\":{node}}}"));
                }
                body.push_str("]}");
                drop(ring);
                self.send_response(200, "application/json", body.as_bytes())
            }
            ("GET", "/admin/tenants") => {
                // Same shape as a node's listing (id immediately before
                // name), so `sitw-loadgen` resolves ids against the
                // router transparently.
                let mut body = String::from(
                    "[{\"id\":0,\"name\":\"default\",\"policy\":\"-\",\"budget_mb\":0}",
                );
                for (i, t) in self.ctx.cfg.tenants.iter().enumerate() {
                    body.push_str(&format!(
                        ",{{\"id\":{},\"name\":\"{}\",\"policy\":\"{}\",\"budget_mb\":{},\
                         \"qos\":\"{}\"}}",
                        i + 1,
                        t.name,
                        t.policy.label(),
                        t.budget_mb,
                        t.qos
                            .as_ref()
                            .map(|q| q.label())
                            .unwrap_or_else(|| "-".into()),
                    ));
                }
                body.push(']');
                self.send_response(200, "application/json", body.as_bytes())
            }
            ("POST", "/admin/ring/drop") => {
                match query
                    .strip_prefix("node=")
                    .and_then(|v| v.parse::<usize>().ok())
                {
                    Some(node) if node < self.ctx.slots => {
                        let (dropped, epoch, live) = {
                            let mut ring = self.ctx.ring.write().expect("ring poisoned");
                            let dropped = ring.drop_node(node);
                            self.ctx.sync_ring_gauges(&ring);
                            (dropped, ring.epoch(), ring.live_count())
                        };
                        if dropped {
                            self.ctx.telem.event(
                                EventKind::RingEpoch,
                                "",
                                "",
                                format!("epoch={epoch} drop-node={node} live={live}"),
                            );
                        }
                        let body =
                            format!("{{\"dropped\":{dropped},\"epoch\":{epoch},\"live\":{live}}}");
                        self.send_response(200, "application/json", body.as_bytes())
                    }
                    _ => self.send_response(
                        400,
                        "application/json",
                        b"{\"error\":\"expected ?node=INDEX\"}",
                    ),
                }
            }
            ("GET", "/admin/ring/proposals") => {
                let proposals = self.ctx.proposals.lock().expect("proposals poisoned");
                let mut body = String::from("{\"proposals\":[");
                for (i, p) in proposals.iter().enumerate() {
                    if i > 0 {
                        body.push(',');
                    }
                    body.push_str(&format!(
                        "{{\"node\":{},\"addr\":\"{}\",\"reason\":\"{}\",\"standby\":{}}}",
                        p.node,
                        wire::json_escape(&p.addr),
                        wire::json_escape(&p.reason),
                        match &p.standby {
                            Some(s) => format!("\"{}\"", wire::json_escape(s)),
                            None => "null".to_owned(),
                        },
                    ));
                }
                body.push_str("]}");
                drop(proposals);
                self.send_response(200, "application/json", body.as_bytes())
            }
            ("POST", "/admin/ring/proposals/confirm") => {
                match query
                    .strip_prefix("node=")
                    .and_then(|v| v.parse::<usize>().ok())
                {
                    Some(node) => match self.ctx.confirm_failover(node) {
                        Ok(body) => self.send_response(200, "application/json", body.as_bytes()),
                        Err((status, e)) => {
                            let body = format!("{{\"error\":\"{}\"}}", wire::json_escape(&e));
                            self.send_response(status, "application/json", body.as_bytes())
                        }
                    },
                    None => self.send_response(
                        400,
                        "application/json",
                        b"{\"error\":\"expected ?node=INDEX\"}",
                    ),
                }
            }
            ("POST", "/admin/migrate") => {
                let mut tenant = None;
                let mut to = None;
                for pair in query.split('&') {
                    if let Some(v) = pair.strip_prefix("tenant=") {
                        tenant = Some(v);
                    } else if let Some(v) = pair.strip_prefix("to=") {
                        to = v.parse::<usize>().ok();
                    }
                }
                match (tenant, to) {
                    (Some(tenant), Some(to)) => match self.ctx.migrate(tenant, to) {
                        Ok((from, to, epoch)) => {
                            let body = format!(
                                "{{\"tenant\":\"{tenant}\",\"from\":{from},\"to\":{to},\
                                 \"epoch\":{epoch}}}"
                            );
                            self.send_response(200, "application/json", body.as_bytes())
                        }
                        Err((status, e)) => {
                            let body = format!("{{\"error\":\"{}\"}}", wire::json_escape(&e));
                            self.send_response(status, "application/json", body.as_bytes())
                        }
                    },
                    _ => self.send_response(
                        400,
                        "application/json",
                        b"{\"error\":\"expected ?tenant=NAME&to=INDEX\"}",
                    ),
                }
            }
            ("POST", "/admin/reconcile") => {
                let (nodes, pushes) = self.ctx.reconcile_once();
                let body = format!("{{\"nodes\":{nodes},\"pushes\":{pushes}}}");
                self.send_response(200, "application/json", body.as_bytes())
            }
            ("POST", "/admin/shutdown") => {
                let sent =
                    self.send_response(200, "application/json", b"{\"status\":\"stopping\"}");
                self.ctx.request_shutdown();
                sent
            }
            (
                _,
                "/invoke"
                | "/healthz"
                | "/metrics"
                | "/metrics/fleet"
                | "/debug/trace"
                | "/debug/events"
                | "/admin/ring"
                | "/admin/ring/drop"
                | "/admin/ring/proposals"
                | "/admin/ring/proposals/confirm"
                | "/admin/migrate"
                | "/admin/reconcile"
                | "/admin/tenants"
                | "/admin/shutdown",
            ) => self.send_response(
                405,
                "application/json",
                b"{\"error\":\"method not allowed\"}",
            ),
            _ => self.send_response(404, "application/json", b"{\"error\":\"not found\"}"),
        };
        ok && !req.close
    }

    /// Admission + placement + forward for one JSON `/invoke`.
    fn forward_invoke(&mut self, req: &sitw_serve::http::Request) -> bool {
        let t0 = self.ctx.telem.now_ns();
        let trace = self.ctx.telem.sample(req.trace);
        if trace.is_some() {
            self.ctx
                .metrics
                .traced_requests
                .fetch_add(1, Ordering::Relaxed);
        }
        // One-node cluster without QoS admission: the routing decision
        // is a constant, so the body needn't be parsed at all — the
        // router degrades to a protocol-terminating relay and the node
        // answers exactly what it would answer directly (including any
        // 4xx for a body it rejects).
        if self.ctx.solo_target {
            let live = self.ctx.ring.read().expect("ring poisoned").is_live(0);
            if !live {
                return self.send_response(
                    503,
                    "application/json",
                    b"{\"error\":\"no live nodes\"}",
                );
            }
            self.ctx
                .metrics
                .json_requests
                .fetch_add(1, Ordering::Relaxed);
            if let Some(id) = trace {
                // The constant routing decision is a zero-width span.
                let t1 = self.ctx.telem.now_ns();
                self.ctx.telem.record(id, Stage::Ingress, t0, t1);
                self.ctx.telem.record(id, Stage::Route, t1, t1);
            }
            return self.forward_invoke_to(0, req, trace);
        }
        let inv = match wire::parse_invoke(&req.body) {
            Ok(inv) => inv,
            Err(e) => {
                let body = format!("{{\"error\":\"{}\"}}", wire::json_escape(&e));
                return self.send_response(400, "application/json", body.as_bytes());
            }
        };
        self.ctx
            .metrics
            .json_requests
            .fetch_add(1, Ordering::Relaxed);
        if let Some(name) = inv.tenant.as_deref().filter(|_| self.ctx.has_qos) {
            let admitted = self
                .ctx
                .admission
                .lock()
                .expect("admission poisoned")
                .admit(name, inv.ts);
            if !admitted {
                self.ctx.metrics.throttled.fetch_add(1, Ordering::Relaxed);
                self.ctx.telem.event(
                    EventKind::Throttle,
                    name,
                    &inv.app,
                    format!("proto=json ts={}", inv.ts),
                );
                let body = format!("{{\"error\":\"throttled\",\"tenant\":\"{name}\"}}");
                return self.send_response(429, "application/json", body.as_bytes());
            }
        }
        // Ingress covers parse + admission; the ring lookup is `route`.
        let t1 = self.ctx.telem.now_ns();
        let node = {
            let ring = self.ctx.ring.read().expect("ring poisoned");
            match &inv.tenant {
                Some(name) => ring.node_of_tenant(name),
                None => ring.node_of_app(&inv.app),
            }
        };
        let Some(node) = node else {
            return self.send_response(503, "application/json", b"{\"error\":\"no live nodes\"}");
        };
        if let Some(id) = trace {
            let t2 = self.ctx.telem.now_ns();
            self.ctx.telem.record(id, Stage::Ingress, t0, t1);
            self.ctx.telem.record(id, Stage::Route, t1, t2);
        }
        // Tenant names are the cluster-wide key, so the body forwards
        // verbatim — no id rewrite on the JSON path.
        self.forward_invoke_to(node, req, trace)
    }

    /// Writes one `/invoke` forward for `node` into its buffered
    /// upstream writer and queues the response relay. A traced request
    /// carries its id to the node as an `x-sitw-trace` header, and its
    /// `forward` hop span closes here.
    fn forward_invoke_to(
        &mut self,
        node: usize,
        req: &sitw_serve::http::Request,
        trace: Option<u64>,
    ) -> bool {
        let t_f0 = self.ctx.telem.now_ns();
        let forwarded = self.ensure_node(node).and_then(|()| {
            let Some(stream) = self.upstream[node].as_mut() else {
                return Err(io::Error::other("upstream vanished"));
            };
            // Straight into the buffered writer — no intermediate
            // allocation on the per-request path.
            stream.write_all(b"POST /invoke HTTP/1.1\r\n")?;
            if let Some(id) = trace {
                write!(stream, "x-sitw-trace: {id:#018x}\r\n")?;
            }
            stream.write_all(b"content-length: ")?;
            write!(stream, "{}", req.body.len())?;
            stream.write_all(b"\r\n\r\n")?;
            stream.write_all(&req.body)
        });
        match forwarded {
            Ok(()) => {
                let hop = if self.ctx.telem.enabled {
                    let t_f1 = self.ctx.telem.now_ns();
                    if let Some(id) = trace {
                        self.ctx.telem.record(id, Stage::Forward, t_f0, t_f1);
                    }
                    trace.map(|id| (id, t_f1))
                } else {
                    None
                };
                self.queue_json(node, hop)
            }
            Err(e) => {
                self.ctx.metrics.node_error(node);
                self.upstream[node] = None;
                let body = format!(
                    "{{\"error\":\"node {} down: {}\"}}",
                    self.ctx.node_name(node),
                    wire::json_escape(&e.to_string())
                );
                self.send_response(503, "application/json", body.as_bytes())
            }
        }
    }

    /// Admission + split + forward for one client SITW-BIN frame.
    fn handle_frame(
        &mut self,
        records: &[BinInvoke],
        version: u8,
        client_trace: Option<u64>,
    ) -> bool {
        self.flush_json_run();
        let t0 = self.ctx.telem.now_ns();
        let trace = self.ctx.telem.sample(client_trace);
        if trace.is_some() {
            self.ctx
                .metrics
                .traced_requests
                .fetch_add(1, Ordering::Relaxed);
        }
        self.ctx.metrics.bin_frames.fetch_add(1, Ordering::Relaxed);
        self.ctx
            .metrics
            .bin_records
            .fetch_add(records.len() as u64, Ordering::Relaxed);

        // Ingress ends where the slot loop (admission + placement —
        // the `route` hop) begins.
        let t1 = self.ctx.telem.now_ns();
        let mut slots = Vec::with_capacity(records.len());
        let mut batches: Vec<Vec<(u16, &str, u64)>> =
            (0..self.ctx.slots).map(|_| Vec::new()).collect();
        {
            let ring = self.ctx.ring.read().expect("ring poisoned");
            let node_ids = self.ctx.node_ids.read().expect("node_ids poisoned");
            let mut admission = self
                .ctx
                .has_qos
                .then(|| self.ctx.admission.lock().expect("admission poisoned"));
            for rec in records {
                let (name, node) = if rec.tenant == 0 {
                    match ring.node_of_app(&rec.app) {
                        Some(node) => (None, node),
                        None => {
                            drop((ring, node_ids, admission));
                            return self
                                .send_error_frame(BinErrorCode::Unavailable, "no live nodes");
                        }
                    }
                } else {
                    let Some(rt) = self.ctx.cfg.tenants.get(rec.tenant as usize - 1) else {
                        drop((ring, node_ids, admission));
                        return self.send_error_frame(
                            BinErrorCode::Malformed,
                            &format!("unknown tenant id {}", rec.tenant),
                        );
                    };
                    let admitted = admission.as_mut().is_none_or(|a| a.admit(&rt.name, rec.ts));
                    if !admitted {
                        self.ctx.metrics.throttled.fetch_add(1, Ordering::Relaxed);
                        self.ctx.telem.event(
                            EventKind::Throttle,
                            &rt.name,
                            &rec.app,
                            format!("proto=bin ts={}", rec.ts),
                        );
                        slots.push(Slot::Throttled);
                        continue;
                    }
                    match ring.node_of_tenant(&rt.name) {
                        Some(node) => (Some(rt.name.as_str()), node),
                        None => {
                            drop((ring, node_ids, admission));
                            return self
                                .send_error_frame(BinErrorCode::Unavailable, "no live nodes");
                        }
                    }
                };
                let local_id = match name {
                    None => 0,
                    Some(name) => match node_ids[node].get(name) {
                        Some(&id) => id,
                        None => {
                            drop((ring, node_ids, admission));
                            return self.send_error_frame(
                                BinErrorCode::Unavailable,
                                &format!(
                                    "tenant '{name}' not provisioned on node {}",
                                    self.ctx.node_name(node)
                                ),
                            );
                        }
                    },
                };
                slots.push(Slot::Node(node));
                batches[node].push((local_id, rec.app.as_str(), rec.ts));
            }
        }

        let t2 = self.ctx.telem.now_ns();
        if let Some(id) = trace {
            self.ctx.telem.record(id, Stage::Ingress, t0, t1);
            self.ctx.telem.record(id, Stage::Route, t1, t2);
        }

        // Pre-flight: connect every needed node before sending anything,
        // so a dead node fails the frame without leaving half a batch in
        // flight elsewhere.
        let needed: Vec<usize> = (0..batches.len())
            .filter(|&n| !batches[n].is_empty())
            .collect();
        for &node in &needed {
            if let Err(e) = self.ensure_node(node) {
                self.ctx.metrics.node_error(node);
                return self.send_error_frame(
                    BinErrorCode::Unavailable,
                    &format!("node {} down: {e}", self.ctx.node_name(node)),
                );
            }
        }
        let mut sent = Vec::with_capacity(needed.len());
        let mut failed = None;
        for &node in &needed {
            let mut frame = Vec::new();
            // Traced frames carry the id to each node's subframe, so
            // every node tags its pipeline stages with the same span.
            match trace {
                Some(id) => encode_request_frame_v2_traced(&mut frame, &batches[node], id),
                None => encode_request_frame_v2(&mut frame, &batches[node]),
            }
            let result = match self.upstream[node].as_mut() {
                Some(stream) => stream.write_all(&frame),
                None => Err(io::Error::other("upstream vanished")),
            };
            match result {
                Ok(()) => {
                    self.ctx
                        .metrics
                        .forwarded_subframes
                        .fetch_add(1, Ordering::Relaxed);
                    sent.push(node);
                }
                Err(e) => {
                    self.ctx.metrics.node_error(node);
                    self.upstream[node] = None;
                    failed = Some(format!("node {} down: {e}", self.ctx.node_name(node)));
                    break;
                }
            }
        }
        let hop = if self.ctx.telem.enabled {
            let t3 = self.ctx.telem.now_ns();
            if let Some(id) = trace {
                self.ctx.telem.record(id, Stage::Forward, t2, t3);
            }
            trace.map(|id| (id, t3))
        } else {
            None
        };
        // Fast path: a v2 frame that mapped whole onto one node with
        // nothing throttled needs no reassembly — the node's reply (or
        // typed error) frame IS the client's answer, byte for byte.
        // (v1 clients stay on the slow path: the upstream always speaks
        // v2, so their replies need re-encoding.)
        self.queued_bytes += wire::BIN_HEADER_LEN + wire::REPLY_RECORD_LEN * slots.len();
        if failed.is_none()
            && version == wire::BIN_VERSION_2
            && sent.len() == 1
            && slots.len() == batches[sent[0]].len()
        {
            self.pendings
                .push_back(Pending::RawFrame { node: sent[0], hop });
            return true;
        }
        self.pendings.push_back(Pending::Frame {
            version,
            slots,
            sent,
            failed,
            hop,
        });
        true
    }

    /// Relays a captured request frame to node 0 byte-for-byte — the
    /// solo-target fast path where routing is a constant and the
    /// node-local tenant ids match the client's. The node's reply (or
    /// typed error) frame is the client's answer verbatim, in either
    /// protocol version: nodes echo the version they were sent.
    fn handle_raw_frame(&mut self, count: u32) -> bool {
        self.flush_json_run();
        self.ctx.metrics.bin_frames.fetch_add(1, Ordering::Relaxed);
        self.ctx
            .metrics
            .bin_records
            .fetch_add(u64::from(count), Ordering::Relaxed);
        if !self.ctx.ring.read().expect("ring poisoned").is_live(0) {
            return self.send_error_frame(BinErrorCode::Unavailable, "no live nodes");
        }
        let result = self
            .ensure_node(0)
            .and_then(|()| match self.upstream[0].as_mut() {
                Some(stream) => stream.write_all(self.conn.raw_frame()),
                None => Err(io::Error::other("upstream vanished")),
            });
        match result {
            Ok(()) => {
                self.ctx
                    .metrics
                    .forwarded_subframes
                    .fetch_add(1, Ordering::Relaxed);
                self.queued_bytes += wire::BIN_HEADER_LEN + wire::REPLY_RECORD_LEN * count as usize;
                self.pendings
                    .push_back(Pending::RawFrame { node: 0, hop: None });
                true
            }
            Err(e) => {
                self.ctx.metrics.node_error(0);
                self.upstream[0] = None;
                self.send_error_frame(
                    BinErrorCode::Unavailable,
                    &format!("node {} down: {e}", self.ctx.node_name(0)),
                )
            }
        }
    }
}

/// One decoded node→router frame.
enum UpstreamFrame {
    Reply(Vec<BinReply>),
    Error { code: BinErrorCode, detail: String },
}

/// Buffered reader over one upstream connection's read half.
struct NodeReader {
    stream: TcpStream,
    buf: Vec<u8>,
    start: usize,
}

impl NodeReader {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            buf: Vec::new(),
            start: 0,
        }
    }

    /// Reads more bytes; EOF is an error (the router only reads while a
    /// response is owed).
    fn fill(&mut self) -> io::Result<()> {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        let mut chunk = [0u8; 16 * 1024];
        let n = self.stream.read(&mut chunk).map_err(|e| {
            // A read-deadline expiry (the upstream is hung, not dead)
            // surfaces platform-dependently; normalize it so the typed
            // 503 / `Unavailable` detail names the real failure.
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) {
                io::Error::new(io::ErrorKind::TimedOut, "upstream read timed out")
            } else {
                e
            }
        })?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "node closed the connection",
            ));
        }
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(())
    }

    /// Reads one complete SITW-BIN reply or error frame.
    fn read_server_frame(&mut self) -> io::Result<UpstreamFrame> {
        loop {
            match decode_server_frame(&self.buf[self.start..]) {
                ServerFrameDecode::Reply { records, consumed } => {
                    self.start += consumed;
                    return Ok(UpstreamFrame::Reply(records));
                }
                ServerFrameDecode::Error {
                    code,
                    detail,
                    consumed,
                } => {
                    self.start += consumed;
                    return Ok(UpstreamFrame::Error { code, detail });
                }
                ServerFrameDecode::Control { .. }
                | ServerFrameDecode::ReplChunk { .. }
                | ServerFrameDecode::ReplCommit { .. } => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "unexpected control reply on the data path",
                    ));
                }
                ServerFrameDecode::Incomplete => self.fill()?,
                ServerFrameDecode::Malformed(detail) => {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, detail));
                }
            }
        }
    }

    /// Reads one complete HTTP response and returns its raw bytes
    /// (status line through body), relayed to the client verbatim.
    /// Frames one HTTP response and appends it to `out` verbatim. `out`
    /// is untouched on error (the response is fully buffered first).
    fn read_http_response_into(&mut self, out: &mut Vec<u8>) -> io::Result<()> {
        loop {
            let window = &self.buf[self.start..];
            if let Some(header_end) = window.windows(4).position(|w| w == b"\r\n\r\n") {
                let header = std::str::from_utf8(&window[..header_end])
                    .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 header"))?;
                let mut content_length = 0usize;
                for line in header.split("\r\n").skip(1) {
                    if let Some((name, value)) = line.split_once(':') {
                        if name.eq_ignore_ascii_case("content-length") {
                            content_length = value.trim().parse().map_err(|_| {
                                io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                            })?;
                        }
                    }
                }
                let total = header_end + 4 + content_length;
                while self.buf.len() - self.start < total {
                    self.fill()?;
                }
                out.extend_from_slice(&self.buf[self.start..self.start + total]);
                self.start += total;
                return Ok(());
            }
            self.fill()?;
        }
    }

    /// Frames one server BIN frame (reply or typed error) and appends it
    /// to `out` verbatim — the `RawFrame` fast path's relay, no record
    /// decode. `out` is untouched on error.
    fn relay_reply_frame(&mut self, out: &mut Vec<u8>) -> io::Result<()> {
        while self.buf.len() - self.start < wire::BIN_HEADER_LEN {
            self.fill()?;
        }
        let h = &self.buf[self.start..];
        if h[0] != wire::BIN_MAGIC || (h[2] != wire::FRAME_REPLY && h[2] != wire::FRAME_ERROR) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unexpected upstream frame",
            ));
        }
        let payload_len = u32::from_le_bytes([h[3], h[4], h[5], h[6]]) as usize;
        if payload_len > wire::MAX_FRAME_PAYLOAD {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "oversized upstream frame",
            ));
        }
        let total = wire::BIN_HEADER_LEN + payload_len;
        while self.buf.len() - self.start < total {
            self.fill()?;
        }
        out.extend_from_slice(&self.buf[self.start..self.start + total]);
        self.start += total;
        Ok(())
    }
}

/// Processes one pending response, appending client bytes to `out`.
/// A traced pending (`hop` set) closes its `await` and `reassemble`
/// hop spans here and leaves an entry in `egress` so the next
/// successful client flush can close the `egress` span.
fn handle_pending(
    ctx: &RouterCtx,
    pending: Pending,
    readers: &mut [Option<NodeReader>],
    out_buf: &mut Vec<u8>,
    egress: &mut Vec<(u64, u64)>,
) {
    match pending {
        Pending::Register { node, stream } => {
            readers[node] = Some(NodeReader::new(stream));
        }
        Pending::Local(bytes) => {
            out_buf.extend_from_slice(&bytes);
        }
        Pending::Json { node, count, hop } => {
            // One pending covers a coalesced run; each response still
            // answers its own request, so a mid-run failure turns the
            // rest of the run into per-request 503s.
            for _ in 0..count {
                let result = match readers[node].as_mut() {
                    Some(r) => r.read_http_response_into(out_buf),
                    None => Err(io::Error::other("no upstream reader")),
                };
                if let Err(e) = result {
                    ctx.metrics.node_error(node);
                    readers[node] = None;
                    let body = format!(
                        "{{\"error\":\"node {} down: {}\"}}",
                        ctx.node_name(node),
                        wire::json_escape(&e.to_string())
                    );
                    write_response(out_buf, 503, "application/json", body.as_bytes());
                }
            }
            if let Some((id, t_fwd)) = hop {
                // A relayed JSON response involves no re-encoding, so
                // `reassemble` is a zero-width span.
                let t_reply = ctx.telem.now_ns();
                ctx.telem.record(id, Stage::Await, t_fwd, t_reply);
                ctx.telem.record(id, Stage::Reassemble, t_reply, t_reply);
                egress.push((id, t_reply));
            }
        }
        Pending::RawFrame { node, hop } => {
            let result = match readers[node].as_mut() {
                Some(r) => r.relay_reply_frame(out_buf),
                None => Err(io::Error::other("no upstream reader")),
            };
            if let Err(e) = result {
                ctx.metrics.node_error(node);
                readers[node] = None;
                encode_error_frame(
                    out_buf,
                    BinErrorCode::Unavailable,
                    &format!("node {} down: {e}", ctx.node_name(node)),
                );
            }
            if let Some((id, t_fwd)) = hop {
                let t_reply = ctx.telem.now_ns();
                ctx.telem.record(id, Stage::Await, t_fwd, t_reply);
                ctx.telem.record(id, Stage::Reassemble, t_reply, t_reply);
                egress.push((id, t_reply));
            }
        }
        Pending::Frame {
            version,
            slots,
            sent,
            failed,
            hop,
        } => {
            let mut error: Option<(BinErrorCode, String)> =
                failed.map(|d| (BinErrorCode::Unavailable, d));
            let mut per_node: HashMap<usize, VecDeque<BinReply>> = HashMap::new();
            // Drain one reply frame per node that received a
            // subframe — even after an error, to keep surviving
            // upstream connections in sync for later pendings.
            for node in sent {
                let result = match readers[node].as_mut() {
                    Some(r) => r.read_server_frame(),
                    None => Err(io::Error::other("no upstream reader")),
                };
                match result {
                    Ok(UpstreamFrame::Reply(records)) => {
                        per_node.insert(node, records.into());
                    }
                    Ok(UpstreamFrame::Error { code, detail }) => {
                        // A node's own typed error covers the whole
                        // client frame.
                        if error.is_none() {
                            error = Some((code, detail));
                        }
                    }
                    Err(e) => {
                        ctx.metrics.node_error(node);
                        readers[node] = None;
                        if error.is_none() {
                            error = Some((
                                BinErrorCode::Unavailable,
                                format!("node {} down: {e}", ctx.node_name(node)),
                            ));
                        }
                    }
                }
            }
            // Every subframe reply is in: `await` ends, `reassemble`
            // starts.
            let t_reply = if hop.is_some() { ctx.telem.now_ns() } else { 0 };
            if error.is_none() {
                // Reassemble: per-node replies interleave back into
                // request order, with local Throttled records
                // spliced in.
                let mut merged = Vec::with_capacity(slots.len());
                for slot in &slots {
                    match slot {
                        Slot::Throttled => merged.push(BinReply::Throttled),
                        Slot::Node(node) => {
                            match per_node.get_mut(node).and_then(|q| q.pop_front()) {
                                Some(rec) => merged.push(rec),
                                None => {
                                    error = Some((
                                        BinErrorCode::Unavailable,
                                        format!(
                                            "node {} returned a short reply",
                                            ctx.node_name(*node)
                                        ),
                                    ));
                                    break;
                                }
                            }
                        }
                    }
                }
                if error.is_none() {
                    encode_reply_records(out_buf, version, &merged);
                }
            }
            if let Some((code, detail)) = error {
                encode_error_frame(out_buf, code, &detail);
            }
            if let Some((id, t_fwd)) = hop {
                let t_out = ctx.telem.now_ns();
                ctx.telem.record(id, Stage::Await, t_fwd, t_reply);
                ctx.telem.record(id, Stage::Reassemble, t_reply, t_out);
                egress.push((id, t_out));
            }
        }
    }
}

/// Renders the merged fleet timeline for the router's `/debug/trace`:
/// the node's text shape plus a `source` column, or (with
/// `format=json`) an array of span objects with hex trace ids.
fn render_merged_trace(spans: &[NodeSpan], json: bool) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(64 + spans.len() * 96);
    if json {
        out.push('[');
        for (i, s) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"trace\":\"{:#018x}\",\"stage\":\"{}\",\"start_ns\":{},\"end_ns\":{},\
                 \"source\":\"{}\"}}",
                s.span,
                wire::json_escape(&s.stage),
                s.start_ns,
                s.end_ns,
                wire::json_escape(&s.source),
            );
        }
        out.push(']');
    } else {
        out.push_str("# start_ns end_ns dur_ns span stage source\n");
        for s in spans {
            let _ = writeln!(
                out,
                "{} {} {} {:#018x} {} {}",
                s.start_ns,
                s.end_ns,
                s.end_ns.saturating_sub(s.start_ns),
                s.span,
                s.stage,
                s.source,
            );
        }
    }
    out
}

/// Renders the router's `/debug/events` body — same shape as a node's.
fn render_events(pushed: u64, events: &[LifecycleEvent]) -> String {
    use std::fmt::Write as _;
    let mut body = String::with_capacity(64 + events.len() * 96);
    let _ = write!(body, "{{\"pushed\":{pushed},\"events\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        let _ = write!(
            body,
            "{{\"ts_ms\":{},\"kind\":\"{}\",\"tenant\":\"{}\",\"app\":\"{}\",\
             \"detail\":\"{}\"}}",
            ev.ts_ms,
            ev.kind.name(),
            wire::json_escape(&ev.tenant),
            wire::json_escape(&ev.app),
            wire::json_escape(&ev.detail),
        );
    }
    body.push_str("]}");
    body
}

/// Minimal one-shot HTTP client for the control plane (provisioning,
/// migration). Returns `(status, body)`.
fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
) -> io::Result<(u16, String)> {
    http_request_timeout(
        addr,
        method,
        path,
        body,
        CONNECT_TIMEOUT,
        Duration::from_secs(5),
    )
}

/// [`http_request`] with explicit connect and read deadlines — the
/// health prober probes on the data-path `upstream_timeout` so a hung
/// node fails a probe within the same bound clients see.
fn http_request_timeout(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
    connect: Duration,
    read: Duration,
) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, connect)?;
    stream.set_read_timeout(Some(read))?;
    let mut msg = Vec::with_capacity(128 + body.len());
    msg.extend_from_slice(method.as_bytes());
    msg.push(b' ');
    msg.extend_from_slice(path.as_bytes());
    msg.extend_from_slice(b" HTTP/1.1\r\nconnection: close\r\ncontent-length: ");
    msg.extend_from_slice(body.len().to_string().as_bytes());
    msg.extend_from_slice(b"\r\n\r\n");
    msg.extend_from_slice(body);
    stream.write_all(&msg)?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, "malformed response status line")
        })?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    Ok((status, body))
}

/// Extracts the first `"key":"value"` string field of a JSON body.
fn parse_str_field(body: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let pos = body.find(&marker)?;
    let after = &body[pos + marker.len()..];
    let end = after.find('"')?;
    Some(after[..end].to_owned())
}

/// Extracts the first `"id":N` field of a JSON body.
fn parse_id_field(body: &str) -> Option<u16> {
    let pos = body.find("\"id\":")?;
    let digits: String = body[pos + 5..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Parses a node's `GET /admin/tenants` listing into name → wire id.
fn parse_tenant_listing(body: &str) -> HashMap<String, u16> {
    let mut ids = HashMap::new();
    let mut rest = body;
    while let Some(pos) = rest.find("\"id\":") {
        rest = &rest[pos + 5..];
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        let Ok(id) = digits.parse::<u16>() else { break };
        let Some(name_pos) = rest.find("\"name\":\"") else {
            break;
        };
        let after = &rest[name_pos + 8..];
        let Some(end) = after.find('"') else { break };
        ids.insert(after[..end].to_owned(), id);
        rest = &after[end..];
    }
    ids
}

/// Ensures every configured tenant exists on `addr` (registering missing
/// ones with their policy and budget) and returns the node's tenant
/// name → wire id map.
fn provision_node(
    addr: SocketAddr,
    tenants: &[RouterTenant],
) -> Result<HashMap<String, u16>, String> {
    let (status, body) = http_request(addr, "GET", "/admin/tenants", b"")
        .map_err(|e| format!("cannot list tenants: {e}"))?;
    if status != 200 {
        return Err(format!("tenant listing failed ({status}): {body}"));
    }
    let mut ids = parse_tenant_listing(&body);
    for t in tenants {
        if ids.contains_key(&t.name) {
            continue;
        }
        let spec = t
            .policy
            .spec_str()
            .ok_or_else(|| format!("tenant '{}': policy has no canonical spec string", t.name))?;
        let arg = if t.budget_mb > 0 {
            format!("{}={spec},budget={}", t.name, t.budget_mb)
        } else {
            format!("{}={spec}", t.name)
        };
        let (status, resp) = http_request(addr, "POST", "/admin/tenants", arg.as_bytes())
            .map_err(|e| format!("cannot register tenant '{}': {e}", t.name))?;
        if status != 200 {
            return Err(format!(
                "registering tenant '{}' failed ({status}): {resp}",
                t.name
            ));
        }
        let id = parse_id_field(&resp)
            .ok_or_else(|| format!("malformed registration response: {resp}"))?;
        ids.insert(t.name.clone(), id);
    }
    Ok(ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_arg_grammar_with_qos_suffix() {
        let t = RouterTenant::parse("t0=hybrid,budget=64,qos=bronze:rate=50:burst=100").unwrap();
        assert_eq!(t.name, "t0");
        assert_eq!(t.budget_mb, 64);
        let qos = t.qos.unwrap();
        assert_eq!(qos.label(), "bronze:rate=50:burst=100");
        let plain = RouterTenant::parse("acme=fixed:10").unwrap();
        assert!(plain.qos.is_none());
        assert_eq!(plain.budget_mb, 0);
        assert!(RouterTenant::parse("t0=hybrid,qos=platinum").is_err());
        assert!(RouterTenant::parse("nope").is_err());
    }

    #[test]
    fn tenant_listing_parser_handles_node_shape() {
        let body = r#"[{"id":0,"name":"default","policy":"hybrid-4h[5,99]cv2","budget_mb":0},{"id":3,"name":"t1","policy":"fixed-10min","budget_mb":64}]"#;
        let ids = parse_tenant_listing(body);
        assert_eq!(ids.get("default"), Some(&0));
        assert_eq!(ids.get("t1"), Some(&3));
        assert_eq!(ids.len(), 2);
        assert_eq!(parse_id_field(r#"{"id":17,"name":"x"}"#), Some(17));
        assert_eq!(parse_id_field("{}"), None);
    }

    #[test]
    fn failover_mode_cli_grammar() {
        assert_eq!(FailoverMode::parse("off").unwrap(), FailoverMode::Off);
        assert_eq!(
            FailoverMode::parse("supervised").unwrap(),
            FailoverMode::Supervised
        );
        assert_eq!(FailoverMode::parse("auto").unwrap(), FailoverMode::Auto);
        assert!(FailoverMode::parse("eventually").is_err());
        assert_eq!(FailoverMode::Supervised.name(), "supervised");
        assert_eq!(FailoverMode::Auto.gauge(), 2);
    }

    #[test]
    fn str_field_parser_extracts_promote_response() {
        let body = r#"{"status":"promoted","serve_addr":"127.0.0.1:4071"}"#;
        assert_eq!(
            parse_str_field(body, "serve_addr").as_deref(),
            Some("127.0.0.1:4071")
        );
        assert_eq!(parse_str_field(body, "status").as_deref(), Some("promoted"));
        assert_eq!(parse_str_field(body, "missing"), None);
    }
}
