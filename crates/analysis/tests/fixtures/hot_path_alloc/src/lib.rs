//! Seeded violation for the `hot-path-alloc` rule.

#![forbid(unsafe_code)]

// sitw-lint: hot-path
pub fn render(id: u64) -> String {
    id.to_string()
}
