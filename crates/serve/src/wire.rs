//! Wire formats of the decision service.
//!
//! Two protocols share one port, distinguished by the first byte of
//! each message:
//!
//! * **JSON over HTTP/1.1** — a fixed-schema dialect, parsed and
//!   emitted by hand (the workspace is dependency-free). Requests are
//!   small and their schema is closed, so the parser is a single
//!   left-to-right scan that extracts the two fields it knows
//!   (`"app"`: string, `"ts"`: non-negative integer milliseconds) and
//!   tolerates any other well-formed members. It is not a general JSON
//!   parser and does not try to be one.
//! * **SITW-BIN v1** — a length-prefixed batched binary protocol (the
//!   second half of this module). A frame carries up to
//!   [`MAX_BATCH`] invocations and is answered by one reply frame of
//!   fixed 9-byte verdict records, amortizing parse, syscall, and
//!   shard-mailbox costs across the whole batch.

use sitw_core::DecisionKind;

use crate::shard::{Decision, InvokeError};

/// A parsed `POST /invoke` body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvokeRequest {
    /// Application identifier (the unit of keep-alive, §2).
    pub app: String,
    /// Invocation timestamp in trace milliseconds. Must be monotone
    /// non-decreasing per application.
    pub ts: u64,
    /// Tenant name (`None` = the default tenant). JSON carries the name;
    /// the binary protocol carries the registry-assigned `u16` id.
    pub tenant: Option<String>,
}

/// Parses an `/invoke` body: `{"app":"app-000123","ts":86400000}`, with
/// an optional `"tenant":"acme"` member naming the fleet tenant.
pub fn parse_invoke(body: &[u8]) -> Result<InvokeRequest, String> {
    let mut app: Option<String> = None;
    let mut ts: Option<u64> = None;
    let mut tenant: Option<String> = None;
    let mut i = 0usize;

    fn skip_ws(b: &[u8], mut i: usize) -> usize {
        while i < b.len() && (b[i] == b' ' || b[i] == b'\t' || b[i] == b'\r' || b[i] == b'\n') {
            i += 1;
        }
        i
    }

    /// Reads the four hex digits of a `\uXXXX` escape starting at `i`.
    fn parse_hex4(b: &[u8], i: usize) -> Result<(u32, usize), String> {
        if i + 4 > b.len() {
            return Err("truncated \\u escape".into());
        }
        let mut v = 0u32;
        for &c in &b[i..i + 4] {
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| format!("bad hex digit '{}' in \\u escape", c as char))?;
            v = v * 16 + d;
        }
        Ok((v, i + 4))
    }

    fn parse_string(b: &[u8], mut i: usize) -> Result<(String, usize), String> {
        if i >= b.len() || b[i] != b'"' {
            return Err("expected string".into());
        }
        i += 1;
        // Accumulate raw bytes and validate UTF-8 once at the end, so
        // multi-byte characters survive intact.
        let mut out: Vec<u8> = Vec::new();
        while i < b.len() {
            match b[i] {
                b'"' => {
                    let s = String::from_utf8(out).map_err(|_| "invalid utf-8 in string")?;
                    return Ok((s, i + 1));
                }
                b'\\' => {
                    i += 1;
                    if i >= b.len() {
                        break;
                    }
                    match b[i] {
                        b'"' => out.push(b'"'),
                        b'\\' => out.push(b'\\'),
                        b'/' => out.push(b'/'),
                        b'b' => out.push(0x08),
                        b'f' => out.push(0x0C),
                        b'n' => out.push(b'\n'),
                        b't' => out.push(b'\t'),
                        b'r' => out.push(b'\r'),
                        b'u' => {
                            let (unit, next) = parse_hex4(b, i + 1)?;
                            i = next;
                            let cp = match unit {
                                // High surrogate: a \uDC00..\uDFFF low
                                // surrogate must follow (RFC 8259 §7).
                                0xD800..=0xDBFF => {
                                    if b.get(i) != Some(&b'\\') || b.get(i + 1) != Some(&b'u') {
                                        return Err("unpaired high surrogate".into());
                                    }
                                    let (lo, next) = parse_hex4(b, i + 2)?;
                                    if !(0xDC00..=0xDFFF).contains(&lo) {
                                        return Err(format!("invalid low surrogate \\u{lo:04x}"));
                                    }
                                    i = next;
                                    0x10000 + ((unit - 0xD800) << 10) + (lo - 0xDC00)
                                }
                                0xDC00..=0xDFFF => {
                                    return Err(format!("unpaired low surrogate \\u{unit:04x}"))
                                }
                                bmp => bmp,
                            };
                            let ch = char::from_u32(cp)
                                .ok_or_else(|| format!("invalid codepoint U+{cp:04X}"))?;
                            let mut utf8 = [0u8; 4];
                            out.extend_from_slice(ch.encode_utf8(&mut utf8).as_bytes());
                            continue; // `i` already points past the escape.
                        }
                        other => return Err(format!("unsupported escape \\{}", other as char)),
                    }
                    i += 1;
                }
                c => {
                    out.push(c);
                    i += 1;
                }
            }
        }
        Err("unterminated string".into())
    }

    /// Skips any well-formed JSON value (scalar, object, or array)
    /// starting at `i`, returning the index just past it.
    fn skip_value(b: &[u8], mut i: usize) -> Result<usize, String> {
        match b.get(i) {
            Some(b'"') => {
                let (_, next) = parse_string(b, i)?;
                Ok(next)
            }
            Some(b'{') | Some(b'[') => {
                // Track nesting depth; strings inside may contain
                // brackets, so skip them wholesale.
                let mut depth = 0usize;
                while i < b.len() {
                    match b[i] {
                        b'"' => {
                            let (_, next) = parse_string(b, i)?;
                            i = next;
                        }
                        b'{' | b'[' => {
                            depth += 1;
                            i += 1;
                        }
                        b'}' | b']' => {
                            depth -= 1;
                            i += 1;
                            if depth == 0 {
                                return Ok(i);
                            }
                        }
                        _ => i += 1,
                    }
                }
                Err("unterminated container".into())
            }
            Some(_) => {
                // Number / true / false / null: runs to a delimiter.
                while i < b.len() && !matches!(b[i], b',' | b'}' | b']') {
                    i += 1;
                }
                Ok(i)
            }
            None => Err("expected value".into()),
        }
    }

    fn parse_u64(b: &[u8], mut i: usize) -> Result<(u64, usize), String> {
        let start = i;
        let mut v: u64 = 0;
        while i < b.len() && b[i].is_ascii_digit() {
            v = v
                .checked_mul(10)
                .and_then(|v| v.checked_add((b[i] - b'0') as u64))
                .ok_or("integer overflow")?;
            i += 1;
        }
        if i == start {
            return Err("expected integer".into());
        }
        Ok((v, i))
    }

    i = skip_ws(body, i);
    if i >= body.len() || body[i] != b'{' {
        return Err("expected object".into());
    }
    i = skip_ws(body, i + 1);
    if i < body.len() && body[i] == b'}' {
        // Empty object: fall through to the missing-field errors.
    } else {
        loop {
            i = skip_ws(body, i);
            let (key, next) = parse_string(body, i)?;
            i = skip_ws(body, next);
            if i >= body.len() || body[i] != b':' {
                return Err("expected ':'".into());
            }
            i = skip_ws(body, i + 1);
            match key.as_str() {
                "app" => {
                    let (v, next) = parse_string(body, i)?;
                    app = Some(v);
                    i = next;
                }
                "ts" => {
                    let (v, next) = parse_u64(body, i)?;
                    ts = Some(v);
                    i = next;
                }
                "tenant" => {
                    let (v, next) = parse_string(body, i)?;
                    tenant = Some(v);
                    i = next;
                }
                _ => {
                    i = skip_value(body, i)?;
                }
            }
            i = skip_ws(body, i);
            match body.get(i) {
                Some(b',') => i += 1,
                Some(b'}') => break,
                _ => return Err("expected ',' or '}'".into()),
            }
        }
    }

    let app = app.ok_or("missing \"app\"")?;
    if app.is_empty() {
        return Err("empty \"app\"".into());
    }
    if tenant.as_deref() == Some("") {
        return Err("empty \"tenant\"".into());
    }
    let ts = ts.ok_or("missing \"ts\"")?;
    Ok(InvokeRequest { app, ts, tenant })
}

/// Short stable name of a decision branch, used in responses and
/// snapshots.
pub fn kind_str(kind: DecisionKind) -> &'static str {
    match kind {
        DecisionKind::Histogram => "histogram",
        DecisionKind::StandardKeepAlive => "standard",
        DecisionKind::Arima => "arima",
        DecisionKind::Static => "static",
    }
}

/// Inverse of [`kind_str`].
pub fn kind_from_str(s: &str) -> Result<DecisionKind, String> {
    match s {
        "histogram" => Ok(DecisionKind::Histogram),
        "standard" => Ok(DecisionKind::StandardKeepAlive),
        "arima" => Ok(DecisionKind::Arima),
        "static" => Ok(DecisionKind::Static),
        other => Err(format!("unknown decision kind '{other}'")),
    }
}

/// Renders the `/invoke` response body for a decision.
// sitw-lint: hot-path
pub fn render_decision(out: &mut Vec<u8>, d: &Decision) {
    out.extend_from_slice(b"{\"verdict\":\"");
    out.extend_from_slice(if d.cold { b"cold" } else { b"warm" });
    out.extend_from_slice(b"\",\"kind\":\"");
    out.extend_from_slice(kind_str(d.kind).as_bytes());
    out.extend_from_slice(b"\",\"pre_warm_ms\":");
    push_u64(out, d.windows.pre_warm_ms);
    out.extend_from_slice(b",\"keep_alive_ms\":");
    push_u64(out, d.windows.keep_alive_ms);
    out.extend_from_slice(b",\"prewarm_load\":");
    out.extend_from_slice(if d.prewarm_load { b"true" } else { b"false" });
    out.extend_from_slice(b",\"evicted\":");
    out.extend_from_slice(if d.evicted { b"true" } else { b"false" });
    out.push(b'}');
}

/// Escapes a string for embedding inside a JSON string literal:
/// backslashes, double quotes, and control characters (the server's
/// error bodies echo client-controlled text, which must never produce
/// malformed JSON).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Appends the decimal representation of `v` without allocating.
// sitw-lint: hot-path
pub fn push_u64(out: &mut Vec<u8>, v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    let mut v = v;
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.extend_from_slice(&buf[i..]);
}

// ---------------------------------------------------------------------
// SITW-BIN: the length-prefixed batched binary protocol.
//
// Frame layout (all integers little-endian):
//
// ```text
// offset  size  field
//      0     1  magic        0x5B (one past ASCII 'Z': never a method)
//      1     1  version      1 or 2
//      2     1  kind         1 = request, 2 = reply, 3 = error
//      3     4  payload_len  u32, bytes after the 11-byte header
//      7     4  count        u32, records in the payload
//     11     …  payload
// ```
//
// Request payload, v1: `count` records of
// `{u16 app_len, app bytes, u64 ts}` — always the default tenant.
// Request payload, v2 (the fleet extension, version-gated): `count`
// records of `{u16 tenant_id, u16 app_len, app bytes, u64 ts}`.
// Control payload (kinds 4/5, the cluster extension): one op byte then
// name-keyed records — see [`ControlRequest`] / [`ControlReply`].
// Reply payload (both versions): `count` fixed 9-byte records — one
// verdict byte, then either two u32 windows (pre-warm, keep-alive;
// saturated at u32::MAX meaning "never") or, when the out-of-order bit
// is set, the u64 `last_ts` of the rejection. Verdict-byte bit 4 —
// reserved (always 0) in v1 — is the v2 *evicted* flag: the warm
// classification was downgraded to cold because the tenant's memory
// budget evicted the image during the gap. Replies echo the request
// frame's version.
// Error payload: `{u8 code, u16 detail_len, detail bytes}` (count = 0).
//
// The `payload_len` prefix is what keeps a connection usable after a
// malformed frame: as long as the envelope is intact, the server can
// skip exactly the bad frame and answer a typed error frame in its
// place. Only errors that destroy the framing itself (wrong version, a
// payload length beyond the cap) close the connection, mirroring the
// HTTP 413 path.

/// First byte of every SITW-BIN frame. `0x5B` is one past ASCII `Z`, so
/// it can never start an HTTP method token — that single byte is the
/// whole protocol sniff.
pub const BIN_MAGIC: u8 = 0x5B;
/// Protocol version 1: records without tenant ids (default tenant).
pub const BIN_VERSION: u8 = 1;
/// Protocol version 2: records carry a `u16` tenant id; replies may set
/// the evicted verdict bit.
pub const BIN_VERSION_2: u8 = 2;
/// Bytes in a frame header (magic, version, kind, payload_len, count).
pub const BIN_HEADER_LEN: usize = 11;
/// Frame kind: a batched invoke request (client → server).
pub const FRAME_REQUEST: u8 = 1;
/// Frame kind: a batched verdict reply (server → client).
pub const FRAME_REPLY: u8 = 2;
/// Frame kind: a typed protocol error (server → client).
pub const FRAME_ERROR: u8 = 3;
/// Frame kind: a cluster control request (router → node): a ledger
/// report poll or a budget-share push. See [`ControlRequest`].
pub const FRAME_CONTROL: u8 = 4;
/// Frame kind: the node's answer to a control request. See
/// [`ControlReply`].
pub const FRAME_CONTROL_REPLY: u8 = 5;
/// Frame kind: one chunk of a full snapshot sync (primary → follower).
/// Payload: `{u64 epoch, u32 seq, u8 last, chunk bytes}` — the chunks,
/// concatenated in `seq` order, are one complete snapshot document.
pub const FRAME_REPL_SYNC: u8 = 6;
/// Frame kind: one chunk of an incremental delta (primary → follower).
/// Same payload layout as [`FRAME_REPL_SYNC`]; the concatenated chunks
/// are one delta document streaming only dirty apps.
pub const FRAME_REPL_DELTA: u8 = 7;
/// Frame kind: closes one replication round (primary → follower).
/// Payload: `{u64 epoch}` — the epoch the follower now holds. A lone
/// commit (no preceding chunks) means nothing was dirty this round.
pub const FRAME_REPL_COMMIT: u8 = 8;
/// Frame kind: a replication pull (follower → primary). Payload:
/// `{u64 epoch}` — the epoch the follower holds; 0 (or any stale value)
/// makes the primary answer with a full sync instead of a delta.
pub const FRAME_REPL_ACK: u8 = 9;
/// Kind-byte flag: the payload of this [`FRAME_REQUEST`] starts with an
/// 8-byte little-endian trace id before the records. Version-gated to
/// v2 — a v1 frame with the flag set is malformed — so v1 peers, which
/// would misparse the prefix as a record, never see it. A traceless v2
/// frame is byte-identical to one encoded before this flag existed.
pub const FRAME_FLAG_TRACE: u8 = 0x80;
/// Bytes of the optional trace-id payload prefix (see
/// [`FRAME_FLAG_TRACE`]).
pub const TRACE_FIELD_LEN: usize = 8;

/// Control op: report per-tenant ledger integrals (empty body).
pub const CTRL_REPORT: u8 = 1;
/// Control op: set per-tenant budget shares (name-keyed records).
pub const CTRL_BUDGET_SET: u8 = 2;
/// Maximum frame payload, mirroring [`crate::http::MAX_BODY_BYTES`].
pub const MAX_FRAME_PAYLOAD: usize = crate::http::MAX_BODY_BYTES;
/// Maximum records per frame.
pub const MAX_BATCH: usize = 8192;
/// Bytes per reply record (verdict byte + 8 bytes of payload).
pub const REPLY_RECORD_LEN: usize = 9;
/// Smallest possible v1 request record: non-empty app of 1 byte + u64 ts.
const MIN_REQUEST_RECORD_LEN: usize = 2 + 1 + 8;
/// Smallest possible v2 request record: tenant id + v1 minimum.
const MIN_REQUEST_RECORD_LEN_V2: usize = 2 + MIN_REQUEST_RECORD_LEN;

// Verdict-byte bits.
const VB_COLD: u8 = 1 << 0;
const VB_PREWARM_LOAD: u8 = 1 << 1;
const VB_KIND_SHIFT: u8 = 2; // Bits 2–3: DecisionKind.
const VB_EVICTED: u8 = 1 << 4; // v2 only; reserved (0) in v1.
const VB_THROTTLED: u8 = 1 << 5; // v2 only; QoS admission rejection.
const VB_OUT_OF_ORDER: u8 = 1 << 7;

/// Typed SITW-BIN protocol errors, carried in [`FRAME_ERROR`] frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinErrorCode {
    /// The frame declared a version this server does not speak.
    BadVersion = 1,
    /// The frame exceeded [`MAX_BATCH`] records or
    /// [`MAX_FRAME_PAYLOAD`] bytes.
    Oversized = 2,
    /// The frame envelope or a record inside it was malformed.
    Malformed = 3,
    /// The node that owns the addressed tenant is down (emitted by
    /// `sitw-router` when an upstream connection fails; a single node
    /// never emits it for itself).
    Unavailable = 4,
}

impl BinErrorCode {
    /// The on-wire byte.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Inverse of [`BinErrorCode::as_u8`].
    pub fn from_u8(v: u8) -> Option<BinErrorCode> {
        match v {
            1 => Some(BinErrorCode::BadVersion),
            2 => Some(BinErrorCode::Oversized),
            3 => Some(BinErrorCode::Malformed),
            4 => Some(BinErrorCode::Unavailable),
            _ => None,
        }
    }
}

/// One batched binary invocation: the record of a SITW-BIN request
/// frame. v1 records always name the default tenant (id 0); v2 records
/// carry the registry-assigned tenant id on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinInvoke {
    /// Tenant id (0 = default tenant).
    pub tenant: u16,
    /// Application id.
    pub app: String,
    /// Invocation timestamp (trace milliseconds).
    pub ts: u64,
}

/// A cluster control request, carried in a [`FRAME_CONTROL`] frame
/// (router → node). The record payloads are keyed by tenant *name*, not
/// id: ids are per-node registration order and diverge across nodes as
/// soon as a tenant migrates, while names are the stable cluster-wide
/// key (the same reason tenant→shard routing hashes names).
///
/// Wire layout: the frame payload opens with one op byte
/// ([`CTRL_REPORT`] or [`CTRL_BUDGET_SET`]), then `count` records.
/// `Report` carries no records; `BudgetSet` records are
/// `{u16 name_len, name bytes, u64 budget_mb}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlRequest {
    /// Poll the node's per-tenant ledger integrals.
    Report,
    /// Install per-tenant budget shares (`(tenant name, budget MB)`;
    /// 0 = unlimited). Unknown tenants are skipped and uncounted.
    BudgetSet(Vec<(String, u64)>),
    /// A follower's replication pull ([`FRAME_REPL_ACK`]): stream the
    /// state mutated since `epoch`, or a full sync when the epoch is
    /// stale. Rides the control plumbing so replication needs no new
    /// connection machinery.
    ReplPull {
        /// The epoch the follower holds (0 = nothing yet).
        epoch: u64,
    },
}

/// One tenant's ledger integrals, as reported over the control plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantUsage {
    /// Tenant name (the cluster-wide key).
    pub name: String,
    /// The budget currently enforced on this node, MB (0 = unlimited).
    pub budget_mb: u64,
    /// Warm memory currently charged, MB.
    pub warm_mb: u64,
    /// Budget evictions so far.
    pub evictions: u64,
    /// Loaded-memory integral, MB·ms.
    pub idle_mb_ms: u64,
    /// Invocations served.
    pub invocations: u64,
}

/// The node's answer to a [`ControlRequest`], carried in a
/// [`FRAME_CONTROL_REPLY`] frame. Report records are
/// `{u16 name_len, name, u64 budget_mb, u64 warm_mb, u64 evictions,
/// u64 idle_mb_ms, u64 invocations}`; a budget ack has no records and
/// echoes the number of shares applied in the header count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlReply {
    /// Per-tenant usage, in tenant-id order (default tenant first).
    Report(Vec<TenantUsage>),
    /// Budget shares applied.
    BudgetAck {
        /// How many of the pushed shares named a known tenant.
        applied: u32,
    },
}

/// Outcome of decoding one request frame from a byte buffer that starts
/// at a frame boundary.
#[derive(Debug)]
pub enum FrameDecode {
    /// A complete, well-formed request frame; `consumed` bytes cover the
    /// header and payload.
    Request {
        /// The batched invocations, in wire order.
        records: Vec<BinInvoke>,
        /// The frame's protocol version (replies must echo it).
        version: u8,
        /// The propagated trace id, when the frame carried one.
        trace: Option<u64>,
        /// Total frame length in bytes.
        consumed: usize,
    },
    /// A complete cluster control frame.
    Control {
        /// The decoded control request.
        req: ControlRequest,
        /// Total frame length in bytes.
        consumed: usize,
    },
    /// The buffer holds only part of a frame; read more and retry.
    Incomplete,
    /// A protocol error. `skip` is the full frame length when the
    /// envelope was intact enough to resynchronize past it; `None` means
    /// the connection cannot be resynchronized and must close after the
    /// error frame is sent.
    Error {
        /// The typed error.
        code: BinErrorCode,
        /// Human-readable detail for the error frame.
        detail: String,
        /// Bytes to discard (header + payload) to reach the next frame.
        skip: Option<usize>,
    },
}

fn u32_at(buf: &[u8], i: usize) -> u32 {
    u32::from_le_bytes([buf[i], buf[i + 1], buf[i + 2], buf[i + 3]])
}

fn u64_at(buf: &[u8], i: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[i..i + 8]);
    u64::from_le_bytes(b)
}

// sitw-lint: hot-path
fn frame_header(out: &mut Vec<u8>, version: u8, kind: u8, payload_len: usize, count: usize) {
    out.push(BIN_MAGIC);
    out.push(version);
    out.push(kind);
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
    out.extend_from_slice(&(count as u32).to_le_bytes());
}

/// Encodes one v1 request frame of `(app, ts)` records (default tenant).
///
/// # Panics
///
/// Panics if an app name exceeds `u16::MAX` bytes or the batch exceeds
/// [`MAX_BATCH`] — callers own the batching and must stay in bounds.
pub fn encode_request_frame(out: &mut Vec<u8>, records: &[(&str, u64)]) {
    assert!(records.len() <= MAX_BATCH, "batch exceeds MAX_BATCH");
    let payload_len: usize = records.iter().map(|(app, _)| 2 + app.len() + 8).sum();
    out.reserve(BIN_HEADER_LEN + payload_len);
    frame_header(out, BIN_VERSION, FRAME_REQUEST, payload_len, records.len());
    for (app, ts) in records {
        assert!(app.len() <= u16::MAX as usize, "app name too long");
        out.extend_from_slice(&(app.len() as u16).to_le_bytes());
        out.extend_from_slice(app.as_bytes());
        out.extend_from_slice(&ts.to_le_bytes());
    }
}

/// Encodes one v2 request frame of `(tenant, app, ts)` records — the
/// fleet extension carrying a `u16` tenant id per record.
///
/// # Panics
///
/// Panics if an app name exceeds `u16::MAX` bytes or the batch exceeds
/// [`MAX_BATCH`].
pub fn encode_request_frame_v2(out: &mut Vec<u8>, records: &[(u16, &str, u64)]) {
    encode_v2_frame(out, records, None);
}

/// Encodes one v2 request frame carrying a propagated trace id: the
/// kind byte gains [`FRAME_FLAG_TRACE`] and the payload starts with the
/// 8-byte little-endian id before the records (see the flag docs for
/// the version gating).
///
/// # Panics
///
/// Panics if an app name exceeds `u16::MAX` bytes or the batch exceeds
/// [`MAX_BATCH`].
pub fn encode_request_frame_v2_traced(out: &mut Vec<u8>, records: &[(u16, &str, u64)], trace: u64) {
    encode_v2_frame(out, records, Some(trace));
}

fn encode_v2_frame(out: &mut Vec<u8>, records: &[(u16, &str, u64)], trace: Option<u64>) {
    assert!(records.len() <= MAX_BATCH, "batch exceeds MAX_BATCH");
    let prefix = if trace.is_some() { TRACE_FIELD_LEN } else { 0 };
    let payload_len: usize = prefix
        + records
            .iter()
            .map(|(_, app, _)| 2 + 2 + app.len() + 8)
            .sum::<usize>();
    out.reserve(BIN_HEADER_LEN + payload_len);
    let kind = if trace.is_some() {
        FRAME_REQUEST | FRAME_FLAG_TRACE
    } else {
        FRAME_REQUEST
    };
    frame_header(out, BIN_VERSION_2, kind, payload_len, records.len());
    if let Some(id) = trace {
        out.extend_from_slice(&id.to_le_bytes());
    }
    for (tenant, app, ts) in records {
        assert!(app.len() <= u16::MAX as usize, "app name too long");
        out.extend_from_slice(&tenant.to_le_bytes());
        out.extend_from_slice(&(app.len() as u16).to_le_bytes());
        out.extend_from_slice(app.as_bytes());
        out.extend_from_slice(&ts.to_le_bytes());
    }
}

/// Outcome of [`decode_request_frame_into`]: [`FrameDecode`] with the
/// records written into a caller-owned, reusable buffer instead of a
/// fresh allocation per frame (the reactor's per-connection hot path).
#[derive(Debug)]
pub enum FrameDecodeInto {
    /// A complete, well-formed request frame; the records were appended
    /// to the caller's buffer in wire order.
    Request {
        /// The frame's protocol version (replies must echo it).
        version: u8,
        /// The propagated trace id, when the frame carried one.
        trace: Option<u64>,
        /// Total frame length in bytes.
        consumed: usize,
    },
    /// A complete cluster control frame (never writes `records`).
    Control {
        /// The decoded control request.
        req: ControlRequest,
        /// Total frame length in bytes.
        consumed: usize,
    },
    /// The buffer holds only part of a frame; read more and retry.
    Incomplete,
    /// A protocol error (see [`FrameDecode::Error`]).
    Error {
        /// The typed error.
        code: BinErrorCode,
        /// Human-readable detail for the error frame.
        detail: String,
        /// Bytes to discard (header + payload) to reach the next frame.
        skip: Option<usize>,
    },
}

/// Decodes one request frame. `buf` must start at a frame boundary (its
/// first byte was sniffed as [`BIN_MAGIC`]).
pub fn decode_request_frame(buf: &[u8]) -> FrameDecode {
    let mut records = Vec::new();
    match decode_request_frame_into(buf, &mut records) {
        FrameDecodeInto::Request {
            version,
            trace,
            consumed,
        } => FrameDecode::Request {
            records,
            version,
            trace,
            consumed,
        },
        FrameDecodeInto::Control { req, consumed } => FrameDecode::Control { req, consumed },
        FrameDecodeInto::Incomplete => FrameDecode::Incomplete,
        FrameDecodeInto::Error { code, detail, skip } => FrameDecode::Error { code, detail, skip },
    }
}

/// Decodes one request frame into `records` (cleared first, reused
/// across frames). See [`decode_request_frame`] for the boundary
/// contract.
pub fn decode_request_frame_into(buf: &[u8], records: &mut Vec<BinInvoke>) -> FrameDecodeInto {
    records.clear();
    if buf.len() < BIN_HEADER_LEN {
        return FrameDecodeInto::Incomplete;
    }
    if buf[0] != BIN_MAGIC {
        // Unreachable behind the sniff, but the codec stands alone.
        return FrameDecodeInto::Error {
            code: BinErrorCode::Malformed,
            detail: "bad magic".into(),
            skip: None,
        };
    }
    let version = buf[1];
    if version != BIN_VERSION && version != BIN_VERSION_2 {
        return FrameDecodeInto::Error {
            code: BinErrorCode::BadVersion,
            detail: format!("unsupported version {version}"),
            skip: None,
        };
    }
    let kind = buf[2];
    let payload_len = u32_at(buf, 3) as usize;
    let count = u32_at(buf, 7) as usize;
    if payload_len > MAX_FRAME_PAYLOAD {
        return FrameDecodeInto::Error {
            code: BinErrorCode::Oversized,
            detail: format!("payload {payload_len} exceeds {MAX_FRAME_PAYLOAD}"),
            skip: None,
        };
    }
    let total = BIN_HEADER_LEN + payload_len;
    // From here on the envelope is trusted: every error is skippable.
    let malformed = |detail: String| FrameDecodeInto::Error {
        code: BinErrorCode::Malformed,
        detail,
        skip: Some(total),
    };
    if kind == FRAME_CONTROL {
        if buf.len() < total {
            return FrameDecodeInto::Incomplete;
        }
        return match decode_control_payload(&buf[BIN_HEADER_LEN..total], count) {
            Ok(req) => FrameDecodeInto::Control {
                req,
                consumed: total,
            },
            Err(detail) => malformed(detail),
        };
    }
    if kind == FRAME_REPL_ACK {
        if buf.len() < total {
            return FrameDecodeInto::Incomplete;
        }
        if payload_len != 8 || count != 0 {
            return malformed("repl ack carries exactly one u64 epoch".into());
        }
        return FrameDecodeInto::Control {
            req: ControlRequest::ReplPull {
                epoch: u64_at(buf, BIN_HEADER_LEN),
            },
            consumed: total,
        };
    }
    let traced = kind == FRAME_REQUEST | FRAME_FLAG_TRACE;
    if !traced && kind != FRAME_REQUEST {
        return malformed(format!("unexpected frame kind {kind}"));
    }
    if traced && version != BIN_VERSION_2 {
        // The trace field is a v2 extension; a v1 peer would misparse
        // the 8-byte prefix as a record.
        return malformed("trace flag requires protocol v2".into());
    }
    if count > MAX_BATCH {
        return FrameDecodeInto::Error {
            code: BinErrorCode::Oversized,
            detail: format!("batch of {count} exceeds {MAX_BATCH}"),
            skip: Some(total),
        };
    }
    let min_record_len = if version == BIN_VERSION_2 {
        MIN_REQUEST_RECORD_LEN_V2
    } else {
        MIN_REQUEST_RECORD_LEN
    };
    let trace_len = if traced { TRACE_FIELD_LEN } else { 0 };
    if count * min_record_len + trace_len > payload_len {
        // Decidable from the header alone — fail before buffering the
        // (possibly large) payload.
        return malformed(format!("count {count} cannot fit payload {payload_len}"));
    }
    if buf.len() < total {
        return FrameDecodeInto::Incomplete;
    }
    let payload = &buf[BIN_HEADER_LEN..total];
    let (trace, payload) = if traced {
        (Some(u64_at(payload, 0)), &payload[TRACE_FIELD_LEN..])
    } else {
        (None, payload)
    };
    records.reserve(count);
    let mut i = 0usize;
    for r in 0..count {
        // The aggregate count*MIN check above cannot guarantee this:
        // one oversized record can consume other records' minimum
        // budget, leaving fewer than the fixed prefix here.
        let prefix = if version == BIN_VERSION_2 { 4 } else { 2 };
        if i + prefix > payload.len() {
            records.clear();
            return malformed(format!("record {r} truncated"));
        }
        let tenant = if version == BIN_VERSION_2 {
            let t = u16::from_le_bytes([payload[i], payload[i + 1]]);
            i += 2;
            t
        } else {
            0
        };
        let app_len = u16::from_le_bytes([payload[i], payload[i + 1]]) as usize;
        i += 2;
        if app_len == 0 {
            records.clear();
            return malformed(format!("record {r}: empty app"));
        }
        if i + app_len + 8 > payload.len() {
            records.clear();
            return malformed(format!("record {r} overruns payload"));
        }
        let Ok(app) = std::str::from_utf8(&payload[i..i + app_len]) else {
            records.clear();
            return malformed(format!("record {r}: app is not utf-8"));
        };
        let app = app.to_owned();
        i += app_len;
        let ts = u64_at(payload, i);
        i += 8;
        records.push(BinInvoke { tenant, app, ts });
    }
    if i != payload.len() {
        records.clear();
        return malformed(format!(
            "{} trailing bytes after records",
            payload.len() - i
        ));
    }
    FrameDecodeInto::Request {
        version,
        trace,
        consumed: total,
    }
}

fn kind_to_bits(kind: DecisionKind) -> u8 {
    match kind {
        DecisionKind::Histogram => 0,
        DecisionKind::StandardKeepAlive => 1,
        DecisionKind::Arima => 2,
        DecisionKind::Static => 3,
    }
}

fn kind_from_bits(bits: u8) -> DecisionKind {
    match bits & 0b11 {
        0 => DecisionKind::Histogram,
        1 => DecisionKind::StandardKeepAlive,
        2 => DecisionKind::Arima,
        _ => DecisionKind::Static,
    }
}

/// Saturating millisecond window for the wire: `u32::MAX` means "at
/// least 49 days", which every policy treats as never.
fn sat_u32(ms: u64) -> u32 {
    ms.min(u32::MAX as u64) as u32
}

/// Encodes one reply frame, one 9-byte record per decision, in request
/// order. `version` echoes the request frame's version; the evicted
/// verdict bit is emitted only on v2 (it is reserved in v1, where the
/// default tenant is unbudgeted and can never evict).
// sitw-lint: hot-path
pub fn encode_reply_frame(
    out: &mut Vec<u8>,
    version: u8,
    results: &[Result<Decision, InvokeError>],
) {
    let payload_len = results.len() * REPLY_RECORD_LEN;
    out.reserve(BIN_HEADER_LEN + payload_len);
    frame_header(out, version, FRAME_REPLY, payload_len, results.len());
    for result in results {
        match result {
            Ok(d) => {
                let mut vb = kind_to_bits(d.kind) << VB_KIND_SHIFT;
                if d.cold {
                    vb |= VB_COLD;
                }
                if d.prewarm_load {
                    vb |= VB_PREWARM_LOAD;
                }
                if d.evicted && version >= BIN_VERSION_2 {
                    vb |= VB_EVICTED;
                }
                out.push(vb);
                out.extend_from_slice(&sat_u32(d.windows.pre_warm_ms).to_le_bytes());
                out.extend_from_slice(&sat_u32(d.windows.keep_alive_ms).to_le_bytes());
            }
            Err(InvokeError::OutOfOrder { last_ts }) => {
                out.push(VB_OUT_OF_ORDER);
                out.extend_from_slice(&last_ts.to_le_bytes());
            }
            Err(InvokeError::UnknownTenant) => {
                // Unreachable in the daemon: tenant ids are validated
                // against the registry before a frame is dispatched, and
                // an unknown id rejects the whole frame with a typed
                // error. Encoded defensively as an out-of-order record
                // with a sentinel timestamp.
                out.push(VB_OUT_OF_ORDER);
                out.extend_from_slice(&u64::MAX.to_le_bytes());
            }
        }
    }
}

/// Re-encodes decoded reply records into one reply frame — the router's
/// reassembly path: a client frame split across nodes comes back as
/// per-node reply frames whose records are interleaved (in request
/// order, with locally generated [`BinReply::Throttled`] records for
/// admission rejections) into the single frame the client expects.
/// Byte-for-byte inverse of the reply decoder on the same version.
pub fn encode_reply_records(out: &mut Vec<u8>, version: u8, records: &[BinReply]) {
    let payload_len = records.len() * REPLY_RECORD_LEN;
    out.reserve(BIN_HEADER_LEN + payload_len);
    frame_header(out, version, FRAME_REPLY, payload_len, records.len());
    for rec in records {
        match rec {
            BinReply::Verdict {
                cold,
                prewarm_load,
                evicted,
                kind,
                pre_warm_ms,
                keep_alive_ms,
            } => {
                let mut vb = kind_to_bits(*kind) << VB_KIND_SHIFT;
                if *cold {
                    vb |= VB_COLD;
                }
                if *prewarm_load {
                    vb |= VB_PREWARM_LOAD;
                }
                if *evicted && version >= BIN_VERSION_2 {
                    vb |= VB_EVICTED;
                }
                out.push(vb);
                out.extend_from_slice(&pre_warm_ms.to_le_bytes());
                out.extend_from_slice(&keep_alive_ms.to_le_bytes());
            }
            BinReply::OutOfOrder { last_ts } => {
                out.push(VB_OUT_OF_ORDER);
                out.extend_from_slice(&last_ts.to_le_bytes());
            }
            BinReply::Throttled => {
                out.push(VB_THROTTLED);
                out.extend_from_slice(&0u64.to_le_bytes());
            }
        }
    }
}

/// Encodes one typed error frame (detail truncated to 256 bytes).
pub fn encode_error_frame(out: &mut Vec<u8>, code: BinErrorCode, detail: &str) {
    let mut end = detail.len().min(256);
    while !detail.is_char_boundary(end) {
        end -= 1;
    }
    let detail = &detail.as_bytes()[..end];
    frame_header(out, BIN_VERSION, FRAME_ERROR, 1 + 2 + detail.len(), 0);
    out.push(code.as_u8());
    out.extend_from_slice(&(detail.len() as u16).to_le_bytes());
    out.extend_from_slice(detail);
}

/// Encodes one cluster control request frame (router → node).
pub fn encode_control_frame(out: &mut Vec<u8>, req: &ControlRequest) {
    match req {
        ControlRequest::Report => {
            frame_header(out, BIN_VERSION_2, FRAME_CONTROL, 1, 0);
            out.push(CTRL_REPORT);
        }
        ControlRequest::BudgetSet(shares) => {
            assert!(shares.len() <= MAX_BATCH, "budget set exceeds MAX_BATCH");
            let payload_len: usize = 1 + shares.iter().map(|(n, _)| 2 + n.len() + 8).sum::<usize>();
            frame_header(out, BIN_VERSION_2, FRAME_CONTROL, payload_len, shares.len());
            out.push(CTRL_BUDGET_SET);
            for (name, budget_mb) in shares {
                assert!(name.len() <= u16::MAX as usize, "tenant name too long");
                out.extend_from_slice(&(name.len() as u16).to_le_bytes());
                out.extend_from_slice(name.as_bytes());
                out.extend_from_slice(&budget_mb.to_le_bytes());
            }
        }
        // Replication pulls have their own frame kind, not a control
        // opcode — they ride this encoder for symmetry only.
        ControlRequest::ReplPull { epoch } => encode_repl_ack(out, *epoch),
    }
}

/// Decodes a [`FRAME_CONTROL`] payload (the op byte plus records).
fn decode_control_payload(payload: &[u8], count: usize) -> Result<ControlRequest, String> {
    let Some(&op) = payload.first() else {
        return Err("empty control payload".into());
    };
    match op {
        CTRL_REPORT => {
            if payload.len() != 1 || count != 0 {
                return Err("report request carries no records".into());
            }
            Ok(ControlRequest::Report)
        }
        CTRL_BUDGET_SET => {
            if count > MAX_BATCH {
                return Err(format!("budget set of {count} exceeds {MAX_BATCH}"));
            }
            let mut shares = Vec::with_capacity(count);
            let mut i = 1usize;
            for r in 0..count {
                if i + 2 > payload.len() {
                    return Err(format!("budget record {r} truncated"));
                }
                let name_len = u16::from_le_bytes([payload[i], payload[i + 1]]) as usize;
                i += 2;
                if name_len == 0 || i + name_len + 8 > payload.len() {
                    return Err(format!("budget record {r} overruns payload"));
                }
                let Ok(name) = std::str::from_utf8(&payload[i..i + name_len]) else {
                    return Err(format!("budget record {r}: name is not utf-8"));
                };
                let name = name.to_owned();
                i += name_len;
                let budget_mb = u64_at(payload, i);
                i += 8;
                shares.push((name, budget_mb));
            }
            if i != payload.len() {
                return Err(format!("{} trailing control bytes", payload.len() - i));
            }
            Ok(ControlRequest::BudgetSet(shares))
        }
        other => Err(format!("unknown control op {other}")),
    }
}

/// Encodes one control reply frame (node → router).
pub fn encode_control_reply(out: &mut Vec<u8>, reply: &ControlReply) {
    match reply {
        ControlReply::Report(tenants) => {
            assert!(tenants.len() <= MAX_BATCH, "report exceeds MAX_BATCH");
            let payload_len: usize = 1 + tenants
                .iter()
                .map(|t| 2 + t.name.len() + 8 * 5)
                .sum::<usize>();
            frame_header(
                out,
                BIN_VERSION_2,
                FRAME_CONTROL_REPLY,
                payload_len,
                tenants.len(),
            );
            out.push(CTRL_REPORT);
            for t in tenants {
                assert!(t.name.len() <= u16::MAX as usize, "tenant name too long");
                out.extend_from_slice(&(t.name.len() as u16).to_le_bytes());
                out.extend_from_slice(t.name.as_bytes());
                for v in [
                    t.budget_mb,
                    t.warm_mb,
                    t.evictions,
                    t.idle_mb_ms,
                    t.invocations,
                ] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        ControlReply::BudgetAck { applied } => {
            frame_header(
                out,
                BIN_VERSION_2,
                FRAME_CONTROL_REPLY,
                1,
                *applied as usize,
            );
            out.push(CTRL_BUDGET_SET);
        }
    }
}

/// Maximum chunk body per replication frame — comfortably under
/// [`MAX_FRAME_PAYLOAD`] with the 13-byte chunk header on top, and
/// small enough that streaming a large document never monopolizes the
/// connection's write buffer.
pub const REPL_CHUNK_BYTES: usize = 64 * 1024;

/// Bytes of a replication chunk payload header (`u64 epoch`, `u32 seq`,
/// `u8 last`) preceding the chunk body.
pub const REPL_CHUNK_HEADER: usize = 13;

/// Encodes one replication pull frame (follower → primary): the epoch
/// the follower holds.
pub fn encode_repl_ack(out: &mut Vec<u8>, epoch: u64) {
    frame_header(out, BIN_VERSION_2, FRAME_REPL_ACK, 8, 0);
    out.extend_from_slice(&epoch.to_le_bytes());
}

/// Encodes one replication chunk frame (primary → follower). `kind` is
/// [`FRAME_REPL_SYNC`] or [`FRAME_REPL_DELTA`].
///
/// # Panics
///
/// Panics when `chunk` exceeds [`REPL_CHUNK_BYTES`] or `kind` is not a
/// replication chunk kind — the round encoder owns the chunking.
pub fn encode_repl_chunk(
    out: &mut Vec<u8>,
    kind: u8,
    epoch: u64,
    seq: u32,
    last: bool,
    chunk: &[u8],
) {
    assert!(
        kind == FRAME_REPL_SYNC || kind == FRAME_REPL_DELTA,
        "not a replication chunk kind"
    );
    assert!(chunk.len() <= REPL_CHUNK_BYTES, "repl chunk too large");
    frame_header(out, BIN_VERSION_2, kind, REPL_CHUNK_HEADER + chunk.len(), 0);
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.push(u8::from(last));
    out.extend_from_slice(chunk);
}

/// Encodes one epoch-commit frame closing a replication round.
pub fn encode_repl_commit(out: &mut Vec<u8>, epoch: u64) {
    frame_header(out, BIN_VERSION_2, FRAME_REPL_COMMIT, 8, 0);
    out.extend_from_slice(&epoch.to_le_bytes());
}

/// Encodes one complete replication round: `doc` split into
/// [`REPL_CHUNK_BYTES`]-sized chunk frames of `kind`, closed by an
/// epoch-commit. An empty `doc` emits the lone commit (nothing dirty).
pub fn encode_repl_round(out: &mut Vec<u8>, kind: u8, epoch: u64, doc: &[u8]) {
    if !doc.is_empty() {
        let chunks: Vec<&[u8]> = doc.chunks(REPL_CHUNK_BYTES).collect();
        for (seq, chunk) in chunks.iter().enumerate() {
            let last = seq + 1 == chunks.len();
            encode_repl_chunk(out, kind, epoch, seq as u32, last, chunk);
        }
    }
    encode_repl_commit(out, epoch);
}

/// Decodes a [`FRAME_CONTROL_REPLY`] payload.
fn decode_control_reply_payload(payload: &[u8], count: usize) -> Result<ControlReply, String> {
    let Some(&op) = payload.first() else {
        return Err("empty control reply".into());
    };
    match op {
        CTRL_REPORT => {
            if count > MAX_BATCH {
                return Err(format!("report of {count} exceeds {MAX_BATCH}"));
            }
            let mut tenants = Vec::with_capacity(count);
            let mut i = 1usize;
            for r in 0..count {
                if i + 2 > payload.len() {
                    return Err(format!("usage record {r} truncated"));
                }
                let name_len = u16::from_le_bytes([payload[i], payload[i + 1]]) as usize;
                i += 2;
                if name_len == 0 || i + name_len + 40 > payload.len() {
                    return Err(format!("usage record {r} overruns payload"));
                }
                let Ok(name) = std::str::from_utf8(&payload[i..i + name_len]) else {
                    return Err(format!("usage record {r}: name is not utf-8"));
                };
                let name = name.to_owned();
                i += name_len;
                let mut vals = [0u64; 5];
                for v in &mut vals {
                    *v = u64_at(payload, i);
                    i += 8;
                }
                tenants.push(TenantUsage {
                    name,
                    budget_mb: vals[0],
                    warm_mb: vals[1],
                    evictions: vals[2],
                    idle_mb_ms: vals[3],
                    invocations: vals[4],
                });
            }
            if i != payload.len() {
                return Err(format!("{} trailing reply bytes", payload.len() - i));
            }
            Ok(ControlReply::Report(tenants))
        }
        CTRL_BUDGET_SET => {
            if payload.len() != 1 {
                return Err("budget ack carries no records".into());
            }
            Ok(ControlReply::BudgetAck {
                applied: count as u32,
            })
        }
        other => Err(format!("unknown control reply op {other}")),
    }
}

/// One decoded reply record, as seen by a client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinReply {
    /// A served decision.
    Verdict {
        /// The invocation found no loaded image.
        cold: bool,
        /// A pre-warm load occurred in the gap ending at this invocation.
        prewarm_load: bool,
        /// The image was evicted for memory pressure during the gap
        /// (v2 frames only; always false on v1).
        evicted: bool,
        /// The policy branch that produced the windows.
        kind: DecisionKind,
        /// Pre-warm window in ms (saturated at `u32::MAX`).
        pre_warm_ms: u32,
        /// Keep-alive window in ms (saturated at `u32::MAX`).
        keep_alive_ms: u32,
    },
    /// The invocation was rejected as out of order.
    OutOfOrder {
        /// The app's last accepted timestamp.
        last_ts: u64,
    },
    /// The invocation was refused by QoS admission control: the tenant's
    /// rate limit was exhausted at this trace time (v2 frames only;
    /// emitted by `sitw-router`, mirrored by HTTP 429 on the JSON path).
    /// No policy state advanced — the invocation never reached a shard.
    Throttled,
}

/// Outcome of decoding one server→client frame.
#[derive(Debug)]
pub enum ServerFrameDecode {
    /// A complete reply frame.
    Reply {
        /// Verdicts in request order.
        records: Vec<BinReply>,
        /// Total frame length in bytes.
        consumed: usize,
    },
    /// A complete typed error frame.
    Error {
        /// The typed error.
        code: BinErrorCode,
        /// Server-provided detail.
        detail: String,
        /// Total frame length in bytes.
        consumed: usize,
    },
    /// A complete control reply frame (node → router).
    Control {
        /// The decoded control reply.
        reply: ControlReply,
        /// Total frame length in bytes.
        consumed: usize,
    },
    /// A complete replication chunk frame (primary → follower).
    ReplChunk {
        /// `true` for a full-sync chunk, `false` for a delta chunk.
        full_sync: bool,
        /// The epoch this round commits to.
        epoch: u64,
        /// Chunk index within the round, from 0.
        seq: u32,
        /// Whether this is the round's final chunk.
        last: bool,
        /// The chunk body (a slice of the round's document).
        data: Vec<u8>,
        /// Total frame length in bytes.
        consumed: usize,
    },
    /// A complete epoch-commit frame closing a replication round.
    ReplCommit {
        /// The epoch the receiver now holds.
        epoch: u64,
        /// Total frame length in bytes.
        consumed: usize,
    },
    /// The buffer holds only part of a frame; read more and retry.
    Incomplete,
    /// The server sent something this codec cannot parse; the client
    /// must close.
    Malformed(String),
}

/// Decodes one server→client frame (reply or error). `buf` must start
/// at a frame boundary.
pub fn decode_server_frame(buf: &[u8]) -> ServerFrameDecode {
    if buf.len() < BIN_HEADER_LEN {
        return ServerFrameDecode::Incomplete;
    }
    if buf[0] != BIN_MAGIC || (buf[1] != BIN_VERSION && buf[1] != BIN_VERSION_2) {
        return ServerFrameDecode::Malformed(format!(
            "bad frame start {:02x} {:02x}",
            buf[0], buf[1]
        ));
    }
    let kind = buf[2];
    let payload_len = u32_at(buf, 3) as usize;
    let count = u32_at(buf, 7) as usize;
    if payload_len > MAX_FRAME_PAYLOAD {
        return ServerFrameDecode::Malformed(format!("oversized reply payload {payload_len}"));
    }
    let total = BIN_HEADER_LEN + payload_len;
    if buf.len() < total {
        return ServerFrameDecode::Incomplete;
    }
    let payload = &buf[BIN_HEADER_LEN..total];
    match kind {
        FRAME_REPLY => {
            if payload_len != count * REPLY_RECORD_LEN {
                return ServerFrameDecode::Malformed(format!(
                    "reply payload {payload_len} does not match count {count}"
                ));
            }
            let mut records = Vec::with_capacity(count);
            for r in 0..count {
                let i = r * REPLY_RECORD_LEN;
                let vb = payload[i];
                if vb & VB_OUT_OF_ORDER != 0 {
                    records.push(BinReply::OutOfOrder {
                        last_ts: u64_at(payload, i + 1),
                    });
                } else if vb & VB_THROTTLED != 0 {
                    records.push(BinReply::Throttled);
                } else {
                    records.push(BinReply::Verdict {
                        cold: vb & VB_COLD != 0,
                        prewarm_load: vb & VB_PREWARM_LOAD != 0,
                        evicted: vb & VB_EVICTED != 0,
                        kind: kind_from_bits(vb >> VB_KIND_SHIFT),
                        pre_warm_ms: u32_at(payload, i + 1),
                        keep_alive_ms: u32_at(payload, i + 5),
                    });
                }
            }
            ServerFrameDecode::Reply {
                records,
                consumed: total,
            }
        }
        FRAME_ERROR => {
            if payload.len() < 3 {
                return ServerFrameDecode::Malformed("truncated error frame".into());
            }
            let Some(code) = BinErrorCode::from_u8(payload[0]) else {
                return ServerFrameDecode::Malformed(format!("unknown error code {}", payload[0]));
            };
            let detail_len = u16::from_le_bytes([payload[1], payload[2]]) as usize;
            if 3 + detail_len != payload.len() {
                return ServerFrameDecode::Malformed("error detail length mismatch".into());
            }
            let detail = String::from_utf8_lossy(&payload[3..]).into_owned();
            ServerFrameDecode::Error {
                code,
                detail,
                consumed: total,
            }
        }
        FRAME_CONTROL_REPLY => match decode_control_reply_payload(payload, count) {
            Ok(reply) => ServerFrameDecode::Control {
                reply,
                consumed: total,
            },
            Err(detail) => ServerFrameDecode::Malformed(detail),
        },
        FRAME_REPL_SYNC | FRAME_REPL_DELTA => {
            if payload.len() < REPL_CHUNK_HEADER {
                return ServerFrameDecode::Malformed("truncated repl chunk".into());
            }
            ServerFrameDecode::ReplChunk {
                full_sync: kind == FRAME_REPL_SYNC,
                epoch: u64_at(payload, 0),
                seq: u32_at(payload, 8),
                last: payload[12] != 0,
                data: payload[REPL_CHUNK_HEADER..].to_vec(),
                consumed: total,
            }
        }
        FRAME_REPL_COMMIT => {
            if payload.len() != 8 {
                return ServerFrameDecode::Malformed("repl commit carries one u64 epoch".into());
            }
            ServerFrameDecode::ReplCommit {
                epoch: u64_at(payload, 0),
                consumed: total,
            }
        }
        other => ServerFrameDecode::Malformed(format!("unexpected server frame kind {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitw_core::Windows;

    #[test]
    fn parse_roundtrip_and_field_order() {
        let r = parse_invoke(br#"{"app":"app-000017","ts":86400000}"#).unwrap();
        assert_eq!(r.app, "app-000017");
        assert_eq!(r.ts, 86_400_000);
        // Reversed field order and extra members are fine.
        let r = parse_invoke(br#"{ "ts": 5 , "app" : "x" , "extra": "y" }"#).unwrap();
        assert_eq!((r.app.as_str(), r.ts), ("x", 5));
    }

    #[test]
    fn parse_preserves_utf8_app_ids() {
        let r = parse_invoke("{\"app\":\"café-功能\",\"ts\":1}".as_bytes()).unwrap();
        assert_eq!(r.app, "café-功能");
    }

    #[test]
    fn parse_decodes_unicode_escapes() {
        // Regression: any valid JSON containing \uXXXX used to be
        // rejected with "unsupported escape \u".
        let r = parse_invoke(br#"{"app":"caf\u00e9-\u529f\u80fd","ts":1}"#).unwrap();
        assert_eq!(r.app, "caf\u{e9}-\u{529f}\u{80fd}");
        // Surrogate pair: \ud83d\ude80 decodes to U+1F680.
        let r = parse_invoke(br#"{"app":"\ud83d\ude80","ts":2}"#).unwrap();
        assert_eq!(r.app, "\u{1F680}");
        // Escapes in skipped members must parse too.
        let r = parse_invoke(br#"{"meta":"A\u0042\b\f","app":"a","ts":3}"#).unwrap();
        assert_eq!((r.app.as_str(), r.ts), ("a", 3));
        // Case-insensitive hex digits; literal text continues after.
        let r = parse_invoke(br#"{"app":"a\u004Bx","ts":4}"#).unwrap();
        assert_eq!(r.app, "aKx");
    }

    #[test]
    fn parse_rejects_invalid_unicode_escapes() {
        for body in [
            br#"{"app":"\u12","ts":1}"#.as_slice(),    // Truncated.
            br#"{"app":"\uzzzz","ts":1}"#.as_slice(),  // Not hex.
            br#"{"app":"\ud83d","ts":1}"#.as_slice(),  // Lone high surrogate.
            br#"{"app":"\ud83dx","ts":1}"#.as_slice(), // High + no escape.
            br#"{"app":"\ud83dA","ts":1}"#.as_slice(), // High + non-low.
            br#"{"app":"\ude80","ts":1}"#.as_slice(),  // Lone low surrogate.
        ] {
            assert!(
                parse_invoke(body).is_err(),
                "{}",
                String::from_utf8_lossy(body)
            );
        }
    }

    #[test]
    fn parse_skips_nested_unknown_members() {
        let r = parse_invoke(br#"{"meta":{"x":{"y":[1,2]},"s":"a}b"},"app":"a","ts":1}"#).unwrap();
        assert_eq!((r.app.as_str(), r.ts), ("a", 1));
        let r = parse_invoke(br#"{"app":"a","tags":[1,[2,3],"],"],"ts":7,"flag":true}"#).unwrap();
        assert_eq!((r.app.as_str(), r.ts), ("a", 7));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_invoke(b"").is_err());
        assert!(parse_invoke(b"[]").is_err());
        assert!(parse_invoke(br#"{"app":"x"}"#).is_err());
        assert!(parse_invoke(br#"{"ts":1}"#).is_err());
        assert!(parse_invoke(br#"{"app":"","ts":1}"#).is_err());
        assert!(parse_invoke(br#"{"app":"x","ts":-3}"#).is_err());
        assert!(parse_invoke(br#"{"app":"x","ts":99999999999999999999999}"#).is_err());
    }

    #[test]
    fn decision_renders_compact_json() {
        let mut out = Vec::new();
        render_decision(
            &mut out,
            &Decision {
                cold: true,
                prewarm_load: false,
                evicted: false,
                kind: sitw_core::DecisionKind::StandardKeepAlive,
                windows: Windows::keep_loaded(14_400_000),
            },
        );
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "{\"verdict\":\"cold\",\"kind\":\"standard\",\"pre_warm_ms\":0,\
             \"keep_alive_ms\":14400000,\"prewarm_load\":false,\"evicted\":false}"
        );
    }

    #[test]
    fn parse_reads_optional_tenant() {
        let r = parse_invoke(br#"{"app":"a","ts":1}"#).unwrap();
        assert_eq!(r.tenant, None);
        let r = parse_invoke(br#"{"tenant":"acme","app":"a","ts":2}"#).unwrap();
        assert_eq!(r.tenant.as_deref(), Some("acme"));
        assert!(parse_invoke(br#"{"tenant":"","app":"a","ts":1}"#).is_err());
    }

    #[test]
    fn kind_str_roundtrip() {
        use sitw_core::DecisionKind::*;
        for k in [Histogram, StandardKeepAlive, Arima, Static] {
            assert_eq!(kind_from_str(kind_str(k)).unwrap(), k);
        }
        assert!(kind_from_str("nope").is_err());
    }

    #[test]
    fn json_escape_neutralizes_hostile_strings() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\\x"), "a\\\\x");
        assert_eq!(json_escape("q\"q"), "q\\\"q");
        assert_eq!(json_escape("n\nl"), "n\\nl");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("café"), "café");
    }

    #[test]
    fn push_u64_formats() {
        let mut out = Vec::new();
        push_u64(&mut out, 0);
        out.push(b' ');
        push_u64(&mut out, u64::MAX);
        assert_eq!(out, b"0 18446744073709551615");
    }

    // ---- SITW-BIN v1 ----

    #[test]
    fn bin_magic_never_starts_an_http_method() {
        // The whole sniff: 0x5B is one past 'Z', outside A–Z.
        assert!(!BIN_MAGIC.is_ascii_uppercase());
        assert_eq!(BIN_MAGIC, b'Z' + 1);
    }

    #[test]
    fn request_frame_roundtrip() {
        let records = [("app-000001", 0u64), ("café-功能", u64::MAX), ("x", 42)];
        let mut out = Vec::new();
        encode_request_frame(&mut out, &records);
        assert_eq!(out[0], BIN_MAGIC);
        match decode_request_frame(&out) {
            FrameDecode::Request {
                records: r,
                version,
                trace,
                consumed,
            } => {
                assert_eq!(consumed, out.len());
                assert_eq!(version, BIN_VERSION);
                assert_eq!(trace, None);
                assert_eq!(r.len(), 3);
                assert_eq!(
                    r[0],
                    BinInvoke {
                        tenant: 0,
                        app: "app-000001".into(),
                        ts: 0
                    }
                );
                assert_eq!(r[1].app, "café-功能");
                assert_eq!(r[1].ts, u64::MAX);
                assert_eq!((r[2].app.as_str(), r[2].ts), ("x", 42));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn v2_request_frame_roundtrips_tenant_ids() {
        let records = [
            (0u16, "app-000001", 7u64),
            (513, "café", 9),
            (u16::MAX, "x", 0),
        ];
        let mut out = Vec::new();
        encode_request_frame_v2(&mut out, &records);
        assert_eq!(out[1], BIN_VERSION_2);
        match decode_request_frame(&out) {
            FrameDecode::Request {
                records: r,
                version,
                trace,
                consumed,
            } => {
                assert_eq!(version, BIN_VERSION_2);
                assert_eq!(trace, None, "traceless v2 must stay traceless");
                assert_eq!(consumed, out.len());
                for ((tenant, app, ts), got) in records.iter().zip(&r) {
                    assert_eq!(got.tenant, *tenant);
                    assert_eq!(got.app, *app);
                    assert_eq!(got.ts, *ts);
                }
            }
            other => panic!("{other:?}"),
        }
        // Every proper prefix is Incomplete, exactly like v1.
        for i in 0..out.len() {
            assert!(matches!(
                decode_request_frame(&out[..i]),
                FrameDecode::Incomplete
            ));
        }
        // A v2 count that cannot fit the 13-byte minimum records is
        // caught from the header alone.
        let mut f = Vec::new();
        frame_header(&mut f, BIN_VERSION_2, FRAME_REQUEST, 20, 2);
        match decode_request_frame(&f) {
            FrameDecode::Error { code, skip, .. } => {
                assert_eq!(code, BinErrorCode::Malformed);
                assert_eq!(skip, Some(BIN_HEADER_LEN + 20));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn traced_v2_frame_roundtrips_and_gates_on_version() {
        let records = [(1u16, "app-000001", 7u64), (2, "x", 9)];
        let trace_id = sitw_telemetry::TRACE_MARK | 0xBEEF;
        let mut out = Vec::new();
        encode_request_frame_v2_traced(&mut out, &records, trace_id);
        assert_eq!(out[2], FRAME_REQUEST | FRAME_FLAG_TRACE);
        match decode_request_frame(&out) {
            FrameDecode::Request {
                records: r,
                version,
                trace,
                consumed,
            } => {
                assert_eq!(version, BIN_VERSION_2);
                assert_eq!(trace, Some(trace_id));
                assert_eq!(consumed, out.len());
                assert_eq!(r.len(), 2);
                assert_eq!(
                    (r[0].tenant, r[0].app.as_str(), r[0].ts),
                    (1, "app-000001", 7)
                );
            }
            other => panic!("{other:?}"),
        }
        // A traceless encode of the same records is byte-identical to
        // the pre-flag wire format: strip the flag and the trace prefix
        // and the frames match except for the payload length.
        let mut plain = Vec::new();
        encode_request_frame_v2(&mut plain, &records);
        assert_eq!(
            &out[BIN_HEADER_LEN + TRACE_FIELD_LEN..],
            &plain[BIN_HEADER_LEN..]
        );
        // Every proper prefix is Incomplete.
        for i in 0..out.len() {
            assert!(matches!(
                decode_request_frame(&out[..i]),
                FrameDecode::Incomplete
            ));
        }
        // The flag is v2-only: the same frame relabelled v1 is a
        // recoverable malformed frame, not a misparse.
        let mut v1 = out.clone();
        v1[1] = BIN_VERSION;
        match decode_request_frame(&v1) {
            FrameDecode::Error { code, detail, skip } => {
                assert_eq!(code, BinErrorCode::Malformed);
                assert!(
                    detail.contains("trace flag requires protocol v2"),
                    "{detail}"
                );
                assert_eq!(skip, Some(v1.len()));
            }
            other => panic!("{other:?}"),
        }
        // A traced header whose payload cannot even hold the trace id
        // is caught from the header alone.
        let mut f = Vec::new();
        frame_header(
            &mut f,
            BIN_VERSION_2,
            FRAME_REQUEST | FRAME_FLAG_TRACE,
            4,
            0,
        );
        match decode_request_frame(&f) {
            FrameDecode::Error { code, .. } => assert_eq!(code, BinErrorCode::Malformed),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_request_frame_roundtrips() {
        let mut out = Vec::new();
        encode_request_frame(&mut out, &[]);
        assert_eq!(out.len(), BIN_HEADER_LEN);
        match decode_request_frame(&out) {
            FrameDecode::Request {
                records, consumed, ..
            } => {
                assert!(records.is_empty());
                assert_eq!(consumed, BIN_HEADER_LEN);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn every_proper_prefix_is_incomplete() {
        let mut frame = Vec::new();
        encode_request_frame(&mut frame, &[("app-000001", 123), ("β-app", 456)]);
        for i in 0..frame.len() {
            assert!(
                matches!(decode_request_frame(&frame[..i]), FrameDecode::Incomplete),
                "prefix of {i} bytes must be Incomplete"
            );
        }
        // Trailing extra bytes are a second frame, not part of this one.
        let mut extended = frame.clone();
        extended.extend_from_slice(&[BIN_MAGIC, 0xFF, 0xFF]);
        match decode_request_frame(&extended) {
            FrameDecode::Request { consumed, .. } => assert_eq!(consumed, frame.len()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn request_decode_rejects_bad_frames() {
        // Bad version: unrecoverable.
        let mut f = Vec::new();
        encode_request_frame(&mut f, &[("a", 1)]);
        f[1] = 9;
        match decode_request_frame(&f) {
            FrameDecode::Error { code, skip, .. } => {
                assert_eq!(code, BinErrorCode::BadVersion);
                assert!(skip.is_none());
            }
            other => panic!("{other:?}"),
        }

        // Oversized payload: unrecoverable.
        let mut f = Vec::new();
        frame_header(&mut f, BIN_VERSION, FRAME_REQUEST, MAX_FRAME_PAYLOAD + 1, 1);
        match decode_request_frame(&f) {
            FrameDecode::Error { code, skip, .. } => {
                assert_eq!(code, BinErrorCode::Oversized);
                assert!(skip.is_none());
            }
            other => panic!("{other:?}"),
        }

        // Oversized batch with an intact envelope: skippable.
        let mut f = Vec::new();
        frame_header(&mut f, BIN_VERSION, FRAME_REQUEST, 4, MAX_BATCH + 1);
        f.extend_from_slice(&[0u8; 4]);
        match decode_request_frame(&f) {
            FrameDecode::Error { code, skip, .. } => {
                assert_eq!(code, BinErrorCode::Oversized);
                assert_eq!(skip, Some(BIN_HEADER_LEN + 4));
            }
            other => panic!("{other:?}"),
        }

        // Count that cannot fit the payload: caught from the header.
        let mut f = Vec::new();
        frame_header(&mut f, BIN_VERSION, FRAME_REQUEST, 12, 1000);
        match decode_request_frame(&f) {
            FrameDecode::Error { code, skip, .. } => {
                assert_eq!(code, BinErrorCode::Malformed);
                assert_eq!(skip, Some(BIN_HEADER_LEN + 12));
            }
            other => panic!("{other:?}"),
        }

        // Regression: count=2 passes the aggregate minimum-size check
        // (payload_len = 22 = 2 × 11), but record 0 declares app_len=12
        // and consumes all 22 bytes — record 1's app_len read used to
        // index past the payload and panic the connection thread.
        let mut payload = vec![12u8, 0];
        payload.extend_from_slice(b"aaaaaaaaaaaa");
        payload.extend_from_slice(&7u64.to_le_bytes());
        assert_eq!(payload.len(), 22);
        let mut f = Vec::new();
        frame_header(&mut f, BIN_VERSION, FRAME_REQUEST, payload.len(), 2);
        f.extend_from_slice(&payload);
        match decode_request_frame(&f) {
            FrameDecode::Error { code, skip, .. } => {
                assert_eq!(code, BinErrorCode::Malformed);
                assert_eq!(skip, Some(f.len()));
            }
            other => panic!("{other:?}"),
        }

        // Record-level malformations: empty app, overrun, bad UTF-8,
        // trailing bytes — all skippable.
        let cases: Vec<Vec<u8>> = vec![
            {
                // app_len = 0.
                let mut p = vec![0u8, 0];
                p.extend_from_slice(&7u64.to_le_bytes());
                p
            },
            {
                // app_len overruns the payload.
                let mut p = vec![200u8, 0, b'a'];
                p.extend_from_slice(&7u64.to_le_bytes());
                p
            },
            {
                // Invalid UTF-8 app bytes.
                let mut p = vec![2u8, 0, 0xFF, 0xFE];
                p.extend_from_slice(&7u64.to_le_bytes());
                p
            },
            {
                // Trailing garbage after the declared record.
                let mut p = vec![1u8, 0, b'a'];
                p.extend_from_slice(&7u64.to_le_bytes());
                p.extend_from_slice(b"junk");
                p
            },
        ];
        for payload in cases {
            let mut f = Vec::new();
            frame_header(&mut f, BIN_VERSION, FRAME_REQUEST, payload.len(), 1);
            f.extend_from_slice(&payload);
            match decode_request_frame(&f) {
                FrameDecode::Error { code, skip, .. } => {
                    assert_eq!(code, BinErrorCode::Malformed, "{payload:?}");
                    assert_eq!(skip, Some(f.len()), "{payload:?}");
                }
                other => panic!("{payload:?} → {other:?}"),
            }
        }
    }

    #[test]
    fn reply_frame_roundtrip_including_errors_and_saturation() {
        let results: Vec<Result<Decision, InvokeError>> = vec![
            Ok(Decision {
                cold: true,
                prewarm_load: false,
                evicted: false,
                kind: DecisionKind::Histogram,
                windows: Windows::pre_warmed(120_000, 600_000),
            }),
            Err(InvokeError::OutOfOrder {
                last_ts: u64::MAX - 5,
            }),
            Ok(Decision {
                cold: false,
                prewarm_load: true,
                evicted: true, // Dropped on the v1 wire (reserved bit).
                kind: DecisionKind::Static,
                // Saturates: the wire says u32::MAX, i.e. "never".
                windows: Windows::keep_loaded(u64::MAX),
            }),
        ];
        let mut out = Vec::new();
        encode_reply_frame(&mut out, BIN_VERSION, &results);
        assert_eq!(out.len(), BIN_HEADER_LEN + 3 * REPLY_RECORD_LEN);
        match decode_server_frame(&out) {
            ServerFrameDecode::Reply { records, consumed } => {
                assert_eq!(consumed, out.len());
                assert_eq!(
                    records[0],
                    BinReply::Verdict {
                        cold: true,
                        prewarm_load: false,
                        evicted: false,
                        kind: DecisionKind::Histogram,
                        pre_warm_ms: 120_000,
                        keep_alive_ms: 600_000,
                    }
                );
                assert_eq!(
                    records[1],
                    BinReply::OutOfOrder {
                        last_ts: u64::MAX - 5
                    }
                );
                assert_eq!(
                    records[2],
                    BinReply::Verdict {
                        cold: false,
                        prewarm_load: true,
                        evicted: false, // v1 cannot carry the bit.
                        kind: DecisionKind::Static,
                        pre_warm_ms: 0,
                        keep_alive_ms: u32::MAX,
                    }
                );
            }
            other => panic!("{other:?}"),
        }
        // Every proper prefix of the reply is Incomplete, too.
        for i in 0..out.len() {
            assert!(matches!(
                decode_server_frame(&out[..i]),
                ServerFrameDecode::Incomplete
            ));
        }
    }

    #[test]
    fn error_frame_roundtrip_and_truncation() {
        let mut out = Vec::new();
        encode_error_frame(&mut out, BinErrorCode::Oversized, "too big");
        match decode_server_frame(&out) {
            ServerFrameDecode::Error {
                code,
                detail,
                consumed,
            } => {
                assert_eq!(code, BinErrorCode::Oversized);
                assert_eq!(detail, "too big");
                assert_eq!(consumed, out.len());
            }
            other => panic!("{other:?}"),
        }
        // Long details truncate on a char boundary.
        let long = "é".repeat(300);
        let mut out = Vec::new();
        encode_error_frame(&mut out, BinErrorCode::Malformed, &long);
        match decode_server_frame(&out) {
            ServerFrameDecode::Error { detail, .. } => {
                assert!(detail.len() <= 256);
                assert!(detail.chars().all(|c| c == 'é'));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn all_decision_kinds_roundtrip_through_verdict_bits() {
        use sitw_core::DecisionKind::*;
        for k in [Histogram, StandardKeepAlive, Arima, Static] {
            assert_eq!(kind_from_bits(kind_to_bits(k)), k);
        }
    }

    // ---- Cluster control frames ----

    #[test]
    fn control_report_request_roundtrips() {
        let mut out = Vec::new();
        encode_control_frame(&mut out, &ControlRequest::Report);
        match decode_request_frame(&out) {
            FrameDecode::Control { req, consumed } => {
                assert_eq!(req, ControlRequest::Report);
                assert_eq!(consumed, out.len());
            }
            other => panic!("{other:?}"),
        }
        for i in 0..out.len() {
            assert!(matches!(
                decode_request_frame(&out[..i]),
                FrameDecode::Incomplete
            ));
        }
    }

    #[test]
    fn control_budget_set_roundtrips() {
        let shares = vec![
            ("acme".to_owned(), 4096u64),
            ("café".to_owned(), 0),
            ("t7".to_owned(), u64::MAX),
        ];
        let mut out = Vec::new();
        encode_control_frame(&mut out, &ControlRequest::BudgetSet(shares.clone()));
        match decode_request_frame(&out) {
            FrameDecode::Control { req, consumed } => {
                assert_eq!(req, ControlRequest::BudgetSet(shares));
                assert_eq!(consumed, out.len());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn control_decode_rejects_malformed_payloads() {
        // Unknown op, truncated records, trailing bytes: all skippable
        // (the envelope is intact), so the connection survives.
        let cases: Vec<Vec<u8>> = vec![
            vec![99],                       // Unknown op.
            vec![CTRL_REPORT, 1],           // Report with body.
            vec![CTRL_BUDGET_SET, 5],       // Truncated record.
            vec![CTRL_BUDGET_SET, 0, 0, 0], // Zero-length name.
        ];
        for (k, payload) in cases.into_iter().enumerate() {
            let count = if payload[0] == CTRL_BUDGET_SET { 1 } else { 0 };
            let mut f = Vec::new();
            frame_header(&mut f, BIN_VERSION_2, FRAME_CONTROL, payload.len(), count);
            f.extend_from_slice(&payload);
            match decode_request_frame(&f) {
                FrameDecode::Error { code, skip, .. } => {
                    assert_eq!(code, BinErrorCode::Malformed, "case {k}");
                    assert_eq!(skip, Some(f.len()), "case {k}");
                }
                other => panic!("case {k} → {other:?}"),
            }
        }
    }

    #[test]
    fn control_report_reply_roundtrips() {
        let tenants = vec![
            TenantUsage {
                name: "default".into(),
                budget_mb: 0,
                warm_mb: 123,
                evictions: 0,
                idle_mb_ms: u64::MAX,
                invocations: 10_000,
            },
            TenantUsage {
                name: "acme".into(),
                budget_mb: 4096,
                warm_mb: 4095,
                evictions: 17,
                idle_mb_ms: 5,
                invocations: 1,
            },
        ];
        let mut out = Vec::new();
        encode_control_reply(&mut out, &ControlReply::Report(tenants.clone()));
        match decode_server_frame(&out) {
            ServerFrameDecode::Control { reply, consumed } => {
                assert_eq!(reply, ControlReply::Report(tenants));
                assert_eq!(consumed, out.len());
            }
            other => panic!("{other:?}"),
        }
        for i in 0..out.len() {
            assert!(matches!(
                decode_server_frame(&out[..i]),
                ServerFrameDecode::Incomplete
            ));
        }
    }

    #[test]
    fn control_budget_ack_roundtrips() {
        let mut out = Vec::new();
        encode_control_reply(&mut out, &ControlReply::BudgetAck { applied: 42 });
        match decode_server_frame(&out) {
            ServerFrameDecode::Control { reply, .. } => {
                assert_eq!(reply, ControlReply::BudgetAck { applied: 42 });
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn throttled_records_roundtrip_through_reencoder() {
        // The router's reassembly path: re-encode a mix of decoded
        // verdicts, an out-of-order rejection, and a locally generated
        // throttle, then decode it as a client would.
        let records = vec![
            BinReply::Verdict {
                cold: true,
                prewarm_load: false,
                evicted: true,
                kind: DecisionKind::Histogram,
                pre_warm_ms: 7,
                keep_alive_ms: 9,
            },
            BinReply::Throttled,
            BinReply::OutOfOrder { last_ts: 55 },
        ];
        let mut out = Vec::new();
        encode_reply_records(&mut out, BIN_VERSION_2, &records);
        match decode_server_frame(&out) {
            ServerFrameDecode::Reply {
                records: got,
                consumed,
            } => {
                assert_eq!(got, records);
                assert_eq!(consumed, out.len());
            }
            other => panic!("{other:?}"),
        }
        // Byte-for-byte inverse of the daemon's own encoder: a frame
        // decoded and re-encoded is the identical frame.
        let mut results_frame = Vec::new();
        encode_reply_frame(
            &mut results_frame,
            BIN_VERSION_2,
            &[
                Ok(Decision {
                    cold: false,
                    prewarm_load: true,
                    evicted: false,
                    kind: DecisionKind::Arima,
                    windows: sitw_core::Windows::pre_warmed(1, 2),
                }),
                Err(InvokeError::OutOfOrder { last_ts: 3 }),
            ],
        );
        let ServerFrameDecode::Reply { records, .. } = decode_server_frame(&results_frame) else {
            panic!("reply expected");
        };
        let mut reencoded = Vec::new();
        encode_reply_records(&mut reencoded, BIN_VERSION_2, &records);
        assert_eq!(reencoded, results_frame);
    }

    #[test]
    fn unavailable_error_code_roundtrips() {
        let mut out = Vec::new();
        encode_error_frame(&mut out, BinErrorCode::Unavailable, "node n1 down");
        match decode_server_frame(&out) {
            ServerFrameDecode::Error { code, detail, .. } => {
                assert_eq!(code, BinErrorCode::Unavailable);
                assert_eq!(detail, "node n1 down");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(BinErrorCode::from_u8(4), Some(BinErrorCode::Unavailable));
    }

    #[test]
    fn repl_ack_decodes_as_control_pull() {
        let mut out = Vec::new();
        encode_repl_ack(&mut out, 42);
        match decode_request_frame(&out) {
            FrameDecode::Control { req, consumed } => {
                assert_eq!(req, ControlRequest::ReplPull { epoch: 42 });
                assert_eq!(consumed, out.len());
            }
            other => panic!("{other:?}"),
        }
        // Every proper prefix is Incomplete, never an error.
        for cut in 0..out.len() {
            assert!(
                matches!(decode_request_frame(&out[..cut]), FrameDecode::Incomplete),
                "prefix {cut} must be incomplete"
            );
        }
        // A malformed ack (wrong payload length) is skippable: the
        // envelope is intact, so the connection survives.
        let mut bad = Vec::new();
        frame_header(&mut bad, BIN_VERSION_2, FRAME_REPL_ACK, 4, 0);
        bad.extend_from_slice(&7u32.to_le_bytes());
        match decode_request_frame(&bad) {
            FrameDecode::Error { code, skip, .. } => {
                assert_eq!(code, BinErrorCode::Malformed);
                assert_eq!(skip, Some(bad.len()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn repl_round_chunks_and_commits() {
        // A document larger than one chunk splits into ordered chunks
        // plus a commit; concatenated chunk bodies equal the document.
        let doc: Vec<u8> = (0..(REPL_CHUNK_BYTES + 777))
            .map(|i| (i % 251) as u8)
            .collect();
        let mut out = Vec::new();
        encode_repl_round(&mut out, FRAME_REPL_DELTA, 9, &doc);
        let mut buf = &out[..];
        let mut assembled = Vec::new();
        let mut committed = None;
        let mut next_seq = 0u32;
        loop {
            match decode_server_frame(buf) {
                ServerFrameDecode::ReplChunk {
                    full_sync,
                    epoch,
                    seq,
                    last,
                    data,
                    consumed,
                } => {
                    assert!(!full_sync);
                    assert_eq!(epoch, 9);
                    assert_eq!(seq, next_seq);
                    next_seq += 1;
                    assert_eq!(last, seq == 1, "two chunks expected");
                    assembled.extend_from_slice(&data);
                    buf = &buf[consumed..];
                }
                ServerFrameDecode::ReplCommit { epoch, consumed } => {
                    committed = Some(epoch);
                    buf = &buf[consumed..];
                    break;
                }
                other => panic!("{other:?}"),
            }
        }
        assert!(buf.is_empty());
        assert_eq!(assembled, doc);
        assert_eq!(committed, Some(9));
        // Every proper prefix of the stream is Incomplete.
        for cut in 0..BIN_HEADER_LEN + REPL_CHUNK_HEADER {
            assert!(matches!(
                decode_server_frame(&out[..cut]),
                ServerFrameDecode::Incomplete
            ));
        }
    }

    #[test]
    fn repl_empty_round_is_lone_commit() {
        let mut out = Vec::new();
        encode_repl_round(&mut out, FRAME_REPL_SYNC, 3, &[]);
        match decode_server_frame(&out) {
            ServerFrameDecode::ReplCommit { epoch, consumed } => {
                assert_eq!(epoch, 3);
                assert_eq!(consumed, out.len());
            }
            other => panic!("{other:?}"),
        }
        // Sync chunks decode with the full_sync marker set.
        let mut sync = Vec::new();
        encode_repl_chunk(&mut sync, FRAME_REPL_SYNC, 1, 0, true, b"abc");
        match decode_server_frame(&sync) {
            ServerFrameDecode::ReplChunk {
                full_sync,
                last,
                data,
                ..
            } => {
                assert!(full_sync && last);
                assert_eq!(data, b"abc");
            }
            other => panic!("{other:?}"),
        }
    }
}
