//! Percentiles over plain and weighted samples.
//!
//! §3.1 of the paper explains that execution-time and memory distributions
//! are reconstructed from aggregated `(average, count)` records by keeping
//! *weighted percentiles*: "if we see an average time of 100ms over 45
//! samples, the resulting percentiles are equivalent to those computed over
//! a distribution where 100ms are replicated 45 times".

/// Linear-interpolation percentile over a **sorted** slice.
///
/// Uses the "linear" method (NumPy default): rank `h = p/100 * (n-1)`,
/// interpolating between the two nearest order statistics. `p` is clamped
/// to `[0, 100]`.
///
/// # Panics
///
/// Panics if `xs` is empty.
///
/// # Examples
///
/// ```
/// use sitw_stats::percentile_sorted;
///
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile_sorted(&xs, 0.0), 1.0);
/// assert_eq!(percentile_sorted(&xs, 50.0), 2.5);
/// assert_eq!(percentile_sorted(&xs, 100.0), 4.0);
/// ```
pub fn percentile_sorted(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    let p = p.clamp(0.0, 100.0);
    if xs.len() == 1 {
        return xs[0];
    }
    let h = p / 100.0 * (xs.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        xs[lo]
    } else {
        let frac = h - lo as f64;
        xs[lo] * (1.0 - frac) + xs[hi] * frac
    }
}

/// Sorts a copy of `xs` and evaluates several percentiles at once.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn percentiles_of(xs: &[f64], ps: &[f64]) -> Vec<f64> {
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    ps.iter().map(|&p| percentile_sorted(&sorted, p)).collect()
}

/// Median convenience wrapper.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn median(xs: &[f64]) -> f64 {
    percentiles_of(xs, &[50.0])[0]
}

/// A collection of `(value, weight)` samples supporting weighted
/// percentiles, as used to rebuild full distributions from the trace's
/// aggregated records.
///
/// Weights need not be integers; any non-negative weight works. Zero-weight
/// entries are accepted and ignored.
///
/// # Examples
///
/// ```
/// use sitw_stats::WeightedSamples;
///
/// let mut ws = WeightedSamples::new();
/// ws.push(100.0, 45.0); // an average of 100ms observed over 45 samples
/// ws.push(500.0, 5.0);
/// assert_eq!(ws.percentile(50.0), 100.0);
/// assert_eq!(ws.percentile(99.0), 500.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct WeightedSamples {
    entries: Vec<(f64, f64)>,
    total_weight: f64,
    sorted: bool,
}

impl WeightedSamples {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a collection from `(value, weight)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (f64, f64)>) -> Self {
        let mut ws = Self::new();
        for (v, w) in pairs {
            ws.push(v, w);
        }
        ws
    }

    /// Adds a value with the given weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or not finite, or `value` is NaN.
    pub fn push(&mut self, value: f64, weight: f64) {
        assert!(
            weight >= 0.0 && weight.is_finite(),
            "weight must be finite and non-negative"
        );
        assert!(!value.is_nan(), "value must not be NaN");
        if weight == 0.0 {
            return;
        }
        self.entries.push((value, weight));
        self.total_weight += weight;
        self.sorted = false;
    }

    /// Number of distinct entries (not the total weight).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries have been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sum of all weights.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Weighted mean of the values; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        let sum: f64 = self.entries.iter().map(|(v, w)| v * w).sum();
        Some(sum / self.total_weight)
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.entries.sort_by(|a, b| a.0.total_cmp(&b.0));
            self.sorted = true;
        }
    }

    /// The weighted `p`-th percentile (`0 ≤ p ≤ 100`).
    ///
    /// Returns the smallest value `v` such that the cumulative weight of
    /// entries `≤ v` reaches `p`% of the total weight — i.e. the
    /// inverse-CDF ("lower" convention), which is exact for the replicated-
    /// samples interpretation in the paper.
    ///
    /// # Panics
    ///
    /// Panics if the collection is empty.
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!(!self.is_empty(), "percentile of empty weighted samples");
        let p = p.clamp(0.0, 100.0);
        self.ensure_sorted();
        let target = p / 100.0 * self.total_weight;
        let mut cum = 0.0;
        for &(v, w) in &self.entries {
            cum += w;
            if cum >= target {
                return v;
            }
        }
        self.entries.last().unwrap().0
    }

    /// Evaluates several percentiles at once (single sort).
    ///
    /// # Panics
    ///
    /// Panics if the collection is empty.
    pub fn percentiles(&mut self, ps: &[f64]) -> Vec<f64> {
        ps.iter().map(|&p| self.percentile(p)).collect()
    }

    /// Produces `(value, cumulative_fraction)` points of the weighted CDF,
    /// suitable for plotting.
    pub fn cdf_points(&mut self) -> Vec<(f64, f64)> {
        self.ensure_sorted();
        let mut out = Vec::with_capacity(self.entries.len());
        let mut cum = 0.0;
        for &(v, w) in &self.entries {
            cum += w;
            out.push((v, cum / self.total_weight));
        }
        out
    }

    /// Merges another collection into this one.
    pub fn merge(&mut self, other: &WeightedSamples) {
        self.entries.extend_from_slice(&other.entries);
        self.total_weight += other.total_weight;
        self.sorted = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_endpoints() {
        let xs = [10.0, 20.0, 30.0];
        assert_eq!(percentile_sorted(&xs, 0.0), 10.0);
        assert_eq!(percentile_sorted(&xs, 100.0), 30.0);
        assert_eq!(percentile_sorted(&xs, 50.0), 20.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(percentile_sorted(&xs, 25.0), 2.5);
        assert_eq!(percentile_sorted(&xs, 75.0), 7.5);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile_sorted(&[7.0], 33.0), 7.0);
    }

    #[test]
    fn percentile_clamps_out_of_range() {
        let xs = [1.0, 2.0];
        assert_eq!(percentile_sorted(&xs, -5.0), 1.0);
        assert_eq!(percentile_sorted(&xs, 150.0), 2.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile_sorted(&[], 50.0);
    }

    #[test]
    fn percentiles_of_unsorted_input() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        let ps = percentiles_of(&xs, &[0.0, 50.0, 100.0]);
        assert_eq!(ps, vec![1.0, 3.0, 5.0]);
        assert_eq!(median(&xs), 3.0);
    }

    #[test]
    fn weighted_replication_equivalence() {
        // Weighted percentiles must equal plain percentiles over the
        // replicated data (the paper's §3.1 construction).
        let mut ws = WeightedSamples::new();
        ws.push(100.0, 45.0);
        ws.push(500.0, 5.0);

        let mut replicated: Vec<f64> = Vec::new();
        replicated.extend(std::iter::repeat_n(100.0, 45));
        replicated.extend(std::iter::repeat_n(500.0, 5));
        replicated.sort_by(f64::total_cmp);

        for p in [1.0, 10.0, 50.0, 89.0, 90.0, 95.0, 99.0] {
            let w = ws.percentile(p);
            // The inverse-CDF convention picks an actual sample value.
            assert!(
                replicated.contains(&w),
                "weighted percentile {p} produced non-sample value {w}"
            );
        }
        assert_eq!(ws.percentile(90.0), 100.0);
        assert_eq!(ws.percentile(91.0), 500.0);
    }

    #[test]
    fn weighted_mean() {
        let mut ws = WeightedSamples::new();
        ws.push(10.0, 1.0);
        ws.push(20.0, 3.0);
        assert_eq!(ws.mean(), Some(17.5));
    }

    #[test]
    fn weighted_zero_weight_ignored() {
        let mut ws = WeightedSamples::new();
        ws.push(999.0, 0.0);
        assert!(ws.is_empty());
        ws.push(1.0, 2.0);
        assert_eq!(ws.percentile(50.0), 1.0);
    }

    #[test]
    fn weighted_cdf_points_monotone() {
        let mut ws = WeightedSamples::from_pairs([(3.0, 1.0), (1.0, 2.0), (2.0, 1.0)]);
        let pts = ws.cdf_points();
        assert_eq!(pts.len(), 3);
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_merge() {
        let mut a = WeightedSamples::from_pairs([(1.0, 1.0)]);
        let b = WeightedSamples::from_pairs([(2.0, 3.0)]);
        a.merge(&b);
        assert_eq!(a.total_weight(), 4.0);
        assert_eq!(a.percentile(100.0), 2.0);
    }

    #[test]
    fn weighted_fractional_weights() {
        let mut ws = WeightedSamples::from_pairs([(1.0, 0.5), (2.0, 0.5)]);
        assert_eq!(ws.percentile(50.0), 1.0);
        assert_eq!(ws.percentile(51.0), 2.0);
    }
}
