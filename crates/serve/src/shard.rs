//! Shard workers: each worker thread exclusively owns the per-application
//! policy state for its hash slice of the app space.
//!
//! The decision path is lock-free by construction — connection threads
//! hash the app id to a shard and exchange messages over `mpsc`
//! channels, so a shard's `HashMap` of policies is touched by exactly
//! one thread. This is the same isolation argument the sweep driver
//! makes for parallel simulation: applications are independent under
//! every policy (§5.1), so partitioning them partitions all state.

use std::collections::HashMap;
use std::sync::mpsc::{Receiver, Sender};
use std::time::Instant;

use sitw_core::{
    AppKey, AppPolicy, DecisionKind, FixedKeepAlive, HybridPolicy, NoUnloading, ProductionManager,
    Windows,
};
use sitw_sim::PolicySpec;
use sitw_stats::StreamingPercentiles;

use crate::metrics::ShardStats;
use crate::snapshot::{AppRecord, PolicyState, ShardExport};

/// Latency quantiles the shard tracks (P², O(1) memory per quantile).
pub const LATENCY_QUANTILES: [f64; 3] = [0.50, 0.95, 0.99];

/// A concrete per-application policy instance.
///
/// An enum rather than `Box<dyn AppPolicy>` for two reasons: decisions
/// dispatch without a vtable on the hot path, and snapshot export can
/// match on the variant instead of downcasting.
// The hybrid variant dominates the size, but hybrid is also the policy
// every realistic deployment serves — boxing it would add a pointer
// chase per decision to shrink the two baseline variants nobody runs.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum ServedPolicy {
    /// Fixed keep-alive baseline.
    Fixed(FixedKeepAlive),
    /// Never unload.
    NoUnload(NoUnloading),
    /// The hybrid histogram policy.
    Hybrid(HybridPolicy),
    /// Production-manager mode (§6): the per-app state lives in the
    /// shard's fleet-wide [`ProductionManager`]; this variant holds the
    /// app's key into it plus the branch that served its last decision.
    Production {
        /// Key of this app inside the shard's manager.
        key: AppKey,
        /// The branch that produced the most recent decision.
        last: DecisionKind,
    },
}

impl ServedPolicy {
    /// Creates a fresh instance for one application under `spec`.
    ///
    /// # Panics
    ///
    /// Panics for [`PolicySpec::Production`]: production apps are
    /// registered with the shard's manager (see [`ShardWorker::invoke`]),
    /// not built standalone.
    pub fn new(spec: &PolicySpec) -> ServedPolicy {
        match spec {
            PolicySpec::Fixed(f) => ServedPolicy::Fixed(*f),
            PolicySpec::NoUnloading => ServedPolicy::NoUnload(NoUnloading),
            PolicySpec::Hybrid(cfg) => ServedPolicy::Hybrid(HybridPolicy::new(cfg.clone())),
            PolicySpec::Production(_) => {
                unreachable!("production apps are created by the shard's manager")
            }
        }
    }

    fn on_invocation(&mut self, idle_time_ms: Option<u64>) -> Windows {
        match self {
            ServedPolicy::Fixed(p) => p.on_invocation(idle_time_ms),
            ServedPolicy::NoUnload(p) => p.on_invocation(idle_time_ms),
            ServedPolicy::Hybrid(p) => p.on_invocation(idle_time_ms),
            ServedPolicy::Production { .. } => {
                unreachable!("production decisions go through the shard's manager")
            }
        }
    }

    fn last_decision(&self) -> DecisionKind {
        match self {
            ServedPolicy::Fixed(p) => p.last_decision(),
            ServedPolicy::NoUnload(p) => p.last_decision(),
            ServedPolicy::Hybrid(p) => p.last_decision(),
            ServedPolicy::Production { last, .. } => *last,
        }
    }
}

/// Shard-local production state: one fleet-wide manager covering the
/// shard's hash slice of the app space, plus §6 bookkeeping counters.
struct ProductionShard {
    manager: ProductionManager,
    /// Next key to hand to a newly seen app. Keys are shard-local and
    /// never serialized — snapshots are app-id-keyed, so a restore (even
    /// with a different shard count) just re-assigns them.
    next_key: AppKey,
    /// Pre-warm events scheduled so far (each one `prewarm_slack_ms`
    /// before the computed window, per §6).
    prewarm_scheduled: u64,
}

impl ProductionShard {
    fn decide(&mut self, key: AppKey, ts: u64, idle: Option<u64>) -> (Windows, DecisionKind) {
        let (windows, kind) = self.manager.on_invocation(key, ts, idle);
        // An unload/pre-warm cycle means a pre-warm event was put on the
        // schedule (fired 90 s early, off the critical path).
        if windows.pre_warm_ms > 0 {
            self.prewarm_scheduled += 1;
        }
        (windows, kind)
    }
}

/// One keep-alive decision, as returned to a client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// The invocation found no loaded image.
    pub cold: bool,
    /// A pre-warm load occurred in the gap ending at this invocation.
    pub prewarm_load: bool,
    /// The policy branch that produced the new windows.
    pub kind: DecisionKind,
    /// Windows governing the gap until the app's next invocation.
    pub windows: Windows,
}

/// Why an invocation was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvokeError {
    /// The timestamp is older than the app's last accepted one. Policy
    /// state is a function of the ordered idle-time stream, so
    /// out-of-order delivery must be surfaced, not silently folded in.
    OutOfOrder {
        /// The app's last accepted timestamp.
        last_ts: u64,
    },
}

/// A reply to one `Invoke` message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvokeReply {
    /// Echo of the request's sequence number (responses from different
    /// shards interleave on the reply channel; the connection reorders).
    pub seq: u64,
    /// The decision or the rejection.
    pub result: Result<Decision, InvokeError>,
}

/// One record of a batched invoke: the frame-relative index plus the
/// invocation itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchItem {
    /// Position of this record in its frame (replies are reassembled in
    /// frame order across shards).
    pub idx: u32,
    /// Application id.
    pub app: String,
    /// Invocation timestamp (trace milliseconds).
    pub ts: u64,
}

/// A shard's answers to one [`ShardMsg::InvokeBatch`]: `(idx, result)`
/// pairs in submission order.
#[derive(Debug)]
pub struct BatchReply {
    /// One result per submitted item, tagged with its frame index.
    pub results: Vec<(u32, Result<Decision, InvokeError>)>,
}

/// Messages a shard worker accepts.
pub enum ShardMsg {
    /// One invocation to classify.
    Invoke {
        /// Application id.
        app: String,
        /// Invocation timestamp (trace milliseconds).
        ts: u64,
        /// Client-side sequence number echoed in the reply.
        seq: u64,
        /// Where to send the reply.
        reply: Sender<InvokeReply>,
    },
    /// A whole frame slice in one mpsc hop: every record of a SITW-BIN
    /// frame that hashed to this shard. Amortizes mailbox and wake costs
    /// across the batch — the point of the binary protocol.
    InvokeBatch {
        /// The shard's slice of the frame, in frame order.
        items: Vec<BatchItem>,
        /// Where to send the batched reply.
        reply: Sender<BatchReply>,
    },
    /// Report counters and latency percentiles.
    Scrape(Sender<ShardStats>),
    /// Export the complete per-app state.
    Snapshot(Sender<ShardExport>),
    /// Drain and exit; the worker returns its final state to `join`.
    Shutdown,
}

/// Per-application serving state.
struct AppState {
    policy: ServedPolicy,
    windows: Windows,
    last_ts: u64,
}

/// The state owned by one shard worker thread.
pub struct ShardWorker {
    id: usize,
    spec: PolicySpec,
    apps: HashMap<String, AppState>,
    /// `Some` iff `spec` is [`PolicySpec::Production`].
    production: Option<ProductionShard>,
    invocations: u64,
    cold: u64,
    prewarm_loads: u64,
    out_of_order: u64,
    latency: StreamingPercentiles,
}

impl ShardWorker {
    /// Creates a worker for shard `id`, optionally restoring state.
    ///
    /// `prod_clock` seeds the production manager's backup clock when
    /// restoring mid-stream (ignored for per-app policies).
    pub fn new(
        id: usize,
        spec: PolicySpec,
        restore: Vec<AppRecord>,
        prod_clock: Option<u64>,
    ) -> Result<Self, String> {
        let mut production = match &spec {
            PolicySpec::Production(cfg) => {
                let mut manager = ProductionManager::new(*cfg);
                if let Some(at_ms) = prod_clock {
                    manager.set_last_backup_ms(at_ms);
                }
                Some(ProductionShard {
                    manager,
                    next_key: 0,
                    prewarm_scheduled: 0,
                })
            }
            _ => None,
        };
        let mut apps = HashMap::with_capacity(restore.len().max(64));
        for rec in restore {
            let policy = match (rec.state, &mut production) {
                (PolicyState::Production { last, state }, Some(prod)) => {
                    let key = prod.next_key;
                    prod.next_key += 1;
                    prod.manager.import_app(key, state)?;
                    ServedPolicy::Production { key, last }
                }
                (state, _) => state.into_policy(&spec)?,
            };
            apps.insert(
                rec.app,
                AppState {
                    policy,
                    windows: rec.windows,
                    last_ts: rec.last_ts,
                },
            );
        }
        Ok(Self {
            id,
            spec,
            apps,
            production,
            invocations: 0,
            cold: 0,
            prewarm_loads: 0,
            out_of_order: 0,
            latency: StreamingPercentiles::for_quantiles(&LATENCY_QUANTILES),
        })
    }

    /// Classifies one invocation. Mirrors `sitw_sim::verdict_trace`
    /// exactly: both paths classify through
    /// [`sitw_core::Windows::classify_gap`] and then advance the policy.
    pub fn invoke(&mut self, app: &str, ts: u64) -> Result<Decision, InvokeError> {
        match self.apps.get_mut(app) {
            None => {
                // First invocation of this app: cold by definition (§5.1).
                let (policy, windows, kind) = match &mut self.production {
                    Some(prod) => {
                        let key = prod.next_key;
                        prod.next_key += 1;
                        let (windows, kind) = prod.decide(key, ts, None);
                        (ServedPolicy::Production { key, last: kind }, windows, kind)
                    }
                    None => {
                        let mut policy = ServedPolicy::new(&self.spec);
                        let windows = policy.on_invocation(None);
                        let kind = policy.last_decision();
                        (policy, windows, kind)
                    }
                };
                self.apps.insert(
                    app.to_owned(),
                    AppState {
                        policy,
                        windows,
                        last_ts: ts,
                    },
                );
                self.invocations += 1;
                self.cold += 1;
                Ok(Decision {
                    cold: true,
                    prewarm_load: false,
                    kind,
                    windows,
                })
            }
            Some(state) => {
                if ts < state.last_ts {
                    self.out_of_order += 1;
                    return Err(InvokeError::OutOfOrder {
                        last_ts: state.last_ts,
                    });
                }
                let idle = ts - state.last_ts;
                let outcome = state.windows.classify_gap(idle);
                state.windows = match (&mut self.production, &mut state.policy) {
                    (Some(prod), ServedPolicy::Production { key, last }) => {
                        let (windows, kind) = prod.decide(*key, ts, Some(idle));
                        *last = kind;
                        windows
                    }
                    (_, policy) => policy.on_invocation(Some(idle)),
                };
                state.last_ts = ts;
                self.invocations += 1;
                if outcome.cold {
                    self.cold += 1;
                }
                if outcome.prewarm_load {
                    self.prewarm_loads += 1;
                }
                Ok(Decision {
                    cold: outcome.cold,
                    prewarm_load: outcome.prewarm_load,
                    kind: state.policy.last_decision(),
                    windows: state.windows,
                })
            }
        }
    }

    /// Classifies a whole batch in order. Decisions are identical to
    /// calling [`ShardWorker::invoke`] per item — batching only changes
    /// transport cost, never outcomes. Latency is timed once for the
    /// batch and observed per record at the batch mean, so the P²
    /// quantiles stay invocation-weighted without an `Instant` syscall
    /// per record.
    pub fn invoke_batch(&mut self, items: Vec<BatchItem>) -> BatchReply {
        let n = items.len();
        let t0 = Instant::now();
        let results: Vec<(u32, Result<Decision, InvokeError>)> = items
            .into_iter()
            .map(|item| (item.idx, self.invoke(&item.app, item.ts)))
            .collect();
        if n > 0 {
            let per_record_us = t0.elapsed().as_nanos() as f64 / 1_000.0 / n as f64;
            for _ in 0..n {
                self.latency.observe(per_record_us);
            }
        }
        BatchReply { results }
    }

    fn stats(&self) -> ShardStats {
        ShardStats {
            shard: self.id,
            apps: self.apps.len() as u64,
            invocations: self.invocations,
            cold: self.cold,
            warm: self.invocations - self.cold,
            prewarm_loads: self.prewarm_loads,
            out_of_order: self.out_of_order,
            backups: self
                .production
                .as_ref()
                .map_or(0, |p| p.manager.backups_taken()),
            prewarm_scheduled: self.production.as_ref().map_or(0, |p| p.prewarm_scheduled),
            latency_us: self.latency.estimates(),
        }
    }

    fn export(&self) -> ShardExport {
        let mut apps: Vec<AppRecord> = self
            .apps
            .iter()
            .map(|(app, state)| AppRecord {
                app: app.clone(),
                last_ts: state.last_ts,
                windows: state.windows,
                state: match (&state.policy, &self.production) {
                    (ServedPolicy::Production { key, last }, Some(prod)) => {
                        PolicyState::Production {
                            last: *last,
                            state: prod.manager.export_app(*key).unwrap_or_default(),
                        }
                    }
                    (policy, _) => PolicyState::export(policy),
                },
            })
            .collect();
        apps.sort_by(|a, b| a.app.cmp(&b.app));
        ShardExport {
            apps,
            prod_clock: self.production.as_ref().map(|p| p.manager.last_backup_ms()),
        }
    }

    /// The worker loop: drains the mailbox until `Shutdown`, then
    /// returns the final per-app state (for the shutdown snapshot).
    pub fn run(mut self, mailbox: Receiver<ShardMsg>) -> ShardExport {
        while let Ok(msg) = mailbox.recv() {
            match msg {
                ShardMsg::Invoke {
                    app,
                    ts,
                    seq,
                    reply,
                } => {
                    let t0 = Instant::now();
                    let result = self.invoke(&app, ts);
                    self.latency
                        .observe(t0.elapsed().as_nanos() as f64 / 1_000.0);
                    // A dropped reply channel means the connection died;
                    // the decision was still applied, which is correct
                    // (the invocation happened).
                    let _ = reply.send(InvokeReply { seq, result });
                }
                ShardMsg::InvokeBatch { items, reply } => {
                    let _ = reply.send(self.invoke_batch(items));
                }
                ShardMsg::Scrape(reply) => {
                    let _ = reply.send(self.stats());
                }
                ShardMsg::Snapshot(reply) => {
                    let _ = reply.send(self.export());
                }
                ShardMsg::Shutdown => break,
            }
        }
        self.export()
    }
}

/// Maps an app id to its shard: FNV-1a over the id bytes, mod `shards`.
/// Stable across restarts (snapshots record app ids, not shard indexes,
/// so a restore can even change the shard count).
pub fn shard_of(app: &str, shards: usize) -> usize {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in app.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    (h % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitw_core::MINUTE_MS;

    fn worker(spec: PolicySpec) -> ShardWorker {
        ShardWorker::new(0, spec, Vec::new(), None).unwrap()
    }

    #[test]
    fn first_invocation_cold_then_warm_within_keep_alive() {
        let mut w = worker(PolicySpec::fixed_minutes(10));
        let d0 = w.invoke("a", 0).unwrap();
        assert!(d0.cold);
        let d1 = w.invoke("a", 5 * MINUTE_MS).unwrap();
        assert!(!d1.cold);
        let d2 = w.invoke("a", 30 * MINUTE_MS).unwrap();
        assert!(d2.cold, "25-minute gap exceeds the 10-minute keep-alive");
        assert_eq!(w.stats().invocations, 3);
        assert_eq!(w.stats().cold, 2);
    }

    #[test]
    fn apps_are_isolated() {
        let mut w = worker(PolicySpec::fixed_minutes(10));
        w.invoke("a", 0).unwrap();
        let db = w.invoke("b", MINUTE_MS).unwrap();
        assert!(db.cold, "b's first invocation is cold regardless of a");
        assert_eq!(w.stats().apps, 2);
    }

    #[test]
    fn out_of_order_rejected_without_state_change() {
        let mut w = worker(PolicySpec::fixed_minutes(10));
        w.invoke("a", 10 * MINUTE_MS).unwrap();
        let err = w.invoke("a", 5 * MINUTE_MS).unwrap_err();
        assert_eq!(
            err,
            InvokeError::OutOfOrder {
                last_ts: 10 * MINUTE_MS
            }
        );
        // Equal timestamps are fine (concurrent arrivals): warm.
        let d = w.invoke("a", 10 * MINUTE_MS).unwrap();
        assert!(!d.cold);
        assert_eq!(w.stats().out_of_order, 1);
    }

    #[test]
    fn matches_offline_verdict_trace() {
        use sitw_core::{HybridConfig, PolicyFactory};
        let events: Vec<u64> = (0..200u64)
            .map(|i| i * 7 * MINUTE_MS + (i % 3) * 20_000)
            .collect();

        let spec = PolicySpec::Hybrid(HybridConfig::default());
        let mut w = worker(spec);
        let online: Vec<Decision> = events.iter().map(|&t| w.invoke("x", t).unwrap()).collect();

        let mut policy = HybridConfig::default().new_policy();
        let offline = sitw_sim::verdict_trace(&events, &mut policy);

        assert_eq!(online.len(), offline.len());
        for (on, off) in online.iter().zip(&offline) {
            assert_eq!(on.cold, off.cold);
            assert_eq!(on.prewarm_load, off.prewarm_load);
            assert_eq!(on.kind, off.kind);
            assert_eq!(on.windows, off.windows);
        }
    }

    #[test]
    fn production_mode_matches_offline_production_trace() {
        use sitw_core::ProductionConfig;
        // Multi-day stream with absolute timestamps (day-aware path).
        let events: Vec<u64> = (0..300u64)
            .map(|i| i * 17 * MINUTE_MS + (i % 5) * 11_000)
            .collect();

        let mut w = worker(PolicySpec::Production(ProductionConfig::default()));
        let online: Vec<Decision> = events.iter().map(|&t| w.invoke("x", t).unwrap()).collect();

        let mut manager = sitw_core::ProductionManager::new(ProductionConfig::default());
        let offline = sitw_sim::production_verdict_trace(&events, &mut manager, 0);

        assert_eq!(online.len(), offline.len());
        for (on, off) in online.iter().zip(&offline) {
            assert_eq!(on.cold, off.cold);
            assert_eq!(on.prewarm_load, off.prewarm_load);
            assert_eq!(on.kind, off.kind);
            assert_eq!(on.windows, off.windows);
        }
        // §6 bookkeeping surfaced by the shard: backups along the
        // advancing clock, pre-warm events for unload/pre-warm windows.
        let stats = w.stats();
        assert_eq!(stats.backups, manager.backups_taken());
        let offline_prewarms = offline.iter().filter(|v| v.windows.pre_warm_ms > 0).count() as u64;
        assert_eq!(stats.prewarm_scheduled, offline_prewarms);
        assert!(stats.backups > 0, "multi-day trace must tick backups");
    }

    #[test]
    fn production_equal_timestamp_invocation_is_warm() {
        use sitw_core::ProductionConfig;
        // Regression: ts == last_ts (concurrent arrivals) must be
        // accepted and classified warm, exactly like per-app policies.
        let mut w = worker(PolicySpec::Production(ProductionConfig::default()));
        w.invoke("a", 5 * MINUTE_MS).unwrap();
        let d = w.invoke("a", 5 * MINUTE_MS).unwrap();
        assert!(!d.cold, "zero idle gap is warm by definition");
        assert_eq!(w.stats().out_of_order, 0);
        let err = w.invoke("a", 5 * MINUTE_MS - 1).unwrap_err();
        assert_eq!(
            err,
            InvokeError::OutOfOrder {
                last_ts: 5 * MINUTE_MS
            }
        );
    }

    #[test]
    fn invoke_batch_matches_sequential_invokes_bit_for_bit() {
        let events: Vec<(String, u64)> = (0..120u64)
            .map(|i| (format!("app-{:02}", i % 7), i * 3 * MINUTE_MS))
            .collect();

        // Sequential reference.
        let mut seq = worker(PolicySpec::Hybrid(sitw_core::HybridConfig::default()));
        let expected: Vec<Result<Decision, InvokeError>> = events
            .iter()
            .map(|(app, ts)| seq.invoke(app, *ts))
            .collect();

        // The same stream in batches of 33 (crossing app boundaries).
        let mut batched = worker(PolicySpec::Hybrid(sitw_core::HybridConfig::default()));
        let mut got: Vec<Result<Decision, InvokeError>> = Vec::new();
        for chunk in events.chunks(33) {
            let items: Vec<BatchItem> = chunk
                .iter()
                .enumerate()
                .map(|(i, (app, ts))| BatchItem {
                    idx: i as u32,
                    app: app.clone(),
                    ts: *ts,
                })
                .collect();
            let reply = batched.invoke_batch(items);
            // Replies come back in submission order.
            for (i, (idx, result)) in reply.results.into_iter().enumerate() {
                assert_eq!(idx as usize, i);
                got.push(result);
            }
        }
        assert_eq!(expected, got);
        assert_eq!(seq.stats().invocations, batched.stats().invocations);
        assert_eq!(seq.stats().cold, batched.stats().cold);
    }

    #[test]
    fn invoke_batch_reports_per_record_errors_and_continues() {
        let mut w = worker(PolicySpec::fixed_minutes(10));
        w.invoke("a", 10 * MINUTE_MS).unwrap();
        let reply = w.invoke_batch(vec![
            BatchItem {
                idx: 0,
                app: "a".into(),
                ts: MINUTE_MS, // Out of order.
            },
            BatchItem {
                idx: 1,
                app: "a".into(),
                ts: 12 * MINUTE_MS, // Still served.
            },
        ]);
        assert_eq!(
            reply.results[0].1,
            Err(InvokeError::OutOfOrder {
                last_ts: 10 * MINUTE_MS
            })
        );
        assert!(reply.results[1].1.as_ref().unwrap().cold.eq(&false));
        assert_eq!(w.stats().out_of_order, 1);
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for shards in [1usize, 2, 4, 7] {
            for app in ["app-000000", "app-000001", "x", ""] {
                let s = shard_of(app, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(app, shards));
            }
        }
        // Different apps spread over shards (sanity, not uniformity).
        let hits: std::collections::HashSet<usize> = (0..100)
            .map(|i| shard_of(&format!("app-{i:06}"), 4))
            .collect();
        assert!(hits.len() > 1);
    }
}
