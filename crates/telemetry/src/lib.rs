//! Observability primitives for the serving daemon.
//!
//! The paper's methodology is distributional — the §6 policy is driven by
//! idle-time histograms and the workload characterization (Figs. 3, 5, 8)
//! is all percentile curves — so the daemon that reproduces it should
//! report distributions too, not four point estimates. This crate holds
//! the three std-only building blocks the serving stack records into:
//!
//! * [`Clock`] — a nanosecond time source ([`WallClock`] in production,
//!   [`ManualClock`] in tests) so span timestamps are deterministic under
//!   test.
//! * [`Log2Histogram`] — a fixed 64-bucket power-of-two latency
//!   histogram: O(1) record, u64 counts, and *exact* merge across shards
//!   and reactors (merging two histograms is elementwise addition, so
//!   shard-merged bucket counts equal the sum of per-shard recordings by
//!   construction).
//! * [`FlightRecorder`] — a fixed-size ring of timestamped
//!   [`SpanEvent`]s covering the request pipeline stages
//!   (read → decode → queue → decide → render → write on a node,
//!   ingress → route → forward → await → reassemble → egress on the
//!   router), overwritten oldest-first and snapshotted — never drained —
//!   by the `/debug/trace` endpoints.
//! * [`EventRing`] — a bounded ring of policy [`LifecycleEvent`]s (cold
//!   starts, evictions, throttles, migrations, ring-epoch changes)
//!   scraped by `/debug/events`.
//!
//! Everything here is allocation-free after construction (lifecycle
//! events own their names, but events are rare) and does no syscalls,
//! so recording on the hot path costs a clock read and a few arithmetic
//! ops.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod events;
mod hist;
mod recorder;

pub use clock::{Clock, ManualClock, WallClock};
pub use events::{EventKind, EventRing, LifecycleEvent};
pub use hist::{Log2Histogram, BUCKETS};
pub use recorder::{
    is_trace_span, FlightRecorder, SpanEvent, Stage, ROUTER_STAGES, STAGES, TRACE_MARK,
};
