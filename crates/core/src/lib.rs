//! Keep-alive policies for FaaS cold-start management — the primary
//! contribution of *Serverless in the Wild* (Shahrad et al., USENIX ATC
//! 2020).
//!
//! The crate provides:
//!
//! * the policy abstraction ([`policy`]): per-application state machines
//!   emitting a *(pre-warming window, keep-alive window)* pair after each
//!   function execution;
//! * the state-of-practice baselines ([`fixed`]): fixed keep-alive (10
//!   minutes on AWS/OpenWhisk, 20 on Azure at the time) and the
//!   no-unloading upper bound;
//! * the **hybrid histogram policy** ([`hybrid`]): a 1-minute-bin,
//!   range-limited idle-time histogram with head/tail percentile cutoffs
//!   and margins, a CV-based representativeness gate with a conservative
//!   fallback, and an ARIMA path for applications whose idle times
//!   exceed the histogram range;
//! * the production-style manager ([`production`]): daily histograms
//!   with two-week retention, recency-weighted aggregation, hourly
//!   backups, and pre-warm scheduling 90 s early, as deployed in Azure
//!   Functions (§6).
//!
//! # Examples
//!
//! ```
//! use sitw_core::{AppPolicy, HybridConfig, PolicyFactory};
//!
//! let mut policy = HybridConfig::default().new_policy();
//! policy.on_invocation(None); // First invocation: cold by definition.
//!
//! // An app invoked every 10 minutes: the histogram concentrates and the
//! // policy pre-warms just before the next invocation.
//! let mut windows = policy.on_invocation(Some(10 * 60_000));
//! for _ in 0..20 {
//!     windows = policy.on_invocation(Some(10 * 60_000));
//! }
//! assert!(windows.pre_warm_ms > 0);
//! assert!(windows.is_warm_at(10 * 60_000));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fixed;
pub mod hybrid;
pub mod policy;
pub mod production;
pub mod spec;

pub use fixed::{FixedKeepAlive, NoUnloading};
pub use hybrid::{DecisionCounts, HybridConfig, HybridPolicy, HybridSnapshot};
pub use policy::{
    AppPolicy, DecisionKind, DurationMs, GapOutcome, PolicyFactory, Windows, MINUTE_MS,
};
pub use production::{
    AppKey, DayHistogram, PrewarmEvent, ProductionAppState, ProductionConfig, ProductionManager,
    ProductionPolicy, RecencyWeighting,
};
pub use spec::PolicySpec;
