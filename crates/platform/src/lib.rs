//! Discrete-event model of an OpenWhisk-style FaaS platform.
//!
//! The paper's §5.3 experiments run 68 mid-popularity applications for 8
//! hours on a 19-VM OpenWhisk deployment (1 controller + 18 invokers)
//! with FaaSProfiler replaying the trace. That testbed is unavailable
//! here, so this crate models the same architecture as a deterministic
//! discrete-event simulation (see `DESIGN.md`, substitution table):
//!
//! * [`config`] — cluster sizing and the published component latencies
//!   (container init O(100 ms), runtime bootstrap O(10 ms)+);
//! * [`cluster`] — invokers with memory-capped container pools,
//!   LRU eviction, per-activation keep-alive (the §4.3
//!   `ActivationMessage` extension);
//! * [`platform`] — the controller/load-balancer event loop with policy
//!   integration and pre-warm publication;
//! * [`report`] — per-invocation records and the §5.3 metrics (cold-start
//!   CDF, execution-time percentiles, idle-memory integrals).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod config;
pub mod platform;
pub mod report;

pub use cluster::{Container, ContainerState, Invoker, InvokerStats};
pub use config::PlatformConfig;
pub use platform::run_platform;
pub use report::{InvocationRecord, PlatformReport};
