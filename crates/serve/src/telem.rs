//! Serving-stack telemetry plumbing: per-thread flight recorders,
//! stage histograms, and queue gauges.
//!
//! Layout follows the threading model. Each reactor thread owns a
//! [`ReactorTelemHandle`] wrapping an `Arc<Mutex<ReactorTelem>>`; the
//! hot path records through short `try_lock`s (a recording site that
//! loses the race to a scraper simply skips — never blocks, never
//! queues), while scrapers (`/metrics`, `/debug/trace`,
//! `/debug/threads`) take brief blocking locks. The guard is never held
//! across `pump` or `epoll_wait`, which matters twice over: control
//! requests (including the scrape itself) execute inside `pump` on a
//! reactor thread, and a guard held across a blocking wait would stall
//! scrapers for a full tick.
//!
//! Shard workers own their stage histograms outright (scraped via the
//! existing `Scrape` mailbox message, so no locking at all) and share
//! only their [`FlightRecorder`] and mailbox [`QueueGauge`] with the
//! control path.
//!
//! When telemetry is disabled (`--no-telemetry`) the handles keep their
//! structure but every recording site short-circuits before reading the
//! clock — the steady state does no timing work at all.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use sitw_telemetry::{
    Clock, EventRing, FlightRecorder, Log2Histogram, ManualClock, SpanEvent, WallClock,
};

use crate::metrics::ProtoHists;

/// Capacity of each per-thread flight-recorder ring.
pub const TRACE_RING: usize = 512;

/// Capacity of the node-wide lifecycle event ring (`/debug/events`).
/// Events are rare relative to decisions, so one shared ring suffices.
pub const EVENT_RING: usize = 256;

/// Runtime-selected clock: production wall time or a test-driven manual
/// clock, without making every recording site generic.
#[derive(Debug, Clone)]
pub enum TelemClock {
    /// Nanoseconds since the server's start [`std::time::Instant`].
    Wall(WallClock),
    /// Test clock; reads whatever the test last set.
    Manual(ManualClock),
}

impl TelemClock {
    /// Nanoseconds since this clock's epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        match self {
            TelemClock::Wall(c) => c.now_ns(),
            TelemClock::Manual(c) => c.now_ns(),
        }
    }
}

impl Default for TelemClock {
    fn default() -> Self {
        TelemClock::Wall(WallClock::default())
    }
}

/// Drain-observed depth/high-water gauge for a queue (reactor inbox or
/// shard mailbox).
///
/// Only the queue's *consumer* writes: each time it drains a wave of
/// messages it [`QueueGauge::observe`]s the backlog it found, so `depth`
/// is the most recent wave's backlog and `peak` its high-water mark.
/// Producers never touch the gauge — the dispatch path costs zero
/// shared-cacheline RMWs — and the single writer means plain relaxed
/// stores suffice (the read-then-store peak update cannot race itself).
#[derive(Debug, Default)]
pub struct QueueGauge {
    depth: AtomicU64,
    peak: AtomicU64,
}

impl QueueGauge {
    /// Records the backlog found at one drain wave.
    #[inline]
    pub fn observe(&self, backlog: u64) {
        self.depth.store(backlog, Ordering::Relaxed);
        if backlog > self.peak.load(Ordering::Relaxed) {
            self.peak.store(backlog, Ordering::Relaxed);
        }
    }

    /// Current `(depth, peak)` reading.
    pub fn read(&self) -> (u64, u64) {
        (
            self.depth.load(Ordering::Relaxed),
            self.peak.load(Ordering::Relaxed),
        )
    }
}

/// Everything one reactor thread records, under a single mutex.
#[derive(Debug)]
pub struct ReactorTelem {
    /// Socket-readable → request bytes buffered, per protocol.
    pub read: ProtoHists,
    /// Bytes buffered → parsed and dispatched, per protocol.
    pub decode: ProtoHists,
    /// Reply slot completed → response bytes serialized, per protocol.
    pub render: ProtoHists,
    /// Response bytes → flushed to the socket, per protocol.
    pub write: ProtoHists,
    /// Events delivered per productive `epoll_wait` wake.
    pub events_per_wake: Log2Histogram,
    /// Bytes per completed coalesced socket write.
    pub write_bursts: Log2Histogram,
    /// Recent span events recorded on this thread.
    pub recorder: FlightRecorder,
    /// Total `epoll_wait` calls (blocking and non-blocking).
    pub epoll_waits: u64,
    /// Nanoseconds spent inside blocking `epoll_wait` calls.
    pub epoll_wait_ns: u64,
    /// Eventfd waker fires observed.
    pub wakeups: u64,
    /// Backpressure transitions into the read-paused state.
    pub bp_pauses: u64,
    /// Backpressure transitions out of the read-paused state.
    pub bp_resumes: u64,
}

impl Default for ReactorTelem {
    fn default() -> Self {
        Self {
            read: ProtoHists::default(),
            decode: ProtoHists::default(),
            render: ProtoHists::default(),
            write: ProtoHists::default(),
            events_per_wake: Log2Histogram::new(),
            write_bursts: Log2Histogram::new(),
            recorder: FlightRecorder::new(TRACE_RING),
            epoll_waits: 0,
            epoll_wait_ns: 0,
            wakeups: 0,
            bp_pauses: 0,
            bp_resumes: 0,
        }
    }
}

/// Per-reactor-thread recording handle (not `Send`: lives and dies with
/// its reactor loop).
#[derive(Debug)]
pub struct ReactorTelemHandle {
    enabled: bool,
    clock: TelemClock,
    shared: Arc<Mutex<ReactorTelem>>,
    next_span: Cell<u64>,
    reactor_id: u64,
}

impl ReactorTelemHandle {
    /// Creates the handle for reactor `reactor_id`, recording into
    /// `shared` with timestamps from `clock`.
    pub fn new(
        enabled: bool,
        clock: TelemClock,
        shared: Arc<Mutex<ReactorTelem>>,
        reactor_id: usize,
    ) -> Self {
        Self {
            enabled,
            clock,
            shared,
            next_span: Cell::new(0),
            reactor_id: reactor_id as u64,
        }
    }

    /// A disabled handle whose every operation is a no-op (unit tests).
    pub fn disabled() -> Self {
        Self::new(false, TelemClock::default(), Arc::default(), 0)
    }

    /// Whether recording is on.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Current timestamp, or 0 when disabled (recording sites are gated
    /// on [`ReactorTelemHandle::enabled`], so the 0 is never stored).
    #[inline]
    pub fn now(&self) -> u64 {
        if self.enabled {
            self.clock.now_ns()
        } else {
            0
        }
    }

    /// Allocates a fresh span id: the reactor id in the top 16 bits, a
    /// per-thread counter below — unique across threads with no atomics.
    #[inline]
    pub fn new_span(&self) -> u64 {
        let n = self.next_span.get();
        self.next_span.set(n.wrapping_add(1));
        (self.reactor_id << 48) | (n & 0x0000_ffff_ffff_ffff)
    }

    /// Runs `f` against the shared state if enabled and uncontended.
    ///
    /// Uses `try_lock`: a site that races a scraper drops that one
    /// observation instead of blocking the reactor.
    #[inline]
    pub fn with<F: FnOnce(&mut ReactorTelem)>(&self, f: F) {
        if !self.enabled {
            return;
        }
        if let Ok(mut t) = self.shared.try_lock() {
            f(&mut t);
        }
    }
}

/// Per-shard-worker telemetry: stage histograms owned outright by the
/// worker thread (scraped through the `Scrape` mailbox message), plus
/// the flight recorder and mailbox gauge shared with the control path.
#[derive(Debug)]
pub struct ShardTelem {
    /// Master switch; when off the worker does no timing at all.
    pub enabled: bool,
    /// Shared-epoch clock.
    pub clock: TelemClock,
    /// Recent spans recorded by this worker (`/debug/trace` snapshots
    /// it non-destructively).
    pub recorder: Arc<Mutex<FlightRecorder>>,
    /// Node-wide lifecycle event ring, shared across shards
    /// (`/debug/events` snapshots it). Events are pushed via `try_lock`
    /// with workload timestamps — no clock reads, no blocking.
    pub events: Arc<Mutex<EventRing>>,
    /// Mailbox depth gauge (this worker observes drain waves).
    pub gauge: Arc<QueueGauge>,
    /// Mailbox wait (dispatch → dequeue), per protocol.
    pub queue: ProtoHists,
    /// Policy decision latency, per protocol.
    pub decide: ProtoHists,
}

impl Default for ShardTelem {
    fn default() -> Self {
        Self {
            enabled: true,
            clock: TelemClock::default(),
            recorder: Arc::new(Mutex::new(FlightRecorder::new(TRACE_RING))),
            events: Arc::new(Mutex::new(EventRing::new(EVENT_RING))),
            gauge: Arc::default(),
            queue: ProtoHists::default(),
            decide: ProtoHists::default(),
        }
    }
}

impl ShardTelem {
    /// Current timestamp, or 0 when disabled (never stored in that
    /// case — every recording site is gated on `enabled`).
    #[inline]
    pub fn now(&self) -> u64 {
        if self.enabled {
            self.clock.now_ns()
        } else {
            0
        }
    }
}

/// Merges labelled flight-recorder snapshots into one globally ordered
/// trace, keeping the most recent `last` events.
///
/// Events sort by `(start_ns, span)`, so with a shared epoch (the
/// production [`WallClock`] base or a test [`ManualClock`]) the result
/// reads as one timeline across reactors and shards.
pub fn merge_spans(sources: &[(String, &FlightRecorder)], last: usize) -> Vec<(String, SpanEvent)> {
    let mut all: Vec<(String, SpanEvent)> = sources
        .iter()
        .flat_map(|(label, rec)| rec.events().map(move |e| (label.clone(), *e)))
        .collect();
    all.sort_by_key(|(_, e)| (e.start_ns, e.span, e.stage));
    if all.len() > last {
        all.drain(..all.len() - last);
    }
    all
}

/// Shared telemetry state hung off the server context: one slot per
/// reactor thread and per shard worker, created at start and never
/// resized.
#[derive(Debug)]
pub(crate) struct TelemCtx {
    /// Master switch (from `ServeConfig::telemetry`).
    pub enabled: bool,
    /// Shared-epoch clock every thread stamps spans with.
    pub clock: TelemClock,
    /// Per-reactor shared state (locked briefly by scrapers).
    pub reactors: Vec<Arc<Mutex<ReactorTelem>>>,
    /// Per-reactor inbox gauges (each loop observes its drain waves).
    pub reactor_gauges: Vec<Arc<QueueGauge>>,
    /// Per-shard flight recorders (workers push, scrapers snapshot).
    pub shard_recorders: Vec<Arc<Mutex<FlightRecorder>>>,
    /// Per-shard mailbox gauges (each worker observes its drain waves).
    pub shard_gauges: Vec<Arc<QueueGauge>>,
    /// Node-wide lifecycle event ring, shared by every shard worker
    /// (`/debug/events`).
    pub events: Arc<Mutex<EventRing>>,
}

impl Default for TelemCtx {
    fn default() -> Self {
        Self {
            enabled: false,
            clock: TelemClock::default(),
            reactors: Vec::new(),
            reactor_gauges: Vec::new(),
            shard_recorders: Vec::new(),
            shard_gauges: Vec::new(),
            events: Arc::new(Mutex::new(EventRing::new(EVENT_RING))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitw_telemetry::Stage;

    #[test]
    fn queue_gauge_tracks_depth_and_peak() {
        let g = QueueGauge::default();
        g.observe(3);
        assert_eq!(g.read(), (3, 3));
        g.observe(1);
        assert_eq!(g.read(), (1, 3));
        g.observe(7);
        g.observe(2);
        assert_eq!(g.read(), (2, 7));
    }

    #[test]
    fn span_ids_are_unique_per_reactor() {
        let a = ReactorTelemHandle::new(true, TelemClock::default(), Arc::default(), 0);
        let b = ReactorTelemHandle::new(true, TelemClock::default(), Arc::default(), 1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            assert!(seen.insert(a.new_span()));
            assert!(seen.insert(b.new_span()));
        }
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let shared: Arc<Mutex<ReactorTelem>> = Arc::default();
        let h = ReactorTelemHandle::new(false, TelemClock::default(), shared.clone(), 0);
        assert_eq!(h.now(), 0);
        h.with(|t| t.wakeups += 1);
        assert_eq!(shared.lock().unwrap().wakeups, 0);
    }

    #[test]
    fn merge_spans_orders_across_sources_and_truncates() {
        let mut a = FlightRecorder::new(8);
        let mut b = FlightRecorder::new(8);
        for i in 0..4u64 {
            a.push(SpanEvent {
                span: i,
                stage: Stage::Read,
                start_ns: i * 10,
                end_ns: i * 10 + 1,
            });
            b.push(SpanEvent {
                span: 100 + i,
                stage: Stage::Decide,
                start_ns: i * 10 + 5,
                end_ns: i * 10 + 6,
            });
        }
        let merged = merge_spans(&[("r0".to_owned(), &a), ("s0".to_owned(), &b)], usize::MAX);
        let starts: Vec<u64> = merged.iter().map(|(_, e)| e.start_ns).collect();
        assert_eq!(starts, vec![0, 5, 10, 15, 20, 25, 30, 35]);
        // Keeping the last 3 drops the oldest events.
        let tail = merge_spans(&[("r0".to_owned(), &a), ("s0".to_owned(), &b)], 3);
        let starts: Vec<u64> = tail.iter().map(|(_, e)| e.start_ns).collect();
        assert_eq!(starts, vec![25, 30, 35]);
    }
}
