//! ARIMA fitting and forecasting cost — the §5.3 overhead numbers.
//!
//! The paper measures 26.9 ms for the initial pmdarima model build and
//! 5.3 ms for subsequent forecasts. Our from-scratch `auto_arima` runs
//! on the same series lengths the policy sees (tens of idle times).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sitw_arima::{auto_arima, fit, ArimaSpec, AutoArimaConfig};

fn series(n: usize) -> Vec<f64> {
    // Idle times of a rare app: ~300 min with deterministic jitter.
    (0..n)
        .map(|i| 300.0 + ((i * 37) % 23) as f64 - 11.0)
        .collect()
}

fn bench_auto_arima(c: &mut Criterion) {
    let mut group = c.benchmark_group("auto_arima_full_search");
    for n in [8usize, 16, 32, 64] {
        let xs = series(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &xs, |b, xs| {
            b.iter(|| black_box(auto_arima(xs, AutoArimaConfig::default()).unwrap()))
        });
    }
    group.finish();
}

fn bench_single_fit_and_forecast(c: &mut Criterion) {
    let xs = series(32);
    c.bench_function("arima_fit_1_0_1", |b| {
        b.iter(|| black_box(fit(&xs, ArimaSpec::new(1, 0, 1)).unwrap()))
    });
    let fitted = fit(&xs, ArimaSpec::new(1, 0, 1)).unwrap();
    c.bench_function("arima_forecast_one", |b| {
        b.iter(|| black_box(fitted.forecast_one()))
    });
    c.bench_function("arima_forecast_horizon_10_with_se", |b| {
        b.iter(|| black_box(fitted.forecast_with_se(10)))
    });
}

criterion_group!(benches, bench_auto_arima, bench_single_fit_and_forecast);
criterion_main!(benches);
