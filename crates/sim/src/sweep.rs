//! Sweep driver: evaluates many policies over a population in parallel.
//!
//! Applications are independent under every policy, so the sweep
//! partitions apps across threads; each thread generates an app's
//! invocation stream **once** and replays it against every policy
//! configuration, keeping results comparable and generation costs
//! amortized. Merging is deterministic (chunk order), so sweeps are
//! reproducible bit-for-bit.

use sitw_trace::{app_invocations, Population, TraceConfig};

use crate::engine::simulate_app;
use crate::metrics::PolicyAggregate;

// The spec type moved to `sitw_core::spec` (the fleet subsystem shares
// it); re-exported here so `sitw_sim::PolicySpec` keeps working.
pub use sitw_core::PolicySpec;

/// Runs every policy over every application of the population.
///
/// `threads` ≤ 1 runs serially. Results are independent of the thread
/// count.
pub fn run_sweep(
    population: &Population,
    trace_cfg: &TraceConfig,
    specs: &[PolicySpec],
    threads: usize,
) -> Vec<PolicyAggregate> {
    let threads = threads.max(1);
    if threads == 1 || population.len() < 2 * threads {
        let mut aggs: Vec<PolicyAggregate> = specs
            .iter()
            .map(|s| PolicyAggregate::new(s.label()))
            .collect();
        simulate_chunk(population, 0..population.len(), trace_cfg, specs, &mut aggs);
        return aggs;
    }

    let chunk_size = population.len().div_ceil(threads);
    let mut partials: Vec<Vec<PolicyAggregate>> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for chunk_idx in 0..threads {
            let lo = chunk_idx * chunk_size;
            let hi = ((chunk_idx + 1) * chunk_size).min(population.len());
            if lo >= hi {
                continue;
            }
            handles.push(scope.spawn(move |_| {
                let mut aggs: Vec<PolicyAggregate> = specs
                    .iter()
                    .map(|s| PolicyAggregate::new(s.label()))
                    .collect();
                simulate_chunk(population, lo..hi, trace_cfg, specs, &mut aggs);
                aggs
            }));
        }
        for h in handles {
            partials.push(h.join().expect("sweep worker panicked"));
        }
    })
    .expect("sweep scope panicked");

    // Deterministic merge in chunk order.
    let mut iter = partials.into_iter();
    let mut merged = iter.next().expect("at least one chunk");
    for partial in iter {
        for (m, p) in merged.iter_mut().zip(&partial) {
            m.merge(p);
        }
    }
    merged
}

fn simulate_chunk(
    population: &Population,
    range: std::ops::Range<usize>,
    trace_cfg: &TraceConfig,
    specs: &[PolicySpec],
    aggs: &mut [PolicyAggregate],
) {
    for app in &population.apps[range] {
        let events = app_invocations(app, trace_cfg);
        if events.is_empty() {
            continue;
        }
        for (spec, agg) in specs.iter().zip(aggs.iter_mut()) {
            let mut policy = spec.new_policy();
            let result = simulate_app(&events, trace_cfg.horizon_ms, policy.as_mut());
            agg.add(&result, app.memory_mb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitw_core::{HybridConfig, ProductionConfig};
    use sitw_trace::{build_population, PopulationConfig, DAY_MS};

    fn setup() -> (Population, TraceConfig) {
        let pop = build_population(&PopulationConfig {
            num_apps: 150,
            seed: 21,
        });
        let cfg = TraceConfig {
            horizon_ms: DAY_MS,
            cap_per_day: 2000.0,
            seed: 3,
        };
        (pop, cfg)
    }

    fn specs() -> Vec<PolicySpec> {
        vec![
            PolicySpec::fixed_minutes(10),
            PolicySpec::NoUnloading,
            PolicySpec::Hybrid(HybridConfig::default()),
            PolicySpec::Production(ProductionConfig::default()),
        ]
    }

    #[test]
    fn serial_and_parallel_agree() {
        let (pop, cfg) = setup();
        let serial = run_sweep(&pop, &cfg, &specs(), 1);
        let parallel = run_sweep(&pop, &cfg, &specs(), 4);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.label, p.label);
            assert_eq!(s.apps, p.apps);
            assert_eq!(s.invocations, p.invocations);
            assert_eq!(s.cold_starts, p.cold_starts);
            assert_eq!(s.wasted_ms, p.wasted_ms);
            let mut a = s.per_app_cold_pct.clone();
            let mut b = p.per_app_cold_pct.clone();
            a.sort_by(f64::total_cmp);
            b.sort_by(f64::total_cmp);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn production_spec_sweeps_like_any_policy() {
        let (pop, cfg) = setup();
        let aggs = run_sweep(&pop, &cfg, &specs(), 2);
        let nounload = &aggs[1];
        let production = &aggs[3];
        assert_eq!(production.label, "production-240m-14d[5,99]exp0.85");
        assert_eq!(production.invocations, nounload.invocations);
        // Bounded keep-alives always waste less than never unloading.
        assert!(production.wasted_ms < nounload.wasted_ms);
        assert!(production.cold_starts >= nounload.cold_starts);
    }

    #[test]
    fn no_unloading_has_fewest_colds_most_waste() {
        let (pop, cfg) = setup();
        let aggs = run_sweep(&pop, &cfg, &specs(), 2);
        let fixed = &aggs[0];
        let nounload = &aggs[1];
        let hybrid = &aggs[2];
        assert!(nounload.cold_starts <= fixed.cold_starts);
        assert!(nounload.cold_starts <= hybrid.cold_starts);
        assert!(nounload.wasted_ms >= fixed.wasted_ms);
        // Every app's colds under no-unloading is exactly 1.
        assert_eq!(nounload.cold_starts, nounload.apps);
    }

    #[test]
    fn hybrid_dominates_fixed_10min() {
        // The headline claim (Figure 15): at similar or lower memory
        // waste, the hybrid policy has far fewer cold starts at the 75th
        // percentile.
        let (pop, cfg) = setup();
        let aggs = run_sweep(&pop, &cfg, &specs(), 2);
        let fixed = &aggs[0];
        let hybrid = &aggs[2];
        let f75 = fixed.cold_pct_percentile(75.0);
        let h75 = hybrid.cold_pct_percentile(75.0);
        assert!(
            h75 < f75,
            "hybrid p75 {h75:.1}% must beat fixed-10min {f75:.1}%"
        );
    }

    #[test]
    fn all_policies_see_same_workload() {
        let (pop, cfg) = setup();
        let aggs = run_sweep(&pop, &cfg, &specs(), 2);
        let invs: Vec<u64> = aggs.iter().map(|a| a.invocations).collect();
        assert!(invs.windows(2).all(|w| w[0] == w[1]), "{invs:?}");
        let apps: Vec<u64> = aggs.iter().map(|a| a.apps).collect();
        assert!(apps.windows(2).all(|w| w[0] == w[1]));
    }
}
