//! Warm-standby follower mode: `sitw-serve --follow PRIMARY`.
//!
//! A follower holds no shards and serves no decisions. It pulls the
//! primary's replication stream — a chunked full sync first, then
//! per-round deltas of whatever mutated ([`crate::wire::FRAME_REPL_SYNC`]
//! / [`crate::wire::FRAME_REPL_DELTA`] / [`crate::wire::FRAME_REPL_COMMIT`])
//! — and accumulates the complete [`Snapshot`] in memory. Promotion
//! (operator `POST /admin/promote`, the router's supervised failover, or
//! the optional dead-primary auto policy) hands that snapshot straight to
//! [`Server::start`] via [`ServeConfig::restore_snapshot`]: the restored
//! primary rides the same partition/restore path the snapshot-parity
//! tests prove bit-identical, so a failed-over daemon emits exactly the
//! verdicts an uninterrupted one would (the paper's §6 hourly-backup
//! story, upgraded from restart recovery to hot standby).
//!
//! The follower's own listener is plain blocking thread-per-connection
//! HTTP — it answers `/healthz` (replication lag), `/metrics` (the
//! `sitw_serve_repl_*` families), `/debug/events`, and the two admin
//! verbs, all control-plane rates where a reactor would be overkill.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sitw_telemetry::{EventKind, EventRing, LifecycleEvent};

use crate::http::{write_response, ConnBuf, ReadOutcome, Request};
use crate::metrics::{ConnStats, MetricsReport, ProtoStats, ReplStats};
use crate::server::{ServeConfig, Server};
use crate::snapshot::{apply_delta, Snapshot};
use crate::wire::{self, ServerFrameDecode};

/// Capacity of the follower's lifecycle event ring.
const FOLLOW_EVENT_RING: usize = 256;

/// Follower configuration.
#[derive(Debug, Clone)]
pub struct FollowConfig {
    /// Bind address of the follower's control listener (health, metrics,
    /// events, promote/shutdown); use port 0 to let the OS choose.
    pub addr: String,
    /// The primary's serve address (the replication stream shares the
    /// primary's main port).
    pub primary_addr: String,
    /// Delay between replication pulls.
    pub pull_interval: Duration,
    /// Connect/read/write deadline on each pull, so a hung primary
    /// surfaces as a counted failure instead of a stuck puller.
    pub pull_timeout: Duration,
    /// When set, the follower promotes itself once the primary has been
    /// unreachable for at least this long (and three consecutive pulls
    /// failed). `None` (supervised mode) waits for `/admin/promote`.
    pub auto_promote_after: Option<Duration>,
    /// Template for the server started at promotion. Its `addr` is the
    /// *serve* address (default port 0 — the promote response reports
    /// what was bound); `restore_snapshot` is overwritten with the
    /// accumulated replica state.
    pub serve: ServeConfig,
}

impl Default for FollowConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            primary_addr: "127.0.0.1:7071".into(),
            pull_interval: Duration::from_millis(100),
            pull_timeout: Duration::from_secs(2),
            auto_promote_after: None,
            serve: ServeConfig {
                addr: "127.0.0.1:0".into(),
                ..ServeConfig::default()
            },
        }
    }
}

/// One replication round reassembled from chunk frames, ready to apply.
#[derive(Debug, PartialEq, Eq)]
struct CommittedRound {
    epoch: u64,
    /// `true` when the chunks were a full sync, `false` for a delta.
    /// Meaningless for a lone commit (empty `doc`).
    full_sync: bool,
    doc: Vec<u8>,
}

/// Incremental reassembly of one replication round from a byte stream.
/// Chunks must arrive in sequence order and agree on kind and epoch —
/// anything else is a protocol error that forces a resync.
#[derive(Debug, Default)]
struct RoundAssembler {
    doc: Vec<u8>,
    next_seq: u32,
    full_sync: Option<bool>,
    epoch: Option<u64>,
}

impl RoundAssembler {
    /// Consumes complete frames from the front of `buf`. Returns the
    /// bytes consumed and the round, once its commit frame arrives.
    fn feed(&mut self, buf: &[u8]) -> Result<(usize, Option<CommittedRound>), String> {
        let mut consumed = 0usize;
        loop {
            match wire::decode_server_frame(&buf[consumed..]) {
                ServerFrameDecode::Incomplete => return Ok((consumed, None)),
                ServerFrameDecode::ReplChunk {
                    full_sync,
                    epoch,
                    seq,
                    last: _,
                    data,
                    consumed: n,
                } => {
                    if seq != self.next_seq {
                        return Err(format!("chunk seq {seq}, expected {}", self.next_seq));
                    }
                    if self.full_sync.is_some_and(|f| f != full_sync)
                        || self.epoch.is_some_and(|e| e != epoch)
                    {
                        return Err("mixed kinds or epochs within one round".into());
                    }
                    self.full_sync = Some(full_sync);
                    self.epoch = Some(epoch);
                    self.next_seq += 1;
                    self.doc.extend_from_slice(&data);
                    consumed += n;
                }
                ServerFrameDecode::ReplCommit { epoch, consumed: n } => {
                    if self.epoch.is_some_and(|e| e != epoch) {
                        return Err("commit epoch does not match its chunks".into());
                    }
                    consumed += n;
                    let round = CommittedRound {
                        epoch,
                        full_sync: self.full_sync.unwrap_or(false),
                        doc: std::mem::take(&mut self.doc),
                    };
                    *self = Self::default();
                    return Ok((consumed, Some(round)));
                }
                ServerFrameDecode::Malformed(e) => return Err(e),
                other => return Err(format!("unexpected frame in replication stream: {other:?}")),
            }
        }
    }
}

/// The accumulated replica.
#[derive(Debug, Default)]
struct ReplicaState {
    snap: Option<Snapshot>,
    epoch: u64,
}

impl ReplicaState {
    /// Applies one committed round. Returns the number of app records
    /// the round carried. Any error leaves `epoch` reset to 0, which
    /// makes the next ack request a full sync.
    fn apply(&mut self, round: CommittedRound) -> Result<u64, String> {
        let result = self.try_apply(round);
        if result.is_err() {
            self.epoch = 0;
        }
        result
    }

    fn try_apply(&mut self, round: CommittedRound) -> Result<u64, String> {
        if round.doc.is_empty() {
            // Lone commit: nothing mutated. The epoch must be the one we
            // already hold, or primary and follower have diverged.
            if round.epoch != self.epoch {
                return Err(format!(
                    "clean commit for epoch {} but replica holds {}",
                    round.epoch, self.epoch
                ));
            }
            return Ok(0);
        }
        let text = std::str::from_utf8(&round.doc).map_err(|_| "round is not UTF-8".to_owned())?;
        if round.full_sync {
            let snap = Snapshot::decode(text)?;
            let apps = count_apps(&snap);
            self.snap = Some(snap);
            self.epoch = round.epoch;
            Ok(apps)
        } else {
            let delta = Snapshot::decode_delta(text)?;
            let base = self
                .snap
                .as_mut()
                .ok_or_else(|| "delta round before any full sync".to_owned())?;
            let apps = count_apps(&delta);
            apply_delta(base, delta);
            self.epoch = round.epoch;
            Ok(apps)
        }
    }
}

fn count_apps(snap: &Snapshot) -> u64 {
    snap.apps.len() as u64
        + snap
            .tenants
            .iter()
            .map(|t| t.apps.len() as u64)
            .sum::<u64>()
}

/// Mutable follower state under one lock (control-plane rates only).
#[derive(Debug, Default)]
struct FollowShared {
    replica: ReplicaState,
    rounds: u64,
    full_syncs: u64,
    apps_applied: u64,
    bytes_received: u64,
    /// When the last round committed (any kind, including clean).
    last_commit: Option<Instant>,
    consecutive_failures: u64,
    /// The promoted server's serve address, once promotion happened.
    promoted: Option<SocketAddr>,
}

struct FollowCtx {
    cfg: FollowConfig,
    addr: SocketAddr,
    started: Instant,
    shutdown: AtomicBool,
    shared: Mutex<FollowShared>,
    /// The server started at promotion. Locked before `shared`
    /// everywhere both are taken, so promotion cannot deadlock.
    server: Mutex<Option<Server>>,
    events: Mutex<EventRing>,
}

impl FollowCtx {
    fn lock_shared(&self) -> std::sync::MutexGuard<'_, FollowShared> {
        match self.shared.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn push_event(&self, kind: EventKind, detail: String) {
        if let Ok(mut ring) = self.events.try_lock() {
            ring.push(LifecycleEvent {
                ts_ms: self.started.elapsed().as_millis() as u64,
                kind,
                tenant: String::new(),
                app: String::new(),
                detail,
            });
        }
    }

    /// The current replication status, as served on `/healthz`.
    fn status(&self) -> FollowStatus {
        let shared = self.lock_shared();
        FollowStatus {
            epoch: shared.replica.epoch,
            rounds: shared.rounds,
            full_syncs: shared.full_syncs,
            apps_applied: shared.apps_applied,
            bytes_received: shared.bytes_received,
            lag_ms: shared
                .last_commit
                .map_or_else(|| self.started.elapsed(), |t| t.elapsed())
                .as_millis() as u64,
            consecutive_failures: shared.consecutive_failures,
            apps: shared.replica.snap.as_ref().map_or(0, count_apps),
            promoted: shared.promoted,
        }
    }

    /// Promotes the accumulated replica into a serving primary.
    /// Idempotent: a second call returns the already-bound serve
    /// address. `reason` lands in the lifecycle event's detail.
    fn promote(&self, reason: &str) -> Result<SocketAddr, String> {
        let mut server_slot = match self.server.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(addr) = self.lock_shared().promoted {
            return Ok(addr);
        }
        let (snap, epoch) = {
            let shared = self.lock_shared();
            (shared.replica.snap.clone(), shared.replica.epoch)
        };
        let mut cfg = self.cfg.serve.clone();
        if let Some(s) = &snap {
            if s.policy_label != cfg.policy.label() {
                return Err(format!(
                    "replica policy '{}' does not match configured '{}'",
                    s.policy_label,
                    cfg.policy.label()
                ));
            }
        }
        cfg.restore_snapshot = snap;
        let server = Server::start(cfg).map_err(|e| format!("promotion failed: {e}"))?;
        let addr = server.addr();
        *server_slot = Some(server);
        self.lock_shared().promoted = Some(addr);
        self.push_event(
            EventKind::Promotion,
            format!("epoch {epoch}, serving on {addr} ({reason})"),
        );
        Ok(addr)
    }
}

/// Point-in-time follower status (the `/healthz` fields).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FollowStatus {
    /// Replication epoch the replica holds (0 = nothing synced yet).
    pub epoch: u64,
    /// Rounds applied (including clean commits).
    pub rounds: u64,
    /// Full syncs applied.
    pub full_syncs: u64,
    /// App records applied across all rounds.
    pub apps_applied: u64,
    /// Document bytes received across all rounds.
    pub bytes_received: u64,
    /// Milliseconds since the last committed round (time since start
    /// when no round ever committed) — the replication lag bound.
    pub lag_ms: u64,
    /// Consecutive failed pulls (0 after any success).
    pub consecutive_failures: u64,
    /// App records currently held in the replica.
    pub apps: u64,
    /// The promoted server's serve address, once promoted.
    pub promoted: Option<SocketAddr>,
}

/// A running warm standby.
pub struct Follower {
    ctx: Arc<FollowCtx>,
    listener: Option<JoinHandle<()>>,
    puller: Option<JoinHandle<()>>,
}

impl Follower {
    /// Binds the control listener and starts pulling from the primary.
    pub fn start(cfg: FollowConfig) -> io::Result<Follower> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        // sitw-lint: allow(clock-discipline)
        let started = Instant::now();
        let ctx = Arc::new(FollowCtx {
            cfg,
            addr,
            started,
            shutdown: AtomicBool::new(false),
            shared: Mutex::new(FollowShared::default()),
            server: Mutex::new(None),
            events: Mutex::new(EventRing::new(FOLLOW_EVENT_RING)),
        });
        let listener_ctx = Arc::clone(&ctx);
        let listener = std::thread::Builder::new()
            .name("sitw-follow-listener".into())
            .spawn(move || listen_loop(listener, listener_ctx))?;
        let puller_ctx = Arc::clone(&ctx);
        let puller = std::thread::Builder::new()
            .name("sitw-follow-puller".into())
            .spawn(move || pull_loop(puller_ctx))?;
        Ok(Follower {
            ctx,
            listener: Some(listener),
            puller: Some(puller),
        })
    }

    /// The control listener's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.ctx.addr
    }

    /// The current replication status.
    pub fn status(&self) -> FollowStatus {
        self.ctx.status()
    }

    /// Promotes the replica into a serving primary (in-process
    /// equivalent of `POST /admin/promote`); returns the serve address.
    pub fn promote(&self) -> Result<SocketAddr, String> {
        self.ctx.promote("operator request")
    }

    /// True once a shutdown was requested (`POST /admin/shutdown`).
    pub fn shutdown_requested(&self) -> bool {
        self.ctx.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until a shutdown is requested.
    pub fn wait(&self) {
        while !self.shutdown_requested() {
            std::thread::sleep(Duration::from_millis(100));
        }
    }

    /// Stops the follower. When it was promoted, the inner server shuts
    /// down gracefully and its final snapshot is returned; otherwise the
    /// accumulated replica (if any) is.
    pub fn shutdown(mut self) -> io::Result<Option<Snapshot>> {
        self.ctx.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.ctx.addr);
        if let Some(handle) = self.listener.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.puller.take() {
            let _ = handle.join();
        }
        let server = match self.ctx.server.lock() {
            Ok(mut guard) => guard.take(),
            Err(poisoned) => poisoned.into_inner().take(),
        };
        match server {
            Some(server) => server.shutdown().map(Some),
            None => Ok(self.ctx.lock_shared().replica.snap.take()),
        }
    }
}

/// The control listener: blocking thread-per-connection HTTP.
fn listen_loop(listener: TcpListener, ctx: Arc<FollowCtx>) {
    for stream in listener.incoming() {
        if ctx.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_ctx = Arc::clone(&ctx);
        let _ = std::thread::Builder::new()
            .name("sitw-follow-conn".into())
            .spawn(move || serve_conn(stream, conn_ctx));
    }
}

fn serve_conn(stream: TcpStream, ctx: Arc<FollowCtx>) {
    if stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .is_err()
    {
        return;
    }
    let mut conn = ConnBuf::new(stream);
    let mut out = Vec::new();
    loop {
        match conn.read_request() {
            Ok(ReadOutcome::Request(req)) => {
                out.clear();
                handle_follow_control(&req, &ctx, &mut out);
                if conn.stream().write_all(&out).is_err() {
                    return;
                }
                if req.close {
                    return;
                }
            }
            Ok(ReadOutcome::Timeout) => {
                if ctx.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Ok(ReadOutcome::Eof) | Ok(ReadOutcome::BodyTooLarge { .. }) | Err(_) => return,
        }
    }
}

/// The follower's control endpoints.
fn handle_follow_control(req: &Request, ctx: &FollowCtx, out: &mut Vec<u8>) {
    use std::fmt::Write as _;
    let path = req
        .path
        .split_once('?')
        .map_or(req.path.as_str(), |(p, _)| p);
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => {
            let s = ctx.status();
            let mut body = String::with_capacity(192);
            let _ = write!(
                body,
                "{{\"status\":\"{}\",\"epoch\":{},\"lag_ms\":{},\"rounds\":{},\
                 \"full_syncs\":{},\"apps\":{},\"failures\":{},\"primary\":\"{}\"",
                if s.promoted.is_some() {
                    "promoted"
                } else {
                    "following"
                },
                s.epoch,
                s.lag_ms,
                s.rounds,
                s.full_syncs,
                s.apps,
                s.consecutive_failures,
                wire::json_escape(&ctx.cfg.primary_addr),
            );
            if let Some(addr) = s.promoted {
                let _ = write!(body, ",\"serve_addr\":\"{addr}\"");
            }
            body.push('}');
            write_response(out, 200, "application/json", body.as_bytes());
        }
        ("GET", "/metrics") => {
            // The standard report shape with no shards or reactors: the
            // repl families render through the same REGISTRY-locked path
            // the primary uses, so scrape configs need no special case.
            let s = ctx.status();
            let report = MetricsReport {
                shards: Vec::new(),
                reactors: Vec::new(),
                proto: ProtoStats {
                    frames: 0,
                    batched_decisions: 0,
                    proto_errors: 0,
                    control_frames: 0,
                },
                conns: ConnStats {
                    live: 0,
                    accepted: 0,
                    peak: 0,
                    reactor_threads: 0,
                },
                repl: ReplStats {
                    epoch: s.epoch,
                    rounds: s.rounds,
                    full_syncs: s.full_syncs,
                    apps_streamed: s.apps_applied,
                    bytes_streamed: s.bytes_received,
                    lag_ms: s.lag_ms,
                },
                uptime_ms: ctx.started.elapsed().as_millis() as u64,
            };
            write_response(
                out,
                200,
                "text/plain; version=0.0.4",
                report.render().as_bytes(),
            );
        }
        ("GET", "/debug/events") => {
            let (pushed, events) = {
                let ring = match ctx.events.lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                (ring.pushed(), ring.events().cloned().collect::<Vec<_>>())
            };
            let mut body = String::with_capacity(64 + events.len() * 96);
            let _ = write!(body, "{{\"pushed\":{pushed},\"events\":[");
            for (i, ev) in events.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                let _ = write!(
                    body,
                    "{{\"ts_ms\":{},\"kind\":\"{}\",\"tenant\":\"{}\",\"app\":\"{}\",\
                     \"detail\":\"{}\"}}",
                    ev.ts_ms,
                    ev.kind.name(),
                    wire::json_escape(&ev.tenant),
                    wire::json_escape(&ev.app),
                    wire::json_escape(&ev.detail),
                );
            }
            body.push_str("]}");
            write_response(out, 200, "application/json", body.as_bytes());
        }
        ("POST", "/admin/promote") => match ctx.promote("operator request") {
            Ok(addr) => {
                let body = format!("{{\"status\":\"promoted\",\"serve_addr\":\"{addr}\"}}");
                write_response(out, 200, "application/json", body.as_bytes());
            }
            Err(e) => {
                let body = format!("{{\"error\":\"{}\"}}", wire::json_escape(&e));
                write_response(out, 500, "application/json", body.as_bytes());
            }
        },
        ("POST", "/admin/shutdown") => {
            ctx.shutdown.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(ctx.addr);
            write_response(out, 200, "application/json", b"{\"status\":\"stopping\"}");
        }
        (_, "/healthz" | "/metrics" | "/debug/events" | "/admin/promote" | "/admin/shutdown") => {
            write_response(
                out,
                405,
                "application/json",
                b"{\"error\":\"method not allowed\"}",
            );
        }
        _ => {
            write_response(out, 404, "application/json", b"{\"error\":\"not found\"}");
        }
    }
}

/// The pull loop: one ack → round exchange per interval over a
/// persistent connection, reconnecting (and counting failures) on any
/// error. Stops at shutdown or promotion.
fn pull_loop(ctx: Arc<FollowCtx>) {
    let mut conn: Option<TcpStream> = None;
    let mut buf: Vec<u8> = Vec::new();
    loop {
        if ctx.shutdown.load(Ordering::SeqCst) || ctx.lock_shared().promoted.is_some() {
            return;
        }
        match pull_once(&ctx, &mut conn, &mut buf) {
            Ok(()) => {
                ctx.lock_shared().consecutive_failures = 0;
            }
            Err(_) => {
                conn = None;
                buf.clear();
                let failures = {
                    let mut shared = ctx.lock_shared();
                    shared.consecutive_failures += 1;
                    shared.consecutive_failures
                };
                maybe_auto_promote(&ctx, failures);
            }
        }
        // Sleep in slices so shutdown/promotion is honored promptly.
        let mut remaining = ctx.cfg.pull_interval;
        while !remaining.is_zero() {
            if ctx.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let slice = remaining.min(Duration::from_millis(20));
            std::thread::sleep(slice);
            remaining = remaining.saturating_sub(slice);
        }
    }
}

/// Promotes when the auto policy says the primary is dead: at least
/// three consecutive pulls failed *and* nothing has committed for the
/// configured window.
fn maybe_auto_promote(ctx: &FollowCtx, failures: u64) {
    let Some(window) = ctx.cfg.auto_promote_after else {
        return;
    };
    if failures < 3 {
        return;
    }
    let silent_for = {
        let shared = ctx.lock_shared();
        shared
            .last_commit
            .map_or_else(|| ctx.started.elapsed(), |t| t.elapsed())
    };
    if silent_for < window {
        return;
    }
    ctx.push_event(
        EventKind::NodeDown,
        format!(
            "primary {} unreachable for {}ms ({failures} failed pulls)",
            ctx.cfg.primary_addr,
            silent_for.as_millis()
        ),
    );
    if let Err(e) = ctx.promote("auto policy: primary unreachable") {
        ctx.push_event(EventKind::Failover, format!("auto-promotion failed: {e}"));
    }
}

/// One pull: send the ack, reassemble the round, apply it.
fn pull_once(
    ctx: &FollowCtx,
    conn: &mut Option<TcpStream>,
    buf: &mut Vec<u8>,
) -> Result<(), String> {
    let timeout = ctx.cfg.pull_timeout;
    if conn.is_none() {
        let addr = ctx
            .cfg
            .primary_addr
            .to_socket_addrs()
            .map_err(|e| format!("resolve {}: {e}", ctx.cfg.primary_addr))?
            .next()
            .ok_or_else(|| format!("resolve {}: no address", ctx.cfg.primary_addr))?;
        let stream = TcpStream::connect_timeout(&addr, timeout)
            .map_err(|e| format!("connect {addr}: {e}"))?;
        stream
            .set_read_timeout(Some(timeout))
            .and_then(|()| stream.set_write_timeout(Some(timeout)))
            .map_err(|e| format!("socket setup: {e}"))?;
        *conn = Some(stream);
        buf.clear();
    }
    let stream = conn.as_mut().expect("just connected");

    let epoch = ctx.lock_shared().replica.epoch;
    let mut ack = Vec::with_capacity(wire::BIN_HEADER_LEN + 8);
    wire::encode_repl_ack(&mut ack, epoch);
    stream
        .write_all(&ack)
        .map_err(|e| format!("send ack: {e}"))?;

    let mut assembler = RoundAssembler::default();
    // sitw-lint: allow(clock-discipline)
    let deadline = Instant::now() + timeout;
    let round = loop {
        let (consumed, round) = assembler.feed(buf)?;
        buf.drain(..consumed);
        if let Some(round) = round {
            break round;
        }
        // sitw-lint: allow(clock-discipline)
        if Instant::now() > deadline {
            return Err("pull timed out mid-round".into());
        }
        let mut chunk = [0u8; 16 * 1024];
        match stream.read(&mut chunk) {
            Ok(0) => return Err("primary closed mid-round".into()),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(format!("read: {e}")),
        }
    };

    let full_sync = round.full_sync && !round.doc.is_empty();
    let bytes = round.doc.len() as u64;
    let (applied, new_epoch) = {
        let mut shared = ctx.lock_shared();
        let applied = shared.replica.apply(round)?;
        shared.rounds += 1;
        shared.full_syncs += u64::from(full_sync);
        shared.apps_applied += applied;
        shared.bytes_received += bytes;
        // sitw-lint: allow(clock-discipline)
        shared.last_commit = Some(Instant::now());
        (applied, shared.replica.epoch)
    };
    if full_sync {
        ctx.push_event(
            EventKind::ReplSync,
            format!("epoch {new_epoch}, {applied} apps, {bytes} bytes"),
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{AppRecord, PolicyState};
    use sitw_core::Windows;

    fn snap_with(apps: &[(&str, u64)]) -> Snapshot {
        Snapshot {
            policy_label: "fixed-10min".into(),
            prod_clock: None,
            apps: apps
                .iter()
                .map(|(name, ts)| AppRecord {
                    app: (*name).to_owned(),
                    last_ts: *ts,
                    windows: Windows::keep_loaded(600_000),
                    evicted: false,
                    state: PolicyState::Stateless,
                })
                .collect(),
            default_ledger: Default::default(),
            tenants: Vec::new(),
        }
    }

    #[test]
    fn assembler_reassembles_chunked_rounds_at_any_split() {
        let doc = vec![0xABu8; wire::REPL_CHUNK_BYTES + 100];
        let mut out = Vec::new();
        wire::encode_repl_round(&mut out, wire::FRAME_REPL_SYNC, 5, &doc);
        // Feed the stream in two arbitrary pieces at every boundary that
        // matters (frame edges and mid-payload).
        for cut in [1, wire::BIN_HEADER_LEN, out.len() / 2, out.len() - 1] {
            let mut asm = RoundAssembler::default();
            let mut buf = out[..cut].to_vec();
            let (consumed, round) = asm.feed(&buf).unwrap();
            assert!(round.is_none(), "cut {cut}");
            buf.drain(..consumed);
            buf.extend_from_slice(&out[cut..]);
            let (_, round) = asm.feed(&buf).unwrap();
            let round = round.expect("complete stream yields the round");
            assert_eq!(round.epoch, 5);
            assert!(round.full_sync);
            assert_eq!(round.doc, doc);
        }
    }

    #[test]
    fn assembler_rejects_out_of_order_chunks() {
        let mut out = Vec::new();
        wire::encode_repl_chunk(&mut out, wire::FRAME_REPL_DELTA, 2, 1, true, b"x");
        assert!(RoundAssembler::default().feed(&out).is_err());
    }

    #[test]
    fn replica_applies_sync_then_delta_then_clean_commit() {
        let mut replica = ReplicaState::default();
        // Full sync at epoch 1.
        let full = snap_with(&[("a", 10), ("b", 20)]);
        let applied = replica
            .apply(CommittedRound {
                epoch: 1,
                full_sync: true,
                doc: full.encode().into_bytes(),
            })
            .unwrap();
        assert_eq!(applied, 2);
        assert_eq!(replica.epoch, 1);
        // Delta at epoch 2: app b mutated, app c appeared.
        let delta = snap_with(&[("b", 99), ("c", 30)]);
        replica
            .apply(CommittedRound {
                epoch: 2,
                full_sync: false,
                doc: delta.encode_delta().into_bytes(),
            })
            .unwrap();
        assert_eq!(replica.epoch, 2);
        let snap = replica.snap.as_ref().unwrap();
        let got: Vec<(&str, u64)> = snap
            .apps
            .iter()
            .map(|a| (a.app.as_str(), a.last_ts))
            .collect();
        assert_eq!(got, vec![("a", 10), ("b", 99), ("c", 30)]);
        // Clean commit at the held epoch: a no-op.
        replica
            .apply(CommittedRound {
                epoch: 2,
                full_sync: false,
                doc: Vec::new(),
            })
            .unwrap();
        assert_eq!(replica.epoch, 2);
    }

    #[test]
    fn replica_divergence_forces_resync() {
        let mut replica = ReplicaState::default();
        // A delta before any sync is divergence.
        let delta = snap_with(&[("a", 1)]);
        assert!(replica
            .apply(CommittedRound {
                epoch: 3,
                full_sync: false,
                doc: delta.encode_delta().into_bytes(),
            })
            .is_err());
        assert_eq!(replica.epoch, 0, "error resets to full-sync request");
        // So is a clean commit for an epoch we do not hold.
        assert!(replica
            .apply(CommittedRound {
                epoch: 7,
                full_sync: false,
                doc: Vec::new(),
            })
            .is_err());
        assert_eq!(replica.epoch, 0);
    }
}
