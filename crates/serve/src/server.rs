//! The daemon: listener, acceptor, pipelined connection handlers, and
//! lifecycle (restore → serve → snapshot → shutdown).
//!
//! Threading model: one acceptor thread, one thread per connection, N
//! shard worker threads. A connection thread parses requests, routes
//! `(tenant, app)` to a shard — default-tenant apps by app hash, named
//! tenants whole by tenant hash (see
//! [`sitw_fleet::TenantRegistry::shard_of`]) — and sends an `Invoke`
//! message carrying a clone of its private reply channel; shards reply
//! out of band and the connection reorders by sequence number before
//! writing, preserving HTTP/1.1 response ordering under pipelining. Up
//! to [`ServeConfig::pipeline_window`] decisions per connection are in
//! flight at once.
//!
//! SITW-BIN frames ride the same connections (sniffed per message, see
//! [`crate::http::ConnBuf::read_event`]) and are **pipelined
//! server-side**: a connection keeps decoding and dispatching new frames
//! while earlier frames' batches are still in flight in the shards, and
//! reassembles replies strictly in frame order (each in-flight frame is
//! a `PendingFrame`; shard replies carry the frame sequence). That is
//! what lets small batches (`bin:batch=1`) overlap shard work instead of
//! paying a synchronous round trip per frame. The only serialization
//! points are protocol switches: an HTTP request settles all pending
//! frames first and vice versa, so one connection's responses always
//! come back in send order across both protocols.

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sitw_core::HybridConfig;
use sitw_fleet::{LedgerExport, TenantId, TenantRegistry, TenantSpec, DEFAULT_TENANT};
use sitw_sim::PolicySpec;

use crate::http::{write_response, ConnBuf, EventOutcome, Request};
use crate::metrics::{MetricsReport, ProtoStats, ShardStats};
use crate::shard::{
    shard_of, BatchItem, BatchReply, Decision, InvokeError, InvokeReply, ShardMsg, ShardWorker,
    TenantRestore,
};
use crate::snapshot::{AppRecord, ShardExport, Snapshot, TenantSnapshot};
use crate::wire::{self, push_u64, BinErrorCode, BinInvoke};

/// One tenant in the server configuration (CLI `--tenant`, a tenants
/// file, or programmatic [`ServeConfig::tenants`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantConfig {
    /// Tenant name.
    pub name: String,
    /// The policy the tenant's apps are served under.
    pub policy: PolicySpec,
    /// Keep-alive memory budget in MB (0 = unlimited).
    pub budget_mb: u64,
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 to let the OS choose.
    pub addr: String,
    /// Number of shard worker threads (≥ 1).
    pub shards: usize,
    /// The policy the default tenant's applications are served under.
    pub policy: PolicySpec,
    /// Named tenants (each with its own policy and budget); registered
    /// in order, ids 1..=N. More can be added at runtime via
    /// `POST /admin/tenants`.
    pub tenants: Vec<TenantConfig>,
    /// When set, a snapshot is written here on graceful shutdown and on
    /// `POST /admin/snapshot`.
    pub snapshot_path: Option<PathBuf>,
    /// When set and the file exists, state is restored from it at start.
    pub restore_path: Option<PathBuf>,
    /// Socket read timeout; bounds how quickly idle connections notice a
    /// shutdown.
    pub read_timeout: Duration,
    /// Maximum in-flight decisions per connection (JSON requests, and
    /// records across in-flight SITW-BIN frames).
    pub pipeline_window: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7071".into(),
            shards: 4,
            policy: PolicySpec::Hybrid(HybridConfig::default()),
            tenants: Vec::new(),
            snapshot_path: None,
            restore_path: None,
            read_timeout: Duration::from_millis(50),
            pipeline_window: 128,
        }
    }
}

/// Shared state every connection thread sees.
struct ServerCtx {
    cfg: ServeConfig,
    addr: SocketAddr,
    shard_txs: Vec<Sender<ShardMsg>>,
    /// The tenant registry. Read-locked briefly per message to resolve
    /// names/ids and routes; write-locked only by the admin registration
    /// path. Decision state itself stays lock-free in the shards.
    registry: RwLock<TenantRegistry>,
    shutdown: AtomicBool,
    started: Instant,
    /// SITW-BIN frames served (server-wide; connections are unsharded).
    frames: AtomicU64,
    /// Decisions delivered through batched binary frames.
    batched_decisions: AtomicU64,
    /// Typed SITW-BIN protocol errors answered.
    proto_errors: AtomicU64,
}

impl ServerCtx {
    fn scrape(&self) -> MetricsReport {
        let mut shards: Vec<ShardStats> = Vec::with_capacity(self.shard_txs.len());
        for tx in &self.shard_txs {
            let (reply_tx, reply_rx) = mpsc::channel();
            if tx.send(ShardMsg::Scrape(reply_tx)).is_ok() {
                if let Ok(stats) = reply_rx.recv() {
                    shards.push(stats);
                }
            }
        }
        shards.sort_by_key(|s| s.shard);
        MetricsReport {
            shards,
            proto: ProtoStats {
                frames: self.frames.load(Ordering::Relaxed),
                batched_decisions: self.batched_decisions.load(Ordering::Relaxed),
                proto_errors: self.proto_errors.load(Ordering::Relaxed),
            },
            uptime_ms: self.started.elapsed().as_millis() as u64,
        }
    }

    fn snapshot(&self) -> Snapshot {
        let mut exports: Vec<ShardExport> = Vec::new();
        for tx in &self.shard_txs {
            let (reply_tx, reply_rx) = mpsc::channel();
            if tx.send(ShardMsg::Snapshot(reply_tx)).is_ok() {
                if let Ok(export) = reply_rx.recv() {
                    exports.push(export);
                }
            }
        }
        merge_exports(self.cfg.policy.label(), exports)
    }

    /// Registers a tenant at runtime: the owning shard learns about it
    /// (and acks) *before* the registry exposes the name, so no request
    /// can race ahead of the shard's state.
    fn register_tenant(
        &self,
        name: &str,
        policy: PolicySpec,
        budget_mb: u64,
    ) -> Result<TenantSpec, String> {
        let mut registry = self.registry.write().expect("registry poisoned");
        let mut staged = registry.clone();
        let id = staged.register(name, policy, budget_mb)?;
        let spec = staged.get(id).expect("just registered").clone();
        let home = staged.shard_of(id, "", self.shard_txs.len());
        let (ack_tx, ack_rx) = mpsc::channel();
        self.shard_txs[home]
            .send(ShardMsg::AddTenant {
                spec: spec.clone(),
                ack: ack_tx,
            })
            .map_err(|_| "shard unavailable (shutting down)".to_owned())?;
        ack_rx
            .recv()
            .map_err(|_| "shard unavailable (shutting down)".to_owned())?;
        *registry = staged;
        Ok(spec)
    }

    /// Unblocks the acceptor's `accept()` after the shutdown flag flips.
    fn wake_acceptor(&self) {
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running decision service.
pub struct Server {
    ctx: Arc<ServerCtx>,
    acceptor: Option<JoinHandle<()>>,
    shard_handles: Vec<JoinHandle<ShardExport>>,
}

/// Merges per-shard exports into one snapshot. Default-tenant state is
/// the union of per-shard slices (apps concatenated, ledger counters
/// summed, clocks as maxima); named tenants live whole on one shard.
fn merge_exports(policy_label: String, exports: Vec<ShardExport>) -> Snapshot {
    let mut apps: Vec<AppRecord> = Vec::new();
    let mut prod_clock: Option<u64> = None;
    let mut default_ledger = LedgerExport::default();
    let mut tenants: Vec<TenantSnapshot> = Vec::new();
    for export in exports {
        for te in export.tenants {
            if te.id == DEFAULT_TENANT {
                apps.extend(te.apps);
                prod_clock = prod_clock.max(te.prod_clock);
                default_ledger.warm.extend(te.ledger.warm);
                default_ledger.evictions += te.ledger.evictions;
                default_ledger.idle_mb_ms = default_ledger
                    .idle_mb_ms
                    .saturating_add(te.ledger.idle_mb_ms);
                default_ledger.cursor_ms = default_ledger.cursor_ms.max(te.ledger.cursor_ms);
            } else {
                tenants.push(TenantSnapshot {
                    id: te.id,
                    name: te.name,
                    policy_label: te.policy_label,
                    spec_str: te.spec_str,
                    budget_mb: te.budget_mb,
                    prod_clock: te.prod_clock,
                    ledger: te.ledger,
                    apps: te.apps,
                });
            }
        }
    }
    apps.sort_by(|a, b| a.app.cmp(&b.app));
    default_ledger.warm.sort();
    tenants.sort_by_key(|t| t.id);
    Snapshot {
        policy_label,
        prod_clock,
        apps,
        default_ledger,
        tenants,
    }
}

/// Builds the tenant registry for a start: snapshot tenants first (ids
/// preserved), configured tenants verified against or appended to them.
fn build_registry(cfg: &ServeConfig, snap: Option<&Snapshot>) -> Result<TenantRegistry, String> {
    let mut registry = TenantRegistry::new(cfg.policy.clone());
    if let Some(snap) = snap {
        for t in &snap.tenants {
            // Configured spec wins when present (it carries the actual
            // PolicySpec; the snapshot only proves the label). A tenant
            // the new process was not configured with is rebuilt from
            // its canonical spec string.
            let configured = cfg.tenants.iter().find(|c| c.name == t.name);
            let (policy, budget_mb) = match configured {
                Some(c) => {
                    if c.policy.label() != t.policy_label {
                        return Err(format!(
                            "tenant '{}': snapshot policy '{}' does not match configured '{}'",
                            t.name,
                            t.policy_label,
                            c.policy.label()
                        ));
                    }
                    (c.policy.clone(), c.budget_mb)
                }
                None => {
                    let spec_str = t.spec_str.as_ref().ok_or_else(|| {
                        format!(
                            "tenant '{}' has no canonical spec in the snapshot; \
                             configure it explicitly to restore",
                            t.name
                        )
                    })?;
                    (PolicySpec::parse(spec_str)?, t.budget_mb)
                }
            };
            let id = registry.register(&t.name, policy, budget_mb)?;
            if id != t.id {
                return Err(format!(
                    "tenant '{}': snapshot id {} cannot be preserved (got {id})",
                    t.name, t.id
                ));
            }
        }
    }
    for c in &cfg.tenants {
        if registry.resolve(&c.name).is_none() {
            registry.register(&c.name, c.policy.clone(), c.budget_mb)?;
        }
    }
    Ok(registry)
}

/// Partitions restored state across shards: default-tenant apps and
/// warm entries by app hash, named tenants whole to their home shard.
fn partition_restore(
    registry: &TenantRegistry,
    snap: Option<Snapshot>,
    shards: usize,
) -> Vec<Vec<TenantRestore>> {
    let default_spec = registry
        .get(DEFAULT_TENANT)
        .expect("default tenant always exists")
        .clone();
    let mut per_shard: Vec<Vec<TenantRestore>> = (0..shards)
        .map(|_| vec![TenantRestore::fresh(default_spec.clone())])
        .collect();
    let Some(snap) = snap else {
        for spec in registry.tenants() {
            if spec.id != DEFAULT_TENANT {
                let home = registry.shard_of(spec.id, "", shards);
                per_shard[home].push(TenantRestore::fresh(spec.clone()));
            }
        }
        return per_shard;
    };
    for rec in snap.apps {
        let shard = shard_of(&rec.app, shards);
        per_shard[shard][0].apps.push(rec);
    }
    for (app, expiry, mb) in snap.default_ledger.warm {
        let shard = shard_of(&app, shards);
        per_shard[shard][0].ledger.warm.push((app, expiry, mb));
    }
    for shard in per_shard.iter_mut() {
        shard[0].prod_clock = snap.prod_clock;
        shard[0].ledger.cursor_ms = snap.default_ledger.cursor_ms;
    }
    // The merged integral/eviction counters are scalars; seed them on
    // shard 0 so the aggregate `/metrics` view stays continuous.
    per_shard[0][0].ledger.evictions = snap.default_ledger.evictions;
    per_shard[0][0].ledger.idle_mb_ms = snap.default_ledger.idle_mb_ms;

    let mut snap_tenants: std::collections::HashMap<TenantId, TenantSnapshot> =
        snap.tenants.into_iter().map(|t| (t.id, t)).collect();
    for spec in registry.tenants() {
        if spec.id == DEFAULT_TENANT {
            continue;
        }
        let home = registry.shard_of(spec.id, "", shards);
        let restore = match snap_tenants.remove(&spec.id) {
            Some(t) => TenantRestore {
                spec: spec.clone(),
                apps: t.apps,
                ledger: t.ledger,
                prod_clock: t.prod_clock,
            },
            None => TenantRestore::fresh(spec.clone()),
        };
        per_shard[home].push(restore);
    }
    per_shard
}

impl Server {
    /// Binds, restores state if configured, and starts serving.
    pub fn start(cfg: ServeConfig) -> io::Result<Server> {
        if cfg.shards == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "shards == 0"));
        }

        // Restore before any thread exists.
        let mut snap: Option<Snapshot> = None;
        if let Some(path) = &cfg.restore_path {
            if path.exists() {
                let loaded = Snapshot::read_from(path)?;
                let expected = cfg.policy.label();
                if loaded.policy_label != expected {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "snapshot policy '{}' does not match configured '{expected}'",
                            loaded.policy_label
                        ),
                    ));
                }
                snap = Some(loaded);
            }
        }
        let registry = build_registry(&cfg, snap.as_ref())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let per_shard = partition_restore(&registry, snap, cfg.shards);

        let mut shard_txs = Vec::with_capacity(cfg.shards);
        let mut shard_handles = Vec::with_capacity(cfg.shards);
        for (id, restore) in per_shard.into_iter().enumerate() {
            let worker = ShardWorker::new(id, restore)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            let (tx, rx) = mpsc::channel();
            shard_txs.push(tx);
            shard_handles.push(
                std::thread::Builder::new()
                    .name(format!("sitw-shard-{id}"))
                    .spawn(move || worker.run(rx))?,
            );
        }

        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let ctx = Arc::new(ServerCtx {
            cfg,
            addr,
            shard_txs,
            registry: RwLock::new(registry),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            frames: AtomicU64::new(0),
            batched_decisions: AtomicU64::new(0),
            proto_errors: AtomicU64::new(0),
        });

        let acceptor_ctx = Arc::clone(&ctx);
        let acceptor = std::thread::Builder::new()
            .name("sitw-acceptor".into())
            .spawn(move || accept_loop(listener, acceptor_ctx))?;

        Ok(Server {
            ctx,
            acceptor: Some(acceptor),
            shard_handles,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.ctx.addr
    }

    /// Scrapes all shards (in-process equivalent of `GET /metrics`).
    pub fn metrics(&self) -> MetricsReport {
        self.ctx.scrape()
    }

    /// Captures a snapshot of all shards without stopping the server.
    pub fn snapshot(&self) -> Snapshot {
        self.ctx.snapshot()
    }

    /// Registers a tenant at runtime (in-process equivalent of
    /// `POST /admin/tenants`).
    pub fn register_tenant(
        &self,
        name: &str,
        policy: PolicySpec,
        budget_mb: u64,
    ) -> Result<TenantSpec, String> {
        self.ctx.register_tenant(name, policy, budget_mb)
    }

    /// True once a shutdown has been requested (e.g. via
    /// `POST /admin/shutdown`).
    pub fn shutdown_requested(&self) -> bool {
        self.ctx.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until a shutdown is requested.
    pub fn wait(&self) {
        while !self.shutdown_requested() {
            std::thread::sleep(Duration::from_millis(100));
        }
    }

    /// Gracefully stops: drains connections, stops shards, and writes
    /// the final snapshot to [`ServeConfig::snapshot_path`] when set.
    /// Returns the final state.
    pub fn shutdown(mut self) -> io::Result<Snapshot> {
        self.ctx.shutdown.store(true, Ordering::SeqCst);
        self.ctx.wake_acceptor();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for tx in &self.ctx.shard_txs {
            let _ = tx.send(ShardMsg::Shutdown);
        }
        let mut exports: Vec<ShardExport> = Vec::new();
        for handle in self.shard_handles.drain(..) {
            match handle.join() {
                Ok(export) => exports.push(export),
                Err(_) => {
                    return Err(io::Error::other("shard panicked"));
                }
            }
        }
        let snapshot = merge_exports(self.ctx.cfg.policy.label(), exports);
        if let Some(path) = &self.ctx.cfg.snapshot_path {
            snapshot.write_to(path)?;
        }
        Ok(snapshot)
    }
}

fn accept_loop(listener: TcpListener, ctx: Arc<ServerCtx>) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if ctx.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_ctx = Arc::clone(&ctx);
        if let Ok(handle) = std::thread::Builder::new()
            .name("sitw-conn".into())
            .spawn(move || handle_conn(stream, conn_ctx))
        {
            // Opportunistically reap finished connections so the
            // registry stays proportional to *live* connections.
            conns.retain(|h| !h.is_finished());
            conns.push(handle);
        }
    }
    for handle in conns {
        let _ = handle.join();
    }
}

/// Flush threshold for the per-connection output buffer.
const OUT_FLUSH_BYTES: usize = 64 * 1024;

/// One SITW-BIN frame in flight on a connection: dispatched to the
/// shards, awaiting (some of) its batch replies. Completed frames are
/// written strictly in arrival order — the server-side pipelining
/// ordering invariant.
enum PendingFrame {
    /// A dispatched request frame.
    Batch {
        /// The request frame's version (the reply echoes it).
        version: u8,
        /// Results slotted by frame index as shard replies arrive.
        results: Vec<Option<Result<Decision, InvokeError>>>,
        /// Shards still owing a reply.
        remaining: usize,
    },
    /// A typed protocol error queued behind earlier frames.
    Error {
        /// The error code to answer.
        code: BinErrorCode,
        /// Human-readable detail.
        detail: String,
    },
}

impl PendingFrame {
    fn is_complete(&self) -> bool {
        match self {
            PendingFrame::Batch { remaining, .. } => *remaining == 0,
            PendingFrame::Error { .. } => true,
        }
    }
}

/// Per-connection SITW-BIN pipelining state.
struct FramePipeline {
    /// In-flight frames, oldest first, keyed by frame sequence.
    pending: VecDeque<(u64, PendingFrame)>,
    next_seq: u64,
    /// Records across all in-flight batches (backpressure unit).
    inflight_records: usize,
}

impl FramePipeline {
    fn new() -> Self {
        Self {
            pending: VecDeque::new(),
            next_seq: 0,
            inflight_records: 0,
        }
    }

    fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Slots one shard reply into its frame. Frame sequences are
    /// contiguous and the deque is ordered, so the slot is an O(1)
    /// index from the front — the reply path stays flat no matter how
    /// many frames are in flight.
    fn absorb(&mut self, reply: BatchReply) {
        let Some(&(front_seq, _)) = self.pending.front() else {
            return;
        };
        let slot = reply.frame_seq.wrapping_sub(front_seq) as usize;
        if let Some((
            seq,
            PendingFrame::Batch {
                results, remaining, ..
            },
        )) = self.pending.get_mut(slot)
        {
            debug_assert_eq!(*seq, reply.frame_seq);
            for (idx, result) in reply.results {
                results[idx as usize] = Some(result);
            }
            *remaining -= 1;
        }
    }

    /// Writes every complete frame at the queue front, in order.
    fn flush_ready(&mut self, out: &mut Vec<u8>, ctx: &ServerCtx) {
        while self.pending.front().is_some_and(|(_, f)| f.is_complete()) {
            let (_, frame) = self.pending.pop_front().expect("checked front");
            match frame {
                PendingFrame::Batch {
                    version, results, ..
                } => {
                    let ordered: Vec<Result<Decision, InvokeError>> = results
                        .into_iter()
                        .map(|r| r.expect("complete frame has every record"))
                        .collect();
                    self.inflight_records -= ordered.len();
                    wire::encode_reply_frame(out, version, &ordered);
                    ctx.batched_decisions
                        .fetch_add(ordered.len() as u64, Ordering::Relaxed);
                }
                PendingFrame::Error { code, detail } => {
                    ctx.proto_errors.fetch_add(1, Ordering::Relaxed);
                    wire::encode_error_frame(out, code, &detail);
                }
            }
        }
    }

    /// Blocks until every in-flight frame has been written. Returns
    /// false when the batch channel died (server shutting down).
    fn drain(
        &mut self,
        batch_rx: &Receiver<BatchReply>,
        out: &mut Vec<u8>,
        ctx: &ServerCtx,
    ) -> bool {
        loop {
            self.flush_ready(out, ctx);
            if self.pending.is_empty() {
                return true;
            }
            let Ok(reply) = batch_rx.recv() else {
                return false;
            };
            self.absorb(reply);
        }
    }

    /// Absorbs whatever replies already arrived without blocking.
    fn poll(&mut self, batch_rx: &Receiver<BatchReply>, out: &mut Vec<u8>, ctx: &ServerCtx) {
        while let Ok(reply) = batch_rx.try_recv() {
            self.absorb(reply);
        }
        self.flush_ready(out, ctx);
    }
}

fn handle_conn(stream: TcpStream, ctx: Arc<ServerCtx>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(ctx.cfg.read_timeout));
    let Ok(mut write_half) = stream.try_clone() else {
        return;
    };
    let mut conn = ConnBuf::new(stream);

    let (reply_tx, reply_rx) = mpsc::channel::<InvokeReply>();
    let (batch_tx, batch_rx) = mpsc::channel::<BatchReply>();
    let mut out: Vec<u8> = Vec::with_capacity(OUT_FLUSH_BYTES + 4 * 1024);
    // JSON pipelining state: decisions in flight, reordering by sequence.
    let mut pending: usize = 0;
    let mut next_seq: u64 = 0;
    let mut next_write: u64 = 0;
    let mut reorder: BTreeMap<u64, Result<Decision, InvokeError>> = BTreeMap::new();
    // SITW-BIN pipelining state: frames in flight, written in order.
    let mut frames = FramePipeline::new();
    let mut close = false;

    'conn: loop {
        // Write everything we owe before potentially blocking on the
        // socket with nothing in flight.
        if pending == 0 && frames.is_empty() {
            if !out.is_empty() && write_half.write_all(&out).is_err() {
                break 'conn;
            }
            out.clear();
            if close || ctx.shutdown.load(Ordering::SeqCst) {
                break 'conn;
            }
        }

        match conn.read_event() {
            Ok(EventOutcome::Frame { records, version }) => {
                // Settle in-flight pipelined JSON decisions first, so a
                // client mixing protocols sees responses in send order.
                if !drain_pending(
                    &reply_rx,
                    &mut reorder,
                    &mut pending,
                    &mut next_write,
                    &mut out,
                ) {
                    break 'conn;
                }
                if !submit_frame(records, version, &ctx, &batch_tx, &mut frames) {
                    break 'conn; // Shards gone: shutting down.
                }
                frames.poll(&batch_rx, &mut out, &ctx);
                // Backpressure: cap in-flight records per connection.
                while frames.inflight_records >= ctx.cfg.pipeline_window && !frames.is_empty() {
                    let Ok(reply) = batch_rx.recv() else {
                        break 'conn;
                    };
                    frames.absorb(reply);
                    frames.flush_ready(&mut out, &ctx);
                }
            }
            Ok(EventOutcome::FrameError {
                code,
                detail,
                recoverable,
            }) => {
                if !drain_pending(
                    &reply_rx,
                    &mut reorder,
                    &mut pending,
                    &mut next_write,
                    &mut out,
                ) {
                    break 'conn;
                }
                if recoverable {
                    // Queued behind earlier frames so error replies keep
                    // frame order under pipelining.
                    frames
                        .pending
                        .push_back((frames.next_seq, PendingFrame::Error { code, detail }));
                    frames.next_seq += 1;
                    frames.flush_ready(&mut out, &ctx);
                } else {
                    // The framing itself is broken: settle everything,
                    // answer, then close with a drained receive queue so
                    // the error frame arrives as data + FIN, not an RST
                    // (same rationale as the HTTP 413 path).
                    if !frames.drain(&batch_rx, &mut out, &ctx) {
                        break 'conn;
                    }
                    ctx.proto_errors.fetch_add(1, Ordering::Relaxed);
                    wire::encode_error_frame(&mut out, code, &detail);
                    let _ = write_half.write_all(&out);
                    out.clear();
                    conn.drain_for_close(2 * crate::http::MAX_BODY_BYTES);
                    break 'conn;
                }
            }
            Ok(EventOutcome::Request(req)) => {
                // Protocol switch: settle all in-flight frames before
                // any HTTP response may be written.
                if !frames.drain(&batch_rx, &mut out, &ctx) {
                    break 'conn;
                }
                if req.close {
                    close = true;
                }
                if req.method == "POST" && req.path == "/invoke" {
                    match parse_and_route(&req.body, &ctx) {
                        Ok((tenant, shard, inv)) => {
                            let msg = ShardMsg::Invoke {
                                tenant,
                                app: inv.app,
                                ts: inv.ts,
                                seq: next_seq,
                                reply: reply_tx.clone(),
                            };
                            if ctx.shard_txs[shard].send(msg).is_err() {
                                break 'conn; // Shard gone: shutting down.
                            }
                            next_seq += 1;
                            pending += 1;
                        }
                        Err(e) => {
                            // Responses must stay ordered: settle every
                            // in-flight decision before the error.
                            if !drain_pending(
                                &reply_rx,
                                &mut reorder,
                                &mut pending,
                                &mut next_write,
                                &mut out,
                            ) {
                                break 'conn;
                            }
                            let mut body = Vec::with_capacity(64);
                            body.extend_from_slice(b"{\"error\":\"");
                            body.extend_from_slice(wire::json_escape(&e).as_bytes());
                            body.extend_from_slice(b"\"}");
                            write_response(&mut out, 400, "application/json", &body);
                        }
                    }
                } else {
                    if !drain_pending(
                        &reply_rx,
                        &mut reorder,
                        &mut pending,
                        &mut next_write,
                        &mut out,
                    ) {
                        break 'conn;
                    }
                    handle_control(&req, &ctx, &mut out);
                }
            }
            Ok(EventOutcome::Eof) => {
                close = true;
                if pending == 0 && frames.is_empty() {
                    break 'conn;
                }
            }
            Ok(EventOutcome::BodyTooLarge { .. }) => {
                // The body was never read, so the stream cannot be
                // resynchronized: answer 413 (in order) and close.
                if !drain_pending(
                    &reply_rx,
                    &mut reorder,
                    &mut pending,
                    &mut next_write,
                    &mut out,
                ) || !frames.drain(&batch_rx, &mut out, &ctx)
                {
                    break 'conn;
                }
                write_response(
                    &mut out,
                    413,
                    "application/json",
                    b"{\"error\":\"payload too large\"}",
                );
                if write_half.write_all(&out).is_err() {
                    break 'conn;
                }
                out.clear();
                // Discard whatever body bytes are in flight (bounded)
                // so the close sends FIN, not an RST that could destroy
                // the 413 before the client reads it.
                conn.drain_for_close(2 * crate::http::MAX_BODY_BYTES);
                break 'conn;
            }
            Ok(EventOutcome::Timeout) => {
                // Idle socket: settle anything in flight, then loop (the
                // top of the loop flushes and checks the shutdown flag).
                if pending > 0
                    && !drain_pending(
                        &reply_rx,
                        &mut reorder,
                        &mut pending,
                        &mut next_write,
                        &mut out,
                    )
                {
                    break 'conn;
                }
                if !frames.is_empty() && !frames.drain(&batch_rx, &mut out, &ctx) {
                    break 'conn;
                }
                continue 'conn;
            }
            Err(_) => break 'conn, // Malformed request or I/O error.
        }

        // Collect whatever replies already arrived (without blocking).
        while let Ok(reply) = reply_rx.try_recv() {
            reorder.insert(reply.seq, reply.result);
        }
        write_ready(&mut reorder, &mut next_write, &mut pending, &mut out);
        frames.poll(&batch_rx, &mut out, &ctx);

        // Backpressure: cap in-flight JSON decisions per connection.
        while pending >= ctx.cfg.pipeline_window {
            let Ok(reply) = reply_rx.recv() else {
                break 'conn;
            };
            reorder.insert(reply.seq, reply.result);
            write_ready(&mut reorder, &mut next_write, &mut pending, &mut out);
        }

        // No more buffered requests: settle everything in flight so the
        // client is never left waiting on responses we could send.
        if conn.buffered() == 0 {
            if !drain_pending(
                &reply_rx,
                &mut reorder,
                &mut pending,
                &mut next_write,
                &mut out,
            ) {
                break 'conn;
            }
            if !frames.drain(&batch_rx, &mut out, &ctx) {
                break 'conn;
            }
        }

        if out.len() >= OUT_FLUSH_BYTES {
            if write_half.write_all(&out).is_err() {
                break 'conn;
            }
            out.clear();
        }
    }

    if !out.is_empty() {
        let _ = write_half.write_all(&out);
    }
}

/// Parses an `/invoke` body and resolves its tenant and shard.
fn parse_and_route(
    body: &[u8],
    ctx: &ServerCtx,
) -> Result<(TenantId, usize, wire::InvokeRequest), String> {
    let inv = wire::parse_invoke(body)?;
    let registry = ctx.registry.read().expect("registry poisoned");
    let tenant = match &inv.tenant {
        None => DEFAULT_TENANT,
        Some(name) => registry
            .resolve(name)
            .ok_or_else(|| format!("unknown tenant '{name}'"))?,
    };
    let shard = registry.shard_of(tenant, &inv.app, ctx.shard_txs.len());
    Ok((tenant, shard, inv))
}

/// Dispatches one SITW-BIN frame to the shards without waiting for the
/// replies: records are partitioned by `(tenant, app)` route, each shard
/// gets its whole slice in **one** mailbox message, and a
/// [`PendingFrame`] joins the connection's pipeline to be reassembled in
/// frame order when the [`BatchReply`]s come back. Returns false when a
/// shard is gone (server shutting down).
fn submit_frame(
    records: Vec<BinInvoke>,
    version: u8,
    ctx: &ServerCtx,
    batch_tx: &Sender<BatchReply>,
    frames: &mut FramePipeline,
) -> bool {
    let n = records.len();
    ctx.frames.fetch_add(1, Ordering::Relaxed);
    let frame_seq = frames.next_seq;
    frames.next_seq += 1;

    let shards = ctx.shard_txs.len();
    let mut per_shard: Vec<Vec<BatchItem>> = vec![Vec::new(); shards];
    {
        let registry = ctx.registry.read().expect("registry poisoned");
        for (idx, rec) in records.into_iter().enumerate() {
            if registry.get(rec.tenant).is_none() {
                frames.pending.push_back((
                    frame_seq,
                    PendingFrame::Error {
                        code: BinErrorCode::Malformed,
                        detail: format!("record {idx}: unknown tenant id {}", rec.tenant),
                    },
                ));
                return true;
            }
            let shard = registry.shard_of(rec.tenant, &rec.app, shards);
            per_shard[shard].push(BatchItem {
                idx: idx as u32,
                tenant: rec.tenant,
                app: rec.app,
                ts: rec.ts,
            });
        }
    }
    let mut expected = 0usize;
    for (shard, items) in per_shard.into_iter().enumerate() {
        if items.is_empty() {
            continue;
        }
        let msg = ShardMsg::InvokeBatch {
            frame_seq,
            items,
            reply: batch_tx.clone(),
        };
        if ctx.shard_txs[shard].send(msg).is_err() {
            return false;
        }
        expected += 1;
    }
    frames.inflight_records += n;
    frames.pending.push_back((
        frame_seq,
        PendingFrame::Batch {
            version,
            results: vec![None; n],
            remaining: expected,
        },
    ));
    true
}

/// Blocks until every in-flight decision has been written to `out`.
/// Returns false when the reply channel died (server shutting down).
fn drain_pending(
    reply_rx: &Receiver<InvokeReply>,
    reorder: &mut BTreeMap<u64, Result<Decision, InvokeError>>,
    pending: &mut usize,
    next_write: &mut u64,
    out: &mut Vec<u8>,
) -> bool {
    while *pending > 0 {
        let Ok(reply) = reply_rx.recv() else {
            return false;
        };
        reorder.insert(reply.seq, reply.result);
        write_ready(reorder, next_write, pending, out);
    }
    true
}

/// Writes every reply that is next in sequence order.
fn write_ready(
    reorder: &mut BTreeMap<u64, Result<Decision, InvokeError>>,
    next_write: &mut u64,
    pending: &mut usize,
    out: &mut Vec<u8>,
) {
    while let Some(result) = reorder.remove(next_write) {
        *next_write += 1;
        *pending -= 1;
        match result {
            Ok(decision) => {
                let mut body = Vec::with_capacity(128);
                wire::render_decision(&mut body, &decision);
                write_response(out, 200, "application/json", &body);
            }
            Err(InvokeError::OutOfOrder { last_ts }) => {
                let mut body = Vec::with_capacity(64);
                body.extend_from_slice(b"{\"error\":\"out-of-order\",\"last_ts\":");
                push_u64(&mut body, last_ts);
                body.push(b'}');
                write_response(out, 409, "application/json", &body);
            }
            Err(InvokeError::UnknownTenant) => {
                // Unreachable: tenants are resolved before dispatch.
                write_response(
                    out,
                    400,
                    "application/json",
                    b"{\"error\":\"unknown tenant\"}",
                );
            }
        }
    }
}

/// Non-invoke endpoints: health, metrics, admin.
fn handle_control(req: &Request, ctx: &Arc<ServerCtx>, out: &mut Vec<u8>) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let mut body = Vec::with_capacity(96);
            body.extend_from_slice(b"{\"status\":\"ok\",\"policy\":\"");
            body.extend_from_slice(ctx.cfg.policy.label().as_bytes());
            body.extend_from_slice(b"\",\"shards\":");
            push_u64(&mut body, ctx.shard_txs.len() as u64);
            body.extend_from_slice(b",\"tenants\":");
            push_u64(
                &mut body,
                ctx.registry.read().expect("registry poisoned").len() as u64,
            );
            body.extend_from_slice(b",\"uptime_ms\":");
            push_u64(&mut body, ctx.started.elapsed().as_millis() as u64);
            body.push(b'}');
            write_response(out, 200, "application/json", &body);
        }
        ("GET", "/metrics") => {
            let report = ctx.scrape();
            write_response(
                out,
                200,
                "text/plain; version=0.0.4",
                report.render().as_bytes(),
            );
        }
        ("GET", "/admin/tenants") => {
            let registry = ctx.registry.read().expect("registry poisoned");
            let mut body = Vec::with_capacity(128);
            body.push(b'[');
            for (i, t) in registry.tenants().iter().enumerate() {
                if i > 0 {
                    body.push(b',');
                }
                body.extend_from_slice(b"{\"id\":");
                push_u64(&mut body, t.id as u64);
                body.extend_from_slice(b",\"name\":\"");
                body.extend_from_slice(t.name.as_bytes());
                body.extend_from_slice(b"\",\"policy\":\"");
                body.extend_from_slice(t.policy.label().as_bytes());
                body.extend_from_slice(b"\",\"budget_mb\":");
                push_u64(&mut body, t.budget_mb);
                body.push(b'}');
            }
            body.push(b']');
            write_response(out, 200, "application/json", &body);
        }
        ("POST", "/admin/tenants") => {
            // Body: the CLI argument grammar, `NAME=POLICY[,budget=MB]`.
            let arg = String::from_utf8_lossy(&req.body);
            let result = sitw_fleet::registry::parse_tenant_arg(arg.trim())
                .and_then(|(name, policy, budget)| ctx.register_tenant(&name, policy, budget));
            match result {
                Ok(spec) => {
                    let mut body = Vec::with_capacity(64);
                    body.extend_from_slice(b"{\"id\":");
                    push_u64(&mut body, spec.id as u64);
                    body.extend_from_slice(b",\"name\":\"");
                    body.extend_from_slice(spec.name.as_bytes());
                    body.extend_from_slice(b"\"}");
                    write_response(out, 200, "application/json", &body);
                }
                Err(e) => {
                    let body = format!("{{\"error\":\"{}\"}}", wire::json_escape(&e));
                    write_response(out, 400, "application/json", body.as_bytes());
                }
            }
        }
        ("POST", "/admin/snapshot") => match &ctx.cfg.snapshot_path {
            Some(path) => {
                let snapshot = ctx.snapshot();
                match snapshot.write_to(path) {
                    Ok(()) => {
                        let mut body = Vec::with_capacity(64);
                        body.extend_from_slice(b"{\"apps\":");
                        push_u64(&mut body, snapshot.apps.len() as u64);
                        body.push(b'}');
                        write_response(out, 200, "application/json", &body);
                    }
                    Err(e) => {
                        let body =
                            format!("{{\"error\":\"{}\"}}", wire::json_escape(&e.to_string()));
                        write_response(out, 500, "application/json", body.as_bytes());
                    }
                }
            }
            None => {
                write_response(
                    out,
                    400,
                    "application/json",
                    b"{\"error\":\"no snapshot path configured\"}",
                );
            }
        },
        ("POST", "/admin/shutdown") => {
            ctx.shutdown.store(true, Ordering::SeqCst);
            ctx.wake_acceptor();
            write_response(out, 200, "application/json", b"{\"status\":\"stopping\"}");
        }
        ("POST", "/invoke") => unreachable!("handled by the caller"),
        (
            _,
            "/invoke" | "/healthz" | "/metrics" | "/admin/tenants" | "/admin/snapshot"
            | "/admin/shutdown",
        ) => {
            write_response(
                out,
                405,
                "application/json",
                b"{\"error\":\"method not allowed\"}",
            );
        }
        _ => {
            write_response(out, 404, "application/json", b"{\"error\":\"not found\"}");
        }
    }
}
