//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the exact subset of the `rand` 0.9 API the workspace uses —
//! [`Rng::random`], [`Rng::random_range`], [`SeedableRng::seed_from_u64`]
//! and [`rngs::StdRng`] — backed by xoshiro256++ (Blackman & Vigna).
//! Streams are deterministic per seed but are **not** bit-compatible with
//! the real `rand`'s `StdRng`; all workspace code treats the RNG as an
//! opaque uniform source, so only statistical quality matters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of uniform randomness.
///
/// Mirrors the `rand::Rng` surface used in this workspace: `random::<T>()`
/// for `f64`/`f32`/integers/`bool` and `random_range(..)` over integer and
/// float ranges.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of a type with a canonical uniform distribution
    /// (`[0, 1)` for floats, the full domain for integers and `bool`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample_from(self)
    }

    /// Samples uniformly from a range, e.g. `rng.random_range(0..=i)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types sampleable from their canonical uniform distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from `rng`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` by widening multiply (Lemire's method
/// without the rejection step; bias is < 2⁻⁶⁴·span, irrelevant here).
fn below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + below(rng, span + 1) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u: f64 = rng.random();
        self.start + u * (self.end - self.start)
    }
}

/// RNGs constructible from seed material.
pub trait SeedableRng: Sized {
    /// Builds an RNG whose stream is a deterministic function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNGs, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            let s = [
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_with_correct_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        const N: usize = 100_000;
        for _ in 0..N {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_sampling_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.random_range(0..=4usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        for _ in 0..1000 {
            let v = rng.random_range(10..20u64);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.random_range(5..5u64);
    }
}
