//! Production-style histogram management (§6).
//!
//! The Azure Functions implementation differs from the simulation policy
//! in bookkeeping, not in substance:
//!
//! * one histogram of 240 one-minute integer buckets (960 bytes) per
//!   application, kept in memory;
//! * a **new histogram per day**, retained for two weeks, so pattern
//!   changes can be tracked; the daily histograms can be aggregated "in a
//!   weighted fashion to give more importance to recent records";
//! * hourly backups to a database (modelled here as a backup counter and
//!   serialized-size accounting);
//! * pre-warm events scheduled at the computed interval **minus 90
//!   seconds**, off the critical path.
//!
//! [`ProductionManager`] implements that scheme for a fleet of
//! applications and exposes the same `(pre-warm, keep-alive)` decisions
//! as [`crate::HybridConfig`], computed from the weighted aggregate.

use std::collections::HashMap;

use sitw_stats::histogram::WeightedBins;
use sitw_stats::RangeHistogram;

use crate::policy::{AppPolicy, DecisionKind, DurationMs, PolicyFactory, Windows, MINUTE_MS};

/// Weighting applied across a window of daily histograms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecencyWeighting {
    /// Every retained day weighs the same.
    Uniform,
    /// Day `d` days in the past weighs `decay^d` (0 < decay ≤ 1).
    Exponential {
        /// Per-day decay factor.
        decay: f64,
    },
}

impl RecencyWeighting {
    fn weight(&self, age_days: u64) -> f64 {
        match self {
            RecencyWeighting::Uniform => 1.0,
            RecencyWeighting::Exponential { decay } => decay.powi(age_days as i32),
        }
    }
}

/// Configuration of the production manager.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProductionConfig {
    /// Histogram range in minutes (240 in production).
    pub range_minutes: usize,
    /// Days of daily histograms retained (14 in production).
    pub retention_days: u64,
    /// Daily-histogram weighting for aggregation.
    pub weighting: RecencyWeighting,
    /// Head cutoff percentile (as in the hybrid policy).
    pub head_percentile: f64,
    /// Tail cutoff percentile.
    pub tail_percentile: f64,
    /// Margin subtracted from the head / added to the tail.
    pub margin: f64,
    /// Pre-warm events fire this much *earlier* than the computed window
    /// (90 s in production).
    pub prewarm_slack_ms: DurationMs,
    /// Backups are taken at this interval (hourly in production).
    pub backup_interval_ms: DurationMs,
}

impl Default for ProductionConfig {
    fn default() -> Self {
        Self {
            range_minutes: 240,
            retention_days: 14,
            weighting: RecencyWeighting::Exponential { decay: 0.85 },
            head_percentile: 5.0,
            tail_percentile: 99.0,
            margin: 0.10,
            prewarm_slack_ms: 90_000,
            backup_interval_ms: 3_600_000,
        }
    }
}

/// Identifier type for applications managed by [`ProductionManager`]
/// (opaque to this module).
pub type AppKey = u64;

/// Per-application daily histogram set.
#[derive(Debug, Clone)]
struct AppHistograms {
    /// `(day_index, histogram)`, oldest first.
    days: Vec<(u64, RangeHistogram)>,
}

/// A scheduled pre-warm event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrewarmEvent {
    /// Application to load.
    pub app: AppKey,
    /// Absolute time at which to load the image.
    pub at_ms: DurationMs,
}

/// Fleet-wide production histogram manager.
#[derive(Debug)]
pub struct ProductionManager {
    config: ProductionConfig,
    apps: HashMap<AppKey, AppHistograms>,
    backups_taken: u64,
    last_backup_ms: DurationMs,
}

impl ProductionManager {
    /// Creates an empty manager.
    pub fn new(config: ProductionConfig) -> Self {
        Self {
            config,
            apps: HashMap::new(),
            backups_taken: 0,
            last_backup_ms: 0,
        }
    }

    /// Number of applications currently tracked.
    pub fn num_apps(&self) -> usize {
        self.apps.len()
    }

    /// Records an idle time observed at absolute time `now_ms` for `app`,
    /// updating the current day's histogram and expiring old days.
    pub fn record_idle_time(&mut self, app: AppKey, now_ms: DurationMs, idle_ms: DurationMs) {
        let day = now_ms / (24 * 60 * MINUTE_MS);
        let range = self.config.range_minutes;
        let entry = self
            .apps
            .entry(app)
            .or_insert_with(|| AppHistograms { days: Vec::new() });
        match entry.days.last_mut() {
            Some((d, hist)) if *d == day => {
                hist.record(idle_ms / MINUTE_MS);
            }
            _ => {
                let mut hist = RangeHistogram::new(range, 1);
                hist.record(idle_ms / MINUTE_MS);
                entry.days.push((day, hist));
            }
        }
        // Expire days older than the retention window.
        let cutoff = day.saturating_sub(self.config.retention_days.saturating_sub(1));
        entry.days.retain(|(d, _)| *d >= cutoff);
    }

    /// The weighted aggregate histogram for an app as of day
    /// `today` (derived from `now_ms`).
    pub fn aggregate(&self, app: AppKey, now_ms: DurationMs) -> Option<WeightedBins> {
        let today = now_ms / (24 * 60 * MINUTE_MS);
        let entry = self.apps.get(&app)?;
        let mut agg = WeightedBins::new(self.config.range_minutes, 1);
        for (day, hist) in &entry.days {
            let age = today.saturating_sub(*day);
            // Expiry normally happens inside `record_idle_time`, but an
            // app that has been idle past the retention window still
            // holds its stale days — they must not leak into decisions.
            if age >= self.config.retention_days {
                continue;
            }
            agg.add_scaled(hist, self.config.weighting.weight(age));
        }
        (!agg.is_empty()).then_some(agg)
    }

    /// Computes the `(pre-warm, keep-alive)` windows for an app from the
    /// weighted aggregate; `None` when no data exists yet (callers then
    /// use their conservative default).
    pub fn windows(&self, app: AppKey, now_ms: DurationMs) -> Option<Windows> {
        let agg = self.aggregate(app, now_ms)?;
        let head = agg.head_value(self.config.head_percentile)?;
        let tail = agg.tail_value(self.config.tail_percentile)?;
        let head_ms = (head as f64 * (1.0 - self.config.margin) * MINUTE_MS as f64) as DurationMs;
        let tail_ms = (tail as f64 * (1.0 + self.config.margin) * MINUTE_MS as f64) as DurationMs;
        Some(if head == 0 {
            Windows::keep_loaded(tail_ms)
        } else {
            Windows::pre_warmed(head_ms, tail_ms.saturating_sub(head_ms).max(MINUTE_MS))
        })
    }

    /// Schedules the pre-warm event for an app that became idle at
    /// `idle_from_ms`: the computed pre-warm interval minus the
    /// production slack (90 s), clamped to not precede idleness.
    pub fn schedule_prewarm(&self, app: AppKey, idle_from_ms: DurationMs) -> Option<PrewarmEvent> {
        let w = self.windows(app, idle_from_ms)?;
        if w.pre_warm_ms == 0 {
            return None; // The app is not unloaded at all.
        }
        let at = idle_from_ms
            .saturating_add(w.pre_warm_ms)
            .saturating_sub(self.config.prewarm_slack_ms)
            .max(idle_from_ms);
        Some(PrewarmEvent { app, at_ms: at })
    }

    /// Advances the backup clock; returns how many (hourly) backups were
    /// taken. Each backup serializes every app's current day histogram.
    ///
    /// O(1) in the elapsed time: `now_ms` reaches this method from
    /// client-supplied invocation timestamps on the serving hot path, so
    /// a far-future value must not translate into a long loop.
    pub fn tick_backup(&mut self, now_ms: DurationMs) -> u64 {
        let interval = self.config.backup_interval_ms;
        if interval == 0 {
            return 0;
        }
        let taken = now_ms.saturating_sub(self.last_backup_ms) / interval;
        self.last_backup_ms += taken * interval;
        self.backups_taken += taken;
        taken
    }

    /// Total backups taken so far.
    pub fn backups_taken(&self) -> u64 {
        self.backups_taken
    }

    /// Bytes needed to persist one app's retained histograms (the §6
    /// figure: 960 bytes per histogram).
    pub fn persisted_bytes(&self, app: AppKey) -> usize {
        self.apps
            .get(&app)
            .map(|e| e.days.iter().map(|(_, h)| h.memory_footprint_bytes()).sum())
            .unwrap_or(0)
    }

    /// The manager's configuration.
    pub fn config(&self) -> &ProductionConfig {
        &self.config
    }

    /// Timestamp up to which backups have been accounted (see
    /// [`ProductionManager::tick_backup`]).
    pub fn last_backup_ms(&self) -> DurationMs {
        self.last_backup_ms
    }

    /// Seeds the backup clock, e.g. when restoring a manager mid-stream
    /// from a snapshot: without it the first `tick_backup` after restore
    /// would "take" one backup per hour of downtime.
    pub fn set_last_backup_ms(&mut self, at_ms: DurationMs) {
        self.last_backup_ms = at_ms;
    }

    /// The day-aware decision entry point: observes one invocation at
    /// absolute time `now_ms` and returns the windows governing the gap
    /// until the app's next invocation, plus which branch produced them.
    ///
    /// `idle_ms` is the idle time that just *ended* (`None` for the
    /// app's first observed invocation, which records nothing). The
    /// weighted aggregate over the retained daily histograms drives the
    /// decision ([`DecisionKind::Histogram`]); with no usable aggregate
    /// the conservative standard keep-alive spans the histogram range
    /// ([`DecisionKind::StandardKeepAlive`]). The backup clock advances
    /// as a side effect, mirroring the hourly cadence of §6.
    ///
    /// This is the single decision function both the offline replay
    /// (`sitw_sim`) and the serving daemon (`sitw-serve`) call, which is
    /// what makes their verdict streams bit-for-bit comparable.
    pub fn on_invocation(
        &mut self,
        app: AppKey,
        now_ms: DurationMs,
        idle_ms: Option<DurationMs>,
    ) -> (Windows, DecisionKind) {
        if let Some(idle) = idle_ms {
            self.record_idle_time(app, now_ms, idle);
        }
        self.tick_backup(now_ms);
        match self.windows(app, now_ms) {
            Some(w) => (w, DecisionKind::Histogram),
            None => (
                Windows::keep_loaded(self.config.range_minutes as DurationMs * MINUTE_MS),
                DecisionKind::StandardKeepAlive,
            ),
        }
    }

    /// Exports one app's retained daily histograms (the unit a §6 backup
    /// persists); `None` when the app is unknown.
    pub fn export_app(&self, app: AppKey) -> Option<ProductionAppState> {
        let entry = self.apps.get(&app)?;
        Some(ProductionAppState {
            days: entry
                .days
                .iter()
                .map(|(day, hist)| DayHistogram {
                    day: *day,
                    bins: hist.bins().to_vec(),
                    oob: hist.oob_count(),
                })
                .collect(),
        })
    }

    /// Imports one app's daily histograms, replacing any existing state
    /// for that app. The inverse of [`ProductionManager::export_app`]:
    /// an exported-then-imported app produces bit-identical decisions.
    ///
    /// # Errors
    ///
    /// Fails when a day's bin count does not match the configured range
    /// or the days are not strictly ordered oldest-first.
    pub fn import_app(&mut self, app: AppKey, state: ProductionAppState) -> Result<(), String> {
        let mut days = Vec::with_capacity(state.days.len());
        let mut prev_day = None;
        for d in state.days {
            if d.bins.len() != self.config.range_minutes {
                return Err(format!(
                    "day {} has {} bins but config expects {}",
                    d.day,
                    d.bins.len(),
                    self.config.range_minutes
                ));
            }
            if prev_day.is_some_and(|p| d.day <= p) {
                return Err(format!("day {} out of order", d.day));
            }
            prev_day = Some(d.day);
            days.push((d.day, RangeHistogram::from_parts(1, d.bins, d.oob)));
        }
        self.apps.insert(app, AppHistograms { days });
        Ok(())
    }
}

/// One retained daily histogram of an app, in exportable form.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DayHistogram {
    /// Day index (`now_ms / DAY_MS` at recording time).
    pub day: u64,
    /// Raw bin counts (one per minute of the configured range).
    pub bins: Vec<u32>,
    /// Idle times at or beyond the histogram range.
    pub oob: u64,
}

/// Complete exportable per-app state of a [`ProductionManager`]: the
/// retained daily histograms, oldest first.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProductionAppState {
    /// `(day, histogram)` exports, oldest first.
    pub days: Vec<DayHistogram>,
}

/// A single-application view of the production scheme, for replaying one
/// app's idle-time stream through the standard [`AppPolicy`] interface
/// (simulation sweeps treat every policy as a per-app state machine).
///
/// Absolute time — which the daily rotation needs and `AppPolicy` does
/// not carry — is reconstructed by accumulating idle times from 0, so a
/// sweep sees the same *relative* day boundaries for every app. Replays
/// that must match the serving daemon bit-for-bit use
/// [`ProductionManager::on_invocation`] with real timestamps instead
/// (`sitw_sim::production_verdict_trace`).
#[derive(Debug)]
pub struct ProductionPolicy {
    manager: ProductionManager,
    now_ms: DurationMs,
    last_decision: DecisionKind,
}

/// The key the adapter's single app uses inside its private manager.
const SOLE_APP: AppKey = 0;

impl ProductionPolicy {
    /// Creates the single-app adapter.
    pub fn new(config: ProductionConfig) -> Self {
        Self {
            manager: ProductionManager::new(config),
            now_ms: 0,
            last_decision: DecisionKind::StandardKeepAlive,
        }
    }

    /// The wrapped manager (e.g. for backup accounting in reports).
    pub fn manager(&self) -> &ProductionManager {
        &self.manager
    }
}

impl AppPolicy for ProductionPolicy {
    fn on_invocation(&mut self, idle_time_ms: Option<DurationMs>) -> Windows {
        self.now_ms = self.now_ms.saturating_add(idle_time_ms.unwrap_or(0));
        let (windows, kind) = self
            .manager
            .on_invocation(SOLE_APP, self.now_ms, idle_time_ms);
        self.last_decision = kind;
        windows
    }

    fn last_decision(&self) -> DecisionKind {
        self.last_decision
    }

    fn name(&self) -> String {
        self.manager.config.label()
    }
}

impl PolicyFactory for ProductionConfig {
    type Policy = ProductionPolicy;

    fn new_policy(&self) -> ProductionPolicy {
        ProductionPolicy::new(*self)
    }

    fn label(&self) -> String {
        let weight = match self.weighting {
            RecencyWeighting::Uniform => "uni".to_owned(),
            RecencyWeighting::Exponential { decay } => format!("exp{decay}"),
        };
        format!(
            "production-{}m-{}d[{},{}]{weight}",
            self.range_minutes, self.retention_days, self.head_percentile, self.tail_percentile,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DAY: DurationMs = 24 * 60 * MINUTE_MS;

    #[test]
    fn records_rotate_daily_and_expire() {
        let mut m = ProductionManager::new(ProductionConfig::default());
        for day in 0..20u64 {
            m.record_idle_time(1, day * DAY, 10 * MINUTE_MS);
        }
        // Only the last 14 days are retained.
        let e = &m.apps[&1];
        assert_eq!(e.days.len(), 14);
        assert_eq!(e.days.first().unwrap().0, 6);
        assert_eq!(e.days.last().unwrap().0, 19);
    }

    #[test]
    fn aggregate_weights_recent_days_higher() {
        let cfg = ProductionConfig {
            weighting: RecencyWeighting::Exponential { decay: 0.5 },
            ..ProductionConfig::default()
        };
        let mut m = ProductionManager::new(cfg);
        // Day 0: idle times of 100 minutes. Day 1: 20 minutes.
        for _ in 0..10 {
            m.record_idle_time(7, 0, 100 * MINUTE_MS);
            m.record_idle_time(7, DAY, 20 * MINUTE_MS);
        }
        let agg = m.aggregate(7, DAY).unwrap();
        // As of day 1, day-1 weighs 1.0 and day-0 weighs 0.5: the median
        // sits in the recent mode.
        assert_eq!(agg.head_value(50.0), Some(20));
    }

    #[test]
    fn windows_match_hybrid_semantics() {
        let mut m = ProductionManager::new(ProductionConfig::default());
        for _ in 0..50 {
            m.record_idle_time(3, 0, 10 * MINUTE_MS);
        }
        let w = m.windows(3, 0).unwrap();
        assert_eq!(w.pre_warm_ms, 9 * MINUTE_MS);
        assert!(w.is_warm_at(10 * MINUTE_MS));
    }

    #[test]
    fn windows_none_without_data() {
        let m = ProductionManager::new(ProductionConfig::default());
        assert!(m.windows(99, 0).is_none());
        assert!(m.schedule_prewarm(99, 0).is_none());
    }

    #[test]
    fn prewarm_fires_90_seconds_early() {
        let mut m = ProductionManager::new(ProductionConfig::default());
        for _ in 0..50 {
            m.record_idle_time(5, 0, 60 * MINUTE_MS);
        }
        let idle_from = 1_000_000;
        let ev = m.schedule_prewarm(5, idle_from).unwrap();
        let w = m.windows(5, idle_from).unwrap();
        assert_eq!(
            ev.at_ms,
            idle_from + w.pre_warm_ms - 90_000,
            "slack must be 90 s"
        );
    }

    #[test]
    fn prewarm_not_scheduled_when_kept_loaded() {
        let mut m = ProductionManager::new(ProductionConfig::default());
        // Sub-minute idle times → head bin 0 → never unloaded.
        for _ in 0..50 {
            m.record_idle_time(6, 0, 30_000);
        }
        assert!(m.schedule_prewarm(6, 0).is_none());
    }

    #[test]
    fn hourly_backups_accumulate() {
        let mut m = ProductionManager::new(ProductionConfig::default());
        assert_eq!(m.tick_backup(3_599_999), 0);
        assert_eq!(m.tick_backup(3_600_000), 1);
        assert_eq!(m.tick_backup(4 * 3_600_000), 3);
        assert_eq!(m.backups_taken(), 4);
        // The clock lands on interval boundaries, not on `now_ms`.
        assert_eq!(m.last_backup_ms(), 4 * 3_600_000);
        assert_eq!(m.tick_backup(5 * 3_600_000 - 1), 0);
    }

    #[test]
    fn far_future_timestamp_ticks_backups_in_constant_time() {
        // Regression: `ts` is client-controlled on the serving path; a
        // u64::MAX timestamp must not loop once per elapsed hour.
        let mut m = ProductionManager::new(ProductionConfig::default());
        let taken = m.tick_backup(DurationMs::MAX);
        assert_eq!(taken, DurationMs::MAX / 3_600_000);
        assert_eq!(m.backups_taken(), taken);
        let (_, kind) = m.on_invocation(1, DurationMs::MAX, Some(10 * MINUTE_MS));
        assert_eq!(kind, DecisionKind::Histogram);
    }

    #[test]
    fn persisted_size_is_960_bytes_per_day() {
        let mut m = ProductionManager::new(ProductionConfig::default());
        m.record_idle_time(2, 0, MINUTE_MS);
        m.record_idle_time(2, DAY, MINUTE_MS);
        assert_eq!(m.persisted_bytes(2), 2 * 960);
        assert_eq!(m.persisted_bytes(42), 0);
    }

    #[test]
    fn aggregate_drops_expired_days_of_idle_apps() {
        // Regression: expiry used to run only inside `record_idle_time`,
        // so an app idle past the retention window kept serving windows
        // from data older than two weeks.
        let mut m = ProductionManager::new(ProductionConfig::default());
        for _ in 0..50 {
            m.record_idle_time(1, 0, 10 * MINUTE_MS);
        }
        // Within retention the data is used...
        assert!(m.aggregate(1, 13 * DAY).is_some());
        assert!(m.windows(1, 13 * DAY).is_some());
        // ...but 14+ days later (no records in between) it has expired.
        assert!(
            m.aggregate(1, 14 * DAY).is_none(),
            "day-0 data is 14 days old"
        );
        assert!(m.windows(1, 20 * DAY).is_none());
        assert!(m.schedule_prewarm(1, 20 * DAY).is_none());
        // A conservative default is served instead of a stale histogram.
        let (w, kind) = m.on_invocation(1, 20 * DAY, None);
        assert_eq!(kind, DecisionKind::StandardKeepAlive);
        assert_eq!(w, Windows::keep_loaded(240 * MINUTE_MS));
    }

    #[test]
    fn on_invocation_matches_windows_and_falls_back() {
        let mut m = ProductionManager::new(ProductionConfig::default());
        // First invocation: nothing recorded, conservative default.
        let (w, kind) = m.on_invocation(9, 0, None);
        assert_eq!(kind, DecisionKind::StandardKeepAlive);
        assert_eq!(w, Windows::keep_loaded(240 * MINUTE_MS));
        // A concentrated pattern flips to the (weighted) histogram.
        let mut last = (w, kind);
        for i in 1..=30u64 {
            last = m.on_invocation(9, i * 10 * MINUTE_MS, Some(10 * MINUTE_MS));
        }
        assert_eq!(last.1, DecisionKind::Histogram);
        assert_eq!(Some(last.0), m.windows(9, 300 * MINUTE_MS));
        // Backups ticked as a side effect of the advancing clock.
        assert_eq!(m.backups_taken(), 5);
    }

    #[test]
    fn export_import_round_trips_decisions() {
        let cfg = ProductionConfig::default();
        let mut a = ProductionManager::new(cfg);
        for day in 0..3u64 {
            for k in 0..20u64 {
                a.record_idle_time(4, day * DAY + k * MINUTE_MS, (10 + day) * MINUTE_MS);
            }
        }
        a.record_idle_time(4, 3 * DAY, 400 * MINUTE_MS); // An OOB idle.
        let state = a.export_app(4).unwrap();
        assert_eq!(state.days.len(), 4);
        assert_eq!(state.days.last().unwrap().oob, 1);

        let mut b = ProductionManager::new(cfg);
        b.import_app(77, state).unwrap();
        for now in [3 * DAY, 3 * DAY + 5 * MINUTE_MS, 10 * DAY] {
            assert_eq!(a.windows(4, now), b.windows(77, now), "at {now}");
        }
        assert_eq!(a.persisted_bytes(4), b.persisted_bytes(77));
        assert!(b.export_app(999).is_none());
    }

    #[test]
    fn import_rejects_bad_geometry_and_order() {
        let mut m = ProductionManager::new(ProductionConfig::default());
        let bad_bins = ProductionAppState {
            days: vec![DayHistogram {
                day: 0,
                bins: vec![0; 10],
                oob: 0,
            }],
        };
        assert!(m.import_app(1, bad_bins).is_err());
        let out_of_order = ProductionAppState {
            days: vec![
                DayHistogram {
                    day: 5,
                    bins: vec![0; 240],
                    oob: 0,
                },
                DayHistogram {
                    day: 4,
                    bins: vec![0; 240],
                    oob: 1,
                },
            ],
        };
        assert!(m.import_app(1, out_of_order).is_err());
    }

    #[test]
    fn backup_clock_can_be_seeded() {
        let mut m = ProductionManager::new(ProductionConfig::default());
        m.set_last_backup_ms(10 * 3_600_000);
        assert_eq!(m.last_backup_ms(), 10 * 3_600_000);
        // No catch-up backups for the seeded-away interval.
        assert_eq!(m.tick_backup(10 * 3_600_000 + 1), 0);
        assert_eq!(m.tick_backup(11 * 3_600_000), 1);
    }

    #[test]
    fn production_policy_adapter_replays_relative_time() {
        let mut p = ProductionConfig::default().new_policy();
        let w = p.on_invocation(None);
        assert_eq!(p.last_decision(), DecisionKind::StandardKeepAlive);
        assert_eq!(w, Windows::keep_loaded(240 * MINUTE_MS));
        let mut last = w;
        for _ in 0..30 {
            last = p.on_invocation(Some(10 * MINUTE_MS));
        }
        assert_eq!(p.last_decision(), DecisionKind::Histogram);
        assert!(last.is_warm_at(10 * MINUTE_MS));
        // The adapter's clock accumulated 300 minutes of idle time.
        assert_eq!(p.manager().backups_taken(), 5);
    }

    #[test]
    fn production_label_encodes_configuration() {
        assert_eq!(
            ProductionConfig::default().label(),
            "production-240m-14d[5,99]exp0.85"
        );
        let uni = ProductionConfig {
            weighting: RecencyWeighting::Uniform,
            retention_days: 7,
            ..ProductionConfig::default()
        };
        assert_eq!(uni.label(), "production-240m-7d[5,99]uni");
    }

    #[test]
    fn uniform_weighting_counts_all_days_equally() {
        let cfg = ProductionConfig {
            weighting: RecencyWeighting::Uniform,
            ..ProductionConfig::default()
        };
        let mut m = ProductionManager::new(cfg);
        for _ in 0..10 {
            m.record_idle_time(1, 0, 100 * MINUTE_MS);
        }
        for _ in 0..11 {
            m.record_idle_time(1, DAY, 20 * MINUTE_MS);
        }
        let agg = m.aggregate(1, DAY).unwrap();
        // 11 vs 10 observations: the 20-minute mode wins the median by
        // count, not by recency weighting.
        assert_eq!(agg.head_value(50.0), Some(20));
        assert!((agg.in_bounds_weight() - 21.0).abs() < 1e-9);
    }
}
