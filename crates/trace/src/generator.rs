//! Trace generation: turning profiles into invocation timestamp streams.
//!
//! Applications are independent, so each app's stream is generated from
//! its own deterministic RNG (derived from the global seed and the app
//! id via SplitMix64). This allows streaming or parallel generation with
//! bit-identical results regardless of ordering.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::archetype::generate_events;
use crate::model::{AppProfile, Population};
use crate::time::{TimeMs, WEEK_MS};

/// Configuration for trace generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Trace horizon in milliseconds (the paper's simulations use the
    /// first week of the two-week trace).
    pub horizon_ms: TimeMs,
    /// Per-application daily event cap; hot apps are clamped here (their
    /// cold-start and idle behaviour is insensitive to the exact rate
    /// once invocations arrive every few seconds).
    pub cap_per_day: f64,
    /// Global seed combined with each app id.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            horizon_ms: WEEK_MS,
            cap_per_day: 20_000.0,
            seed: 0x5EED,
        }
    }
}

/// One application's materialized invocation stream.
#[derive(Debug, Clone, PartialEq)]
pub struct AppTrace {
    /// The application profile.
    pub profile: AppProfile,
    /// Sorted invocation timestamps in `[0, horizon)`.
    pub invocations: Vec<TimeMs>,
}

/// A fully materialized trace. For large populations prefer
/// [`for_each_app`], which streams one application at a time.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Horizon used during generation.
    pub horizon_ms: TimeMs,
    /// Per-application streams, in population order.
    pub apps: Vec<AppTrace>,
}

impl Trace {
    /// Total invocations across all applications.
    pub fn total_invocations(&self) -> u64 {
        self.apps.iter().map(|a| a.invocations.len() as u64).sum()
    }
}

/// SplitMix64: decorrelates per-app seeds derived from `(seed, app_id)`.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The deterministic RNG seed for one application's stream.
pub fn app_seed(global_seed: u64, app_index: u32) -> u64 {
    splitmix64(global_seed ^ ((app_index as u64) << 1 | 1))
}

/// Generates one application's invocation stream.
pub fn app_invocations(profile: &AppProfile, cfg: &TraceConfig) -> Vec<TimeMs> {
    let mut rng = StdRng::seed_from_u64(app_seed(cfg.seed, profile.id.0));
    generate_events(
        &profile.archetype,
        profile.daily_rate,
        cfg.horizon_ms,
        cfg.cap_per_day,
        &mut rng,
    )
}

/// Streams `(profile, invocations)` pairs one application at a time,
/// without holding the whole trace in memory.
pub fn for_each_app<F>(population: &Population, cfg: &TraceConfig, mut f: F)
where
    F: FnMut(&AppProfile, Vec<TimeMs>),
{
    for profile in &population.apps {
        f(profile, app_invocations(profile, cfg));
    }
}

/// Materializes the full trace (small/medium populations).
pub fn generate_trace(population: &Population, cfg: &TraceConfig) -> Trace {
    let apps = population
        .apps
        .iter()
        .map(|profile| AppTrace {
            profile: profile.clone(),
            invocations: app_invocations(profile, cfg),
        })
        .collect();
    Trace {
        horizon_ms: cfg.horizon_ms,
        apps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::{build_population, PopulationConfig};
    use crate::time::DAY_MS;

    fn small_cfg() -> (Population, TraceConfig) {
        let pop = build_population(&PopulationConfig {
            num_apps: 60,
            seed: 7,
        });
        let cfg = TraceConfig {
            horizon_ms: DAY_MS,
            cap_per_day: 5000.0,
            seed: 99,
        };
        (pop, cfg)
    }

    #[test]
    fn generation_is_deterministic_and_order_independent() {
        let (pop, cfg) = small_cfg();
        let full = generate_trace(&pop, &cfg);
        // Generating a single app in isolation must give the same stream.
        let single = app_invocations(&pop.apps[17], &cfg);
        assert_eq!(full.apps[17].invocations, single);
    }

    #[test]
    fn streams_sorted_and_within_horizon() {
        let (pop, cfg) = small_cfg();
        let trace = generate_trace(&pop, &cfg);
        for app in &trace.apps {
            assert!(app.invocations.windows(2).all(|w| w[0] <= w[1]));
            if let Some(&last) = app.invocations.last() {
                assert!(last < cfg.horizon_ms);
            }
        }
    }

    #[test]
    fn for_each_app_matches_materialized() {
        let (pop, cfg) = small_cfg();
        let trace = generate_trace(&pop, &cfg);
        let mut i = 0;
        for_each_app(&pop, &cfg, |profile, inv| {
            assert_eq!(profile.id, trace.apps[i].profile.id);
            assert_eq!(inv, trace.apps[i].invocations);
            i += 1;
        });
        assert_eq!(i, pop.len());
    }

    #[test]
    fn different_seeds_differ() {
        let (pop, cfg) = small_cfg();
        let cfg2 = TraceConfig { seed: 100, ..cfg };
        let a = generate_trace(&pop, &cfg);
        let b = generate_trace(&pop, &cfg2);
        // Timer-only apps are deterministic; at least one non-timer app
        // must differ between seeds.
        let differs = a
            .apps
            .iter()
            .zip(&b.apps)
            .any(|(x, y)| x.invocations != y.invocations);
        assert!(differs);
    }

    #[test]
    fn app_seed_decorrelates_neighbors() {
        let s1 = app_seed(1, 1);
        let s2 = app_seed(1, 2);
        // Hamming distance between neighbouring seeds should be large.
        let diff = (s1 ^ s2).count_ones();
        assert!(diff > 16, "seeds too similar: {s1:x} vs {s2:x}");
    }

    #[test]
    fn total_invocations_sane() {
        let (pop, cfg) = small_cfg();
        let trace = generate_trace(&pop, &cfg);
        let total = trace.total_invocations();
        assert!(total > 0);
        // Bounded by cap × apps.
        assert!(total < 60 * 5001);
    }
}
