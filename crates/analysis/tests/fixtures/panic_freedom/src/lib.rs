//! Seeded violation for the `panic-freedom` rule.

#![forbid(unsafe_code)]

// sitw-lint: hot-path
pub fn first(v: &[u8]) -> u8 {
    *v.first().unwrap()
}
