//! The hybrid histogram policy — the paper's main contribution (§4.2).
//!
//! Per application, the policy tracks idle times (ITs) in a compact
//! range-limited histogram with 1-minute bins and chooses, after every
//! execution, a *(pre-warming window, keep-alive window)* pair:
//!
//! 1. **Too many out-of-bounds ITs** → the histogram cannot represent the
//!    app; forecast the next IT with ARIMA and wrap it in a ±15% margin.
//! 2. **Histogram not representative** (too few ITs, or bin-count CV
//!    below threshold — the ITs are spread widely) → *standard
//!    keep-alive*: stay loaded for the whole histogram range.
//! 3. **Otherwise** → pre-warm at the 5th-percentile IT (rounded down to
//!    its bin edge, −10% margin) and keep alive until the 99th-percentile
//!    IT (rounded up, +10% margin). A head that rounds to zero disables
//!    unloading (Figure 12, middle column).

use sitw_arima::{auto_arima, AutoArimaConfig};
use sitw_stats::RangeHistogram;

use crate::policy::{AppPolicy, DecisionKind, DurationMs, PolicyFactory, Windows, MINUTE_MS};

/// Configuration of the hybrid histogram policy. Implements
/// [`PolicyFactory`]; each application receives a fresh [`HybridPolicy`].
#[derive(Debug, Clone, PartialEq)]
pub struct HybridConfig {
    /// Histogram range in minutes (default 240 = 4 hours; §6 quotes 240
    /// one-minute buckets = 960 bytes per app).
    pub range_minutes: usize,
    /// Histogram bin width in minutes (default 1, the paper's choice —
    /// "1-minute bins strike a good balance between metadata size and
    /// resolution"; widening it is an ablation knob).
    pub bin_width_minutes: usize,
    /// Head cutoff percentile of the IT distribution for the pre-warming
    /// window (default 5, Figure 16).
    pub head_percentile: f64,
    /// Tail cutoff percentile for the keep-alive window (default 99).
    pub tail_percentile: f64,
    /// Safety margin subtracted from the head (default 0.10).
    pub head_margin: f64,
    /// Safety margin added to the tail (default 0.10).
    pub tail_margin: f64,
    /// Minimum bin-count CV for the histogram to count as representative
    /// (default 2.0, Figure 18).
    pub cv_threshold: f64,
    /// Minimum recorded ITs before trusting the histogram (the "not
    /// enough ITs" condition of §4.2).
    pub min_samples: u64,
    /// Fraction of out-of-bounds ITs beyond which the ARIMA path is used
    /// (default 0.5 — "the histogram does not capture most ITs").
    pub oob_threshold: f64,
    /// Enables the ARIMA path (Figure 19 compares with/without).
    pub use_arima: bool,
    /// Enables unload + pre-warm from the histogram head; when false the
    /// policy only adapts the keep-alive ("Hybrid No PW" in Figure 17).
    pub pre_warming: bool,
    /// Margin applied around the ARIMA IT forecast (default 0.15: the
    /// paper's 5 h forecast ⇒ pre-warm 4.25 h, keep-alive 1.5 h).
    pub arima_margin: f64,
    /// Minimum IT observations before fitting ARIMA.
    pub arima_min_history: usize,
    /// Cap on the retained IT history for ARIMA fitting.
    pub history_cap: usize,
    /// ARIMA order-search configuration.
    pub arima: AutoArimaConfig,
}

impl Default for HybridConfig {
    fn default() -> Self {
        Self {
            range_minutes: 240,
            bin_width_minutes: 1,
            head_percentile: 5.0,
            tail_percentile: 99.0,
            head_margin: 0.10,
            tail_margin: 0.10,
            cv_threshold: 2.0,
            min_samples: 5,
            oob_threshold: 0.5,
            use_arima: true,
            pre_warming: true,
            arima_margin: 0.15,
            arima_min_history: 4,
            history_cap: 64,
            arima: AutoArimaConfig::default(),
        }
    }
}

impl HybridConfig {
    /// The paper's default configuration with a custom histogram range
    /// in hours (Figure 15 sweeps 1–4 h).
    pub fn with_range_hours(hours: usize) -> Self {
        Self {
            range_minutes: hours * 60,
            ..Self::default()
        }
    }

    /// Same configuration with the ARIMA path disabled ("Hybrid without
    /// ARIMA" in Figure 19).
    pub fn without_arima(mut self) -> Self {
        self.use_arima = false;
        self
    }

    /// Same configuration with different head/tail cutoff percentiles
    /// (Figure 16 sweeps \[0,100\], \[5,100\], \[1,99\], \[5,99\],
    /// \[1,95\], \[5,95\]).
    pub fn with_cutoffs(mut self, head: f64, tail: f64) -> Self {
        self.head_percentile = head;
        self.tail_percentile = tail;
        self
    }

    /// Same configuration with a different CV threshold (Figure 18
    /// sweeps 0, 2, 5, 10).
    pub fn with_cv_threshold(mut self, cv: f64) -> Self {
        self.cv_threshold = cv;
        self
    }

    /// Disables pre-warming: the app is never unloaded eagerly and the
    /// keep-alive runs to the tail cutoff ("Hybrid No PW" in Figure 17).
    pub fn without_pre_warming(mut self) -> Self {
        self.pre_warming = false;
        self
    }
}

impl PolicyFactory for HybridConfig {
    type Policy = HybridPolicy;

    fn new_policy(&self) -> HybridPolicy {
        HybridPolicy::new(self.clone())
    }

    fn label(&self) -> String {
        let arima = if self.use_arima { "" } else { "-noarima" };
        let pw = if self.pre_warming { "" } else { "-nopw" };
        format!(
            "hybrid-{}h[{},{}]cv{}{arima}{pw}",
            self.range_minutes / 60,
            self.head_percentile,
            self.tail_percentile,
            self.cv_threshold,
        )
    }
}

/// Counters of which branch served each decision (used to reproduce the
/// paper's "0.64% of invocations were handled by ARIMA; 9.3% of
/// applications used ARIMA at least once").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecisionCounts {
    /// Decisions made from the histogram head/tail.
    pub histogram: u64,
    /// Conservative standard keep-alive decisions.
    pub standard: u64,
    /// Decisions from an ARIMA forecast.
    pub arima: u64,
}

impl DecisionCounts {
    /// Total decisions.
    pub fn total(&self) -> u64 {
        self.histogram + self.standard + self.arima
    }
}

/// Per-application state of the hybrid histogram policy.
#[derive(Debug, Clone)]
pub struct HybridPolicy {
    config: HybridConfig,
    hist: RangeHistogram,
    /// Recent ITs in minutes (for the ARIMA path), most recent last.
    history: Vec<f64>,
    counts: DecisionCounts,
    last_decision: DecisionKind,
}

impl HybridPolicy {
    /// Creates the per-app state for a configuration.
    pub fn new(config: HybridConfig) -> Self {
        let width = config.bin_width_minutes.max(1);
        let bins = (config.range_minutes / width).max(1);
        let hist = RangeHistogram::new(bins, width as u64);
        Self {
            config,
            hist,
            history: Vec::new(),
            counts: DecisionCounts::default(),
            last_decision: DecisionKind::StandardKeepAlive,
        }
    }

    /// The policy configuration.
    pub fn config(&self) -> &HybridConfig {
        &self.config
    }

    /// The underlying idle-time histogram.
    pub fn histogram(&self) -> &RangeHistogram {
        &self.hist
    }

    /// Decision counters so far.
    pub fn decisions(&self) -> DecisionCounts {
        self.counts
    }

    /// Histogram range in milliseconds (bins × bin width).
    fn range_ms(&self) -> DurationMs {
        self.hist.range() * MINUTE_MS
    }

    /// The conservative fallback: no unloading, keep-alive spanning the
    /// whole histogram range.
    fn standard_keep_alive(&mut self) -> Windows {
        self.counts.standard += 1;
        self.last_decision = DecisionKind::StandardKeepAlive;
        Windows::keep_loaded(self.range_ms())
    }

    /// Attempts the ARIMA branch; `None` when the forecast is unusable.
    fn arima_windows(&mut self) -> Option<Windows> {
        if self.history.len() < self.config.arima_min_history {
            return None;
        }
        let fit = auto_arima(&self.history, self.config.arima).ok()?;
        let pred_minutes = fit.forecast_one();
        if !pred_minutes.is_finite() || pred_minutes < 1.0 {
            return None;
        }
        let margin = self.config.arima_margin;
        let pre_warm = pred_minutes * (1.0 - margin);
        let keep_alive = 2.0 * margin * pred_minutes;
        Some(Windows::pre_warmed(
            (pre_warm * MINUTE_MS as f64) as DurationMs,
            (keep_alive * MINUTE_MS as f64).max(MINUTE_MS as f64) as DurationMs,
        ))
    }

    /// The histogram branch: head/tail cutoffs with margins and the
    /// paper's rounding rule.
    fn histogram_windows(&mut self) -> Option<Windows> {
        let head_min = self.hist.head_value(self.config.head_percentile)?;
        let tail_min = self.hist.tail_value(self.config.tail_percentile)?;
        let head_ms = (head_min as f64 * (1.0 - self.config.head_margin)) * MINUTE_MS as f64;
        let tail_ms = (tail_min as f64 * (1.0 + self.config.tail_margin)) * MINUTE_MS as f64;
        let windows = if head_min == 0 || !self.config.pre_warming {
            // Head rounded down to zero (Figure 12, middle column) or
            // pre-warming disabled: do not unload.
            Windows::keep_loaded(tail_ms as DurationMs)
        } else {
            let pw = head_ms as DurationMs;
            let ka = (tail_ms - head_ms).max(MINUTE_MS as f64) as DurationMs;
            Windows::pre_warmed(pw, ka)
        };
        self.counts.histogram += 1;
        self.last_decision = DecisionKind::Histogram;
        Some(windows)
    }
}

/// Complete serializable state of a [`HybridPolicy`], excluding the
/// configuration (which the restoring side must already hold — a
/// snapshot is only meaningful under the policy that produced it).
///
/// Restoring via [`HybridPolicy::from_snapshot`] is exact: the restored
/// policy emits bit-identical decisions to one that observed the
/// original idle-time stream, because every decision input — histogram
/// bins, out-of-bounds count, the capped ARIMA history — is captured.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridSnapshot {
    /// Raw histogram bin counts.
    pub bins: Vec<u32>,
    /// Out-of-bounds recordings.
    pub oob_count: u64,
    /// Retained idle times in minutes (most recent last), for ARIMA.
    pub history: Vec<f64>,
    /// Decision counters so far.
    pub counts: DecisionCounts,
    /// The branch that served the most recent decision.
    pub last_decision: DecisionKind,
}

impl HybridPolicy {
    /// Captures the policy's complete mutable state.
    pub fn snapshot(&self) -> HybridSnapshot {
        HybridSnapshot {
            bins: self.hist.bins().to_vec(),
            oob_count: self.hist.oob_count(),
            history: self.history.clone(),
            counts: self.counts,
            last_decision: self.last_decision,
        }
    }

    /// Rebuilds a policy from a snapshot taken under the same
    /// configuration.
    ///
    /// # Errors
    ///
    /// Fails when the snapshot's histogram geometry or history length
    /// does not fit `config`.
    pub fn from_snapshot(config: HybridConfig, snap: HybridSnapshot) -> Result<Self, String> {
        let width = config.bin_width_minutes.max(1);
        let expected_bins = (config.range_minutes / width).max(1);
        if snap.bins.len() != expected_bins {
            return Err(format!(
                "snapshot has {} bins but config expects {expected_bins}",
                snap.bins.len()
            ));
        }
        if snap.history.len() > config.history_cap {
            return Err(format!(
                "snapshot history ({}) exceeds config cap ({})",
                snap.history.len(),
                config.history_cap
            ));
        }
        let hist = RangeHistogram::from_parts(width as u64, snap.bins, snap.oob_count);
        Ok(Self {
            config,
            hist,
            history: snap.history,
            counts: snap.counts,
            last_decision: snap.last_decision,
        })
    }
}

impl AppPolicy for HybridPolicy {
    fn on_invocation(&mut self, idle_time_ms: Option<DurationMs>) -> Windows {
        // Update the IT distribution (Figure 10, first box).
        if let Some(it) = idle_time_ms {
            self.hist.record(it / MINUTE_MS);
            let minutes = it as f64 / MINUTE_MS as f64;
            if self.history.len() == self.config.history_cap {
                self.history.remove(0);
            }
            self.history.push(minutes);
        }

        // Not enough data yet: be conservative.
        if self.hist.total_count() < self.config.min_samples {
            return self.standard_keep_alive();
        }

        // Too many OOB ITs → time-series forecast (or conservative
        // fallback when ARIMA is disabled or unusable).
        if self.hist.oob_fraction() > self.config.oob_threshold {
            if self.config.use_arima {
                if let Some(w) = self.arima_windows() {
                    self.counts.arima += 1;
                    self.last_decision = DecisionKind::Arima;
                    return w;
                }
            }
            return self.standard_keep_alive();
        }

        // Histogram representative? (CV of bin counts, Figure 18.)
        if self.hist.bin_count_cv() < self.config.cv_threshold {
            return self.standard_keep_alive();
        }

        match self.histogram_windows() {
            Some(w) => w,
            None => self.standard_keep_alive(),
        }
    }

    fn last_decision(&self) -> DecisionKind {
        self.last_decision
    }

    fn name(&self) -> String {
        self.config.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIN: DurationMs = MINUTE_MS;

    fn default_policy() -> HybridPolicy {
        HybridConfig::default().new_policy()
    }

    #[test]
    fn first_invocations_use_standard_keep_alive() {
        let mut p = default_policy();
        let w = p.on_invocation(None);
        assert_eq!(w, Windows::keep_loaded(240 * MIN));
        assert_eq!(p.last_decision(), DecisionKind::StandardKeepAlive);
        // Still learning below min_samples.
        for _ in 0..3 {
            let w = p.on_invocation(Some(10 * MIN));
            assert_eq!(w, Windows::keep_loaded(240 * MIN));
        }
    }

    #[test]
    fn concentrated_pattern_switches_to_histogram() {
        let mut p = default_policy();
        p.on_invocation(None);
        let mut last = Windows::keep_loaded(0);
        for _ in 0..20 {
            last = p.on_invocation(Some(10 * MIN));
        }
        assert_eq!(p.last_decision(), DecisionKind::Histogram);
        // All ITs in bin 10: head = 10 (floor), tail = 11 (ceil).
        // pre-warm = 10 × 0.9 = 9 min; keep-alive = 11×1.1 − 9 = 3.1 min.
        assert_eq!(last.pre_warm_ms, 9 * MIN);
        assert_eq!(last.keep_alive_ms, (3.1 * MIN as f64) as u64);
        // The true IT (10 min) falls inside the loaded window.
        assert!(last.is_warm_at(10 * MIN));
    }

    #[test]
    fn head_bin_zero_disables_unloading() {
        let mut p = default_policy();
        p.on_invocation(None);
        // ITs under one minute land in bin 0.
        let mut last = Windows::keep_loaded(0);
        for _ in 0..20 {
            last = p.on_invocation(Some(30_000));
        }
        assert_eq!(p.last_decision(), DecisionKind::Histogram);
        assert_eq!(last.pre_warm_ms, 0);
        // Tail = bin 0 upper edge = 1 minute, ×1.1.
        assert_eq!(last.keep_alive_ms, (1.1 * MIN as f64) as u64);
    }

    #[test]
    fn spread_pattern_falls_back_to_standard() {
        // ITs spread uniformly over many bins: CV of bin counts < 2.
        let mut p = default_policy();
        p.on_invocation(None);
        let mut last = Windows::keep_loaded(0);
        for i in 0..240u64 {
            last = p.on_invocation(Some(((i * 7919) % 239 + 1) * MIN));
        }
        assert_eq!(p.last_decision(), DecisionKind::StandardKeepAlive);
        assert_eq!(last, Windows::keep_loaded(240 * MIN));
        // Early decisions may use the sparse histogram (few samples in
        // distinct bins have a high CV); once the spread accumulates the
        // CV drops below threshold and the bulk must be conservative.
        assert!(
            p.decisions().standard > 150,
            "standard decisions: {:?}",
            p.decisions()
        );
    }

    #[test]
    fn oob_heavy_app_uses_arima() {
        let mut p = default_policy();
        p.on_invocation(None);
        // Idle times ~300 minutes — past the 240-minute range.
        let mut last = Windows::keep_loaded(0);
        for i in 0..12u64 {
            last = p.on_invocation(Some((300 + (i % 3)) * MIN));
        }
        assert_eq!(p.last_decision(), DecisionKind::Arima);
        assert!(p.decisions().arima > 0);
        // Forecast ≈ 300 min ⇒ pre-warm ≈ 255 min, keep-alive ≈ 90 min.
        let pw_min = last.pre_warm_ms as f64 / MIN as f64;
        let ka_min = last.keep_alive_ms as f64 / MIN as f64;
        assert!((230.0..280.0).contains(&pw_min), "pre-warm {pw_min}");
        assert!((60.0..120.0).contains(&ka_min), "keep-alive {ka_min}");
        // The true IT is warm under these windows.
        assert!(last.is_warm_at(300 * MIN));
    }

    #[test]
    fn oob_heavy_without_arima_stays_conservative() {
        let mut p = HybridConfig::default().without_arima().new_policy();
        p.on_invocation(None);
        let mut last = Windows::keep_loaded(0);
        for _ in 0..12 {
            last = p.on_invocation(Some(300 * MIN));
        }
        assert_eq!(p.last_decision(), DecisionKind::StandardKeepAlive);
        assert_eq!(last, Windows::keep_loaded(240 * MIN));
        assert_eq!(p.decisions().arima, 0);
        // 300-minute idle times are cold under a 240-minute keep-alive.
        assert!(!last.is_warm_at(300 * MIN));
    }

    #[test]
    fn paper_example_five_hour_forecast_margins() {
        // §4.2: "if the predicted IT is 5 hours, we set the pre-warming
        // window to 4.25 hours and the keep-alive window to 1.5 hours".
        let mut p = default_policy();
        p.on_invocation(None);
        let mut last = Windows::keep_loaded(0);
        for _ in 0..16 {
            last = p.on_invocation(Some(300 * MIN));
        }
        assert_eq!(p.last_decision(), DecisionKind::Arima);
        assert_eq!(last.pre_warm_ms, 255 * MIN); // 4.25 h.
        assert_eq!(last.keep_alive_ms, 90 * MIN); // 1.5 h.
    }

    #[test]
    fn regime_change_reverts_to_standard_then_relearn() {
        let mut p = default_policy();
        p.on_invocation(None);
        for _ in 0..30 {
            p.on_invocation(Some(10 * MIN));
        }
        assert_eq!(p.last_decision(), DecisionKind::Histogram);
        // Shift to a new regime: the histogram spreads, CV drops slowly;
        // eventually mass concentrates at 60 and the histogram is used
        // with the new head/tail.
        let mut last = Windows::keep_loaded(0);
        for _ in 0..200 {
            last = p.on_invocation(Some(60 * MIN));
        }
        assert_eq!(p.last_decision(), DecisionKind::Histogram);
        // Tail now covers the 60-minute idle time.
        assert!(last.is_warm_at(60 * MIN));
    }

    #[test]
    fn cutoff_configuration_changes_windows() {
        // Two IT modes: 10 min (95%) and 100 min (5%).
        let run = |cfg: HybridConfig| {
            let mut p = cfg.new_policy();
            p.on_invocation(None);
            let mut last = Windows::keep_loaded(0);
            for i in 0..100u64 {
                let it = if i % 20 == 19 { 100 } else { 10 };
                last = p.on_invocation(Some(it * MIN));
            }
            last
        };
        let wide = run(HybridConfig::default().with_cutoffs(0.0, 100.0));
        let narrow = run(HybridConfig::default().with_cutoffs(5.0, 95.0));
        // Narrow cutoffs exclude the 100-minute outliers: the loaded
        // interval is much shorter (less wasted memory, Figure 16).
        assert!(narrow.keep_alive_ms < wide.keep_alive_ms);
    }

    #[test]
    fn cv_zero_always_trusts_histogram() {
        let mut p = HybridConfig::default().with_cv_threshold(0.0).new_policy();
        p.on_invocation(None);
        // Even a widely spread histogram is "representative" at CV 0.
        let mut last = Windows::keep_loaded(0);
        for i in 0..240u64 {
            last = p.on_invocation(Some(((i * 7919) % 239 + 1) * MIN));
        }
        assert_eq!(p.last_decision(), DecisionKind::Histogram);
        assert!(last.pre_warm_ms > 0);
    }

    #[test]
    fn no_pre_warming_variant_keeps_loaded() {
        let mut p = HybridConfig::default().without_pre_warming().new_policy();
        p.on_invocation(None);
        let mut last = Windows::keep_loaded(0);
        for _ in 0..30 {
            last = p.on_invocation(Some(10 * MIN));
        }
        assert_eq!(p.last_decision(), DecisionKind::Histogram);
        // No pre-warming: stays loaded until the tail (11 min × 1.1).
        assert_eq!(last.pre_warm_ms, 0);
        assert_eq!(last.keep_alive_ms, (12.1 * MIN as f64) as u64);
    }

    #[test]
    fn decision_counts_add_up() {
        let mut p = default_policy();
        p.on_invocation(None);
        for i in 0..50u64 {
            p.on_invocation(Some((i % 12) * MIN));
        }
        let c = p.decisions();
        assert_eq!(c.total(), 51);
    }

    #[test]
    fn label_encodes_configuration() {
        assert_eq!(HybridConfig::default().label(), "hybrid-4h[5,99]cv2");
        assert_eq!(
            HybridConfig::with_range_hours(2).without_arima().label(),
            "hybrid-2h[5,99]cv2-noarima"
        );
    }

    #[test]
    fn snapshot_restore_is_exact_mid_stream() {
        // Feed a mixed stream, snapshot mid-way, and check the restored
        // policy's subsequent decisions are bit-identical to the
        // uninterrupted original — including the ARIMA branch, whose
        // inputs (the capped history) are part of the snapshot.
        let its: Vec<DurationMs> = (0..60)
            .map(|i| match i % 5 {
                0 => 10 * MIN,
                1 => 11 * MIN,
                2 => 300 * MIN,
                3 => 10 * MIN,
                _ => 295 * MIN,
            })
            .collect();

        let mut original = default_policy();
        original.on_invocation(None);
        for &it in &its[..30] {
            original.on_invocation(Some(it));
        }

        let snap = original.snapshot();
        let mut restored =
            HybridPolicy::from_snapshot(HybridConfig::default(), snap.clone()).unwrap();
        assert_eq!(restored.snapshot(), snap);
        assert_eq!(restored.last_decision(), original.last_decision());
        assert_eq!(restored.decisions(), original.decisions());

        for &it in &its[30..] {
            let a = original.on_invocation(Some(it));
            let b = restored.on_invocation(Some(it));
            assert_eq!(a, b, "diverged at idle time {it}");
            assert_eq!(original.last_decision(), restored.last_decision());
        }
    }

    #[test]
    fn snapshot_restore_rejects_wrong_geometry() {
        let mut p = default_policy();
        p.on_invocation(None);
        let snap = p.snapshot();
        let err = HybridPolicy::from_snapshot(HybridConfig::with_range_hours(1), snap);
        assert!(err.is_err());
    }

    #[test]
    fn history_capped() {
        let cfg = HybridConfig {
            history_cap: 8,
            ..HybridConfig::default()
        };
        let mut p = cfg.new_policy();
        p.on_invocation(None);
        for i in 0..50u64 {
            p.on_invocation(Some((300 + i) * MIN));
        }
        assert!(p.history.len() <= 8);
    }
}
