//! The OpenWhisk-model discrete-event simulation.
//!
//! Mirrors the paper's Figure 13 data path: invocations enter through the
//! REST front end, the **Controller**'s load balancer picks an invoker
//! (home-invoker hashing with co-prime probing, as in OpenWhisk's
//! sharding balancer) and forwards the activation over a Kafka-like bus;
//! the **Invoker** runs it in a per-app Docker-like container. The §4.3
//! modifications are faithfully modelled:
//!
//! * the controller owns the per-app policy state and updates it on every
//!   invocation;
//! * the keep-alive parameter travels *with the activation message* and
//!   drives the invoker's ContainerProxy expiry;
//! * the controller publishes pre-warm messages that load a container
//!   shortly before the predicted next invocation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sitw_core::{AppPolicy, Windows};
use sitw_trace::{TimeMs, Trace};

use crate::cluster::{ContainerState, Invoker};
use crate::config::{lognormal_around, ms, PlatformConfig};
use crate::report::{InvocationRecord, PlatformReport};

/// Maximum placement retries before an activation is dropped.
const MAX_RETRIES: u32 = 20;

/// Backoff between placement retries (ms).
const RETRY_BACKOFF_MS: TimeMs = 100;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// Client request arrives at the REST front end.
    Arrival { app: u32 },
    /// Activation reaches an invoker (placement happens now).
    Deliver {
        app: u32,
        arrival: TimeMs,
        windows: Windows,
        exec_ms: u64,
        retries: u32,
    },
    /// A running activation completes.
    ExecDone {
        app: u32,
        invoker: usize,
        container: u64,
        arrival: TimeMs,
        windows: Windows,
        cold: bool,
        exec_ms: u64,
        start_delay_ms: u64,
    },
    /// A pre-warmed container finished initializing.
    PrewarmReady {
        invoker: usize,
        container: u64,
        keep_alive_ms: u64,
    },
    /// Lazy keep-alive expiry sweep on an invoker.
    Expire { invoker: usize },
    /// Controller-published pre-warm for an application.
    Prewarm {
        app: u32,
        generation: u64,
        keep_alive_ms: u64,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scheduled {
    at: TimeMs,
    seq: u64,
    ev: Ev,
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct AppState {
    memory_mb: f64,
    /// Cumulative (share, avg_exec_ms) table for function sampling.
    func_table: Vec<(f64, f64)>,
    policy: Box<dyn AppPolicy>,
    last_exec_end: Option<TimeMs>,
    /// Invalidates stale pre-warm events.
    prewarm_gen: u64,
}

/// Runs the trace through the platform with one policy instance per app.
///
/// `make_policy` is called once per application (the §4.3 Load Balancer
/// keeps per-app metadata).
pub fn run_platform<F>(trace: &Trace, cfg: &PlatformConfig, mut make_policy: F) -> PlatformReport
where
    F: FnMut() -> Box<dyn AppPolicy>,
{
    // Two RNG streams: execution times are drawn only at arrivals (whose
    // order is policy-independent), so different policies replay
    // *identical* workloads; init/bootstrap latencies draw from the
    // second stream.
    let mut rng_exec = StdRng::seed_from_u64(cfg.seed);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x1A7E);
    let mut invokers: Vec<Invoker> = (0..cfg.num_invokers)
        .map(|i| {
            let mut inv = Invoker::new(i, cfg.invoker_memory_mb);
            if cfg.stemcell_pool > 0 {
                inv.provision_stemcells(cfg.stemcell_pool, cfg.stemcell_memory_mb);
            }
            inv
        })
        .collect();
    let stride = coprime_stride(cfg.num_invokers);

    // Per-app state, indexed densely by position in the trace.
    let mut apps: Vec<AppState> = trace
        .apps
        .iter()
        .map(|a| {
            let mut cum = 0.0;
            let func_table = a
                .profile
                .functions
                .iter()
                .map(|f| {
                    cum += f.invocation_share;
                    (cum, f.avg_exec_secs * 1000.0)
                })
                .collect();
            AppState {
                memory_mb: a.profile.memory_mb.min(cfg.invoker_memory_mb),
                func_table,
                policy: make_policy(),
                last_exec_end: None,
                prewarm_gen: 0,
            }
        })
        .collect();

    let mut heap: BinaryHeap<Reverse<Scheduled>> = BinaryHeap::new();
    let mut seq = 0u64;
    let push = |heap: &mut BinaryHeap<Reverse<Scheduled>>, seq: &mut u64, at, ev| {
        *seq += 1;
        heap.push(Reverse(Scheduled { at, seq: *seq, ev }));
    };

    for (idx, app) in trace.apps.iter().enumerate() {
        for &t in &app.invocations {
            push(&mut heap, &mut seq, t, Ev::Arrival { app: idx as u32 });
        }
    }

    let mut records: Vec<InvocationRecord> = Vec::new();
    let mut prewarm_starts = 0u64;
    let mut dropped = 0u64;
    let mut container_ids = 0u64;

    while let Some(Reverse(Scheduled { at: now, ev, .. })) = heap.pop() {
        match ev {
            Ev::Arrival { app } => {
                let state = &mut apps[app as usize];
                state.prewarm_gen += 1; // Cancel any pending pre-warm.
                let it = state.last_exec_end.map(|e| now.saturating_sub(e));
                let windows = state.policy.on_invocation(it);
                let exec_ms = sample_exec_ms(&mut rng_exec, state, cfg);
                let deliver_at = now + ms(cfg.controller_latency_ms) + ms(cfg.bus_latency_ms);
                push(
                    &mut heap,
                    &mut seq,
                    deliver_at,
                    Ev::Deliver {
                        app,
                        arrival: now,
                        windows,
                        exec_ms,
                        retries: 0,
                    },
                );
            }

            Ev::Deliver {
                app,
                arrival,
                windows,
                exec_ms,
                retries,
            } => {
                let mem = apps[app as usize].memory_mb;
                match place(&mut invokers, app, mem, now, stride) {
                    Placement::Warm { invoker, container } => {
                        let inv = &mut invokers[invoker];
                        inv.advance_integrals(now);
                        let done = now + exec_ms;
                        let c = inv.container_mut(container).expect("warm container");
                        c.state = ContainerState::Busy { until: done };
                        c.last_used = now;
                        push(
                            &mut heap,
                            &mut seq,
                            done,
                            Ev::ExecDone {
                                app,
                                invoker,
                                container,
                                arrival,
                                windows,
                                cold: false,
                                exec_ms,
                                start_delay_ms: now - arrival,
                            },
                        );
                    }
                    Placement::Cold { invoker } => {
                        // A free stem cell skips container init (the app
                        // image/runtime still bootstraps).
                        let adopted = invokers[invoker].take_stemcell();
                        let init = if adopted {
                            1
                        } else {
                            ms(lognormal_around(
                                &mut rng,
                                cfg.container_init_ms,
                                cfg.latency_sigma,
                            ))
                        };
                        let bootstrap = ms(lognormal_around(
                            &mut rng,
                            cfg.runtime_bootstrap_ms,
                            cfg.latency_sigma,
                        ));
                        // FaaSProfiler observes the OpenWhisk activation
                        // duration, which includes initTime on cold
                        // starts: count init + bootstrap in measured
                        // execution time.
                        let exec_total = init + bootstrap + exec_ms;
                        let start = now + init;
                        let done = now + exec_total;
                        container_ids += 1;
                        let inv = &mut invokers[invoker];
                        inv.start_container(container_ids, app, mem, now, start);
                        let c = inv.container_mut(container_ids).expect("new container");
                        c.state = ContainerState::Busy { until: done };
                        push(
                            &mut heap,
                            &mut seq,
                            done,
                            Ev::ExecDone {
                                app,
                                invoker,
                                container: container_ids,
                                arrival,
                                windows,
                                cold: true,
                                exec_ms: exec_total,
                                start_delay_ms: now - arrival,
                            },
                        );
                    }
                    Placement::NoCapacity => {
                        if retries >= MAX_RETRIES {
                            dropped += 1;
                            records.push(InvocationRecord {
                                app,
                                arrival,
                                cold: false,
                                start_delay_ms: 0,
                                exec_ms: 0,
                                dropped: true,
                            });
                        } else {
                            push(
                                &mut heap,
                                &mut seq,
                                now + RETRY_BACKOFF_MS,
                                Ev::Deliver {
                                    app,
                                    arrival,
                                    windows,
                                    exec_ms,
                                    retries: retries + 1,
                                },
                            );
                        }
                    }
                }
            }

            Ev::ExecDone {
                app,
                invoker,
                container,
                arrival,
                windows,
                cold,
                exec_ms,
                start_delay_ms,
            } => {
                records.push(InvocationRecord {
                    app,
                    arrival,
                    cold,
                    start_delay_ms,
                    exec_ms,
                    dropped: false,
                });
                let state = &mut apps[app as usize];
                state.last_exec_end = Some(now);
                let inv = &mut invokers[invoker];
                inv.advance_integrals(now);
                if windows.pre_warm_ms > 0 {
                    // Unload now; the controller schedules a pre-warm.
                    inv.remove_container(container, now);
                    state.prewarm_gen += 1;
                    push(
                        &mut heap,
                        &mut seq,
                        now + windows.pre_warm_ms,
                        Ev::Prewarm {
                            app,
                            generation: state.prewarm_gen,
                            keep_alive_ms: windows.keep_alive_ms,
                        },
                    );
                } else if let Some(c) = inv.container_mut(container) {
                    let expires_at = now.saturating_add(windows.keep_alive_ms);
                    c.state = ContainerState::Idle { expires_at };
                    c.last_used = now;
                    c.idle_since = now;
                    if expires_at != TimeMs::MAX {
                        push(&mut heap, &mut seq, expires_at + 1, Ev::Expire { invoker });
                    }
                }
            }

            Ev::Prewarm {
                app,
                generation,
                keep_alive_ms,
            } => {
                let state = &apps[app as usize];
                if state.prewarm_gen != generation {
                    continue; // Superseded by a newer invocation.
                }
                if invokers.iter().any(|i| i.has_container(app)) {
                    continue; // Already loaded somewhere.
                }
                let mem = state.memory_mb;
                if let Some(invoker) = place_for_start(&mut invokers, app, mem, now, stride) {
                    let init = ms(lognormal_around(
                        &mut rng,
                        cfg.container_init_ms,
                        cfg.latency_sigma,
                    ));
                    container_ids += 1;
                    invokers[invoker].start_container(container_ids, app, mem, now, now + init);
                    prewarm_starts += 1;
                    push(
                        &mut heap,
                        &mut seq,
                        now + init,
                        Ev::PrewarmReady {
                            invoker,
                            container: container_ids,
                            keep_alive_ms,
                        },
                    );
                }
            }

            Ev::PrewarmReady {
                invoker,
                container,
                keep_alive_ms,
            } => {
                let inv = &mut invokers[invoker];
                inv.advance_integrals(now);
                if let Some(c) = inv.container_mut(container) {
                    if matches!(c.state, ContainerState::Starting { .. }) {
                        let expires_at = now.saturating_add(keep_alive_ms);
                        c.state = ContainerState::Idle { expires_at };
                        c.idle_since = now;
                        if expires_at != TimeMs::MAX {
                            push(&mut heap, &mut seq, expires_at + 1, Ev::Expire { invoker });
                        }
                    }
                }
            }

            Ev::Expire { invoker } => {
                let inv = &mut invokers[invoker];
                inv.expire_due(now);
                if cfg.stemcell_pool > 0 {
                    inv.replenish_stemcells(cfg.stemcell_pool, cfg.stemcell_memory_mb);
                }
            }
        }
    }

    // Close the books at the trace horizon (events past it, e.g. long
    // final executions, have already advanced their invoker further;
    // advance_integrals is monotone so this is a no-op there).
    for inv in &mut invokers {
        inv.advance_integrals(trace.horizon_ms);
    }

    PlatformReport {
        records,
        invoker_stats: invokers.iter().map(|i| i.stats).collect(),
        prewarm_starts,
        dropped,
        horizon_ms: trace.horizon_ms,
    }
}

enum Placement {
    Warm { invoker: usize, container: u64 },
    Cold { invoker: usize },
    NoCapacity,
}

/// OpenWhisk-style placement: home invoker by app hash, co-prime probing;
/// prefer a warm container, then free capacity, then evictable space.
fn place(invokers: &mut [Invoker], app: u32, mem: f64, now: TimeMs, stride: usize) -> Placement {
    let n = invokers.len();
    let home = splitmix(app as u64) as usize % n;

    // Pass 1: a ready idle container anywhere on the probe sequence.
    for i in 0..n {
        let v = (home + i * stride) % n;
        invokers[v].expire_due(now);
        if let Some(c) = invokers[v].find_idle(app, now) {
            let id = c.id;
            return Placement::Warm {
                invoker: v,
                container: id,
            };
        }
    }
    // Pass 2: free or evictable capacity.
    match place_for_start(invokers, app, mem, now, stride) {
        Some(v) => Placement::Cold { invoker: v },
        None => Placement::NoCapacity,
    }
}

/// Finds an invoker that can host a new container of `mem` MB (free
/// memory first, then LRU eviction of idle containers).
fn place_for_start(
    invokers: &mut [Invoker],
    app: u32,
    mem: f64,
    now: TimeMs,
    stride: usize,
) -> Option<usize> {
    let n = invokers.len();
    let home = splitmix(app as u64) as usize % n;
    for i in 0..n {
        let v = (home + i * stride) % n;
        if invokers[v].free_mb() >= mem {
            return Some(v);
        }
    }
    for i in 0..n {
        let v = (home + i * stride) % n;
        if invokers[v].make_room(mem, now) {
            return Some(v);
        }
    }
    None
}

fn sample_exec_ms(rng: &mut StdRng, state: &AppState, cfg: &PlatformConfig) -> u64 {
    let u: f64 = rng.random();
    let avg_ms = state
        .func_table
        .iter()
        .find(|(cum, _)| u <= *cum)
        .map(|(_, avg)| *avg)
        .unwrap_or_else(|| state.func_table.last().map(|(_, a)| *a).unwrap_or(100.0));
    ms(lognormal_around(rng, avg_ms.max(1.0), cfg.latency_sigma))
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Smallest stride ≥ 3 co-prime with `n` (1 for tiny clusters).
fn coprime_stride(n: usize) -> usize {
    if n <= 2 {
        return 1;
    }
    (3..n).find(|s| gcd(*s, n) == 1).unwrap_or(1)
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitw_core::{FixedKeepAlive, HybridConfig, PolicyFactory};
    use sitw_trace::{AppId, AppProfile, AppTrace, Archetype, FunctionProfile, TriggerType};
    use sitw_trace::{MINUTE_MS, SECOND_MS};

    fn one_app_trace(invocations: Vec<TimeMs>, horizon: TimeMs) -> Trace {
        let profile = AppProfile {
            id: AppId(0),
            functions: vec![FunctionProfile {
                trigger: TriggerType::Http,
                invocation_share: 1.0,
                avg_exec_secs: 0.2,
                min_exec_secs: 0.1,
                max_exec_secs: 1.0,
            }],
            daily_rate: 100.0,
            archetype: Archetype::Poisson,
            memory_mb: 256.0,
            memory_mb_pct1: 200.0,
            memory_mb_max: 300.0,
        };
        Trace {
            horizon_ms: horizon,
            apps: vec![AppTrace {
                profile,
                invocations,
            }],
        }
    }

    #[test]
    fn gcd_and_stride() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(coprime_stride(18), 5);
        assert_eq!(coprime_stride(2), 1);
        assert_eq!(coprime_stride(7), 3);
    }

    #[test]
    fn single_invocation_is_cold_with_init_delay() {
        let trace = one_app_trace(vec![0], 10 * MINUTE_MS);
        let cfg = PlatformConfig::default();
        let report = run_platform(&trace, &cfg, || {
            Box::new(FixedKeepAlive::minutes(10).new_policy())
        });
        assert_eq!(report.served(), 1);
        assert_eq!(report.cold_count(), 1);
        let r = &report.records[0];
        // Start delay covers controller + bus only (init is measured
        // inside the activation duration, as OpenWhisk reports it).
        assert!(r.start_delay_ms >= 2, "delay {}", r.start_delay_ms);
        // Measured exec includes container init + runtime bootstrap.
        assert!(r.exec_ms > 500, "exec {}", r.exec_ms);
    }

    #[test]
    fn rapid_invocations_hit_warm_containers() {
        // 1-second gaps, 10-minute keep-alive: everything after the first
        // is warm.
        let events: Vec<TimeMs> = (0..50).map(|i| i * SECOND_MS * 30).collect();
        let trace = one_app_trace(events, 30 * MINUTE_MS);
        let cfg = PlatformConfig::default();
        let report = run_platform(&trace, &cfg, || {
            Box::new(FixedKeepAlive::minutes(10).new_policy())
        });
        assert_eq!(report.served(), 50);
        assert_eq!(report.cold_count(), 1, "only the first is cold");
        // Warm execs exclude bootstrap: median well below cold exec.
        let warm_exec = report.exec_percentile_ms(50.0);
        assert!(warm_exec < 500.0, "median exec {warm_exec}");
    }

    #[test]
    fn keep_alive_expiry_causes_colds() {
        // 20-minute gaps with a 10-minute keep-alive: every invocation
        // cold.
        let events: Vec<TimeMs> = (0..5).map(|i| i * 20 * MINUTE_MS).collect();
        let trace = one_app_trace(events, 100 * MINUTE_MS);
        let report = run_platform(&trace, &PlatformConfig::default(), || {
            Box::new(FixedKeepAlive::minutes(10).new_policy())
        });
        assert_eq!(report.cold_count(), 5);
        let (starts, _, expirations) = report.lifecycle_totals();
        assert_eq!(starts, 5);
        assert!(expirations >= 4, "expired {expirations}");
    }

    #[test]
    fn hybrid_prewarms_periodic_app() {
        // 30-minute period: hybrid learns it and pre-warms.
        let events: Vec<TimeMs> = (0..40).map(|i| i * 30 * MINUTE_MS).collect();
        let trace = one_app_trace(events, 40 * 30 * MINUTE_MS);
        let report = run_platform(&trace, &PlatformConfig::default(), || {
            Box::new(HybridConfig::default().new_policy())
        });
        assert!(
            report.cold_count() <= 10,
            "hybrid colds {}",
            report.cold_count()
        );
        assert!(
            report.prewarm_starts > 10,
            "prewarms {}",
            report.prewarm_starts
        );

        // Fixed 10-minute: everything cold.
        let fixed = run_platform(&trace, &PlatformConfig::default(), || {
            Box::new(FixedKeepAlive::minutes(10).new_policy())
        });
        assert_eq!(fixed.cold_count(), 40);
        // And hybrid holds less idle memory than fixed-4h would; compare
        // against the conservative standard keep-alive range instead.
        let fixed4h = run_platform(&trace, &PlatformConfig::default(), || {
            Box::new(FixedKeepAlive::minutes(240).new_policy())
        });
        assert!(report.total_idle_mb_ms() < fixed4h.total_idle_mb_ms());
        assert!(fixed4h.cold_count() == 1);
    }

    #[test]
    fn memory_capacity_forces_eviction_or_queueing() {
        // 40 apps × 256 MB on one tiny invoker (1 GB): pressure.
        let mut apps = Vec::new();
        for i in 0..40u32 {
            let mut t = one_app_trace(vec![i as TimeMs * 100, 3 * MINUTE_MS], 10 * MINUTE_MS);
            t.apps[0].profile.id = AppId(i);
            apps.push(t.apps.remove(0));
        }
        let trace = Trace {
            horizon_ms: 10 * MINUTE_MS,
            apps,
        };
        let cfg = PlatformConfig {
            num_invokers: 1,
            invoker_memory_mb: 1024.0,
            ..PlatformConfig::default()
        };
        let report = run_platform(&trace, &cfg, || {
            Box::new(FixedKeepAlive::minutes(10).new_policy())
        });
        let (_, evictions, _) = report.lifecycle_totals();
        // With 4 container slots and 40 apps, evictions (or retries/drops)
        // must occur, and the simulation must terminate.
        assert!(evictions > 0 || report.dropped > 0);
        assert_eq!(report.served() + report.dropped, 80);
    }

    #[test]
    fn stemcell_pool_shortens_cold_starts() {
        let trace = one_app_trace(vec![0], 10 * MINUTE_MS);
        // Near-zero sigma pins latency draws to their medians so the
        // comparison is deterministic.
        let plain = PlatformConfig {
            latency_sigma: 0.01,
            ..PlatformConfig::default()
        };
        let pooled = PlatformConfig {
            stemcell_pool: 2,
            stemcell_memory_mb: 256.0,
            latency_sigma: 0.01,
            ..PlatformConfig::default()
        };
        let without = run_platform(&trace, &plain, || {
            Box::new(FixedKeepAlive::minutes(10).new_policy())
        });
        let with = run_platform(&trace, &pooled, || {
            Box::new(FixedKeepAlive::minutes(10).new_policy())
        });
        // Both are cold (the pool does not reduce the *number* of cold
        // starts), but the stem cell skips container init, so the
        // measured activation is faster.
        assert_eq!(without.cold_count(), 1);
        assert_eq!(with.cold_count(), 1);
        assert!(
            with.records[0].exec_ms < without.records[0].exec_ms,
            "stem cell {} vs plain {}",
            with.records[0].exec_ms,
            without.records[0].exec_ms
        );
        // The pool itself holds memory.
        assert!(with.total_loaded_mb_ms() > without.total_loaded_mb_ms());
    }

    #[test]
    fn deterministic_given_seed() {
        let events: Vec<TimeMs> = (0..30).map(|i| i * 7 * MINUTE_MS).collect();
        let trace = one_app_trace(events, 300 * MINUTE_MS);
        let cfg = PlatformConfig::default();
        let a = run_platform(&trace, &cfg, || {
            Box::new(HybridConfig::default().new_policy())
        });
        let b = run_platform(&trace, &cfg, || {
            Box::new(HybridConfig::default().new_policy())
        });
        assert_eq!(a.records, b.records);
        assert_eq!(a.prewarm_starts, b.prewarm_starts);
    }
}
