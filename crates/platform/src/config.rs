//! Platform configuration and latency model.
//!
//! Mirrors the paper's §5.3 testbed: one controller VM plus 18 invoker
//! VMs (2 cores / 4 GB each) running functions in Docker containers, and
//! the component latencies they report: "the (in-memory) language runtime
//! initiation takes O(10 ms) and the container initiation takes
//! O(100 ms) for cold containers".

use rand::Rng;

use sitw_trace::TimeMs;

/// Cluster and latency parameters for the OpenWhisk-model simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformConfig {
    /// Number of invoker nodes (paper: 18).
    pub num_invokers: usize,
    /// Container memory capacity per invoker, MB (paper VMs: 4 GB; a
    /// slice is reserved for the invoker itself).
    pub invoker_memory_mb: f64,
    /// REST front-end + controller processing latency (ms).
    pub controller_latency_ms: f64,
    /// Kafka-like bus latency controller → invoker (ms).
    pub bus_latency_ms: f64,
    /// Median container initialization time for a cold start (ms).
    pub container_init_ms: f64,
    /// Median language-runtime bootstrap added to the first execution in
    /// a fresh container (ms).
    pub runtime_bootstrap_ms: f64,
    /// Log-normal sigma applied to both init times and execution jitter.
    pub latency_sigma: f64,
    /// Stem-cell containers kept pre-initialized per invoker (OpenWhisk's
    /// "prewarm" pool): a cold start that grabs one skips the container
    /// init and only pays the runtime bootstrap. 0 disables the pool.
    /// This is the *orthogonal* cold-start-latency optimization the paper
    /// cites (§2) — it shortens cold starts but does not reduce their
    /// number, which is the hybrid policy's job.
    pub stemcell_pool: usize,
    /// Memory reserved by each stem-cell container, MB.
    pub stemcell_memory_mb: f64,
    /// RNG seed for latency/function sampling.
    pub seed: u64,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        Self {
            num_invokers: 18,
            invoker_memory_mb: 3_276.0, // 4 GB × 0.8 usable.
            controller_latency_ms: 1.0,
            bus_latency_ms: 2.0,
            container_init_ms: 150.0,
            runtime_bootstrap_ms: 900.0,
            latency_sigma: 0.35,
            stemcell_pool: 0,
            stemcell_memory_mb: 128.0,
            seed: 0x0511,
        }
    }
}

/// Samples a log-normal value with the given median and sigma.
pub fn lognormal_around<R: Rng + ?Sized>(rng: &mut R, median: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    median * (sigma * z).exp()
}

/// Converts fractional milliseconds to integer [`TimeMs`], minimum 1.
pub fn ms(value: f64) -> TimeMs {
    value.max(1.0).round() as TimeMs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn defaults_match_paper_testbed() {
        let c = PlatformConfig::default();
        assert_eq!(c.num_invokers, 18);
        assert!(c.invoker_memory_mb > 3_000.0);
        assert!(c.container_init_ms >= 100.0, "container init O(100ms)");
        assert!(c.runtime_bootstrap_ms >= 10.0, "runtime init ≥ O(10ms)");
    }

    #[test]
    fn lognormal_median_is_centered() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut xs: Vec<f64> = (0..10_000)
            .map(|_| lognormal_around(&mut rng, 150.0, 0.35))
            .collect();
        xs.sort_by(f64::total_cmp);
        let median = xs[xs.len() / 2];
        assert!((median - 150.0).abs() < 10.0, "median {median}");
    }

    #[test]
    fn ms_floors_at_one() {
        assert_eq!(ms(0.2), 1);
        assert_eq!(ms(10.6), 11);
    }
}
