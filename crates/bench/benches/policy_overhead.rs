//! Policy execution overhead — the §5.3 measurements.
//!
//! The paper reports its Scala controller adds 835.7 µs (σ 245.5 µs) per
//! invocation end to end; the policy *logic* itself must stay far below
//! function execution times (>50% of executions are under 1 s). These
//! benches measure our implementation of the same decision paths.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use sitw_core::{
    AppPolicy, FixedKeepAlive, HybridConfig, PolicyFactory, ProductionConfig, ProductionManager,
    MINUTE_MS,
};

fn bench_hybrid_decision_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("hybrid_on_invocation");

    // Histogram path: a warmed-up policy with a concentrated pattern.
    group.bench_function("histogram_path", |b| {
        b.iter_batched_ref(
            || {
                let mut p = HybridConfig::default().new_policy();
                p.on_invocation(None);
                for _ in 0..50 {
                    p.on_invocation(Some(10 * MINUTE_MS));
                }
                p
            },
            |p| black_box(p.on_invocation(Some(10 * MINUTE_MS))),
            BatchSize::SmallInput,
        )
    });

    // Standard keep-alive path: spread idle times.
    group.bench_function("standard_keepalive_path", |b| {
        b.iter_batched_ref(
            || {
                let mut p = HybridConfig::default().new_policy();
                p.on_invocation(None);
                for i in 0..240u64 {
                    p.on_invocation(Some(((i * 7919) % 239 + 1) * MINUTE_MS));
                }
                p
            },
            |p| black_box(p.on_invocation(Some(97 * MINUTE_MS))),
            BatchSize::SmallInput,
        )
    });

    // Cold path: the very first invocations (histogram still learning).
    group.bench_function("learning_path", |b| {
        b.iter_batched_ref(
            || HybridConfig::default().new_policy(),
            |p| black_box(p.on_invocation(None)),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_fixed_baseline(c: &mut Criterion) {
    c.bench_function("fixed_on_invocation", |b| {
        let mut p = FixedKeepAlive::minutes(10).new_policy();
        b.iter(|| black_box(p.on_invocation(Some(5 * MINUTE_MS))));
    });
}

fn bench_production_manager(c: &mut Criterion) {
    let mut group = c.benchmark_group("production_manager");
    group.bench_function("record_idle_time", |b| {
        let mut m = ProductionManager::new(ProductionConfig::default());
        let mut now = 0u64;
        b.iter(|| {
            now += 60_000;
            m.record_idle_time(7, now, black_box(10 * MINUTE_MS));
        });
    });
    group.bench_function("windows_from_aggregate", |b| {
        let mut m = ProductionManager::new(ProductionConfig::default());
        for day in 0..14u64 {
            for k in 0..50u64 {
                m.record_idle_time(7, day * 86_400_000 + k * 60_000, 10 * MINUTE_MS);
            }
        }
        b.iter(|| black_box(m.windows(7, 14 * 86_400_000)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_hybrid_decision_paths,
    bench_fixed_baseline,
    bench_production_manager
);
criterion_main!(benches);
