//! The ISSUE-4 acceptance test: a multi-tenant fleet replay — distinct
//! per-tenant policies (fixed / hybrid / production), one tenant over
//! its memory budget — driven through mixed JSON and SITW-BIN v2
//! blocks, is **bit-identical** to `sitw_sim::fleet_verdict_trace`
//! (cold/warm, pre-warm load, eviction downgrade, decision branch, both
//! windows), across a snapshot/restore that changes the shard count
//! from 2 to 5. Budget evictions land only on the over-budget tenant,
//! and its warm memory never exceeds the budget.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use sitw_fleet::{footprint_mb, FleetEvent, TenantId, TenantRegistry};
use sitw_serve::wire::{self, BinReply, ServerFrameDecode};
use sitw_serve::{ServeConfig, Server, TenantConfig};
use sitw_sim::{fleet_verdict_trace, FleetVerdict, PolicySpec};
use sitw_trace::{app_invocations, build_population, PopulationConfig, TraceConfig, DAY_MS};

/// One observed verdict, protocol-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Observed {
    cold: bool,
    prewarm_load: bool,
    evicted: bool,
    kind: &'static str,
    pre_warm_ms: u64,
    keep_alive_ms: u64,
}

/// Blocking JSON client.
struct JsonClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl JsonClient {
    fn connect(addr: SocketAddr) -> JsonClient {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        JsonClient {
            stream,
            buf: Vec::new(),
        }
    }

    fn invoke(&mut self, tenant: Option<&str>, app: &str, ts: u64) -> (u16, String) {
        let body = match tenant {
            Some(t) => format!("{{\"tenant\":\"{t}\",\"app\":\"{app}\",\"ts\":{ts}}}"),
            None => format!("{{\"app\":\"{app}\",\"ts\":{ts}}}"),
        };
        let req = format!(
            "POST /invoke HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        self.stream.write_all(req.as_bytes()).expect("write");
        loop {
            if let Some(header_end) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                let header = String::from_utf8_lossy(&self.buf[..header_end]).into_owned();
                let status: u16 = header
                    .split_ascii_whitespace()
                    .nth(1)
                    .and_then(|s| s.parse().ok())
                    .expect("status");
                let content_length: usize = header
                    .lines()
                    .find_map(|l| {
                        let (name, value) = l.split_once(':')?;
                        name.eq_ignore_ascii_case("content-length")
                            .then(|| value.trim().parse().ok())?
                    })
                    .unwrap_or(0);
                let total = header_end + 4 + content_length;
                while self.buf.len() < total {
                    self.fill();
                }
                let body = String::from_utf8_lossy(&self.buf[header_end + 4..total]).into_owned();
                self.buf.drain(..total);
                return (status, body);
            }
            self.fill();
        }
    }

    fn fill(&mut self) {
        let mut chunk = [0u8; 16 * 1024];
        let n = self.stream.read(&mut chunk).expect("read");
        assert!(n > 0, "server closed connection unexpectedly");
        self.buf.extend_from_slice(&chunk[..n]);
    }
}

fn parse_observed(body: &str) -> Observed {
    let cold = body.contains("\"verdict\":\"cold\"");
    assert!(cold || body.contains("\"verdict\":\"warm\""), "{body}");
    let field = |name: &str| -> u64 {
        let key = format!("\"{name}\":");
        let rest = &body[body
            .find(&key)
            .unwrap_or_else(|| panic!("{name} in {body}"))
            + key.len()..];
        rest.chars()
            .take_while(|c| c.is_ascii_digit())
            .collect::<String>()
            .parse()
            .unwrap()
    };
    let kind_key = "\"kind\":\"";
    let rest = &body[body.find(kind_key).unwrap() + kind_key.len()..];
    let kind = &rest[..rest.find('"').unwrap()];
    Observed {
        cold,
        prewarm_load: body.contains("\"prewarm_load\":true"),
        evicted: body.contains("\"evicted\":true"),
        kind: wire::kind_str(wire::kind_from_str(kind).unwrap()),
        pre_warm_ms: field("pre_warm_ms"),
        keep_alive_ms: field("keep_alive_ms"),
    }
}

/// Blocking SITW-BIN v2 client.
struct BinClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl BinClient {
    fn connect(addr: SocketAddr) -> BinClient {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        BinClient {
            stream,
            buf: Vec::new(),
        }
    }

    fn batch(&mut self, records: &[(u16, &str, u64)]) -> Vec<BinReply> {
        let mut frame = Vec::new();
        wire::encode_request_frame_v2(&mut frame, records);
        self.stream.write_all(&frame).expect("write frame");
        loop {
            match wire::decode_server_frame(&self.buf) {
                ServerFrameDecode::Reply { records, consumed } => {
                    self.buf.drain(..consumed);
                    return records;
                }
                ServerFrameDecode::Incomplete => {
                    let mut chunk = [0u8; 16 * 1024];
                    let n = self.stream.read(&mut chunk).expect("read");
                    assert!(n > 0, "server closed mid-frame");
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                other => panic!("unexpected server frame: {other:?}"),
            }
        }
    }
}

/// Tenant layout of the test fleet. The metered tenant's budget is
/// derived from its apps' deterministic footprints so that it can hold
/// roughly two warm containers — enough traffic guarantees evictions.
struct Fleet {
    default_policy: PolicySpec,
    tenants: Vec<TenantConfig>,
    metered_budget: u64,
}

fn fleet(metered_apps: &[String]) -> Fleet {
    let footprints: Vec<u64> = metered_apps
        .iter()
        .map(|a| footprint_mb("metered", a))
        .collect();
    let mut sorted = footprints.clone();
    sorted.sort_unstable();
    // Room for the two biggest apps at once, never all of them.
    let metered_budget = sorted[sorted.len() - 1] + sorted[sorted.len() - 2];
    Fleet {
        default_policy: PolicySpec::fixed_minutes(10),
        tenants: vec![
            TenantConfig {
                name: "fast".into(),
                policy: PolicySpec::fixed_minutes(20),
                budget_mb: 0,
            },
            TenantConfig {
                name: "metered".into(),
                policy: PolicySpec::parse("hybrid").unwrap(),
                budget_mb: metered_budget,
            },
            TenantConfig {
                name: "prod".into(),
                policy: PolicySpec::parse("production").unwrap(),
                budget_mb: 0,
            },
        ],
        metered_budget,
    }
}

/// One workload entry: JSON tenant name (None = default), wire tenant
/// id, app, timestamp.
type WorkloadEvent = (Option<&'static str>, TenantId, String, u64);

/// Builds the merged multi-tenant workload: per-tenant app populations
/// with multi-day streams (so production-day rotation crosses the
/// restore), merged in time order.
fn workload() -> (Vec<WorkloadEvent>, Vec<String>) {
    let tenant_of = |idx: usize| -> (Option<&'static str>, TenantId) {
        match idx % 4 {
            0 => (None, 0),
            1 => (Some("fast"), 1),
            2 => (Some("metered"), 2),
            _ => (Some("prod"), 3),
        }
    };
    let population = build_population(&PopulationConfig {
        num_apps: 28,
        seed: 4242,
    });
    let cfg = TraceConfig {
        horizon_ms: 2 * DAY_MS,
        cap_per_day: 120.0,
        seed: 99,
    };
    let mut merged: Vec<WorkloadEvent> = Vec::new();
    let mut metered_apps: Vec<String> = Vec::new();
    for (idx, app) in population.apps.iter().enumerate() {
        let (name, tid) = tenant_of(idx);
        let app_id = app.id.to_string();
        if tid == 2 {
            metered_apps.push(app_id.clone());
        }
        for ts in app_invocations(app, &cfg) {
            merged.push((name, tid, app_id.clone(), ts));
        }
    }
    merged.sort_by(|a, b| (a.3, a.1, &a.2).cmp(&(b.3, b.1, &b.2)));
    assert!(
        merged.len() >= 1_000,
        "workload too small: {}",
        merged.len()
    );
    assert!(metered_apps.len() >= 4, "need several metered apps");
    (merged, metered_apps)
}

/// Replays `merged` against `addr` in alternating protocol blocks — 17
/// invocations as sequential JSON requests, then 29 as one SITW-BIN v2
/// frame — appending observations in event order.
fn replay_mixed(addr: SocketAddr, merged: &[WorkloadEvent], online: &mut Vec<Observed>) {
    let mut json = JsonClient::connect(addr);
    let mut bin = BinClient::connect(addr);
    let mut i = 0usize;
    let mut use_json = true;
    while i < merged.len() {
        if use_json {
            for (name, _, app, ts) in merged[i..merged.len().min(i + 17)].iter() {
                let (status, body) = json.invoke(*name, app, *ts);
                assert_eq!(status, 200, "{body}");
                online.push(parse_observed(&body));
            }
            i = merged.len().min(i + 17);
        } else {
            let block = &merged[i..merged.len().min(i + 29)];
            let records: Vec<(u16, &str, u64)> = block
                .iter()
                .map(|(_, tid, app, ts)| (*tid, app.as_str(), *ts))
                .collect();
            let replies = bin.batch(&records);
            assert_eq!(replies.len(), block.len());
            for reply in replies {
                match reply {
                    BinReply::Verdict {
                        cold,
                        prewarm_load,
                        evicted,
                        kind,
                        pre_warm_ms,
                        keep_alive_ms,
                    } => online.push(Observed {
                        cold,
                        prewarm_load,
                        evicted,
                        kind: wire::kind_str(kind),
                        pre_warm_ms: pre_warm_ms as u64,
                        keep_alive_ms: keep_alive_ms as u64,
                    }),
                    other => panic!("unexpected reply {other:?}"),
                }
            }
            i = merged.len().min(i + 29);
        }
        use_json = !use_json;
    }
}

#[test]
fn fleet_replay_matches_fleet_verdict_trace_across_shard_change() {
    let (merged, metered_apps) = workload();
    let fleet = fleet(&metered_apps);
    let half = merged.len() / 2;

    let dir = std::env::temp_dir().join(format!("sitw-fleet-parity-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap_path = dir.join("state.snapshot");

    let config = |shards: usize, restore: bool| ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards,
        policy: fleet.default_policy.clone(),
        tenants: fleet.tenants.clone(),
        snapshot_path: Some(snap_path.clone()),
        restore_path: restore.then(|| snap_path.clone()),
        ..ServeConfig::default()
    };

    // Phase 1: first half against a 2-shard fleet.
    let server_a = Server::start(config(2, false)).unwrap();
    let mut online: Vec<Observed> = Vec::new();
    replay_mixed(server_a.addr(), &merged[..half], &mut online);
    server_a.shutdown().unwrap();
    let text = std::fs::read_to_string(&snap_path).unwrap();
    assert!(
        text.contains("tenant 2 metered"),
        "registry persisted:\n{text}"
    );
    assert!(text.contains("tledger 2 "), "metered ledger persisted");
    assert!(text.contains("tclock 3 "), "prod backup clock persisted");

    // Phase 2: the rest against a 5-shard fleet restored from the file.
    let server_b = Server::start(config(5, true)).unwrap();
    replay_mixed(server_b.addr(), &merged[half..], &mut online);

    // Offline ground truth: the uninterrupted fleet simulator.
    let mut registry = TenantRegistry::new(fleet.default_policy.clone());
    for t in &fleet.tenants {
        registry
            .register(&t.name, t.policy.clone(), t.budget_mb)
            .unwrap();
    }
    let events: Vec<FleetEvent> = merged
        .iter()
        .map(|(_, tid, app, ts)| FleetEvent {
            tenant: *tid,
            app: app.clone(),
            ts: *ts,
        })
        .collect();
    let offline = fleet_verdict_trace(&events, &registry);

    assert_eq!(online.len(), offline.len());
    let mut evicted_seen = 0u64;
    for (i, (on, off)) in online.iter().zip(&offline).enumerate() {
        let off: &FleetVerdict = off
            .as_ref()
            .unwrap_or_else(|e| panic!("offline rejected event {i} ({:?}): {e:?}", events[i]));
        let ctx = || format!("event {i} = {:?}", events[i]);
        assert_eq!(on.cold, off.cold, "cold mismatch at {}", ctx());
        assert_eq!(on.prewarm_load, off.prewarm_load, "prewarm at {}", ctx());
        assert_eq!(on.evicted, off.evicted, "evicted at {}", ctx());
        assert_eq!(on.kind, wire::kind_str(off.kind), "kind at {}", ctx());
        assert!(
            off.windows.pre_warm_ms < u32::MAX as u64
                && off.windows.keep_alive_ms < u32::MAX as u64,
            "windows exceed the u32 wire range at {}",
            ctx()
        );
        assert_eq!(
            (on.pre_warm_ms, on.keep_alive_ms),
            (off.windows.pre_warm_ms, off.windows.keep_alive_ms),
            "windows at {}",
            ctx()
        );
        if off.evicted {
            evicted_seen += 1;
        }
    }
    assert!(
        evicted_seen > 0,
        "the over-budget tenant must see eviction downgrades"
    );

    // Budget-respecting verdicts: evictions only for the metered tenant,
    // counts exactly matching the offline ledgers, warm memory within
    // budget.
    let report = server_b.metrics();
    let tenants = report.tenants();
    assert_eq!(tenants.len(), 4);
    let by_name: HashMap<&str, _> = tenants.iter().map(|t| (t.name.as_str(), t)).collect();
    let mut sim = sitw_sim::FleetSim::new(&registry);
    for e in &events {
        sim.step(e.tenant, &e.app, e.ts).unwrap();
    }
    for (name, tid) in [("default", 0u16), ("fast", 1), ("metered", 2), ("prod", 3)] {
        let online_t = by_name[name];
        let offline_ledger = sim.ledger(tid).unwrap().stats();
        assert_eq!(
            online_t.evictions, offline_ledger.evictions,
            "{name}: eviction count must match the offline ledger"
        );
        if name == "metered" {
            assert!(online_t.evictions > 0, "metered tenant must evict");
            assert!(
                online_t.warm_mb <= fleet.metered_budget,
                "metered warm {} exceeds budget {}",
                online_t.warm_mb,
                fleet.metered_budget
            );
        } else {
            assert_eq!(online_t.evictions, 0, "{name}: unbudgeted, never evicts");
        }
    }

    server_b.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Unknown tenants are rejected cleanly on both protocols: JSON with a
/// 400, SITW-BIN v2 with a typed (recoverable) error frame.
#[test]
fn unknown_tenants_rejected_on_both_protocols() {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards: 2,
        policy: PolicySpec::fixed_minutes(10),
        tenants: vec![TenantConfig {
            name: "known".into(),
            policy: PolicySpec::fixed_minutes(10),
            budget_mb: 0,
        }],
        ..ServeConfig::default()
    })
    .unwrap();

    let mut json = JsonClient::connect(server.addr());
    let (status, body) = json.invoke(Some("ghost"), "a", 0);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("unknown tenant"), "{body}");
    // The connection survives and known tenants serve.
    let (status, body) = json.invoke(Some("known"), "a", 0);
    assert_eq!(status, 200, "{body}");

    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut frame = Vec::new();
    wire::encode_request_frame_v2(&mut frame, &[(42, "a", 0)]);
    stream.write_all(&frame).unwrap();
    let mut buf = Vec::new();
    loop {
        match wire::decode_server_frame(&buf) {
            ServerFrameDecode::Error {
                code,
                detail,
                consumed,
            } => {
                assert_eq!(code, wire::BinErrorCode::Malformed);
                assert!(detail.contains("unknown tenant id 42"), "{detail}");
                buf.drain(..consumed);
                break;
            }
            ServerFrameDecode::Incomplete => {
                let mut chunk = [0u8; 4096];
                let n = stream.read(&mut chunk).unwrap();
                assert!(n > 0);
                buf.extend_from_slice(&chunk[..n]);
            }
            other => panic!("{other:?}"),
        }
    }
    // Still usable: a valid v2 frame for the known tenant (id 1).
    let mut good = Vec::new();
    wire::encode_request_frame_v2(&mut good, &[(1, "b", 5)]);
    stream.write_all(&good).unwrap();
    loop {
        match wire::decode_server_frame(&buf) {
            ServerFrameDecode::Reply { records, consumed } => {
                buf.drain(..consumed);
                assert!(matches!(records[0], BinReply::Verdict { cold: true, .. }));
                break;
            }
            ServerFrameDecode::Incomplete => {
                let mut chunk = [0u8; 4096];
                let n = stream.read(&mut chunk).unwrap();
                assert!(n > 0);
                buf.extend_from_slice(&chunk[..n]);
            }
            other => panic!("{other:?}"),
        }
    }
    assert_eq!(server.metrics().proto.proto_errors, 1);
    server.shutdown().unwrap();
}

/// Runtime tenant registration via the admin endpoint: the new tenant
/// serves immediately, appears in `GET /admin/tenants` and `/metrics`,
/// and survives a snapshot/restore (rebuilt from its canonical spec).
#[test]
fn admin_registered_tenant_serves_and_survives_restore() {
    let dir = std::env::temp_dir().join(format!("sitw-fleet-admin-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap_path = dir.join("state.snapshot");

    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards: 3,
        policy: PolicySpec::fixed_minutes(10),
        snapshot_path: Some(snap_path.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = JsonClient::connect(server.addr());

    // Register over HTTP with a budget; duplicate and garbage rejected.
    let body = "ondemand=fixed:20,budget=256";
    let req = format!(
        "POST /admin/tenants HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    client.stream.write_all(req.as_bytes()).unwrap();
    let (status, resp) = read_http_response(&mut client);
    assert_eq!(status, 200, "{resp}");
    assert!(resp.contains("\"id\":1"), "{resp}");
    client.stream.write_all(req.as_bytes()).unwrap();
    let (status, resp) = read_http_response(&mut client);
    assert_eq!(status, 400, "duplicate must 400: {resp}");

    let (status, body) = client.invoke(Some("ondemand"), "x", 0);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"keep_alive_ms\":1200000"), "{body}");

    let req = "GET /admin/tenants HTTP/1.1\r\n\r\n".to_owned();
    client.stream.write_all(req.as_bytes()).unwrap();
    let (status, listing) = read_http_response(&mut client);
    assert_eq!(status, 200);
    assert!(listing.contains("\"name\":\"ondemand\""), "{listing}");
    assert!(listing.contains("\"budget_mb\":256"), "{listing}");

    drop(client);
    server.shutdown().unwrap();

    // Restart without configuring the tenant: the snapshot's canonical
    // spec rebuilds it, continuing the decision stream.
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards: 2,
        policy: PolicySpec::fixed_minutes(10),
        restore_path: Some(snap_path.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = JsonClient::connect(server.addr());
    let (status, body) = client.invoke(Some("ondemand"), "x", 60_000);
    assert_eq!(status, 200, "{body}");
    assert!(
        body.contains("\"verdict\":\"warm\""),
        "restored state: {body}"
    );
    server.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Reads one HTTP response off a [`JsonClient`]'s stream.
fn read_http_response(client: &mut JsonClient) -> (u16, String) {
    loop {
        if let Some(header_end) = client.buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let header = String::from_utf8_lossy(&client.buf[..header_end]).into_owned();
            let status: u16 = header
                .split_ascii_whitespace()
                .nth(1)
                .and_then(|s| s.parse().ok())
                .expect("status");
            let content_length: usize = header
                .lines()
                .find_map(|l| {
                    let (name, value) = l.split_once(':')?;
                    name.eq_ignore_ascii_case("content-length")
                        .then(|| value.trim().parse().ok())?
                })
                .unwrap_or(0);
            let total = header_end + 4 + content_length;
            while client.buf.len() < total {
                client.fill();
            }
            let body = String::from_utf8_lossy(&client.buf[header_end + 4..total]).into_owned();
            client.buf.drain(..total);
            return (status, body);
        }
        client.fill();
    }
}
