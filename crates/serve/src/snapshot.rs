//! State snapshot/restore: the daemon's analogue of the paper's hourly
//! histogram backups (§6), extended with the fleet's tenant state.
//!
//! A snapshot captures, per application, everything its policy decision
//! depends on — last accepted timestamp, current windows, the
//! memory-pressure eviction flag, and for the hybrid policy the full
//! [`sitw_core::HybridSnapshot`] (histogram bins, out-of-bounds count,
//! capped ARIMA history, decision counters). Fleet mode adds, per
//! tenant: the registry entry (name, policy, budget), the production
//! backup clock, and the memory ledger (warm set with expiries and
//! footprints, eviction count, loaded-memory integral). A server
//! restored from a snapshot therefore continues the decision stream —
//! including every budget eviction — **bit-for-bit** where the
//! snapshotting server left off, even when the shard count changes; the
//! integration tests assert exactly that.
//!
//! The format is a line-oriented text file (floating-point values as
//! IEEE-754 bit patterns in hex so round trips are exact), versioned by
//! its header line. Pre-fleet files (no tenant lines) decode as a
//! default-tenant-only snapshot, unchanged.
//!
//! One deliberate imprecision: the default tenant's ledger is sharded by
//! app hash, so its *integral* is merged (summed, cursor = max) at
//! snapshot time and re-seeded on shard 0 at restore. Decisions are
//! unaffected (the default tenant is unbudgeted and never evicts) — only
//! the fleet-wide idle-MB·ms metric can undercount across a restart that
//! also changes the shard count. Budgeted tenants live whole on one
//! shard, so their ledgers restore exactly.

use std::io::{self, Write};
use std::path::Path;

use sitw_core::{
    DayHistogram, DecisionCounts, DecisionKind, HybridPolicy, HybridSnapshot, ProductionAppState,
    Windows,
};
use sitw_fleet::{LedgerExport, TenantId};
use sitw_sim::PolicySpec;

use crate::shard::ServedPolicy;
use crate::wire::{kind_from_str, kind_str};

/// Magic first line of a snapshot file.
const HEADER: &str = "sitw-serve-snapshot v1";

/// Magic first line of a replication delta document: the same line
/// grammar as a snapshot, but apps are a *dirty subset* — the receiver
/// upserts them into its accumulated state instead of replacing it.
const DELTA_HEADER: &str = "sitw-serve-delta v1";

/// Why a snapshot failed to load — typed so the daemon can distinguish
/// "the file is unreadable" from "the file is corrupt" and degrade to
/// serving from empty state instead of dying mid-parse.
#[derive(Debug)]
pub enum SnapshotError {
    /// The file could not be read at all.
    Io(io::Error),
    /// The file was read but is truncated or corrupt; the message names
    /// the first offending line or field.
    Corrupt(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot unreadable: {e}"),
            SnapshotError::Corrupt(msg) => write!(f, "snapshot corrupt: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// One shard's complete exported state: one entry per tenant living on
/// the shard (the default tenant always, named tenants when routed
/// here).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardExport {
    /// Per-tenant state, sorted by tenant id.
    pub tenants: Vec<TenantExport>,
}

/// One tenant's state on one shard (also the merged per-tenant snapshot
/// unit — named tenants live whole on one shard).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantExport {
    /// Registry id.
    pub id: TenantId,
    /// Tenant name.
    pub name: String,
    /// The tenant policy's label (restore refuses a mismatch).
    pub policy_label: String,
    /// The canonical parseable policy string, when one exists — lets a
    /// restore reconstruct tenants the new process was not configured
    /// with (e.g. admin-registered ones).
    pub spec_str: Option<String>,
    /// Keep-alive memory budget (0 = unlimited).
    pub budget_mb: u64,
    /// `Some(last_backup_ms)` when the tenant serves production mode.
    pub prod_clock: Option<u64>,
    /// The tenant's memory ledger slice.
    pub ledger: LedgerExport,
    /// Per-app records, sorted by app id.
    pub apps: Vec<AppRecord>,
}

/// Serializable policy state of one application.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyState {
    /// The policy keeps no per-app state beyond the windows themselves
    /// (fixed keep-alive, no-unloading).
    Stateless,
    /// Full hybrid-policy state.
    Hybrid(HybridSnapshot),
    /// Production-manager state: the app's retained daily histograms.
    Production {
        /// The branch that served the app's most recent decision.
        last: DecisionKind,
        /// The retained daily histograms, oldest first.
        state: ProductionAppState,
    },
}

impl PolicyState {
    /// Captures the state of one served policy instance.
    ///
    /// # Panics
    ///
    /// Panics for [`ServedPolicy::Production`]: production state lives in
    /// the tenant's manager, which exports it directly (the app-local
    /// variant only holds a key into it).
    pub fn export(policy: &ServedPolicy) -> PolicyState {
        match policy {
            ServedPolicy::Fixed(_) | ServedPolicy::NoUnload(_) => PolicyState::Stateless,
            ServedPolicy::Hybrid(h) => PolicyState::Hybrid(h.snapshot()),
            ServedPolicy::Production { .. } => {
                unreachable!("production state is exported by the tenant's manager")
            }
        }
    }

    /// Rebuilds a policy instance under `spec`.
    ///
    /// # Errors
    ///
    /// Fails when the state variant does not match the spec (e.g. a
    /// hybrid snapshot restored into a fixed-keep-alive server).
    pub fn into_policy(self, spec: &PolicySpec) -> Result<ServedPolicy, String> {
        match (self, spec) {
            (PolicyState::Stateless, PolicySpec::Fixed(f)) => Ok(ServedPolicy::Fixed(*f)),
            (PolicyState::Stateless, PolicySpec::NoUnloading) => {
                Ok(ServedPolicy::NoUnload(sitw_core::NoUnloading))
            }
            (PolicyState::Hybrid(snap), PolicySpec::Hybrid(cfg)) => Ok(ServedPolicy::Hybrid(
                HybridPolicy::from_snapshot(cfg.clone(), snap)?,
            )),
            (state, spec) => Err(format!(
                "snapshot state {:?} does not match policy '{}'",
                variant_name(&state),
                spec.label()
            )),
        }
    }
}

fn variant_name(s: &PolicyState) -> &'static str {
    match s {
        PolicyState::Stateless => "stateless",
        PolicyState::Hybrid(_) => "hybrid",
        PolicyState::Production { .. } => "production",
    }
}

/// One application's complete serving state.
#[derive(Debug, Clone, PartialEq)]
pub struct AppRecord {
    /// Application id.
    pub app: String,
    /// Last accepted invocation timestamp.
    pub last_ts: u64,
    /// Windows governing the gap in progress.
    pub windows: Windows,
    /// The image was evicted for memory pressure during the gap in
    /// progress (the next invocation is downgraded to cold).
    pub evicted: bool,
    /// Policy-internal state.
    pub state: PolicyState,
}

/// A named tenant's complete snapshot state.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSnapshot {
    /// Registry id (contiguous from 1, in registration order).
    pub id: TenantId,
    /// Tenant name.
    pub name: String,
    /// The tenant policy's label.
    pub policy_label: String,
    /// The canonical parseable policy string, when one exists.
    pub spec_str: Option<String>,
    /// Keep-alive memory budget (0 = unlimited).
    pub budget_mb: u64,
    /// Production backup clock.
    pub prod_clock: Option<u64>,
    /// The tenant's memory ledger.
    pub ledger: LedgerExport,
    /// Per-app records, sorted by app id.
    pub apps: Vec<AppRecord>,
}

/// A complete server snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Label of the default tenant's policy ([`PolicySpec::label`]);
    /// restore refuses a mismatch.
    pub policy_label: String,
    /// Default tenant's production backup clock (`last_backup_ms`, the
    /// maximum over shards); restoring seeds every shard's manager with
    /// it so the hourly cadence continues instead of "catching up".
    pub prod_clock: Option<u64>,
    /// Default-tenant applications, sorted by id.
    pub apps: Vec<AppRecord>,
    /// Default tenant's merged memory ledger (metrics continuity).
    pub default_ledger: LedgerExport,
    /// Named tenants, sorted by id.
    pub tenants: Vec<TenantSnapshot>,
}

/// Percent-encodes the characters that would break the line format.
fn encode_app(app: &str) -> String {
    let mut out = String::with_capacity(app.len());
    for c in app.chars() {
        match c {
            ' ' => out.push_str("%20"),
            '%' => out.push_str("%25"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            c => out.push(c),
        }
    }
    out
}

fn decode_app(enc: &str) -> Result<String, String> {
    let mut out = String::with_capacity(enc.len());
    let mut chars = enc.chars();
    while let Some(c) = chars.next() {
        if c == '%' {
            // Escapes are always two ASCII hex digits (see encode_app).
            let hi = chars.next().ok_or("truncated escape")?;
            let lo = chars.next().ok_or("truncated escape")?;
            let hex: String = [hi, lo].iter().collect();
            let v = u8::from_str_radix(&hex, 16).map_err(|_| format!("bad escape %{hex}"))?;
            out.push(v as char);
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

/// Writes one app record's line payload (everything after the leading
/// keyword and optional tenant id).
fn encode_app_record(out: &mut String, rec: &AppRecord) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "{} {} {} {}",
        encode_app(&rec.app),
        rec.last_ts,
        rec.windows.pre_warm_ms,
        rec.windows.keep_alive_ms
    );
    if rec.evicted {
        out.push_str(" evicted");
    }
    match &rec.state {
        PolicyState::Stateless => {}
        PolicyState::Production { last, state } => {
            let _ = write!(
                out,
                " production {} days {}",
                kind_str(*last),
                state.days.len()
            );
            for d in &state.days {
                let _ = write!(out, " {}:{}:", d.day, d.oob);
                for (i, b) in d.bins.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{b}");
                }
            }
        }
        PolicyState::Hybrid(h) => {
            let _ = write!(
                out,
                " hybrid {} {} {} {} {}",
                h.oob_count,
                h.counts.histogram,
                h.counts.standard,
                h.counts.arima,
                kind_str(h.last_decision)
            );
            let _ = write!(out, " bins ");
            if h.bins.is_empty() {
                out.push('-');
            } else {
                for (i, b) in h.bins.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{b}");
                }
            }
            let _ = write!(out, " hist ");
            if h.history.is_empty() {
                out.push('-');
            } else {
                for (i, v) in h.history.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{:016x}", v.to_bits());
                }
            }
        }
    }
}

/// Parses one app record from its tokens (everything after the leading
/// keyword and optional tenant id).
fn decode_app_record<'a>(mut tok: impl Iterator<Item = &'a str>) -> Result<AppRecord, String> {
    let app = decode_app(tok.next().ok_or("missing app id")?)?;
    let last_ts = parse_field::<u64>(tok.next(), "last_ts")?;
    let pre_warm_ms = parse_field::<u64>(tok.next(), "pre_warm_ms")?;
    let keep_alive_ms = parse_field::<u64>(tok.next(), "keep_alive_ms")?;
    let mut next = tok.next();
    let evicted = next == Some("evicted");
    if evicted {
        next = tok.next();
    }
    let state = match next {
        None => PolicyState::Stateless,
        Some("production") => {
            let last = kind_from_str(tok.next().ok_or("missing kind")?)?;
            if tok.next() != Some("days") {
                return Err("expected 'days'".into());
            }
            let num_days: usize = parse_field(tok.next(), "day count")?;
            let mut days = Vec::with_capacity(num_days);
            for _ in 0..num_days {
                let group = tok.next().ok_or("missing day group")?;
                let mut parts = group.splitn(3, ':');
                let day = parse_field::<u64>(parts.next(), "day index")?;
                let oob = parse_field::<u64>(parts.next(), "day oob")?;
                let bins = parts
                    .next()
                    .ok_or("missing day bins")?
                    .split(',')
                    .map(|s| s.parse::<u32>().map_err(|_| format!("bad bin '{s}'")))
                    .collect::<Result<_, _>>()?;
                days.push(DayHistogram { day, bins, oob });
            }
            PolicyState::Production {
                last,
                state: ProductionAppState { days },
            }
        }
        Some("hybrid") => {
            let oob_count = parse_field::<u64>(tok.next(), "oob")?;
            let counts = DecisionCounts {
                histogram: parse_field::<u64>(tok.next(), "hist count")?,
                standard: parse_field::<u64>(tok.next(), "std count")?,
                arima: parse_field::<u64>(tok.next(), "arima count")?,
            };
            let last_decision = kind_from_str(tok.next().ok_or("missing kind")?)?;
            if tok.next() != Some("bins") {
                return Err("expected 'bins'".into());
            }
            let bins_tok = tok.next().ok_or("missing bins")?;
            let bins = if bins_tok == "-" {
                Vec::new()
            } else {
                bins_tok
                    .split(',')
                    .map(|s| s.parse::<u32>().map_err(|_| format!("bad bin '{s}'")))
                    .collect::<Result<_, _>>()?
            };
            if tok.next() != Some("hist") {
                return Err("expected 'hist'".into());
            }
            let hist_tok = tok.next().ok_or("missing history")?;
            let history = if hist_tok == "-" {
                Vec::new()
            } else {
                hist_tok
                    .split(',')
                    .map(|s| {
                        u64::from_str_radix(s, 16)
                            .map(f64::from_bits)
                            .map_err(|_| format!("bad history value '{s}'"))
                    })
                    .collect::<Result<_, _>>()?
            };
            PolicyState::Hybrid(HybridSnapshot {
                bins,
                oob_count,
                history,
                counts,
                last_decision,
            })
        }
        Some(other) => return Err(format!("unknown state kind '{other}'")),
    };
    Ok(AppRecord {
        app,
        last_ts,
        windows: Windows {
            pre_warm_ms,
            keep_alive_ms,
        },
        evicted,
        state,
    })
}

/// Whether a ledger export carries any information worth a line.
fn ledger_is_empty(l: &LedgerExport) -> bool {
    l.warm.is_empty() && l.evictions == 0 && l.idle_mb_ms == 0 && l.cursor_ms == 0
}

impl Snapshot {
    /// Serializes to the text format.
    pub fn encode(&self) -> String {
        self.encode_with_header(HEADER)
    }

    /// Serializes as a replication delta document: identical line
    /// grammar, delta header. The caller is responsible for `self`
    /// carrying only dirty apps (tenant lines, ledgers, and clocks are
    /// always carried whole — they are absolute values the receiver
    /// replaces wholesale).
    pub fn encode_delta(&self) -> String {
        self.encode_with_header(DELTA_HEADER)
    }

    fn encode_with_header(&self, header: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(64 + self.apps.len() * 128);
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "policy {}", self.policy_label);
        if let Some(clock) = self.prod_clock {
            let _ = writeln!(out, "clock {clock}");
        }
        if !ledger_is_empty(&self.default_ledger) {
            let l = &self.default_ledger;
            let _ = writeln!(
                out,
                "dledger {} {} {}",
                l.evictions, l.idle_mb_ms, l.cursor_ms
            );
            for (app, expiry, mb) in &l.warm {
                let _ = writeln!(out, "dwarm {} {expiry} {mb}", encode_app(app));
            }
        }
        for t in &self.tenants {
            let _ = write!(
                out,
                "tenant {} {} {} {} {}",
                t.id,
                t.name,
                t.budget_mb,
                t.apps.len(),
                t.policy_label
            );
            if let Some(spec) = &t.spec_str {
                let _ = write!(out, " spec {spec}");
            }
            out.push('\n');
            if let Some(clock) = t.prod_clock {
                let _ = writeln!(out, "tclock {} {clock}", t.id);
            }
            if !ledger_is_empty(&t.ledger) {
                let _ = writeln!(
                    out,
                    "tledger {} {} {} {}",
                    t.id, t.ledger.evictions, t.ledger.idle_mb_ms, t.ledger.cursor_ms
                );
                for (app, expiry, mb) in &t.ledger.warm {
                    let _ = writeln!(out, "twarm {} {} {expiry} {mb}", t.id, encode_app(app));
                }
            }
        }
        let _ = writeln!(out, "apps {}", self.apps.len());
        for rec in &self.apps {
            out.push_str("app ");
            encode_app_record(&mut out, rec);
            out.push('\n');
        }
        for t in &self.tenants {
            for rec in &t.apps {
                let _ = write!(out, "tapp {} ", t.id);
                encode_app_record(&mut out, rec);
                out.push('\n');
            }
        }
        // The explicit trailer is what makes *tail* truncation
        // detectable: the line grammar alone cannot tell a complete
        // document from one whose final record lines were cut off.
        out.push_str("end\n");
        out
    }

    /// Parses the text format.
    pub fn decode(text: &str) -> Result<Snapshot, String> {
        Self::decode_with_header(text, HEADER)
    }

    /// Parses a replication delta document (see [`Snapshot::encode_delta`]).
    pub fn decode_delta(text: &str) -> Result<Snapshot, String> {
        Self::decode_with_header(text, DELTA_HEADER)
    }

    fn decode_with_header(text: &str, want: &str) -> Result<Snapshot, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty snapshot")?;
        if header != want {
            return Err(format!("bad header '{header}'"));
        }
        let policy_line = lines.next().ok_or("missing policy line")?;
        let policy_label = policy_line
            .strip_prefix("policy ")
            .ok_or("missing policy line")?
            .to_owned();

        let mut prod_clock = None;
        let mut saw_end = false;
        let mut apps: Vec<AppRecord> = Vec::new();
        let mut declared: Option<usize> = None;
        let mut default_ledger = LedgerExport::default();
        let mut tenants: Vec<TenantSnapshot> = Vec::new();
        let mut tenant_declared: Vec<(TenantId, usize)> = Vec::new();

        fn tenant_mut(
            tenants: &mut [TenantSnapshot],
            id: TenantId,
        ) -> Result<&mut TenantSnapshot, String> {
            tenants
                .iter_mut()
                .find(|t| t.id == id)
                .ok_or_else(|| format!("unknown tenant id {id}"))
        }

        for line in lines {
            if line.is_empty() {
                continue;
            }
            if saw_end {
                return Err(format!("content after end marker: '{line}'"));
            }
            let mut tok = line.split(' ');
            match tok.next() {
                Some("end") => {
                    saw_end = true;
                }
                Some("clock") => {
                    prod_clock = Some(parse_field::<u64>(tok.next(), "clock")?);
                }
                Some("dledger") => {
                    default_ledger.evictions = parse_field(tok.next(), "evictions")?;
                    default_ledger.idle_mb_ms = parse_field(tok.next(), "idle_mb_ms")?;
                    default_ledger.cursor_ms = parse_field(tok.next(), "cursor_ms")?;
                }
                Some("dwarm") => {
                    let app = decode_app(tok.next().ok_or("missing warm app")?)?;
                    let expiry = parse_field::<u64>(tok.next(), "warm expiry")?;
                    let mb = parse_field::<u64>(tok.next(), "warm mb")?;
                    default_ledger.warm.push((app, expiry, mb));
                }
                Some("tenant") => {
                    let id = parse_field::<TenantId>(tok.next(), "tenant id")?;
                    let name = tok.next().ok_or("missing tenant name")?.to_owned();
                    let budget_mb = parse_field::<u64>(tok.next(), "tenant budget")?;
                    let napps = parse_field::<usize>(tok.next(), "tenant app count")?;
                    let policy_label = tok.next().ok_or("missing tenant policy")?.to_owned();
                    let spec_str = match tok.next() {
                        None => None,
                        Some("spec") => Some(tok.next().ok_or("missing spec")?.to_owned()),
                        Some(other) => return Err(format!("unexpected token '{other}'")),
                    };
                    if tenant_declared.iter().any(|(i, _)| *i == id) {
                        return Err(format!("duplicate tenant id {id}"));
                    }
                    tenant_declared.push((id, napps));
                    tenants.push(TenantSnapshot {
                        id,
                        name,
                        policy_label,
                        spec_str,
                        budget_mb,
                        prod_clock: None,
                        ledger: LedgerExport::default(),
                        apps: Vec::with_capacity(napps),
                    });
                }
                Some("tclock") => {
                    let id = parse_field::<TenantId>(tok.next(), "tenant id")?;
                    let clock = parse_field::<u64>(tok.next(), "tclock")?;
                    tenant_mut(&mut tenants, id)?.prod_clock = Some(clock);
                }
                Some("tledger") => {
                    let id = parse_field::<TenantId>(tok.next(), "tenant id")?;
                    let t = tenant_mut(&mut tenants, id)?;
                    t.ledger.evictions = parse_field(tok.next(), "evictions")?;
                    t.ledger.idle_mb_ms = parse_field(tok.next(), "idle_mb_ms")?;
                    t.ledger.cursor_ms = parse_field(tok.next(), "cursor_ms")?;
                }
                Some("twarm") => {
                    let id = parse_field::<TenantId>(tok.next(), "tenant id")?;
                    let app = decode_app(tok.next().ok_or("missing warm app")?)?;
                    let expiry = parse_field::<u64>(tok.next(), "warm expiry")?;
                    let mb = parse_field::<u64>(tok.next(), "warm mb")?;
                    tenant_mut(&mut tenants, id)?
                        .ledger
                        .warm
                        .push((app, expiry, mb));
                }
                Some("apps") => {
                    declared = Some(parse_field::<usize>(tok.next(), "app count")?);
                }
                Some("app") => {
                    apps.push(decode_app_record(tok)?);
                }
                Some("tapp") => {
                    let id = parse_field::<TenantId>(tok.next(), "tenant id")?;
                    let rec = decode_app_record(tok)?;
                    tenant_mut(&mut tenants, id)?.apps.push(rec);
                }
                _ => return Err(format!("unexpected line '{line}'")),
            }
        }
        if !saw_end {
            return Err("missing end marker (truncated document?)".into());
        }
        let declared = declared.ok_or("missing apps line")?;
        if apps.len() != declared {
            return Err(format!(
                "app count mismatch: declared {declared}, found {}",
                apps.len()
            ));
        }
        for (id, napps) in tenant_declared {
            let t = tenants
                .iter()
                .find(|t| t.id == id)
                .expect("declared tenants were pushed");
            if t.apps.len() != napps {
                return Err(format!(
                    "tenant {id} app count mismatch: declared {napps}, found {}",
                    t.apps.len()
                ));
            }
        }
        Ok(Snapshot {
            policy_label,
            prod_clock,
            apps,
            default_ledger,
            tenants,
        })
    }

    /// Writes the snapshot to a file (atomically via a sibling temp file).
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.encode().as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Reads a snapshot file.
    pub fn read_from(path: &Path) -> io::Result<Snapshot> {
        match Snapshot::load(path) {
            Ok(snap) => Ok(snap),
            Err(SnapshotError::Io(e)) => Err(e),
            Err(SnapshotError::Corrupt(e)) => Err(io::Error::new(io::ErrorKind::InvalidData, e)),
        }
    }

    /// Reads a snapshot file with a typed error, so callers can tell a
    /// missing/unreadable file from a truncated or corrupt one (the
    /// daemon degrades to empty state on the latter instead of dying).
    pub fn load(path: &Path) -> Result<Snapshot, SnapshotError> {
        let bytes = std::fs::read(path).map_err(SnapshotError::Io)?;
        // Non-UTF-8 content is a corrupt *file*, not an I/O failure:
        // the read succeeded, the contents are garbage.
        let text = String::from_utf8(bytes)
            .map_err(|_| SnapshotError::Corrupt("snapshot is not UTF-8 text".into()))?;
        Snapshot::decode(&text).map_err(SnapshotError::Corrupt)
    }
}

/// Applies a replication delta onto an accumulated base snapshot: app
/// records upsert by `(tenant, app)`, everything else — tenant list,
/// ledgers, clocks, budgets, the policy label — is replaced wholesale
/// (deltas carry those as absolute values every round). Tenants absent
/// from the delta are removed (they migrated away or were taken).
///
/// Apps are never removed individually: shards only ever flag evictions
/// (the flag rides the app record) and remove state per whole tenant,
/// so upsert-plus-tenant-replacement reproduces the primary's state
/// exactly. The failover parity tests assert this bit-for-bit.
pub fn apply_delta(base: &mut Snapshot, delta: Snapshot) {
    fn upsert_apps(base: &mut Vec<AppRecord>, fresh: Vec<AppRecord>) {
        for rec in fresh {
            match base.binary_search_by(|b| b.app.cmp(&rec.app)) {
                Ok(i) => base[i] = rec,
                Err(i) => base.insert(i, rec),
            }
        }
    }
    base.policy_label = delta.policy_label;
    base.prod_clock = delta.prod_clock;
    base.default_ledger = delta.default_ledger;
    upsert_apps(&mut base.apps, delta.apps);
    let mut tenants: Vec<TenantSnapshot> = Vec::with_capacity(delta.tenants.len());
    for mut t in delta.tenants {
        let apps = std::mem::take(&mut t.apps);
        if let Some(old) = base.tenants.iter_mut().find(|b| b.id == t.id) {
            t.apps = std::mem::take(&mut old.apps);
        }
        upsert_apps(&mut t.apps, apps);
        tenants.push(t);
    }
    tenants.sort_by_key(|t| t.id);
    base.tenants = tenants;
}

/// Serializes one tenant's exported state as a standalone migration
/// payload — the snapshot text format carrying exactly one tenant
/// section and no default-tenant state. The placeholder policy label
/// `-` marks the file as a section, not a full snapshot.
pub fn encode_tenant_section(t: &TenantExport) -> String {
    let snap = Snapshot {
        policy_label: "-".into(),
        prod_clock: None,
        apps: Vec::new(),
        default_ledger: LedgerExport::default(),
        tenants: vec![TenantSnapshot {
            id: t.id,
            name: t.name.clone(),
            policy_label: t.policy_label.clone(),
            spec_str: t.spec_str.clone(),
            budget_mb: t.budget_mb,
            prod_clock: t.prod_clock,
            ledger: t.ledger.clone(),
            apps: t.apps.clone(),
        }],
    };
    snap.encode()
}

/// Parses a migration payload produced by [`encode_tenant_section`].
///
/// # Errors
///
/// Fails on malformed text or when the payload does not carry exactly
/// one tenant section.
pub fn decode_tenant_section(text: &str) -> Result<TenantSnapshot, String> {
    let snap = Snapshot::decode(text)?;
    if snap.tenants.len() != 1 {
        return Err(format!(
            "migration payload must carry exactly one tenant, found {}",
            snap.tenants.len()
        ));
    }
    if !snap.apps.is_empty() {
        return Err("migration payload must not carry default-tenant apps".into());
    }
    Ok(snap.tenants.into_iter().next().expect("length checked"))
}

fn parse_field<T: std::str::FromStr>(tok: Option<&str>, name: &str) -> Result<T, String> {
    tok.ok_or_else(|| format!("missing {name}"))?
        .parse::<T>()
        .map_err(|_| format!("bad {name}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitw_core::{AppPolicy, HybridConfig, PolicyFactory, MINUTE_MS};

    fn hybrid_record() -> AppRecord {
        let mut p = HybridConfig::default().new_policy();
        p.on_invocation(None);
        for i in 0..30u64 {
            p.on_invocation(Some((10 + i % 3) * MINUTE_MS));
        }
        let windows = p.on_invocation(Some(11 * MINUTE_MS));
        AppRecord {
            app: "app-000001".into(),
            last_ts: 123_456_789,
            windows,
            evicted: false,
            state: PolicyState::Hybrid(p.snapshot()),
        }
    }

    fn empty_default(policy_label: &str, apps: Vec<AppRecord>) -> Snapshot {
        Snapshot {
            policy_label: policy_label.into(),
            prod_clock: None,
            apps,
            default_ledger: LedgerExport::default(),
            tenants: Vec::new(),
        }
    }

    #[test]
    fn encode_decode_round_trips_exactly() {
        let snap = empty_default(
            "hybrid-4h[5,99]cv2",
            vec![
                AppRecord {
                    app: "plain".into(),
                    last_ts: 7,
                    windows: Windows::keep_loaded(600_000),
                    evicted: false,
                    state: PolicyState::Stateless,
                },
                hybrid_record(),
                AppRecord {
                    app: "odd name %20\nwith\rbad chars".into(),
                    last_ts: 0,
                    windows: Windows::pre_warmed(1, 2),
                    evicted: true,
                    state: PolicyState::Stateless,
                },
            ],
        );
        let decoded = Snapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded, snap);
    }

    #[test]
    fn tenant_sections_round_trip_exactly() {
        let snap = Snapshot {
            policy_label: "fixed-10min".into(),
            prod_clock: None,
            apps: vec![AppRecord {
                app: "d".into(),
                last_ts: 3,
                windows: Windows::keep_loaded(600_000),
                evicted: false,
                state: PolicyState::Stateless,
            }],
            default_ledger: LedgerExport {
                warm: vec![("d".into(), 600_003, 171)],
                evictions: 0,
                idle_mb_ms: 513,
                cursor_ms: 3,
            },
            tenants: vec![
                TenantSnapshot {
                    id: 1,
                    name: "acme".into(),
                    policy_label: "hybrid-4h[5,99]cv2".into(),
                    spec_str: Some("hybrid".into()),
                    budget_mb: 4096,
                    prod_clock: None,
                    ledger: LedgerExport {
                        warm: vec![("a".into(), 1_000, 100), ("b".into(), 2_000, 50)],
                        evictions: 7,
                        idle_mb_ms: 12_345,
                        cursor_ms: 900,
                    },
                    apps: vec![AppRecord {
                        app: "a".into(),
                        last_ts: 900,
                        windows: Windows::keep_loaded(100),
                        evicted: true,
                        state: PolicyState::Hybrid(HybridSnapshot {
                            bins: vec![0; 240],
                            oob_count: 1,
                            history: vec![0.5],
                            counts: DecisionCounts::default(),
                            last_decision: DecisionKind::StandardKeepAlive,
                        }),
                    }],
                },
                TenantSnapshot {
                    id: 2,
                    name: "batch".into(),
                    policy_label: "production-240m-14d[5,99]exp0.85".into(),
                    spec_str: Some("production".into()),
                    budget_mb: 0,
                    prod_clock: Some(7_200_000),
                    ledger: LedgerExport::default(),
                    apps: vec![AppRecord {
                        app: "p".into(),
                        last_ts: 100,
                        windows: Windows::pre_warmed(60_000, 120_000),
                        evicted: false,
                        state: PolicyState::Production {
                            last: DecisionKind::Histogram,
                            state: ProductionAppState {
                                days: vec![DayHistogram {
                                    day: 1,
                                    bins: vec![0; 240],
                                    oob: 3,
                                }],
                            },
                        },
                    }],
                },
            ],
        };
        let text = snap.encode();
        assert!(text.contains("tenant 1 acme 4096 1 hybrid-4h[5,99]cv2 spec hybrid"));
        assert!(text.contains("tledger 1 7 12345 900"));
        assert!(text.contains("twarm 1 a 1000 100"));
        assert!(text.contains("tclock 2 7200000"));
        assert!(text.contains("tapp 1 a 900 0 100 evicted hybrid"));
        let decoded = Snapshot::decode(&text).unwrap();
        assert_eq!(decoded, snap);
    }

    #[test]
    fn tenant_section_round_trips_for_migration() {
        let export = TenantExport {
            id: 3,
            name: "mover".into(),
            policy_label: "fixed-10min".into(),
            spec_str: Some("fixed:10".into()),
            budget_mb: 256,
            prod_clock: None,
            ledger: LedgerExport {
                warm: vec![("a".into(), 1_000, 100)],
                evictions: 2,
                idle_mb_ms: 999,
                cursor_ms: 500,
            },
            apps: vec![AppRecord {
                app: "a".into(),
                last_ts: 500,
                windows: Windows::keep_loaded(600_000),
                evicted: false,
                state: PolicyState::Stateless,
            }],
        };
        let text = encode_tenant_section(&export);
        let section = decode_tenant_section(&text).unwrap();
        assert_eq!(section.name, export.name);
        assert_eq!(section.budget_mb, export.budget_mb);
        assert_eq!(section.ledger, export.ledger);
        assert_eq!(section.apps, export.apps);
        // A full snapshot (zero or two tenants) is not a migration payload.
        assert!(decode_tenant_section(&format!("{HEADER}\npolicy x\napps 0\n")).is_err());
    }

    #[test]
    fn pre_fleet_files_decode_with_empty_tenant_state() {
        let text = format!("{HEADER}\npolicy fixed-10min\napps 1\napp a 5 0 600000\nend\n");
        let snap = Snapshot::decode(&text).unwrap();
        assert!(snap.tenants.is_empty());
        assert_eq!(snap.default_ledger, LedgerExport::default());
        assert_eq!(snap.apps.len(), 1);
        assert!(!snap.apps[0].evicted);
    }

    #[test]
    fn history_floats_round_trip_bit_exactly() {
        let values = [0.1f64, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, 300.0];
        let snap = empty_default(
            "hybrid-4h[5,99]cv2",
            vec![AppRecord {
                app: "a".into(),
                last_ts: 1,
                windows: Windows::keep_loaded(1),
                evicted: false,
                state: PolicyState::Hybrid(HybridSnapshot {
                    bins: vec![0; 240],
                    oob_count: 3,
                    history: values.to_vec(),
                    counts: DecisionCounts::default(),
                    last_decision: sitw_core::DecisionKind::Arima,
                }),
            }],
        );
        let decoded = Snapshot::decode(&snap.encode()).unwrap();
        match &decoded.apps[0].state {
            PolicyState::Hybrid(h) => {
                for (a, b) in h.history.iter().zip(&values) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn production_state_and_clock_round_trip() {
        let mut bins = vec![0u32; 240];
        bins[30] = 12;
        bins[31] = 3;
        let mut snap = empty_default(
            "production-240m-14d[5,99]exp0.85",
            vec![AppRecord {
                app: "app-000009".into(),
                last_ts: 999_000,
                windows: Windows::pre_warmed(27 * 60_000, 9 * 60_000),
                evicted: false,
                state: PolicyState::Production {
                    last: DecisionKind::Histogram,
                    state: ProductionAppState {
                        days: vec![
                            DayHistogram {
                                day: 3,
                                bins: bins.clone(),
                                oob: 2,
                            },
                            DayHistogram {
                                day: 5,
                                bins,
                                oob: 0,
                            },
                        ],
                    },
                },
            }],
        );
        snap.prod_clock = Some(7 * 3_600_000);
        let text = snap.encode();
        assert!(text.contains("clock 25200000"), "{text}");
        assert!(text.contains(" production histogram days 2 "), "{text}");
        let decoded = Snapshot::decode(&text).unwrap();
        assert_eq!(decoded, snap);
    }

    #[test]
    fn production_state_restores_only_into_production_shards() {
        // into_policy cannot rebuild a production app (the state lives in
        // the tenant's manager), so it must fail loudly for any spec.
        let state = PolicyState::Production {
            last: DecisionKind::StandardKeepAlive,
            state: ProductionAppState::default(),
        };
        assert!(state
            .clone()
            .into_policy(&PolicySpec::fixed_minutes(10))
            .is_err());
        assert!(state
            .into_policy(&PolicySpec::Production(
                sitw_core::ProductionConfig::default()
            ))
            .is_err());
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(Snapshot::decode("").is_err());
        assert!(Snapshot::decode("wrong header\npolicy x\napps 0\n").is_err());
        assert!(Snapshot::decode(&format!("{HEADER}\npolicy x\napps 2\n")).is_err());
        assert!(
            Snapshot::decode(&format!("{HEADER}\npolicy x\napps 1\napp a notanum 0 0\n")).is_err()
        );
        // A tapp line naming an undeclared tenant id.
        assert!(
            Snapshot::decode(&format!("{HEADER}\npolicy x\napps 0\ntapp 3 a 1 0 0\n")).is_err()
        );
        // Declared tenant app count mismatch.
        assert!(Snapshot::decode(&format!(
            "{HEADER}\npolicy x\ntenant 1 t 0 2 fixed-10min\napps 0\ntapp 1 a 1 0 0\n"
        ))
        .is_err());
    }

    #[test]
    fn file_round_trip() {
        let snap = empty_default(
            "fixed-10min",
            vec![AppRecord {
                app: "a".into(),
                last_ts: 5,
                windows: Windows::keep_loaded(600_000),
                evicted: false,
                state: PolicyState::Stateless,
            }],
        );
        let dir = std::env::temp_dir().join("sitw-serve-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.txt");
        snap.write_to(&path).unwrap();
        assert_eq!(Snapshot::read_from(&path).unwrap(), snap);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn state_restores_into_matching_spec_only() {
        let rec = hybrid_record();
        let spec = PolicySpec::Hybrid(HybridConfig::default());
        let restored = rec.state.clone().into_policy(&spec).unwrap();
        match restored {
            ServedPolicy::Hybrid(h) => match &rec.state {
                PolicyState::Hybrid(s) => assert_eq!(&h.snapshot(), s),
                _ => unreachable!(),
            },
            other => panic!("wrong variant {other:?}"),
        }
        assert!(rec
            .state
            .into_policy(&PolicySpec::fixed_minutes(10))
            .is_err());
    }

    #[test]
    fn delta_header_and_snapshot_header_are_disjoint() {
        let snap = empty_default("fixed-10min", vec![]);
        let full = snap.encode();
        let delta = snap.encode_delta();
        assert!(Snapshot::decode(&full).is_ok());
        assert!(Snapshot::decode(&delta).is_err(), "delta is not a snapshot");
        assert!(Snapshot::decode_delta(&delta).is_ok());
        assert!(Snapshot::decode_delta(&full).is_err());
    }

    #[test]
    fn apply_delta_upserts_apps_and_replaces_tenants() {
        let app = |id: &str, ts: u64| AppRecord {
            app: id.into(),
            last_ts: ts,
            windows: Windows::keep_loaded(600_000),
            evicted: false,
            state: PolicyState::Stateless,
        };
        let tenant = |id: TenantId, name: &str, apps: Vec<AppRecord>| TenantSnapshot {
            id,
            name: name.into(),
            policy_label: "fixed-10min".into(),
            spec_str: Some("fixed:10".into()),
            budget_mb: 0,
            prod_clock: None,
            ledger: LedgerExport::default(),
            apps,
        };
        let mut base = Snapshot {
            policy_label: "fixed-10min".into(),
            prod_clock: None,
            apps: vec![app("a", 1), app("c", 1)],
            default_ledger: LedgerExport::default(),
            tenants: vec![
                tenant(1, "keep", vec![app("x", 1)]),
                tenant(2, "gone", vec![app("y", 1)]),
            ],
        };
        // Delta: app "c" advanced, new app "b", tenant 1 carried whole
        // with a dirty app, tenant 2 absent (migrated away), tenant 3
        // new, and ledger counters replaced wholesale.
        let delta = Snapshot {
            policy_label: "fixed-10min".into(),
            prod_clock: Some(7),
            apps: vec![app("b", 5), app("c", 9)],
            default_ledger: LedgerExport {
                warm: vec![("c".into(), 600_009, 100)],
                evictions: 0,
                idle_mb_ms: 42,
                cursor_ms: 9,
            },
            tenants: vec![
                tenant(1, "keep", vec![app("z", 3)]),
                tenant(3, "new", vec![app("w", 2)]),
            ],
        };
        // The delta round-trips through its wire document.
        let delta = Snapshot::decode_delta(&delta.encode_delta()).unwrap();
        apply_delta(&mut base, delta);
        let ids: Vec<&str> = base.apps.iter().map(|a| a.app.as_str()).collect();
        assert_eq!(ids, vec!["a", "b", "c"]);
        assert_eq!(base.apps[2].last_ts, 9, "dirty app replaced");
        assert_eq!(base.apps[0].last_ts, 1, "clean app untouched");
        assert_eq!(base.default_ledger.idle_mb_ms, 42);
        assert_eq!(base.prod_clock, Some(7));
        let names: Vec<&str> = base.tenants.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["keep", "new"], "absent tenant removed");
        let keep = &base.tenants[0];
        let kept: Vec<&str> = keep.apps.iter().map(|a| a.app.as_str()).collect();
        assert_eq!(kept, vec!["x", "z"], "tenant apps upsert, not replace");
    }

    /// Regression (this PR's bugfix satellite): restoring a truncated
    /// or corrupt snapshot file must fail with a typed error — and the
    /// daemon must keep serving from empty state — never panic
    /// mid-parse.
    #[test]
    fn corrupt_files_load_as_typed_errors() {
        let dir = std::env::temp_dir().join("sitw-serve-corrupt-snap-test");
        std::fs::create_dir_all(&dir).unwrap();

        // A valid snapshot truncated mid-document (the crash-mid-write
        // shape `write_to`'s atomic rename prevents, but an operator
        // copying files can still produce).
        let snap = empty_default("hybrid-4h[5,99]cv2", vec![hybrid_record()]);
        let text = snap.encode();
        for cut in [text.len() / 3, text.len() - 2] {
            let path = dir.join("truncated.snap");
            std::fs::write(&path, &text.as_bytes()[..cut]).unwrap();
            match Snapshot::load(&path) {
                Err(SnapshotError::Corrupt(_)) => {}
                other => panic!("cut {cut}: expected Corrupt, got {other:?}"),
            }
        }

        // Binary garbage.
        let path = dir.join("garbage.snap");
        std::fs::write(&path, [0u8, 159, 146, 150, 0x5B, 0xFF]).unwrap();
        assert!(matches!(
            Snapshot::load(&path),
            Err(SnapshotError::Corrupt(_))
        ));

        // A missing file is Io, not Corrupt.
        assert!(matches!(
            Snapshot::load(&dir.join("nonexistent.snap")),
            Err(SnapshotError::Io(_))
        ));

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
