//! Histogram micro-costs across geometries: the §4.2 design choices
//! (1-minute bins, 4-hour range) against wider/narrower alternatives,
//! plus the production weighted aggregation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sitw_stats::histogram::WeightedBins;
use sitw_stats::RangeHistogram;

fn bench_record(c: &mut Criterion) {
    let mut group = c.benchmark_group("histogram_record");
    for bins in [60usize, 240, 480, 1440] {
        group.bench_with_input(BenchmarkId::from_parameter(bins), &bins, |b, &bins| {
            let mut h = RangeHistogram::new(bins, 1);
            let mut v = 0u64;
            b.iter(|| {
                v = (v + 37) % (bins as u64 + 10);
                black_box(h.record(v))
            })
        });
    }
    group.finish();
}

fn bench_percentiles_and_cv(c: &mut Criterion) {
    let mut group = c.benchmark_group("histogram_read");
    for bins in [60usize, 240, 1440] {
        let mut h = RangeHistogram::new(bins, 1);
        for i in 0..10_000u64 {
            h.record((i * 37) % bins as u64);
        }
        group.bench_with_input(BenchmarkId::new("head_tail", bins), &h, |b, h| {
            b.iter(|| black_box((h.head_value(5.0), h.tail_value(99.0))))
        });
        group.bench_with_input(BenchmarkId::new("cv", bins), &h, |b, h| {
            b.iter(|| black_box(h.bin_count_cv()))
        });
    }
    group.finish();
}

fn bench_weighted_aggregation(c: &mut Criterion) {
    // The §6 production scheme: aggregate 14 daily histograms.
    let days: Vec<RangeHistogram> = (0..14)
        .map(|d| {
            let mut h = RangeHistogram::new(240, 1);
            for i in 0..200u64 {
                h.record((i * 7 + d) % 240);
            }
            h
        })
        .collect();
    c.bench_function("weighted_aggregate_14_days", |b| {
        b.iter(|| {
            let mut agg = WeightedBins::new(240, 1);
            for (age, h) in days.iter().rev().enumerate() {
                agg.add_scaled(h, 0.85f64.powi(age as i32));
            }
            black_box((agg.head_value(5.0), agg.tail_value(99.0)))
        })
    });
}

criterion_group!(
    benches,
    bench_record,
    bench_percentiles_and_cv,
    bench_weighted_aggregation
);
criterion_main!(benches);
