//! Nanosecond time sources.
//!
//! Span timestamps are `u64` nanoseconds since an arbitrary epoch (the
//! server's start instant in production). Threading a [`Clock`] through
//! the recording sites instead of calling `Instant::now()` directly lets
//! tests drive a [`ManualClock`] and assert exact span orderings.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic nanosecond time source.
pub trait Clock {
    /// Nanoseconds since this clock's epoch.
    fn now_ns(&self) -> u64;
}

/// Production clock: nanoseconds since a shared base [`Instant`].
///
/// Cloning is cheap and every clone shares the same epoch, so timestamps
/// taken on different threads are directly comparable.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    base: Instant,
}

impl WallClock {
    /// Creates a clock whose epoch is `base`.
    pub fn new(base: Instant) -> Self {
        Self { base }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new(Instant::now())
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        self.base.elapsed().as_nanos() as u64
    }
}

/// Test clock: returns whatever the test last set, shared across threads.
///
/// # Examples
///
/// ```
/// use sitw_telemetry::{Clock, ManualClock};
///
/// let clock = ManualClock::new(100);
/// assert_eq!(clock.now_ns(), 100);
/// clock.advance(50);
/// assert_eq!(clock.now_ns(), 150);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    ns: Arc<AtomicU64>,
}

impl ManualClock {
    /// Creates a clock reading `ns` nanoseconds.
    pub fn new(ns: u64) -> Self {
        Self {
            ns: Arc::new(AtomicU64::new(ns)),
        }
    }

    /// Sets the absolute reading.
    pub fn set(&self, ns: u64) {
        self.ns.store(ns, Ordering::SeqCst);
    }

    /// Advances the reading by `delta` nanoseconds.
    pub fn advance(&self, delta: u64) {
        self.ns.fetch_add(delta, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::default();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn wall_clock_clones_share_epoch() {
        let c = WallClock::default();
        let d = c;
        // Both read from the same base, so the later read is the larger.
        let a = c.now_ns();
        let b = d.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_is_shared_across_clones() {
        let c = ManualClock::new(7);
        let d = c.clone();
        c.advance(3);
        assert_eq!(d.now_ns(), 10);
        d.set(42);
        assert_eq!(c.now_ns(), 42);
    }
}
