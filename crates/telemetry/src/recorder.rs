//! The flight recorder: a fixed-size ring of span events.
//!
//! Every request is tagged with a span id at parse time and each
//! pipeline stage it crosses pushes one [`SpanEvent`] into the recorder
//! of the thread doing the work. The ring is bounded and overwrites
//! oldest-first, so steady-state recording never allocates; a whole
//! event slot is replaced at once, so a snapshot never contains a torn
//! span. `/debug/trace` takes a *non-destructive* snapshot of the
//! per-thread recorders, merges, and reports the most recent K events —
//! concurrent scrapers see the same spans.

/// Trace ids sampled at the fleet edge carry this top bit so they can
/// never collide with node-local span ids (`reactor_id << 48 | counter`
/// with small reactor counts). A node that receives a propagated trace
/// id uses it *as* the span id for the request's stages, which is what
/// lets the router's `/debug/trace` pick node spans out by id.
pub const TRACE_MARK: u64 = 1 << 63;

/// Whether a span id is a propagated fleet trace id (see [`TRACE_MARK`]).
pub fn is_trace_span(span: u64) -> bool {
    span & TRACE_MARK != 0
}

/// The pipeline stages a request crosses, in order.
///
/// The first six are the node's pipeline; the last six are the router's
/// hop stages ([`ROUTER_STAGES`]), recorded in the router-side flight
/// recorder for sampled (traced) requests only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Socket readable → request bytes buffered.
    Read,
    /// Bytes buffered → request parsed and routed.
    Decode,
    /// Dispatched to a shard mailbox → dequeued by the shard.
    Queue,
    /// The keep-alive policy decision itself.
    Decide,
    /// Reply slot completed → response bytes serialized.
    Render,
    /// Response bytes → written to the socket.
    Write,
    /// Router: request bytes arrived → parsed / admitted.
    Ingress,
    /// Router: tenant/app resolved against the ring → node(s) chosen.
    Route,
    /// Router: subrequest(s) serialized and written upstream.
    Forward,
    /// Router: waiting on upstream node replies.
    Await,
    /// Router: node replies merged into one client response.
    Reassemble,
    /// Router: merged response flushed to the client socket.
    Egress,
}

/// The node pipeline stages, in pipeline order.
pub const STAGES: [Stage; 6] = [
    Stage::Read,
    Stage::Decode,
    Stage::Queue,
    Stage::Decide,
    Stage::Render,
    Stage::Write,
];

/// The router hop stages, in hop order.
pub const ROUTER_STAGES: [Stage; 6] = [
    Stage::Ingress,
    Stage::Route,
    Stage::Forward,
    Stage::Await,
    Stage::Reassemble,
    Stage::Egress,
];

impl Stage {
    /// Lowercase stable name (used as the Prometheus `stage` label and
    /// in `/debug/trace` output).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Read => "read",
            Stage::Decode => "decode",
            Stage::Queue => "queue",
            Stage::Decide => "decide",
            Stage::Render => "render",
            Stage::Write => "write",
            Stage::Ingress => "ingress",
            Stage::Route => "route",
            Stage::Forward => "forward",
            Stage::Await => "await",
            Stage::Reassemble => "reassemble",
            Stage::Egress => "egress",
        }
    }
}

/// One timed stage crossing of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Request span id (assigned once at parse, carried across threads).
    pub span: u64,
    /// Which stage this event times.
    pub stage: Stage,
    /// Stage start, nanoseconds since server start.
    pub start_ns: u64,
    /// Stage end, nanoseconds since server start.
    pub end_ns: u64,
}

/// Fixed-capacity ring buffer of [`SpanEvent`]s, overwriting oldest.
///
/// Single-writer: the thread that owns the pipeline stage pushes; a
/// scraper takes a snapshot via [`FlightRecorder::events`]. Each push
/// replaces a whole slot, so snapshots never observe a torn span.
///
/// # Examples
///
/// ```
/// use sitw_telemetry::{FlightRecorder, SpanEvent, Stage};
///
/// let mut rec = FlightRecorder::new(2);
/// for span in 0..3 {
///     rec.push(SpanEvent { span, stage: Stage::Read, start_ns: span, end_ns: span + 1 });
/// }
/// let events: Vec<u64> = rec.events().map(|e| e.span).collect();
/// assert_eq!(events, vec![1, 2]); // span 0 was overwritten
/// ```
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    ring: Vec<SpanEvent>,
    capacity: usize,
    /// Next slot to write (wraps); also the oldest slot once full.
    head: usize,
    full: bool,
}

impl FlightRecorder {
    /// Creates a recorder holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is 0.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder capacity must be positive");
        Self {
            ring: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            full: false,
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        if self.full {
            self.capacity
        } else {
            self.head
        }
    }

    /// Whether no event has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of events retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records one event, overwriting the oldest when full. O(1), never
    /// allocates once the ring has filled.
    #[inline]
    pub fn push(&mut self, ev: SpanEvent) {
        if self.ring.len() < self.capacity {
            self.ring.push(ev);
        } else {
            self.ring[self.head] = ev;
        }
        self.head += 1;
        if self.head == self.capacity {
            self.head = 0;
            self.full = true;
        }
    }

    /// The held events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &SpanEvent> {
        let split = if self.full { self.head } else { 0 };
        self.ring[split..].iter().chain(self.ring[..split].iter())
    }

    /// Drops all held events (capacity is retained).
    pub fn clear(&mut self) {
        self.ring.clear();
        self.head = 0;
        self.full = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(span: u64, start_ns: u64) -> SpanEvent {
        SpanEvent {
            span,
            stage: Stage::Decide,
            start_ns,
            end_ns: start_ns + 10,
        }
    }

    #[test]
    fn fills_then_wraps_overwriting_oldest() {
        let mut rec = FlightRecorder::new(4);
        assert!(rec.is_empty());
        for i in 0..4 {
            rec.push(ev(i, i));
        }
        assert_eq!(rec.len(), 4);
        // Two more pushes must evict spans 0 and 1, keeping 2..=5 in
        // insertion order.
        rec.push(ev(4, 4));
        rec.push(ev(5, 5));
        assert_eq!(rec.len(), 4);
        let spans: Vec<u64> = rec.events().map(|e| e.span).collect();
        assert_eq!(spans, vec![2, 3, 4, 5]);
    }

    #[test]
    fn wraparound_never_tears_a_span() {
        // Push events whose fields are all derived from the span id;
        // after heavy wrapping every surviving event must still be
        // internally consistent (no slot mixing two spans).
        let mut rec = FlightRecorder::new(7);
        for i in 0..1000u64 {
            rec.push(SpanEvent {
                span: i,
                stage: STAGES[(i % 6) as usize],
                start_ns: i * 100,
                end_ns: i * 100 + i,
            });
        }
        assert_eq!(rec.len(), 7);
        let spans: Vec<u64> = rec.events().map(|e| e.span).collect();
        assert_eq!(spans, (993..1000).collect::<Vec<_>>());
        for e in rec.events() {
            assert_eq!(e.start_ns, e.span * 100, "torn span {e:?}");
            assert_eq!(e.end_ns, e.span * 100 + e.span, "torn span {e:?}");
            assert_eq!(e.stage, STAGES[(e.span % 6) as usize], "torn span {e:?}");
        }
    }

    #[test]
    fn clear_resets_but_keeps_capacity() {
        let mut rec = FlightRecorder::new(3);
        for i in 0..5 {
            rec.push(ev(i, i));
        }
        rec.clear();
        assert!(rec.is_empty());
        rec.push(ev(9, 9));
        assert_eq!(rec.events().map(|e| e.span).collect::<Vec<_>>(), vec![9]);
    }

    #[test]
    fn stage_names_are_stable() {
        let names: Vec<&str> = STAGES.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec!["read", "decode", "queue", "decide", "render", "write"]
        );
        let names: Vec<&str> = ROUTER_STAGES.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "ingress",
                "route",
                "forward",
                "await",
                "reassemble",
                "egress"
            ]
        );
    }

    #[test]
    fn trace_mark_disjoint_from_node_span_ids() {
        // Node span ids are reactor_id << 48 | counter; the trace mark
        // must be outside any realistic reactor id's reach.
        let node_span = (255u64 << 48) | 0x0000_ffff_ffff_ffff;
        assert!(!is_trace_span(node_span));
        assert!(is_trace_span(TRACE_MARK | 42));
    }
}
