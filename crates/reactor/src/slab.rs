//! A generational slab: O(1) insert/lookup/remove with ABA-safe tokens.

/// Arena of per-connection state. Each slot carries a generation that
/// bumps on removal; tokens embed `(generation << 32) | index`, so a
/// message addressed to a connection that died — even if its slot was
/// reused — fails the generation check and is dropped instead of being
/// delivered to the slot's new occupant.
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    free: Vec<u32>,
    live: usize,
}

struct Entry<T> {
    generation: u32,
    value: Option<T>,
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Slab<T> {
        Slab {
            entries: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Inserts a value, returning its token.
    pub fn insert(&mut self, value: T) -> u64 {
        self.live += 1;
        match self.free.pop() {
            Some(index) => {
                let entry = &mut self.entries[index as usize];
                entry.value = Some(value);
                token(entry.generation, index)
            }
            None => {
                let index = self.entries.len() as u32;
                self.entries.push(Entry {
                    generation: 0,
                    value: Some(value),
                });
                token(0, index)
            }
        }
    }

    fn entry(&self, tok: u64) -> Option<&Entry<T>> {
        let (generation, index) = split(tok);
        self.entries
            .get(index as usize)
            .filter(|e| e.generation == generation && e.value.is_some())
    }

    /// Looks a token up; `None` for stale or never-issued tokens.
    pub fn get(&self, tok: u64) -> Option<&T> {
        self.entry(tok).and_then(|e| e.value.as_ref())
    }

    /// Mutable lookup; `None` for stale or never-issued tokens.
    pub fn get_mut(&mut self, tok: u64) -> Option<&mut T> {
        let (generation, index) = split(tok);
        self.entries
            .get_mut(index as usize)
            .filter(|e| e.generation == generation)
            .and_then(|e| e.value.as_mut())
    }

    /// Removes and returns the value; bumps the slot's generation so the
    /// token (and any copy of it in flight) goes stale.
    pub fn remove(&mut self, tok: u64) -> Option<T> {
        let (generation, index) = split(tok);
        let entry = self.entries.get_mut(index as usize)?;
        if entry.generation != generation || entry.value.is_none() {
            return None;
        }
        entry.generation = entry.generation.wrapping_add(1);
        self.live -= 1;
        self.free.push(index);
        entry.value.take()
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no entry is live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Tokens of all live entries (in slot order).
    pub fn tokens(&self) -> impl Iterator<Item = u64> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.value.as_ref().map(|_| token(e.generation, i as u32)))
    }
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

fn token(generation: u32, index: u32) -> u64 {
    ((generation as u64) << 32) | index as u64
}

fn split(tok: u64) -> (u32, u32) {
    ((tok >> 32) as u32, tok as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove() {
        let mut slab: Slab<&'static str> = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&"a"));
        *slab.get_mut(b).unwrap() = "b2";
        assert_eq!(slab.remove(b), Some("b2"));
        assert_eq!(slab.len(), 1);
        assert_eq!(slab.get(b), None);
        assert_eq!(slab.remove(b), None, "double remove is a no-op");
    }

    #[test]
    fn stale_tokens_do_not_reach_slot_reusers() {
        let mut slab: Slab<u32> = Slab::new();
        let first = slab.insert(1);
        slab.remove(first).unwrap();
        let second = slab.insert(2);
        // Same slot, new generation: the old token is dead.
        assert_eq!(first as u32, second as u32, "slot reused");
        assert_eq!(slab.get(first), None);
        assert_eq!(slab.get_mut(first), None);
        assert_eq!(slab.get(second), Some(&2));
    }

    #[test]
    fn tokens_enumerates_live_entries() {
        let mut slab: Slab<u32> = Slab::new();
        let a = slab.insert(1);
        let b = slab.insert(2);
        let c = slab.insert(3);
        slab.remove(b);
        let live: Vec<u64> = slab.tokens().collect();
        assert_eq!(live, vec![a, c]);
        assert!(slab.len() == 2 && !slab.is_empty());
    }

    #[test]
    fn churn_reuses_slots_without_growth() {
        let mut slab: Slab<u64> = Slab::new();
        for round in 0..1_000u64 {
            let tok = slab.insert(round);
            assert_eq!(slab.remove(tok), Some(round));
        }
        assert!(slab.is_empty());
        assert_eq!(slab.entries.len(), 1, "one slot recycled throughout");
    }
}
