//! `sitw-lint` — machine-check the workspace's written invariants.
//!
//! ```text
//! sitw-lint [--root <dir>] [--no-model-check]
//! ```
//!
//! Walks every `.rs` file under the root (default: the workspace the
//! binary was built from, else the current directory), runs the rule
//! set from `sitw_analysis::rules`, then the tier-1 interleaving sweep
//! from `sitw_analysis::sched`. Diagnostics print as
//! `file:line: error[rule]: message`, sorted and stable. Exit code 0
//! means every invariant holds; 1 means findings; 2 means usage or I/O
//! error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use sitw_analysis::rules::Workspace;
use sitw_analysis::sched::{explore, SlabModel, WakerModel};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut model_check = true;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("sitw-lint: --root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--no-model-check" => model_check = false,
            "--help" | "-h" => {
                println!("usage: sitw-lint [--root <dir>] [--no-model-check]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("sitw-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    // Default to the workspace this binary was compiled from, so
    // `cargo run -p sitw-analysis --bin sitw-lint` does the right
    // thing from any cwd.
    let root = root.unwrap_or_else(|| PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")));

    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(err) => {
            eprintln!("sitw-lint: cannot read {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };
    let diags = ws.lint();
    for d in &diags {
        println!("{d}");
    }

    let mut failed = !diags.is_empty();
    if model_check {
        failed |= !run_models();
    }

    if failed {
        eprintln!(
            "sitw-lint: FAILED ({} file(s) scanned, {} finding(s))",
            ws.files.len(),
            diags.len()
        );
        ExitCode::FAILURE
    } else {
        println!(
            "sitw-lint: OK ({} file(s) scanned, 0 findings)",
            ws.files.len()
        );
        ExitCode::SUCCESS
    }
}

/// Tier-1 interleaving sweep: verify both shipped protocols and prove
/// the checker has teeth by refuting the seeded-bug variants.
fn run_models() -> bool {
    let mut ok = true;

    let waker = explore(&WakerModel::correct(2, 1), 64);
    match &waker.counterexample {
        None => println!(
            "model-check: waker arm/recheck protocol verified over {} schedules (max depth {})",
            waker.schedules, waker.max_depth
        ),
        Some(cex) => {
            println!("model-check: waker protocol FAILED: {cex}");
            ok = false;
        }
    }

    let slab = explore(&SlabModel::correct(), 64);
    match &slab.counterexample {
        None => println!(
            "model-check: slab generational-token routing verified over {} schedules",
            slab.schedules
        ),
        Some(cex) => {
            println!("model-check: slab routing FAILED: {cex}");
            ok = false;
        }
    }

    // Self-test: the checker must find the bugs we seed. A vacuous
    // explorer would pass everything above and fail here.
    if explore(&WakerModel::buggy(2, 1), 64)
        .counterexample
        .is_none()
    {
        println!("model-check: SELF-TEST FAILED: lost-wakeup variant not refuted");
        ok = false;
    }
    if explore(&SlabModel::buggy(), 64).counterexample.is_none() {
        println!("model-check: SELF-TEST FAILED: index-only slab variant not refuted");
        ok = false;
    }
    ok
}
