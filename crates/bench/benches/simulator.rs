//! Simulator throughput: events per second through the §5.1 replay loop,
//! and a small end-to-end sweep. Bounds how large a trace the figure
//! harness can process.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sitw_core::{FixedKeepAlive, HybridConfig, PolicyFactory};
use sitw_sim::{run_sweep, simulate_app, PolicySpec};
use sitw_trace::{build_population, PopulationConfig, TraceConfig, DAY_MS, MINUTE_MS};

fn event_stream(n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| i * 3 * MINUTE_MS).collect()
}

fn bench_simulate_app(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_app");
    for n in [1_000usize, 10_000, 100_000] {
        let events = event_stream(n);
        let horizon = *events.last().unwrap() + MINUTE_MS;
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("fixed", n), &events, |b, ev| {
            b.iter(|| {
                let mut p = FixedKeepAlive::minutes(10).new_policy();
                black_box(simulate_app(ev, horizon, &mut p))
            })
        });
        group.bench_with_input(BenchmarkId::new("hybrid", n), &events, |b, ev| {
            b.iter(|| {
                let mut p = HybridConfig::default().new_policy();
                black_box(simulate_app(ev, horizon, &mut p))
            })
        });
    }
    group.finish();
}

fn bench_small_sweep(c: &mut Criterion) {
    let population = build_population(&PopulationConfig {
        num_apps: 100,
        seed: 1,
    });
    let cfg = TraceConfig {
        horizon_ms: DAY_MS,
        cap_per_day: 1_000.0,
        seed: 2,
    };
    let specs = vec![
        PolicySpec::fixed_minutes(10),
        PolicySpec::Hybrid(HybridConfig::default()),
    ];
    c.bench_function("sweep_100_apps_1_day_2_policies", |b| {
        b.iter(|| black_box(run_sweep(&population, &cfg, &specs, 2)))
    });
}

criterion_group!(benches, bench_simulate_app, bench_small_sweep);
criterion_main!(benches);
